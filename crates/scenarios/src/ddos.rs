//! DDoS on the DNS root infrastructure (§7.1, Fig. 5–8).
//!
//! Two documented attack windows against the anycast root services:
//! November 30th 2015 06:50–09:30 UTC and December 1st 05:10–06:10 UTC.
//! Impact differs per instance, as the paper observed:
//!
//! * Kansas City, Amsterdam, Frankfurt, London: both attacks (Fig. 7a);
//! * Tokyo: second attack only (Fig. 7c's single-attack analogue);
//! * St. Petersburg: 14 consecutive anomalous hours (Fig. 7d/7f);
//! * Poznan: unaffected — narrow, constant reference (Fig. 7b);
//! * F-root and I-root share IXPs with K-root, so their alarms join the
//!   same connected component (Fig. 8); L-root stays clean (the paper's
//!   A/D/G/L/M control group).

use crate::runner::CaseStudy;
use crate::world::{Landmarks, Scale};
use pinpoint_core::DetectorConfig;
use pinpoint_model::SimTime;
use pinpoint_netsim::events::{EventSchedule, LinkSelector, NetworkEvent};

/// Congestion severity applied to attacked instance uplinks: pushes
/// utilization into the high-delay / low-loss regime (anycast absorbed the
/// attack; "packet loss at root servers has been negligible").
pub const ATTACK_EXTRA_UTIL: f64 = 0.52;

/// Day offset of November 30th from the scenario epoch.
fn attack_day(scale: Scale) -> u64 {
    match scale {
        Scale::Small => 4,  // epoch = Nov 26 (Fig. 7 window)
        Scale::Paper => 13, // epoch = Nov 17 (Fig. 6 window)
    }
}

/// The epoch label per scale.
pub fn epoch_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "2015-11-26T00:00Z",
        Scale::Paper => "2015-11-17T00:00Z",
    }
}

/// First attack window (Nov 30 06:50–09:30 UTC).
pub fn attack1(scale: Scale) -> (SimTime, SimTime) {
    let d = attack_day(scale);
    (
        SimTime(d * 86_400 + 6 * 3600 + 50 * 60),
        SimTime(d * 86_400 + 9 * 3600 + 30 * 60),
    )
}

/// Second attack window (Dec 1 05:10–06:10 UTC).
pub fn attack2(scale: Scale) -> (SimTime, SimTime) {
    let d = attack_day(scale) + 1;
    (
        SimTime(d * 86_400 + 5 * 3600 + 10 * 60),
        SimTime(d * 86_400 + 6 * 3600 + 10 * 60),
    )
}

/// Extended anomaly window of the St. Petersburg instance (14 h).
pub fn led_window(scale: Scale) -> (SimTime, SimTime) {
    let (start, _) = attack1(scale);
    (start, SimTime(start.0 + 14 * 3600))
}

/// Analysis window in bins.
pub fn window(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Small => (0, 7 * 24),
        // Fig. 6: Nov 17 – Dec 15.
        Scale::Paper => (0, 28 * 24),
    }
}

/// Build the attack schedule against the world's landmarks.
pub fn schedule(landmarks: &Landmarks, scale: Scale) -> EventSchedule {
    let mut s = EventSchedule::new();
    let (a1s, a1e) = attack1(scale);
    let (a2s, a2e) = attack2(scale);
    let (ls, le) = led_window(scale);

    let both_attacks = ["AMS", "FRA", "LON", "MKC"];
    let second_only = ["TYO"];
    for (code, entry_ip) in &landmarks.kroot_entries {
        let sel = LinkSelector::TouchingIp(*entry_ip);
        if both_attacks.contains(code) {
            s = s
                .with(NetworkEvent::Congestion {
                    selector: sel.clone(),
                    start: a1s,
                    end: a1e,
                    extra_util: ATTACK_EXTRA_UTIL,
                })
                .with(NetworkEvent::Congestion {
                    selector: sel,
                    start: a2s,
                    end: a2e,
                    extra_util: ATTACK_EXTRA_UTIL,
                });
        } else if second_only.contains(code) {
            s = s.with(NetworkEvent::Congestion {
                selector: sel,
                start: a2s,
                end: a2e,
                extra_util: ATTACK_EXTRA_UTIL,
            });
        } else if *code == "LED" {
            // Hosts close to this instance kept causing anomalous
            // conditions long after the attack window (paper's reading).
            s = s.with(NetworkEvent::Congestion {
                selector: sel,
                start: ls,
                end: le,
                extra_util: 0.38,
            });
        }
        // POZ: untouched (Fig. 7b).
    }
    // F-root and I-root share the attacked IXP fabric: their service links
    // congest in the first window.
    for addr in [landmarks.froot_addr, landmarks.iroot_addr] {
        s = s.with(NetworkEvent::Congestion {
            selector: LinkSelector::TouchingIp(addr),
            start: a1s,
            end: a1e,
            extra_util: 0.45,
        });
    }
    s
}

/// Build the DDoS case study.
pub fn case_study(seed: u64, scale: Scale) -> CaseStudy {
    // Landmarks are deterministic per (seed, scale): build the world once
    // for the schedule, then assemble for real.
    let world = crate::world::World::build(seed, scale);
    let schedule = schedule(&world.landmarks, scale);
    CaseStudy::assemble(
        seed,
        scale,
        schedule,
        DetectorConfig::default(),
        window(scale),
        epoch_label(scale),
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use pinpoint_model::BinId;

    /// One compact end-to-end check: the K-root AS's delay magnitude peaks
    /// inside the attack window and stays calm before it.
    #[test]
    fn kroot_magnitude_peaks_during_attack() {
        let scale = Scale::Small;
        let case = case_study(2015, scale);
        let kroot = case.landmarks.kroot_asn;
        let (a1s, a1e) = attack1(scale);
        let attack_bins: Vec<u64> = (a1s.0 / 3600..=a1e.0 / 3600).collect();
        let mut analyzer = case.analyzer();
        // Run through the first attack only (cheaper).
        let short = CaseStudy {
            end_bin: BinId(attack_bins[attack_bins.len() - 1] + 2),
            ..case
        };
        let mut series: Vec<(u64, f64)> = Vec::new();
        run(&short, &mut analyzer, |report| {
            if let Some(m) = report.magnitude(kroot) {
                series.push((report.bin.0, m.delay_magnitude));
            }
        });
        let peak_during = series
            .iter()
            .filter(|(b, _)| attack_bins.contains(b))
            .map(|(_, m)| *m)
            .fold(f64::NEG_INFINITY, f64::max);
        let calm_before = series
            .iter()
            .filter(|(b, _)| *b + 24 < attack_bins[0]) // skip warm-up edge
            .map(|(_, m)| m.abs())
            .fold(0.0, f64::max);
        assert!(
            peak_during > 5.0,
            "attack invisible: peak {peak_during}, series tail {:?}",
            &series[series.len().saturating_sub(8)..]
        );
        assert!(
            peak_during > 3.0 * calm_before.max(1.0),
            "attack peak {peak_during} not prominent over calm {calm_before}"
        );
    }

    #[test]
    fn attack_windows_are_ordered() {
        for scale in [Scale::Small, Scale::Paper] {
            let (s1, e1) = attack1(scale);
            let (s2, e2) = attack2(scale);
            assert!(s1 < e1 && e1 < s2 && s2 < e2);
            let (ls, le) = led_window(scale);
            assert_eq!(ls, s1);
            assert_eq!(le.0 - ls.0, 14 * 3600);
            let (b0, b1) = window(scale);
            assert!(b1 * 3600 > e2.0, "window ends before attack 2");
            assert_eq!(b0, 0);
        }
    }
}
