//! Steady-state scenario (Fig. 2 / Fig. 3): two quiet weeks on the
//! Cogent ZRH→MUC link.
//!
//! No events are scripted; the scenario demonstrates the estimator's
//! stability — raw differential RTTs fluctuate wildly (σ several times the
//! mean) while hourly medians stay within a fraction of a millisecond and
//! their distribution across bins is normal (median-CLT), unlike the mean.

use crate::runner::CaseStudy;
use crate::world::Scale;
use pinpoint_core::DetectorConfig;
use pinpoint_netsim::EventSchedule;

/// Analysis window length in hours.
pub fn window_hours(scale: Scale) -> u64 {
    match scale {
        Scale::Small => 48,
        // Fig. 2: June 1st – June 15th 2015.
        Scale::Paper => 14 * 24,
    }
}

/// Build the steady case study. Bin 0 = 2015-06-01 00:00 UTC.
pub fn case_study(seed: u64, scale: Scale) -> CaseStudy {
    CaseStudy::assemble(
        seed,
        scale,
        EventSchedule::new(),
        DetectorConfig::default(),
        (0, window_hours(scale)),
        "2015-06-01T00:00Z",
        1, // every probe anchors: maximize Fig. 2 link coverage
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use pinpoint_model::IpLink;

    #[test]
    fn cogent_link_is_observed_with_diverse_probes() {
        let case = case_study(2015, Scale::Small);
        let link = case.landmarks.cogent_link;
        let mut analyzer = case.analyzer();
        let mut seen_bins = 0usize;
        let mut medians: Vec<f64> = Vec::new();
        // A few bins suffice to verify observation and stability.
        let short = CaseStudy {
            end_bin: pinpoint_model::BinId(6),
            ..case
        };
        run(&short, &mut analyzer, |report| {
            if let Some(stat) = report.link_stats.get(&link) {
                seen_bins += 1;
                medians.push(stat.median());
            }
        });
        assert!(
            seen_bins >= 5,
            "Fig. 2 link observed in only {seen_bins}/6 bins"
        );
        let lo = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo < 2.0,
            "median differential RTT unstable: {medians:?}"
        );
    }

    #[test]
    fn quiet_weeks_produce_few_delay_alarms() {
        let case = case_study(2015, Scale::Small);
        let mut analyzer = case.analyzer();
        let short = CaseStudy {
            end_bin: pinpoint_model::BinId(24),
            ..case
        };
        let summary = run(&short, &mut analyzer, |_| {});
        // Some alarms are expected from noise, but they must be rare
        // relative to (links × bins).
        let opportunities = summary.tracked_links * summary.bins;
        let rate = summary.delay_alarms as f64 / opportunities.max(1) as f64;
        assert!(
            rate < 0.02,
            "false-alarm rate {rate} ({} alarms / {} link-bins)",
            summary.delay_alarms,
            opportunities
        );
    }

    #[test]
    fn link_is_an_ip_pair_not_a_router_pair() {
        // Interface discipline: the landmark link must be expressed as the
        // ZRH and MUC router addresses in forward order.
        let case = case_study(2015, Scale::Small);
        let IpLink { near, far } = case.landmarks.cogent_link;
        assert_ne!(near, far);
    }
}
