//! AMS-IX outage (§7.3, Fig. 13).
//!
//! On 2015-05-13 ~10:20 UTC a technical fault during maintenance partially
//! broke the Amsterdam Internet Exchange: member networks could not
//! exchange traffic over the peering LAN until ~12:00. Crucially, *routes
//! stayed up while packets died* — so the delay method is silent (no RTT
//! samples), and the event is visible only through forwarding anomalies:
//! peering-LAN addresses (mapped to AS1200 by longest-prefix match) vanish
//! from next-hop patterns, driving the AS1200 forwarding magnitude deeply
//! negative.

use crate::runner::CaseStudy;
use crate::world::Scale;
use pinpoint_core::DetectorConfig;
use pinpoint_model::SimTime;
use pinpoint_netsim::events::{EventSchedule, NetworkEvent};

/// Day of May 13th relative to the epoch (2015-05-08).
const OUTAGE_DAY: u64 = 5;

/// Outage window: May 13th 10:20–12:00 UTC (traffic levels did not recover
/// until noon despite the 10:30 all-clear).
pub fn outage_window() -> (SimTime, SimTime) {
    (
        SimTime(OUTAGE_DAY * 86_400 + 10 * 3600 + 20 * 60),
        SimTime(OUTAGE_DAY * 86_400 + 12 * 3600),
    )
}

/// Analysis bins overlapping the outage, as a half-open `[start, end)`
/// range — for harnesses and parity tests that zoom into the event
/// instead of replaying the whole window.
pub fn outage_bins() -> (u64, u64) {
    let (start, end) = outage_window();
    (start.0 / 3600, end.0.div_ceil(3600))
}

/// Analysis window in bins. Bin 0 = 2015-05-08 00:00 UTC.
pub fn window(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Small => (0, 8 * 24),
        // Fig. 13: May 8th – June 1st.
        Scale::Paper => (0, 24 * 24),
    }
}

/// Build the outage schedule.
pub fn schedule(amsix_asn: pinpoint_model::Asn) -> EventSchedule {
    let (start, end) = outage_window();
    EventSchedule::new().with(NetworkEvent::IxpOutage {
        ixp: amsix_asn,
        start,
        end,
    })
}

/// Build the IXP-outage case study.
pub fn case_study(seed: u64, scale: Scale) -> CaseStudy {
    let world = crate::world::World::build(seed, scale);
    let schedule = schedule(world.landmarks.amsix_asn);
    CaseStudy::assemble(
        seed,
        scale,
        schedule,
        DetectorConfig::default(),
        window(scale),
        "2015-05-08T00:00Z",
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use pinpoint_model::BinId;

    #[test]
    fn outage_is_a_forwarding_event_not_a_delay_event() {
        let case = case_study(2015, Scale::Small);
        let amsix = case.landmarks.amsix_asn;
        let (os, oe) = outage_window();
        let outage_bins: Vec<u64> = (os.0 / 3600..oe.0 / 3600 + 1).collect();
        let mut analyzer = case.analyzer();
        let mapper = case.mapper.clone();
        let short = CaseStudy {
            end_bin: BinId(outage_bins[outage_bins.len() - 1] + 2),
            ..case
        };
        let mut fwd_min = f64::INFINITY;
        let mut delay_peak: f64 = 0.0;
        let mut unresponsive_pairs = std::collections::BTreeSet::new();
        run(&short, &mut analyzer, |report| {
            if outage_bins.contains(&report.bin.0) {
                if let Some(m) = report.magnitude(amsix) {
                    fwd_min = fwd_min.min(m.forwarding_magnitude);
                    delay_peak = delay_peak.max(m.delay_magnitude.abs());
                }
                // Count (router, vanished LAN next-hop) pairs — the paper's
                // "770 IP pairs related to the AMS-IX peering LAN became
                // unresponsive".
                for alarm in &report.forwarding_alarms {
                    for (hop, r) in &alarm.responsibilities {
                        if let pinpoint_core::forwarding::NextHop::Ip(ip) = hop {
                            if *r < -0.05 && mapper.asn_of(*ip) == Some(amsix) {
                                unresponsive_pairs.insert((alarm.router, *ip));
                            }
                        }
                    }
                }
            }
        });
        assert!(
            fwd_min < -2.0,
            "AMS-IX forwarding magnitude never dipped: {fwd_min}"
        );
        assert!(
            !unresponsive_pairs.is_empty(),
            "no LAN next-hop pairs reported unresponsive"
        );
        // Delay magnitude stays comparatively small — the event is
        // forwarding-only (§7.3: "The delay change method did not
        // conclusively detect this outage").
        assert!(
            fwd_min.abs() > delay_peak,
            "delay ({delay_peak}) outweighed forwarding ({fwd_min})"
        );
    }

    #[test]
    fn outage_bins_bracket_the_window() {
        let (first, last) = outage_bins();
        assert_eq!((first, last), (130, 132));
        let (s, e) = outage_window();
        assert!(first * 3600 <= s.0 && e.0 <= last * 3600);
    }

    #[test]
    fn window_covers_outage() {
        let (s, e) = outage_window();
        assert!(s < e);
        for scale in [Scale::Small, Scale::Paper] {
            let (_, b1) = window(scale);
            assert!(b1 * 3600 > e.0);
        }
    }
}
