//! # pinpoint-scenarios
//!
//! Reproducible case-study scenarios: each builds a simulated Internet
//! containing the paper's protagonists, scripts the documented disruption,
//! runs the measurement platform, and exposes everything the figure
//! harnesses need.
//!
//! | Scenario | Paper section | Ground truth |
//! |----------|--------------|--------------|
//! | [`steady`] | Fig. 2/3 | a quiet fortnight on a Cogent-like ZRH→MUC link |
//! | [`ddos`] | §7.1, Fig. 5–8 | two DDoS windows against anycast root services |
//! | [`leak`] | §7.2, Fig. 9–12 | a customer route leak through a tier-1 |
//! | [`ixp`] | §7.3, Fig. 13 | an IXP fabric outage blackholing its LAN |
//! | [`multi`] | §7.3 + §8 | the same outage split over a three-stream analyzer fleet |
//! | [`artifacts`] | §3 (data) | the IXP outage under graded measurement-artifact noise, with recall / false-alarm gates |
//! | [`full`] | Fig. 5, Table A | all of the above over two months |
//!
//! All scenarios share the [`world`] topology so addresses and ASNs are
//! consistent across figures; [`Scale`] trades fidelity for runtime
//! (`Small` for unit tests, `Paper` for figure regeneration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod ddos;
pub mod full;
pub mod ixp;
pub mod leak;
pub mod multi;
pub mod runner;
pub mod steady;
pub mod world;

pub use runner::{run, run_streamed, CaseStudy, RunSummary};
pub use world::{Landmarks, Scale, World};
