//! Graded measurement-artifact robustness: the AMS-IX outage replayed
//! under increasing feed corruption.
//!
//! The paper's deployment consumes raw RIPE Atlas data, which is riddled
//! with measurement artifacts — false links and loops from per-flow load
//! balancing, wrong-hop ICMP reply attribution, duplicated hops, probe
//! clock skew. The detectors' robust statistics and the core sanitizer
//! are supposed to absorb this; this module turns "supposed to" into a
//! measured, gated property.
//!
//! The same ground-truth event — an IXP fabric outage blackholing the
//! AMS-IX peering LAN, the [`crate::ixp`] case study moved to hour 30 so
//! three full replays stay unit-test cheap — runs under each
//! [`NoiseGrade`]: a clean feed, a mildly dirty one (~10% of records
//! touched), and a hostile one (roughly half of all records corrupted).
//! [`evaluate`] scores each run against the known truth bins:
//!
//! * **recall** — the fraction of outage bins detected: the AMS-IX
//!   forwarding magnitude crosses [`MAGNITUDE_THRESHOLD`], or at least
//!   [`PAIRS_THRESHOLD`] distinct (router, LAN next-hop) pairs turn
//!   unresponsive (the paper's own §7.3 framing — "770 IP pairs related
//!   to the AMS-IX peering LAN became unresponsive");
//! * **false-alarm rate** — the fraction of settled non-outage bins
//!   where the same criterion fires for any watched AS.
//!
//! CI runs [`NoiseGrade::recall_gate`] / [`NoiseGrade::false_alarm_gate`]
//! as a robustness gate: a change that makes the pipeline brittle under
//! noise fails the build exactly like a parity or throughput regression.

use crate::runner::{self, CaseStudy, RunSummary};
use crate::world::{Scale, World};
use pinpoint_core::aggregate::AsMapper;
use pinpoint_core::{DetectorConfig, NextHop, SanitizeStats};
use pinpoint_model::{Asn, SimTime};
use pinpoint_netsim::{ArtifactModel, EventSchedule, NetworkEvent};

/// Forwarding-magnitude detection threshold, as in the §7.3 case study.
pub const MAGNITUDE_THRESHOLD: f64 = -2.0;

/// Distinct unresponsive (router, LAN next-hop) pairs that count as a
/// detection on their own — structural noise dilutes per-pattern
/// responsibilities (and with them the summed magnitude) long before it
/// erases the pairs themselves, so dirty grades are scored the way §7.3
/// reports the event: by how much of the peering LAN went dark.
pub const PAIRS_THRESHOLD: usize = 3;

/// Bins before which magnitudes are still settling and are not scored
/// for false alarms (references warm up, magnitude windows fill).
pub const SETTLE_BINS: u64 = 12;

/// How much measurement-artifact noise the feed carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseGrade {
    /// The pristine simulator feed.
    Clean,
    /// A few percent of records corrupted — a healthy Atlas day.
    Mild,
    /// Heavy corruption on every artifact axis — a broken vantage fleet.
    Hostile,
}

impl NoiseGrade {
    /// All grades, mildest first.
    pub const ALL: [NoiseGrade; 3] = [NoiseGrade::Clean, NoiseGrade::Mild, NoiseGrade::Hostile];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            NoiseGrade::Clean => "clean",
            NoiseGrade::Mild => "mild",
            NoiseGrade::Hostile => "hostile",
        }
    }

    /// The artifact model injecting this grade's corruption (`None` for
    /// a clean feed).
    pub fn artifact_model(self, seed: u64) -> Option<ArtifactModel> {
        match self {
            NoiseGrade::Clean => None,
            NoiseGrade::Mild => Some(ArtifactModel::mild(seed)),
            NoiseGrade::Hostile => Some(ArtifactModel::hostile(seed)),
        }
    }

    /// Minimum acceptable outage-bin recall at this grade. The truth
    /// window is two bins — the first covers only the outage's last 40
    /// minutes — so the gates quantize to halves: a clean feed must
    /// catch both outage bins; a dirty feed must still catch the
    /// fully-covered bin but may lose the partial one to dilution.
    pub fn recall_gate(self) -> f64 {
        match self {
            NoiseGrade::Clean => 0.99,
            NoiseGrade::Mild | NoiseGrade::Hostile => 0.49,
        }
    }

    /// Maximum acceptable false-alarm rate at this grade.
    pub fn false_alarm_gate(self) -> f64 {
        match self {
            NoiseGrade::Clean => 0.01,
            NoiseGrade::Mild => 0.10,
            NoiseGrade::Hostile => 0.25,
        }
    }
}

/// Outage window: hour 30:20–32:00 of the scenario — the same fault as
/// [`crate::ixp::outage_window`], moved early so a three-grade sweep
/// replays ~34 bins per grade instead of ~134.
pub fn outage_window() -> (SimTime, SimTime) {
    (SimTime(30 * 3600 + 20 * 60), SimTime(32 * 3600))
}

/// Truth bins of the outage, inclusive.
pub fn outage_bins() -> (u64, u64) {
    let (start, end) = outage_window();
    (start.0 / 3600, (end.0 - 1) / 3600)
}

/// Analysis window in bins: warm-up, the outage, and a recovery tail.
pub fn window() -> (u64, u64) {
    (0, 36)
}

/// Build the case study at one noise grade: the shared world, the early
/// IXP outage, and the grade's artifact model injected at the platform.
pub fn case_study(seed: u64, grade: NoiseGrade) -> CaseStudy {
    let world = World::build(seed, Scale::Small);
    let (start, end) = outage_window();
    let schedule = EventSchedule::new().with(NetworkEvent::IxpOutage {
        ixp: world.landmarks.amsix_asn,
        start,
        end,
    });
    let mut case = CaseStudy::assemble(
        seed,
        Scale::Small,
        schedule,
        DetectorConfig::fast_test(),
        window(),
        "artifact-noise epoch",
        2,
    );
    case.platform.set_artifact_model(grade.artifact_model(seed));
    case
}

/// What one graded replay measured.
#[derive(Debug, Clone)]
pub struct RobustnessOutcome {
    /// The grade evaluated.
    pub grade: NoiseGrade,
    /// Fraction of outage bins where the AMS-IX forwarding magnitude
    /// crossed [`MAGNITUDE_THRESHOLD`].
    pub recall: f64,
    /// Fraction of settled non-outage bins where any watched AS
    /// magnitude crossed the threshold (either direction, either
    /// detector).
    pub false_alarm_rate: f64,
    /// Sanitizer counters over the whole run.
    pub sanitize: SanitizeStats,
    /// The run's summary counters.
    pub summary: RunSummary,
}

impl RobustnessOutcome {
    /// Whether this outcome clears its grade's CI gates.
    pub fn passes(&self) -> bool {
        self.recall >= self.grade.recall_gate()
            && self.false_alarm_rate <= self.grade.false_alarm_gate()
    }
}

/// Count the distinct (router, next-hop) pairs inside `asn` that a bin's
/// forwarding alarms mark as losing traffic (responsibility < −0.05) —
/// the §7.3 "IP pairs related to the peering LAN became unresponsive"
/// measure.
pub fn lan_pairs(report: &pinpoint_core::BinReport, mapper: &AsMapper, asn: Asn) -> usize {
    let mut pairs = std::collections::BTreeSet::new();
    for alarm in &report.forwarding_alarms {
        for (hop, r) in &alarm.responsibilities {
            if let NextHop::Ip(ip) = hop {
                if *r < -0.05 && mapper.asn_of(*ip) == Some(asn) {
                    pairs.insert((alarm.router, *ip));
                }
            }
        }
    }
    pairs.len()
}

/// Replay the outage at one grade (on the pipelined executor — the
/// deployment shape) and score it against the ground truth.
pub fn evaluate(seed: u64, grade: NoiseGrade) -> RobustnessOutcome {
    let case = case_study(seed, grade);
    let mut analyzer = case.analyzer();
    let amsix = case.landmarks.amsix_asn;
    let mapper = case.mapper.clone();
    let watched = runner::figure_ases(&case.landmarks);
    let (first, last) = outage_bins();
    let mut truth_bins = 0u64;
    let mut hits = 0u64;
    let mut eligible = 0u64;
    let mut false_alarms = 0u64;
    let summary = runner::run_pipelined(&case, &mut analyzer, 0, |report| {
        let b = report.bin.0;
        let detected = |asn: Asn| {
            report
                .magnitude(asn)
                .is_some_and(|m| m.forwarding_magnitude < MAGNITUDE_THRESHOLD)
                || lan_pairs(report, &mapper, asn) >= PAIRS_THRESHOLD
        };
        if (first..=last).contains(&b) {
            truth_bins += 1;
            if detected(amsix) {
                hits += 1;
            }
        } else if b >= SETTLE_BINS && (b < first || b > last + 2) {
            // Outside the outage and its two-bin recovery tail.
            eligible += 1;
            let alarmed = watched.iter().any(|asn| {
                detected(*asn)
                    || report
                        .magnitude(*asn)
                        .is_some_and(|m| m.delay_magnitude.abs() > MAGNITUDE_THRESHOLD.abs())
            });
            if alarmed {
                false_alarms += 1;
            }
        }
    });
    RobustnessOutcome {
        grade,
        recall: hits as f64 / truth_bins.max(1) as f64,
        false_alarm_rate: false_alarms as f64 / eligible.max(1) as f64,
        sanitize: analyzer.sanitize_stats(),
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robustness_gates_hold_at_every_grade() {
        let mut quarantined = Vec::new();
        for grade in NoiseGrade::ALL {
            let outcome = evaluate(2015, grade);
            println!(
                "{}: recall {:.2} (gate {:.2}), false alarms {:.3} (gate {:.2}), \
                 quarantined {} / {} records, repaired {}",
                grade.label(),
                outcome.recall,
                grade.recall_gate(),
                outcome.false_alarm_rate,
                grade.false_alarm_gate(),
                outcome.sanitize.quarantined(),
                outcome.sanitize.records,
                outcome.sanitize.repaired,
            );
            assert!(
                outcome.recall >= grade.recall_gate(),
                "{}: recall {} under gate {}",
                grade.label(),
                outcome.recall,
                grade.recall_gate()
            );
            assert!(
                outcome.false_alarm_rate <= grade.false_alarm_gate(),
                "{}: false-alarm rate {} over gate {}",
                grade.label(),
                outcome.false_alarm_rate,
                grade.false_alarm_gate()
            );
            assert!(outcome.passes());
            quarantined.push((outcome.sanitize.quarantined(), outcome.sanitize.repaired));
        }
        // The sanitizer's view must track the injected noise: a clean
        // feed touches nothing, dirty feeds both repair (duplicated
        // hops) and quarantine (painted loops), and the hostile grade
        // does more of both than the mild one.
        assert_eq!(quarantined[0], (0, 0), "clean feed must pass untouched");
        assert!(
            quarantined[1].0 > 0 && quarantined[1].1 > 0,
            "mild grade must both quarantine and repair, got {:?}",
            quarantined[1]
        );
        assert!(
            quarantined[2].0 > quarantined[1].0 && quarantined[2].1 > quarantined[1].1,
            "hostile {:?} must out-sanitize mild {:?}",
            quarantined[2],
            quarantined[1]
        );
    }

    #[test]
    fn outage_bins_bracket_the_window() {
        let (first, last) = outage_bins();
        assert_eq!((first, last), (30, 31));
        let (_, end) = window();
        assert!(last + 2 < end);
    }
}
