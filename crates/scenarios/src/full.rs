//! The combined multi-event scenario (Fig. 5 distributions, Table A).
//!
//! All three case-study events over one long window, so the distribution
//! of hourly magnitudes across every AS (Fig. 5a CCDF / Fig. 5b CDF)
//! contains both the quiet mass near zero and the heavy tails the events
//! produce. Event offsets are compressed relative to the calendar (the
//! paper spans May–December 2015); relative spacing is preserved.

use crate::runner::CaseStudy;
use crate::world::{Landmarks, Scale};
use pinpoint_core::DetectorConfig;
use pinpoint_model::SimTime;
use pinpoint_netsim::events::{EventSchedule, LeakScope, LinkSelector, NetworkEvent};

/// Event days (from the scenario epoch) per scale.
fn days(scale: Scale) -> (u64, u64, u64) {
    match scale {
        // (ixp outage, route leak, ddos attack 1; attack 2 is +1 day)
        Scale::Small => (5, 10, 15),
        Scale::Paper => (12, 25, 45),
    }
}

/// Analysis window in bins.
pub fn window(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Small => (0, 20 * 24),
        Scale::Paper => (0, 60 * 24),
    }
}

/// Build the combined schedule.
pub fn schedule(landmarks: &Landmarks, scale: Scale) -> EventSchedule {
    let (ixp_day, leak_day, ddos_day) = days(scale);
    let mut s = EventSchedule::new();

    // --- IXP outage --------------------------------------------------
    s = s.with(NetworkEvent::IxpOutage {
        ixp: landmarks.amsix_asn,
        start: SimTime(ixp_day * 86_400 + 10 * 3600 + 20 * 60),
        end: SimTime(ixp_day * 86_400 + 12 * 3600),
    });

    // --- Route leak ----------------------------------------------------
    let (ls, le) = (
        SimTime(leak_day * 86_400 + 8 * 3600 + 43 * 60),
        SimTime(leak_day * 86_400 + 11 * 3600),
    );
    s = s
        .with(NetworkEvent::RouteLeak {
            leaker: landmarks.tm_asn,
            upstream: landmarks.gc_asn,
            // The incident leaked a large subset of the table, not all of
            // it — scope to ~35% of destinations.
            scope: LeakScope::SampleDests {
                permille: 350,
                salt: 0x4788,
            },
            start: ls,
            end: le,
        })
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::Between(landmarks.tm_asn, landmarks.gc_asn),
            start: ls,
            end: le,
            extra_util: 0.8,
        })
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::WithinAs(landmarks.gc_asn),
            start: ls,
            end: le,
            extra_util: 0.62,
        })
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::WithinAs(landmarks.level3_asn),
            start: ls,
            end: le,
            extra_util: 0.5,
        })
        .with(NetworkEvent::PacketLoss {
            selector: LinkSelector::SampleWithinAs {
                asn: landmarks.gc_asn,
                permille: 250,
                salt: 0x6C3A,
            },
            start: ls,
            end: le,
            loss: 0.55,
        });

    // --- DDoS ----------------------------------------------------------
    let a1 = (
        SimTime(ddos_day * 86_400 + 6 * 3600 + 50 * 60),
        SimTime(ddos_day * 86_400 + 9 * 3600 + 30 * 60),
    );
    let a2 = (
        SimTime((ddos_day + 1) * 86_400 + 5 * 3600 + 10 * 60),
        SimTime((ddos_day + 1) * 86_400 + 6 * 3600 + 10 * 60),
    );
    let both = ["AMS", "FRA", "LON", "MKC"];
    for (code, entry_ip) in &landmarks.kroot_entries {
        if both.contains(code) {
            for (start, end) in [a1, a2] {
                s = s.with(NetworkEvent::Congestion {
                    selector: LinkSelector::TouchingIp(*entry_ip),
                    start,
                    end,
                    extra_util: crate::ddos::ATTACK_EXTRA_UTIL,
                });
            }
        }
    }
    s
}

/// Build the combined case study.
pub fn case_study(seed: u64, scale: Scale) -> CaseStudy {
    let world = crate::world::World::build(seed, scale);
    let schedule = schedule(&world.landmarks, scale);
    CaseStudy::assemble(
        seed,
        scale,
        schedule,
        DetectorConfig::default(),
        window(scale),
        "2015-05-01T00:00Z (compressed calendar)",
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_contains_all_three_events() {
        let world = crate::world::World::build(1, Scale::Small);
        let s = schedule(&world.landmarks, Scale::Small);
        let kinds: Vec<&'static str> = s
            .events
            .iter()
            .map(|e| match e {
                NetworkEvent::IxpOutage { .. } => "ixp",
                NetworkEvent::RouteLeak { .. } => "leak",
                NetworkEvent::Congestion { .. } => "congestion",
                NetworkEvent::LinkFailure { .. } => "failure",
                NetworkEvent::PacketLoss { .. } => "loss",
            })
            .collect();
        assert!(kinds.contains(&"ixp"));
        assert!(kinds.contains(&"leak"));
        assert!(kinds.iter().filter(|k| **k == "congestion").count() >= 8);
    }

    #[test]
    fn events_are_disjoint_in_time() {
        let world = crate::world::World::build(1, Scale::Small);
        let s = schedule(&world.landmarks, Scale::Small);
        let mut windows: Vec<(u64, u64)> = s
            .events
            .iter()
            .map(|e| {
                let (a, b) = e.window();
                (a.0, b.0)
            })
            .collect();
        windows.sort_unstable();
        // The three event *days* must not overlap (congestion riders share
        // windows with their parent event, which is fine).
        let (d_ixp, d_leak, d_ddos) = days(Scale::Small);
        assert!(d_ixp < d_leak && d_leak < d_ddos);
        assert!(windows.last().unwrap().1 <= window(Scale::Small).1 * 3600);
    }
}
