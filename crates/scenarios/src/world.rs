//! The shared simulated Internet hosting every case study.
//!
//! One topology contains all the paper's protagonists so figures agree on
//! addresses and ASNs:
//!
//! * a tier-1 clique including **Level3** (AS3356) and **Cogent** (AS174 —
//!   whose ZRH→MUC backbone link is the Fig. 2 exemplar);
//! * **Global Crossing** (AS3549) as a large transit under Level3;
//! * **Telekom Malaysia** (AS4788), customer of Global Crossing — the §7.2
//!   leaker;
//! * three IXPs: an AMS-IX stand-in (**AS1200**, the §7.3 outage), a
//!   DE-CIX-like fabric in Frankfurt, and a LINX-like fabric in London;
//! * anycast root services: **K-root** (AS25152) with instances in
//!   Amsterdam, Frankfurt, London, Kansas City, St. Petersburg (via a
//!   Selectel-like host), Poznan, and Tokyo — plus F-root and I-root
//!   co-located at the same European IXPs (the Fig. 8 adjacency) and an
//!   L-root that stays clear of them;
//! * regional transits (including a Hurricane-Electric-like AS6939 peering
//!   widely at the IXPs) and a few dozen stub ASes hosting probes and
//!   anchor targets.

use pinpoint_core::aggregate::AsMapper;
use pinpoint_model::{Asn, IpLink, Prefix};
use pinpoint_netsim::geo::{city_by_code, CityId};
use pinpoint_netsim::ids::RouterId;
use pinpoint_netsim::topology::builder::TopologyBuilder;
use pinpoint_netsim::topology::{AsTier, CapacityClass, Topology};
use std::net::Ipv4Addr;

/// Scenario fidelity: trades probes/duration for runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale: few probes, short windows.
    Small,
    /// Figure-regeneration scale (approximates the paper's density).
    Paper,
}

impl Scale {
    /// Number of probes to deploy.
    pub fn probes(self) -> usize {
        match self {
            Scale::Small => 110,
            Scale::Paper => 260,
        }
    }

    /// Number of background stub ASes.
    pub fn stubs(self) -> usize {
        match self {
            Scale::Small => 30,
            Scale::Paper => 60,
        }
    }
}

/// Everything the figure harnesses need to find in the world.
#[derive(Debug, Clone)]
pub struct Landmarks {
    /// K-root service address (the 193.0.14.129 analogue).
    pub kroot_addr: Ipv4Addr,
    /// K-root operator ASN (AS25152).
    pub kroot_asn: Asn,
    /// F-root service address.
    pub froot_addr: Ipv4Addr,
    /// I-root service address.
    pub iroot_addr: Ipv4Addr,
    /// L-root service address (not co-located; control).
    pub lroot_addr: Ipv4Addr,
    /// AMS-IX-like peering LAN ASN (AS1200).
    pub amsix_asn: Asn,
    /// Level3 ASN (AS3356).
    pub level3_asn: Asn,
    /// Global Crossing ASN (AS3549).
    pub gc_asn: Asn,
    /// Telekom Malaysia ASN (AS4788).
    pub tm_asn: Asn,
    /// Cogent ASN (AS174).
    pub cogent_asn: Asn,
    /// The Fig. 2 link: Cogent ZRH → Cogent MUC (forward-path order).
    pub cogent_link: IpLink,
    /// Anchor behind Cogent MUC (steady-scenario target).
    pub anchor_muc: Ipv4Addr,
    /// All anchor addresses (anchoring measurement targets).
    pub anchors: Vec<Ipv4Addr>,
    /// K-root instance entry-router IPs, keyed by city code.
    pub kroot_entries: Vec<(&'static str, Ipv4Addr)>,
}

/// The built world.
#[derive(Debug)]
pub struct World {
    /// The topology.
    pub topology: Topology,
    /// Landmarks for harnesses.
    pub landmarks: Landmarks,
}

fn city(code: &str) -> CityId {
    city_by_code(code).expect("known city")
}

impl World {
    /// Build the world at a given scale.
    pub fn build(seed: u64, scale: Scale) -> World {
        let mut b = TopologyBuilder::new(seed);

        // ---------------- IXPs ------------------------------------------
        let amsix = b.add_ixp(Asn(1200), "ams-ix", city("AMS"));
        let decix = b.add_ixp(Asn(6695), "de-cix", city("FRA"));
        let linx = b.add_ixp(Asn(5459), "linx", city("LON"));
        let ixps = [(amsix, "AMS"), (decix, "FRA"), (linx, "LON")];

        // ---------------- Tier-1 clique ---------------------------------
        let level3 = b.add_as(Asn(3356), "level3", AsTier::Tier1);
        for c in [
            "LON", "NYC", "WDC", "MIA", "CHI", "DAL", "LAX", "AMS", "FRA", "PAR", "VIE", "DUB",
            "BER",
        ] {
            b.add_router(level3, city(c));
        }
        b.mesh_intra_as(level3, 0.15);

        let cogent = b.add_as(Asn(174), "cogent", AsTier::Tier1);
        for c in ["ZRH", "MUC", "NYC", "SJC", "TYO"] {
            b.add_router(cogent, city(c));
        }
        // Chain by longitude: SJC–NYC–ZRH–MUC–TYO (+ closing ring). No
        // chords, so European/US traffic to anything behind MUC crosses
        // ZRH→MUC — the Fig. 2 link.
        b.mesh_intra_as(cogent, 0.0);

        let gtt = b.add_as(Asn(3257), "gtt", AsTier::Tier1);
        for c in ["FRA", "LON", "NYC", "SEA", "SIN", "GRU"] {
            b.add_router(gtt, city(c));
        }
        b.mesh_intra_as(gtt, 0.2);

        let ntt = b.add_as(Asn(2914), "ntt", AsTier::Tier1);
        for c in ["TYO", "OSA", "HKG", "SIN", "LAX", "LON", "BOM"] {
            b.add_router(ntt, city(c));
        }
        b.mesh_intra_as(ntt, 0.2);

        let tier1s = [level3, cogent, gtt, ntt];
        for i in 0..tier1s.len() {
            for j in (i + 1)..tier1s.len() {
                b.peer_private(tier1s[i], tier1s[j], 2, CapacityClass::Backbone);
            }
        }

        // ---------------- Global Crossing (AS3549) ----------------------
        let gc = b.add_as(Asn(3549), "global-crossing", AsTier::Transit);
        for c in [
            "LON", "AMS", "FRA", "NYC", "WDC", "MIA", "LAX", "HKG", "SIN",
        ] {
            b.add_router(gc, city(c));
        }
        b.mesh_intra_as(gc, 0.2);
        b.provider_customer(level3, gc, 3);
        b.peer_private(gc, gtt, 1, CapacityClass::Standard);
        b.peer_private(gc, ntt, 1, CapacityClass::Standard);

        // ---------------- Regional transits ------------------------------
        let he = b.add_as(Asn(6939), "hurricane", AsTier::Transit);
        for c in ["FRA", "AMS", "LON", "NYC", "SJC", "SEA"] {
            b.add_router(he, city(c));
        }
        b.mesh_intra_as(he, 0.3);
        b.provider_customer(gtt, he, 2);

        let selectel = b.add_as(Asn(49505), "selectel", AsTier::Transit);
        b.add_router(selectel, city("LED"));
        b.add_router(selectel, city("MOW"));
        b.mesh_intra_as(selectel, 0.0);
        b.provider_customer(cogent, selectel, 1);
        b.provider_customer(ntt, selectel, 1);

        let pol = b.add_as(Asn(8501), "pol-transit", AsTier::Transit);
        b.add_router(pol, city("POZ"));
        b.add_router(pol, city("WAW"));
        b.mesh_intra_as(pol, 0.0);
        b.provider_customer(gtt, pol, 1);
        b.provider_customer(level3, pol, 1);

        let tm = b.add_as(Asn(4788), "telekom-malaysia", AsTier::Transit);
        b.add_router(tm, city("KUL"));
        b.add_router(tm, city("SIN"));
        b.mesh_intra_as(tm, 0.0);
        b.provider_customer(gc, tm, 1); // the leak's upstream
        b.provider_customer(ntt, tm, 1);

        let us_transit = b.add_as(Asn(7922), "us-transit", AsTier::Transit);
        for c in ["MKC", "CHI", "DAL", "NYC"] {
            b.add_router(us_transit, city(c));
        }
        b.mesh_intra_as(us_transit, 0.2);
        b.provider_customer(level3, us_transit, 1);
        b.provider_customer(cogent, us_transit, 1);

        let eu_transit = b.add_as(Asn(1299), "eu-transit", AsTier::Transit);
        for c in ["STO", "AMS", "FRA", "LON", "MAD", "MIL"] {
            b.add_router(eu_transit, city(c));
        }
        b.mesh_intra_as(eu_transit, 0.2);
        b.provider_customer(level3, eu_transit, 1);
        b.provider_customer(gtt, eu_transit, 1);

        let ap_transit = b.add_as(Asn(4826), "ap-transit", AsTier::Transit);
        for c in ["SIN", "HKG", "TYO", "SYD"] {
            b.add_router(ap_transit, city(c));
        }
        b.mesh_intra_as(ap_transit, 0.2);
        b.provider_customer(ntt, ap_transit, 1);

        let transits = [he, eu_transit, us_transit, ap_transit, gc];

        // Transit peering at the IXPs.
        for (ixp, code) in ixps {
            let c = city(code);
            for t in [he, eu_transit, gc] {
                b.join_ixp(t, ixp, c);
            }
            b.peer_via_ixp(he, eu_transit, ixp, c);
            b.peer_via_ixp(he, gc, ixp, c);
            b.peer_via_ixp(eu_transit, gc, ixp, c);
        }

        // Dutch ISP cluster: dense bilateral peering at the AMS-IX
        // stand-in, so the §7.3 outage silences many LAN next hops at once
        // (the paper reports 770 unresponsive LAN pairs).
        let ams = city("AMS");
        let mut nl_isps = Vec::new();
        for i in 0..4u32 {
            let isp = b.add_as(Asn(64550 + i), &format!("nl-isp-{i}"), AsTier::Transit);
            b.add_router(isp, ams);
            b.provider_customer(if i % 2 == 0 { level3 } else { gtt }, isp, 1);
            nl_isps.push(isp);
        }
        for i in 0..nl_isps.len() {
            b.join_ixp(nl_isps[i], amsix, ams);
            for j in (i + 1)..nl_isps.len() {
                b.peer_via_ixp(nl_isps[i], nl_isps[j], amsix, ams);
            }
            for t in [he, eu_transit, gc] {
                b.peer_via_ixp(nl_isps[i], t, amsix, ams);
            }
        }

        // ---------------- Anycast root services --------------------------
        let kroot_ops = b.add_as(Asn(25152), "k-root-ops", AsTier::AnycastOp);
        let kroot = b.add_anycast_service(kroot_ops, "K-root");
        let mut kroot_entries = Vec::new();
        // IXP-hosted instances peer with the local members.
        for (ixp, code) in [(amsix, "AMS"), (decix, "FRA"), (linx, "LON")] {
            let (entry, _server) = b.add_anycast_instance(kroot, city(code));
            for member in [he, eu_transit, gc] {
                b.peer_via_ixp(kroot_ops, member, ixp, city(code));
            }
            if ixp == amsix {
                for &isp in &nl_isps {
                    b.peer_via_ixp(kroot_ops, isp, ixp, city(code));
                }
            }
            let ip = b.topology().router(entry).ip;
            kroot_entries.push((leak_city_code(code), ip));
        }
        // Transit-hosted instances.
        for (host, code) in [
            (us_transit, "MKC"),
            (selectel, "LED"),
            (pol, "POZ"),
            (ap_transit, "TYO"),
        ] {
            let (entry, _server) = b.add_anycast_instance(kroot, city(code));
            b.provider_customer(host, kroot_ops, 1);
            let ip = b.topology().router(entry).ip;
            kroot_entries.push((leak_city_code(code), ip));
        }

        let froot_ops = b.add_as(Asn(3557), "f-root-ops", AsTier::AnycastOp);
        let froot = b.add_anycast_service(froot_ops, "F-root");
        for (ixp, code) in [(amsix, "AMS"), (decix, "FRA")] {
            b.add_anycast_instance(froot, city(code));
            for member in [he, eu_transit] {
                b.peer_via_ixp(froot_ops, member, ixp, city(code));
            }
        }
        b.add_anycast_instance(froot, city("SJC"));
        b.provider_customer(cogent, froot_ops, 1);

        let iroot_ops = b.add_as(Asn(29216), "i-root-ops", AsTier::AnycastOp);
        let iroot = b.add_anycast_service(iroot_ops, "I-root");
        for (ixp, code) in [(amsix, "AMS"), (linx, "LON")] {
            b.add_anycast_instance(iroot, city(code));
            for member in [he, gc] {
                b.peer_via_ixp(iroot_ops, member, ixp, city(code));
            }
        }
        b.add_anycast_instance(iroot, city("STO"));
        b.provider_customer(eu_transit, iroot_ops, 1);

        // L-root: away from the attacked IXPs (control group, §7.1 "no
        // significant delay change for root servers A, D, G, L, and M").
        let lroot_ops = b.add_as(Asn(20144), "l-root-ops", AsTier::AnycastOp);
        let lroot = b.add_anycast_service(lroot_ops, "L-root");
        for code in ["LAX", "GRU", "SYD"] {
            b.add_anycast_instance(lroot, city(code));
        }
        b.provider_customer(ntt, lroot_ops, 2);
        b.provider_customer(us_transit, lroot_ops, 1);

        // ---------------- Stubs, probes' homes, anchors ------------------
        let stub_cities = [
            "AMS", "LON", "FRA", "PAR", "ZRH", "VIE", "STO", "WAW", "MOW", "LED", "MAD", "MIL",
            "DUB", "BER", "NYC", "WDC", "MIA", "CHI", "DAL", "LAX", "SJC", "SEA", "YYZ", "GRU",
            "EZE", "TYO", "OSA", "SEL", "HKG", "SIN", "KUL", "SYD", "BOM", "DXB", "JNB", "NBO",
            "CAI", "POZ", "MKC", "MUC",
        ];
        let n_stubs = scale.stubs();
        let mut anchors = Vec::new();
        let mut anchor_muc = None;
        for i in 0..n_stubs {
            let code = stub_cities[i % stub_cities.len()];
            let asn = Asn(64600 + i as u32);
            let stub = b.add_as(asn, &format!("edge-{code}-{i}"), AsTier::Stub);
            let r = b.add_router(stub, city(code));
            // Home transit: regionally plausible, deterministic.
            let provider = transits[i % transits.len()];
            b.provider_customer(provider, stub, 1);
            if i % 3 == 0 {
                let second = transits[(i + 2) % transits.len()];
                if second != provider {
                    b.provider_customer(second, stub, 1);
                }
            }
            // A few stubs host anchors.
            if i % 7 == 3 {
                let host = b.add_host(r, &format!("anchor-{code}-{i}"));
                anchors.push(b.topology().router(host).ip);
            }
            // Eyeball stubs inside the regional instance catchments, so the
            // LED / POZ / TYO instances are observed from ≥3 ASes (BGP
            // prefers customer routes, so only traffic originating under
            // those hosts reaches the regional instances).
            if i < 9 {
                let (host, code) = [
                    (selectel, "LED"),
                    (selectel, "MOW"),
                    (selectel, "LED"),
                    (pol, "POZ"),
                    (pol, "WAW"),
                    (pol, "POZ"),
                    (ap_transit, "TYO"),
                    (ap_transit, "OSA"),
                    (ap_transit, "SEL"),
                ][i];
                let eyeball = b.add_as(
                    Asn(64800 + i as u32),
                    &format!("edge-eye-{i}"),
                    AsTier::Stub,
                );
                b.add_router(eyeball, city(code));
                b.provider_customer(host, eyeball, 1);
            }
            // A handful of stubs homed on the Dutch cluster, so probe
            // traffic actually crosses the AMS-IX LAN.
            if i % 5 == 1 {
                let nl_stub =
                    b.add_as(Asn(64700 + i as u32), &format!("edge-nl-{i}"), AsTier::Stub);
                b.add_router(nl_stub, city("AMS"));
                b.provider_customer(nl_isps[i % nl_isps.len()], nl_stub, 1);
            }
            // The steady-scenario anchor: a stub behind Cogent MUC.
            if i == 0 {
                let muc_stub = b.add_as(Asn(64599), "edge-muc-anchor", AsTier::Stub);
                let mr = b.add_router(muc_stub, city("MUC"));
                b.provider_customer(cogent, muc_stub, 1);
                let host = b.add_host(mr, "anchor-muc");
                let ip = b.topology().router(host).ip;
                anchors.push(ip);
                anchor_muc = Some(ip);
            }
        }

        // Identify the Fig. 2 link before consuming the builder.
        let topo_ref = b.topology();
        let cogent_as = topo_ref.as_id(Asn(174)).unwrap();
        let zrh = topo_ref
            .asn(cogent_as)
            .routers
            .iter()
            .find(|&&r| topo_ref.router(r).city == city("ZRH"))
            .copied()
            .unwrap();
        let muc = topo_ref
            .asn(cogent_as)
            .routers
            .iter()
            .find(|&&r| topo_ref.router(r).city == city("MUC"))
            .copied()
            .unwrap();
        let cogent_link = IpLink::new(topo_ref.router(zrh).ip, topo_ref.router(muc).ip);
        let svc_addr = |idx: usize| topo_ref.services[idx].addr;
        let landmarks = Landmarks {
            kroot_addr: svc_addr(kroot),
            kroot_asn: Asn(25152),
            froot_addr: svc_addr(froot),
            iroot_addr: svc_addr(iroot),
            lroot_addr: svc_addr(lroot),
            amsix_asn: Asn(1200),
            level3_asn: Asn(3356),
            gc_asn: Asn(3549),
            tm_asn: Asn(4788),
            cogent_asn: Asn(174),
            cogent_link,
            anchor_muc: anchor_muc.expect("anchor-muc built"),
            anchors,
            kroot_entries,
        };

        World {
            topology: b.build(),
            landmarks,
        }
    }

    /// Ground-truth IP→AS mapper for §6 aggregation.
    pub fn mapper(&self) -> AsMapper {
        AsMapper::from_prefixes(self.prefix_pairs())
    }

    /// `(prefix, ASN)` pairs from the topology's ground truth.
    pub fn prefix_pairs(&self) -> Vec<(Prefix, Asn)> {
        self.topology
            .prefixes
            .iter()
            .into_iter()
            .map(|(p, as_id)| (p, self.topology.asn(*as_id).asn))
            .collect()
    }

    /// Router owning an entry IP (test helper).
    pub fn router_by_ip(&self, ip: Ipv4Addr) -> Option<RouterId> {
        self.topology.router_by_ip.get(&ip).copied()
    }
}

fn leak_city_code(code: &str) -> &'static str {
    // Map to 'static strs for the landmark table.
    match code {
        "AMS" => "AMS",
        "FRA" => "FRA",
        "LON" => "LON",
        "MKC" => "MKC",
        "LED" => "LED",
        "POZ" => "POZ",
        "TYO" => "TYO",
        other => panic!("unexpected instance city {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_validates() {
        let w = World::build(2015, Scale::Small);
        assert!(w.topology.validate().is_empty());
        assert_eq!(w.topology.services.len(), 4);
        assert!(w.landmarks.anchors.len() >= 4);
        assert_eq!(w.landmarks.kroot_entries.len(), 7);
    }

    #[test]
    fn named_protagonists_exist() {
        let w = World::build(2015, Scale::Small);
        for asn in [174, 3356, 3549, 4788, 1200, 25152, 6939, 49505] {
            assert!(
                w.topology.as_id(Asn(asn)).is_some(),
                "AS{asn} missing from world"
            );
        }
    }

    #[test]
    fn cogent_link_is_intra_cogent() {
        let w = World::build(2015, Scale::Small);
        let l = w.landmarks.cogent_link;
        let near = w.topology.owner_of(l.near).unwrap();
        let far = w.topology.owner_of(l.far).unwrap();
        assert_eq!(w.topology.asn(near).asn, Asn(174));
        assert_eq!(w.topology.asn(far).asn, Asn(174));
        assert_ne!(l.near, l.far);
    }

    #[test]
    fn kroot_address_maps_to_operator_as() {
        let w = World::build(2015, Scale::Small);
        let mapper = w.mapper();
        assert_eq!(mapper.asn_of(w.landmarks.kroot_addr), Some(Asn(25152)));
        // The AMS entry router's LAN address belongs to the IXP, its
        // primary address to AS25152 — the §7.3 attribution mechanics.
        let (_, entry_ip) = w
            .landmarks
            .kroot_entries
            .iter()
            .find(|(c, _)| *c == "AMS")
            .unwrap();
        assert_eq!(mapper.asn_of(*entry_ip), Some(Asn(25152)));
    }

    #[test]
    fn world_is_deterministic() {
        let a = World::build(7, Scale::Small);
        let b = World::build(7, Scale::Small);
        assert_eq!(a.landmarks.kroot_addr, b.landmarks.kroot_addr);
        assert_eq!(a.landmarks.cogent_link, b.landmarks.cogent_link);
        assert_eq!(a.topology.routers.len(), b.topology.routers.len());
        assert_eq!(a.topology.links.len(), b.topology.links.len());
    }

    #[test]
    fn paper_scale_is_larger() {
        let s = World::build(1, Scale::Small);
        let p = World::build(1, Scale::Paper);
        assert!(p.topology.ases.len() > s.topology.ases.len());
    }
}
