//! Case-study assembly and execution.
//!
//! A [`CaseStudy`] bundles the platform (simulator + probes + measurement
//! schedules), the §6 IP→AS mapper, the detector configuration, and the
//! analysis window. [`run`] drives the full pipeline bin by bin and
//! collects the per-bin reports.

use crate::world::{Landmarks, Scale, World};
use pinpoint_atlas::{deploy_probes, Platform};
use pinpoint_core::aggregate::AsMapper;
use pinpoint_core::pipeline::{Analyzer, BinReport};
use pinpoint_core::session::{drive, AnalysisSession};
use pinpoint_core::DetectorConfig;
use pinpoint_model::{Asn, BinId};
use pinpoint_netsim::{EventSchedule, Network};

/// A fully assembled scenario.
#[derive(Debug)]
pub struct CaseStudy {
    /// The measurement platform (owns the network engine).
    pub platform: Platform,
    /// Ground-truth IP→AS mapper.
    pub mapper: AsMapper,
    /// Detector configuration to use.
    pub cfg: DetectorConfig,
    /// Landmarks of the shared world.
    pub landmarks: Landmarks,
    /// First analysis bin (inclusive).
    pub start_bin: BinId,
    /// Last analysis bin (exclusive).
    pub end_bin: BinId,
    /// Human-readable label of what bin 0 corresponds to.
    pub epoch_label: &'static str,
}

impl CaseStudy {
    /// Assemble a case study over the shared world.
    ///
    /// `anchor_strides` controls how many probes participate in anchoring
    /// measurements (1 = all probes, n = every n-th probe).
    pub fn assemble(
        seed: u64,
        scale: Scale,
        schedule: EventSchedule,
        cfg: DetectorConfig,
        bins: (u64, u64),
        epoch_label: &'static str,
        anchor_stride: usize,
    ) -> CaseStudy {
        let world = World::build(seed, scale);
        let mapper = world.mapper();
        let landmarks = world.landmarks.clone();
        let net = Network::new(world.topology, seed, &schedule);
        let probes = deploy_probes(net.topology(), scale.probes(), seed);
        let mut platform = Platform::new(net, probes);
        platform.add_builtin_mesh();
        let anchors = landmarks.anchors.clone();
        platform.add_anchoring(&anchors, anchor_stride);
        CaseStudy {
            platform,
            mapper,
            cfg,
            landmarks,
            start_bin: BinId(bins.0),
            end_bin: BinId(bins.1),
            epoch_label,
        }
    }

    /// A fresh analyzer for this case study, with the world's named ASes
    /// pre-registered for magnitude tracking.
    pub fn analyzer(&self) -> Analyzer {
        let mut a = Analyzer::new(self.cfg.clone(), self.mapper.clone());
        a.register_ases([
            self.landmarks.kroot_asn,
            self.landmarks.amsix_asn,
            self.landmarks.level3_asn,
            self.landmarks.gc_asn,
            self.landmarks.tm_asn,
            self.landmarks.cogent_asn,
        ]);
        a
    }
}

/// Summary counters of a run (Table A inputs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Bins processed.
    pub bins: usize,
    /// Traceroutes consumed.
    pub records: usize,
    /// Total delay alarms.
    pub delay_alarms: usize,
    /// Total forwarding alarms.
    pub forwarding_alarms: usize,
    /// Links tracked at the end.
    pub tracked_links: usize,
    /// Forwarding models tracked at the end.
    pub tracked_patterns: usize,
    /// Mean next hops per forwarding model at the end.
    pub mean_next_hops: f64,
}

/// Run the full pipeline over the case study's window.
///
/// `observer` is called with each bin's report (figure harnesses extract
/// series there); pass `|_|{}` when only the summary matters.
pub fn run(
    case: &CaseStudy,
    analyzer: &mut Analyzer,
    mut observer: impl FnMut(&BinReport),
) -> RunSummary {
    // A depth-1 session is the strictly serial schedule: every push is
    // the historical `process_bin` batch path and reports immediately.
    let mut summary = RunSummary::default();
    {
        let mut session = analyzer.session(1);
        drive(
            &mut session,
            case.platform.stream(case.start_bin, case.end_bin),
            |report| {
                fold_report(&mut summary, &report);
                observer(&report);
            },
        );
    }
    close_summary(&mut summary, analyzer);
    summary
}

/// Run the full pipeline over the case study's window in streaming mode:
/// each bin's records arrive as arrival-ordered chunks of `chunk_records`
/// ([`Platform::collect_bin_chunked`]) and are fed incrementally through
/// `Analyzer::begin_bin` / `ingest` / `finish_bin` — the §8 deployment
/// shape, where results trickle in from the Atlas stream instead of
/// materializing per bin. The chunk-order determinism of the ingestion
/// front-end makes the reports (and so the summary) byte-identical to
/// [`run`] for any chunk size.
pub fn run_streamed(
    case: &CaseStudy,
    analyzer: &mut Analyzer,
    chunk_records: usize,
    mut observer: impl FnMut(&BinReport),
) -> RunSummary {
    let mut summary = RunSummary::default();
    {
        let mut session = analyzer.session(1);
        for (bin, chunks) in
            case.platform
                .stream_chunked(case.start_bin, case.end_bin, chunk_records)
        {
            session.begin_bin(bin);
            for chunk in &chunks {
                session.ingest(chunk);
            }
            if let Some(report) = session.finish_bin() {
                fold_report(&mut summary, &report);
                observer(&report);
            }
        }
        if let Some(report) = session.flush() {
            fold_report(&mut summary, &report);
            observer(&report);
        }
    }
    close_summary(&mut summary, analyzer);
    summary
}

/// Run the full pipeline over the case study's window on the cross-bin
/// pipelined executor: while bin *n*'s shard jobs run, bin *n+1*'s
/// scatter chunks run on the same worker herd
/// (`Analyzer::session` — `depth` 0 = the analyzer's configured
/// `pipeline_depth`, 1 = serial, 2 = overlapped). `observer` still sees
/// every report strictly in bin order; the whole run — reports, summary,
/// tracked state — is byte-identical to [`run`] at every depth, which is
/// the executor's determinism contract (`tests/pipeline_overlap_parity.rs`).
pub fn run_pipelined(
    case: &CaseStudy,
    analyzer: &mut Analyzer,
    depth: usize,
    mut observer: impl FnMut(&BinReport),
) -> RunSummary {
    let mut summary = RunSummary::default();
    {
        let mut session = analyzer.session(depth);
        drive(
            &mut session,
            case.platform.stream(case.start_bin, case.end_bin),
            |report| {
                fold_report(&mut summary, &report);
                observer(&report);
            },
        );
    }
    close_summary(&mut summary, analyzer);
    summary
}

fn fold_report(summary: &mut RunSummary, report: &BinReport) {
    summary.bins += 1;
    summary.records += report.records;
    summary.delay_alarms += report.delay_alarms.len();
    summary.forwarding_alarms += report.forwarding_alarms.len();
}

fn close_summary(summary: &mut RunSummary, analyzer: &Analyzer) {
    summary.tracked_links = analyzer.tracked_links();
    summary.tracked_patterns = analyzer.tracked_patterns();
    summary.mean_next_hops = analyzer.mean_next_hops();
}

/// Convenience: the ASes whose magnitudes the figures plot.
pub fn figure_ases(landmarks: &Landmarks) -> Vec<Asn> {
    vec![
        landmarks.kroot_asn,
        landmarks.amsix_asn,
        landmarks.level3_asn,
        landmarks.gc_asn,
        landmarks.tm_asn,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_and_run_one_bin() {
        let case = CaseStudy::assemble(
            3,
            Scale::Small,
            EventSchedule::new(),
            DetectorConfig::fast_test(),
            (0, 2),
            "test-epoch",
            4,
        );
        let mut analyzer = case.analyzer();
        let mut seen = 0;
        let summary = run(&case, &mut analyzer, |r| {
            assert!(r.records > 0);
            seen += 1;
        });
        assert_eq!(seen, 2);
        assert_eq!(summary.bins, 2);
        assert!(summary.records > 100, "records {}", summary.records);
        assert!(
            summary.tracked_links > 10,
            "links {}",
            summary.tracked_links
        );
        assert!(summary.tracked_patterns > 10);
    }

    #[test]
    fn pipelined_run_matches_batch_run() {
        // The cross-bin pipelined executor must be invisible in the
        // summary and in every observed report, at every depth.
        let case = CaseStudy::assemble(
            11,
            Scale::Small,
            EventSchedule::new(),
            DetectorConfig::fast_test(),
            (0, 3),
            "test-epoch",
            4,
        );
        let mut batch = case.analyzer();
        let mut want_bins = Vec::new();
        let want = run(&case, &mut batch, |r| want_bins.push(r.bin));
        for depth in [0usize, 1, 2] {
            let mut pipelined = case.analyzer();
            let mut got_bins = Vec::new();
            let got = run_pipelined(&case, &mut pipelined, depth, |r| got_bins.push(r.bin));
            assert_eq!(got, want, "depth={depth}");
            assert_eq!(got_bins, want_bins, "depth={depth}: bin order");
        }
    }

    #[test]
    fn streamed_run_matches_batch_run() {
        // Chunked incremental ingestion must be invisible: same alarms,
        // same tracked state, same summary as the batch path, for any
        // chunk size — including one smaller than a single bin's feed.
        let case = CaseStudy::assemble(
            5,
            Scale::Small,
            EventSchedule::new(),
            DetectorConfig::fast_test(),
            (0, 2),
            "test-epoch",
            4,
        );
        let mut batch = case.analyzer();
        let want = run(&case, &mut batch, |_| {});
        for chunk_records in [17usize, 1000] {
            let mut streamed = case.analyzer();
            let got = run_streamed(&case, &mut streamed, chunk_records, |_| {});
            assert_eq!(got, want, "chunk_records={chunk_records}");
        }
    }

    #[test]
    fn builtin_mesh_targets_all_services() {
        let case = CaseStudy::assemble(
            3,
            Scale::Small,
            EventSchedule::new(),
            DetectorConfig::fast_test(),
            (0, 1),
            "test-epoch",
            4,
        );
        // 4 services + anchors.
        let n_builtin = case
            .platform
            .measurements()
            .iter()
            .filter(|m| m.kind == pinpoint_atlas::MeasurementKind::Builtin)
            .count();
        assert_eq!(n_builtin, 4);
        let n_anchoring = case
            .platform
            .measurements()
            .iter()
            .filter(|m| m.kind == pinpoint_atlas::MeasurementKind::Anchoring)
            .count();
        assert_eq!(n_anchoring, case.landmarks.anchors.len());
    }
}
