//! Multi-stream AMS-IX outage: one event, three vantage streams.
//!
//! The §8 deployment never sees "the" traceroute feed — it sees many
//! concurrent measurement streams (anchor meshes, builtins, user-defined
//! measurements), each a partial view of the same network. This scenario
//! replays the §7.3 AMS-IX outage through a [`StreamRouter`] fleet of
//! three streams sharing one platform and one engine pool:
//!
//! * `anchor-mesh-a` / `anchor-mesh-b` — the anchoring measurements split
//!   into two disjoint meshes (even/odd measurement ids), like two
//!   independently-scheduled anchor campaigns;
//! * `user-defined` — one user-defined traceroute measurement from a thin
//!   probe subset towards the K-root service.
//!
//! Each stream alone sees only a slice of the vanished peering-LAN
//! next-hop pairs, so its own AS1200 forwarding magnitude dips weakly; the
//! merged fleet view sums the per-stream severities first and is the only
//! one to cross the reporting threshold cleanly — the cross-stream
//! corroboration the fleet exists for.

use crate::ixp;
use crate::world::{Landmarks, Scale, World};
use pinpoint_atlas::{deploy_probes, Measurement, MeasurementKind, Platform};
use pinpoint_core::aggregate::AsMapper;
use pinpoint_core::{Analyzer, DetectorConfig, StreamRouter};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{BinId, MeasurementId};
use pinpoint_netsim::Network;
use std::collections::BTreeSet;

/// One stream of the fleet: a label and the measurement ids it analyzes.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream name (becomes the router label).
    pub label: &'static str,
    /// The measurements whose records feed this stream.
    pub msm_ids: BTreeSet<MeasurementId>,
}

/// The assembled multi-stream case: one platform, one event, a fleet of
/// disjoint measurement streams over it.
#[derive(Debug)]
pub struct MultiStreamCase {
    /// The measurement platform (owns the network engine).
    pub platform: Platform,
    /// The stream partition, in fleet order.
    pub streams: Vec<StreamSpec>,
    /// Ground-truth IP→AS mapper.
    pub mapper: AsMapper,
    /// Detector configuration (shared by every stream's analyzer).
    pub cfg: DetectorConfig,
    /// Landmarks of the shared world.
    pub landmarks: Landmarks,
    /// First analysis bin (inclusive).
    pub start_bin: BinId,
    /// Last analysis bin (exclusive).
    pub end_bin: BinId,
}

impl MultiStreamCase {
    /// A fresh fleet router for this case: one analyzer per stream, the
    /// world's named ASes pre-registered everywhere, threads taken from
    /// the configuration.
    pub fn router(&self) -> StreamRouter {
        let mut router = StreamRouter::with_magnitude_window(self.cfg.magnitude_window_bins);
        for spec in &self.streams {
            router.add_stream(
                spec.label,
                Analyzer::new(self.cfg.clone(), self.mapper.clone()),
            );
        }
        router.set_threads(self.cfg.threads);
        router.register_ases([
            self.landmarks.kroot_asn,
            self.landmarks.amsix_asn,
            self.landmarks.level3_asn,
            self.landmarks.gc_asn,
            self.landmarks.tm_asn,
            self.landmarks.cogent_asn,
        ]);
        router
    }

    /// Collect one bin, partitioned into per-stream feeds (fleet order).
    pub fn collect_bin(&self, bin: BinId) -> Vec<Vec<TracerouteRecord>> {
        self.streams
            .iter()
            .map(|spec| {
                self.platform
                    .collect_bin_where(bin, |m| spec.msm_ids.contains(&m.id))
            })
            .collect()
    }
}

/// Build the three-stream AMS-IX outage case.
pub fn case_study(seed: u64, scale: Scale) -> MultiStreamCase {
    let world = World::build(seed, scale);
    let mapper = world.mapper();
    let landmarks = world.landmarks.clone();
    let schedule = ixp::schedule(landmarks.amsix_asn);
    let net = Network::new(world.topology, seed, &schedule);
    let probes = deploy_probes(net.topology(), scale.probes(), seed);
    let mut platform = Platform::new(net, probes);

    // The anchoring campaign: every 2nd probe towards every anchor.
    platform.add_anchoring(&landmarks.anchors, 2);
    // One user-defined measurement: every 5th probe towards K-root.
    let user_probes: Vec<_> = platform
        .probes()
        .probes
        .iter()
        .step_by(5)
        .map(|p| p.id)
        .collect();
    platform.add_measurement(Measurement::new(
        MeasurementId(9000),
        MeasurementKind::UserDefined,
        landmarks.kroot_addr,
        user_probes,
    ));

    // Partition: anchoring splits into two meshes by id parity, the
    // user-defined measurement is its own stream.
    let (mesh_a, mesh_b): (BTreeSet<_>, BTreeSet<_>) = platform
        .measurements()
        .iter()
        .filter(|m| m.kind == MeasurementKind::Anchoring)
        .map(|m| m.id)
        .partition(|id| id.0 % 2 == 0);
    let streams = vec![
        StreamSpec {
            label: "anchor-mesh-a",
            msm_ids: mesh_a,
        },
        StreamSpec {
            label: "anchor-mesh-b",
            msm_ids: mesh_b,
        },
        StreamSpec {
            label: "user-defined",
            msm_ids: BTreeSet::from([MeasurementId(9000)]),
        },
    ];

    let bins = ixp::window(scale);
    MultiStreamCase {
        platform,
        streams,
        mapper,
        cfg: DetectorConfig::default(),
        landmarks,
        start_bin: BinId(bins.0),
        end_bin: BinId(bins.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_core::aggregate::Element;
    use pinpoint_core::{AnalysisSession, EventTable};

    #[test]
    fn streams_partition_the_measurement_set() {
        let case = case_study(2015, Scale::Small);
        assert_eq!(case.streams.len(), 3);
        let mut seen = BTreeSet::new();
        let mut total = 0usize;
        for spec in &case.streams {
            assert!(!spec.msm_ids.is_empty(), "{} is empty", spec.label);
            total += spec.msm_ids.len();
            seen.extend(spec.msm_ids.iter().copied());
        }
        assert_eq!(seen.len(), total, "streams overlap");
        assert_eq!(
            seen.len(),
            case.platform.measurements().len(),
            "streams must cover every measurement"
        );
        // And the partitioned bin loses no records.
        let feeds = case.collect_bin(BinId(1));
        let merged: usize = feeds.iter().map(Vec::len).sum();
        assert_eq!(merged, case.platform.collect_bin(BinId(1)).len());
        assert!(feeds.iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn only_the_merged_view_crosses_the_threshold() {
        // The scenario's reason to exist: each stream sees a slice of the
        // outage, only the fleet view crosses the alarm threshold cleanly.
        let mut case = case_study(2015, Scale::Small);
        case.cfg = DetectorConfig::fast_test();
        let amsix = case.landmarks.amsix_asn;
        let mut router = case.router();
        let (outage_start, outage_end) = ixp::outage_bins();

        let mut merged_min = f64::INFINITY;
        let mut stream_min = vec![f64::INFINITY; case.streams.len()];
        let mut session = router.session(1);
        for bin in outage_start - 4..outage_end + 2 {
            let feeds = case.collect_bin(BinId(bin));
            let report = session
                .push_bin(BinId(bin), &feeds)
                .expect("depth 1 reports immediately");
            if bin < outage_start {
                continue;
            }
            if let Some(m) = report.magnitude(amsix) {
                merged_min = merged_min.min(m.forwarding_magnitude);
            }
            for (i, sr) in report.streams.iter().enumerate() {
                if let Some(m) = sr.magnitude(amsix) {
                    stream_min[i] = stream_min[i].min(m.forwarding_magnitude);
                }
            }
        }

        const THRESHOLD: f64 = -4.0;
        assert!(
            merged_min < THRESHOLD,
            "merged view must cross {THRESHOLD}: {merged_min}"
        );
        for (i, &m) in stream_min.iter().enumerate() {
            assert!(
                merged_min < m,
                "merged ({merged_min}) must dip below stream {} ({m})",
                case.streams[i].label
            );
            assert!(
                m > THRESHOLD,
                "stream {} alone must NOT cross the threshold: {m}",
                case.streams[i].label
            );
        }
    }

    #[test]
    fn outage_becomes_one_fleet_event_blaming_the_ixp() {
        // The tentpole acceptance: the three partial views of the AMS-IX
        // outage collapse into exactly ONE fleet event, blamed on the
        // IXP's AS, emitted incrementally while the outage is live.
        let mut case = case_study(2015, Scale::Small);
        case.cfg = DetectorConfig::fast_test();
        let amsix = case.landmarks.amsix_asn;
        let mut router = case.router();
        let (outage_start, outage_end) = ixp::outage_bins();

        let mut table = EventTable::new();
        let mut first_emission = None;
        let mut session = router.session(1);
        for bin in outage_start - 4..outage_end + 2 {
            let feeds = case.collect_bin(BinId(bin));
            let report = session
                .push_bin(BinId(bin), &feeds)
                .expect("depth 1 reports immediately");
            if !report.events.is_empty() && first_emission.is_none() {
                first_emission = Some(bin);
            }
            table.absorb(&report.events);
        }

        let events = table.ranked();
        assert_eq!(
            events.len(),
            1,
            "the outage must collapse into exactly one fleet event: {events:#?}"
        );
        let event = &events[0];
        assert_eq!(
            event.blamed,
            Element::As(amsix),
            "the IXP must be the blamed element: {event}"
        );
        assert!(event.asns.contains(&amsix));
        assert!(
            event.streams.len() >= 2,
            "the event must be corroborated across streams: {:?}",
            event.streams
        );
        let first = first_emission.expect("the event must be emitted incrementally");
        assert!(
            (outage_start..=outage_end).contains(&first),
            "first emission at bin {first}, outage is {outage_start}..={outage_end}"
        );
        // The session's post-hoc view is the same ranked table.
        assert_eq!(session.events(), events);
    }
}
