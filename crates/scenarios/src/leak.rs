//! Telekom Malaysia BGP route leak (§7.2, Fig. 9–12).
//!
//! On 2015-06-12 08:43 UTC, AS4788 announced routes for "numerous IP
//! prefixes" to its provider Level3 Global Crossing (AS3549), which
//! accepted and propagated them. Traffic worldwide was drawn through the
//! leaker, congesting the TM–GC interconnects and both Level3 ASes; delays
//! rose by hundreds of milliseconds and "routers from both ASs dropped a
//! lot of packets".
//!
//! The scenario scripts the routing change itself (a [`NetworkEvent::RouteLeak`]
//! recomputes policy routes with the leak edge) *plus* the congestion the
//! attracted traffic causes — the simulator does not model traffic volume
//! endogenously, so the utilization surge is applied to the affected ASes
//! directly (documented substitution, DESIGN.md S4).

use crate::runner::CaseStudy;
use crate::world::{Landmarks, Scale};
use pinpoint_core::DetectorConfig;
use pinpoint_model::SimTime;
use pinpoint_netsim::events::{EventSchedule, LeakScope, LinkSelector, NetworkEvent};

/// Day of June 12th relative to the epoch (2015-06-08).
const LEAK_DAY: u64 = 4;

/// Leak window: June 12th 08:43–11:00 UTC (alarms reported 09:00–11:00).
pub fn leak_window() -> (SimTime, SimTime) {
    (
        SimTime(LEAK_DAY * 86_400 + 8 * 3600 + 43 * 60),
        SimTime(LEAK_DAY * 86_400 + 11 * 3600),
    )
}

/// Analysis window in bins. Bin 0 = 2015-06-08 00:00 UTC.
pub fn window(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Small => (0, 7 * 24),
        // Fig. 9/10: June 8th – 30th.
        Scale::Paper => (0, 22 * 24),
    }
}

/// Build the leak schedule.
pub fn schedule(landmarks: &Landmarks) -> EventSchedule {
    let (start, end) = leak_window();
    EventSchedule::new()
        .with(NetworkEvent::RouteLeak {
            leaker: landmarks.tm_asn,
            upstream: landmarks.gc_asn,
            // The incident leaked a large subset of the table, not all of
            // it — scope to ~35% of destinations.
            scope: LeakScope::SampleDests {
                permille: 350,
                salt: 0x4788,
            },
            start,
            end,
        })
        // Leak-attracted traffic saturates the TM↔GC interconnects…
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::Between(landmarks.tm_asn, landmarks.gc_asn),
            start,
            end,
            extra_util: 0.8,
        })
        // …and the leaker's own backbone…
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::WithinAs(landmarks.tm_asn),
            start,
            end,
            extra_util: 0.55,
        })
        // …and floods both Level3 ASes (AS3549 worst).
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::WithinAs(landmarks.gc_asn),
            start,
            end,
            extra_util: 0.62,
        })
        .with(NetworkEvent::Congestion {
            selector: LinkSelector::WithinAs(landmarks.level3_asn),
            start,
            end,
            extra_util: 0.5,
        })
        // Saturated routers shed traffic outright ("numerous routers from
        // both ASs dropped a lot of packets") — scripted loss on top of the
        // AQM response.
        .with(NetworkEvent::PacketLoss {
            selector: LinkSelector::Between(landmarks.tm_asn, landmarks.gc_asn),
            start,
            end,
            loss: 0.5,
        })
        .with(NetworkEvent::PacketLoss {
            selector: LinkSelector::SampleWithinAs {
                asn: landmarks.gc_asn,
                permille: 250,
                salt: 0x6C3A,
            },
            start,
            end,
            loss: 0.55,
        })
        .with(NetworkEvent::PacketLoss {
            selector: LinkSelector::SampleWithinAs {
                asn: landmarks.level3_asn,
                permille: 150,
                salt: 0x6C3B,
            },
            start,
            end,
            loss: 0.5,
        })
}

/// Build the route-leak case study.
pub fn case_study(seed: u64, scale: Scale) -> CaseStudy {
    let world = crate::world::World::build(seed, scale);
    let schedule = schedule(&world.landmarks);
    CaseStudy::assemble(
        seed,
        scale,
        schedule,
        DetectorConfig::default(),
        window(scale),
        "2015-06-08T00:00Z",
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use pinpoint_model::BinId;

    #[test]
    fn leak_raises_level3_delay_and_depresses_forwarding() {
        let case = case_study(2015, Scale::Small);
        let (ls, le) = leak_window();
        let leak_bins: Vec<u64> = (ls.0 / 3600..le.0 / 3600 + 1).collect();
        let gc = case.landmarks.gc_asn;
        let l3 = case.landmarks.level3_asn;
        let mut analyzer = case.analyzer();
        let short = CaseStudy {
            end_bin: BinId(leak_bins[leak_bins.len() - 1] + 2),
            ..case
        };
        let mut gc_delay_peak = f64::NEG_INFINITY;
        let mut gc_fwd_min = f64::INFINITY;
        let mut l3_delay_peak = f64::NEG_INFINITY;
        run(&short, &mut analyzer, |report| {
            if leak_bins.contains(&report.bin.0) {
                if let Some(m) = report.magnitude(gc) {
                    gc_delay_peak = gc_delay_peak.max(m.delay_magnitude);
                    gc_fwd_min = gc_fwd_min.min(m.forwarding_magnitude);
                }
                if let Some(m) = report.magnitude(l3) {
                    l3_delay_peak = l3_delay_peak.max(m.delay_magnitude);
                }
            }
        });
        assert!(gc_delay_peak > 3.0, "AS3549 delay peak {gc_delay_peak}");
        assert!(l3_delay_peak > 1.0, "AS3356 delay peak {l3_delay_peak}");
        assert!(
            gc_fwd_min < -0.5,
            "AS3549 forwarding magnitude never went negative: {gc_fwd_min}"
        );
    }

    #[test]
    fn window_covers_leak() {
        let (s, e) = leak_window();
        assert!(s < e);
        for scale in [Scale::Small, Scale::Paper] {
            let (b0, b1) = window(scale);
            assert_eq!(b0, 0);
            assert!(b1 * 3600 > e.0);
        }
    }
}
