//! Topology data model: ASes, routers, links, prefixes, anycast services.
//!
//! The simulated Internet follows the structures the paper's case studies
//! exercise:
//!
//! * a **tier hierarchy** (tier-1 clique / transit / stub) with Gao–Rexford
//!   customer-provider and peer relationships;
//! * **IXPs** modeled as peering LANs: members connect over `IxpLan` links
//!   and respond to traceroute with an interface address from the IXP's
//!   prefix — which is how the AMS-IX outage (§7.3) becomes visible as
//!   forwarding anomalies attributed to the IXP's ASN;
//! * **anycast services** (the DNS root servers of §7.1) as multi-island
//!   ASes: per-city (entry, server) router pairs with no inter-site links,
//!   so hot-potato routing naturally delivers each probe to its nearest
//!   instance.

pub mod builder;

use crate::geo::CityId;
use crate::ids::{AsId, LinkId, RouterId};
use pinpoint_model::{Asn, LpmTable, Prefix};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Role of an AS in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsTier {
    /// Global transit-free backbone; peers with all other tier-1s.
    Tier1,
    /// Regional/national transit provider.
    Transit,
    /// Edge network hosting probes and anchors; never transits.
    Stub,
    /// An IXP's peering-LAN ASN (owns the LAN prefix, carries no routes).
    IxpLan,
    /// Operator of an anycast service (multi-island, origin-only).
    AnycastOp,
}

/// Inter-AS business relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// First AS is provider of the second.
    ProviderCustomer,
    /// Settlement-free peering (possibly via an IXP).
    PeerPeer,
}

/// What a router is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterKind {
    /// Ordinary in-network router.
    Core,
    /// End host: anycast server instance or measurement anchor target.
    Server,
}

/// An autonomous system.
#[derive(Debug, Clone)]
pub struct AsNode {
    /// Dense index.
    pub id: AsId,
    /// Public AS number.
    pub asn: Asn,
    /// Human-readable name (e.g. `"Level3"`, `"AMS-IX"`).
    pub name: String,
    /// Hierarchy role.
    pub tier: AsTier,
    /// Primary address allocation.
    pub prefix: Prefix,
    /// Routers belonging to this AS.
    pub routers: Vec<RouterId>,
    /// Provider ASes (we are their customer).
    pub providers: Vec<AsId>,
    /// Customer ASes.
    pub customers: Vec<AsId>,
    /// Settlement-free peers.
    pub peers: Vec<AsId>,
    /// Multi-island AS: sites are not internally connected (anycast ops).
    pub multi_island: bool,
}

/// A router (one per AS per city in generated topologies).
#[derive(Debug, Clone)]
pub struct Router {
    /// Dense index.
    pub id: RouterId,
    /// Owning AS.
    pub as_id: AsId,
    /// Location.
    pub city: CityId,
    /// Primary interface address (from the owning AS's prefix).
    pub ip: Ipv4Addr,
    /// Additional interface addresses on IXP peering LANs, keyed by the
    /// IXP's AS. Traceroute replies arriving via that LAN use this address.
    pub lan_ips: HashMap<AsId, Ipv4Addr>,
    /// Role.
    pub kind: RouterKind,
    /// Incident links.
    pub links: Vec<LinkId>,
    /// Reverse-DNS-style label (`"cogent.zrh"`), for reports.
    pub label: String,
}

impl Router {
    /// The address this router answers traceroute with, given the link the
    /// probe packet arrived on. Arrivals over an IXP LAN use the LAN
    /// interface address; everything else uses the primary address.
    pub fn response_ip(&self, arrival: Option<&Link>) -> Ipv4Addr {
        if let Some(link) = arrival {
            if let LinkKind::IxpLan(ixp) = link.kind {
                if let Some(ip) = self.lan_ips.get(&ixp) {
                    return *ip;
                }
            }
        }
        self.ip
    }
}

/// Link category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Internal backbone link within one AS.
    IntraAs,
    /// Private interconnect between two ASes.
    InterAs(Relationship),
    /// Connection across an IXP's peering fabric (the `AsId` is the IXP).
    IxpLan(AsId),
}

/// Relative capacity of a link; scales queueing and loss sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapacityClass {
    /// Backbone trunk (tier-1 internals, tier1-tier1 interconnects).
    Backbone,
    /// Ordinary transit/peering capacity.
    Standard,
    /// Thin edge link (stub uplinks, anycast instance last hops).
    Edge,
}

/// An undirected router-to-router adjacency.
#[derive(Debug, Clone)]
pub struct Link {
    /// Dense index.
    pub id: LinkId,
    /// One endpoint.
    pub a: RouterId,
    /// Other endpoint.
    pub b: RouterId,
    /// Category.
    pub kind: LinkKind,
    /// Capacity class.
    pub capacity: CapacityClass,
    /// One-way propagation delay in milliseconds.
    pub base_delay_ms: f64,
}

impl Link {
    /// The endpoint that is not `r`.
    ///
    /// # Panics
    /// Panics if `r` is not an endpoint.
    pub fn other(&self, r: RouterId) -> RouterId {
        if self.a == r {
            self.b
        } else {
            assert!(self.b == r, "router {r} not on link {}", self.id);
            self.a
        }
    }

    /// Whether `r` is an endpoint.
    pub fn touches(&self, r: RouterId) -> bool {
        self.a == r || self.b == r
    }
}

/// One site of an anycast service.
#[derive(Debug, Clone)]
pub struct AnycastInstance {
    /// City hosting the instance.
    pub city: CityId,
    /// Border router of the instance island (peers at the local IXP /
    /// connects to local transit).
    pub entry: RouterId,
    /// The server itself (answers with the service address).
    pub server: RouterId,
}

/// An anycast service (e.g. a DNS root server).
#[derive(Debug, Clone)]
pub struct AnycastService {
    /// Name (`"K-root"`).
    pub name: String,
    /// The anycast service address probes target.
    pub addr: Ipv4Addr,
    /// Operating AS (multi-island).
    pub operator: AsId,
    /// Instance sites.
    pub instances: Vec<AnycastInstance>,
}

/// The complete static topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// All ASes, indexed by [`AsId`].
    pub ases: Vec<AsNode>,
    /// All routers, indexed by [`RouterId`].
    pub routers: Vec<Router>,
    /// All links, indexed by [`LinkId`].
    pub links: Vec<Link>,
    /// Anycast services.
    pub services: Vec<AnycastService>,
    /// Prefix → owning AS (longest-prefix match), including IXP LAN and
    /// service prefixes.
    pub prefixes: LpmTable<AsId>,
    /// Primary + LAN interface address → router.
    pub router_by_ip: HashMap<Ipv4Addr, RouterId>,
    /// Service address → index into [`Self::services`].
    pub service_by_addr: HashMap<Ipv4Addr, usize>,
    /// ASN → dense id.
    pub as_by_asn: HashMap<Asn, AsId>,
    /// Inter-AS links grouped by unordered AS pair.
    pub links_between: HashMap<(AsId, AsId), Vec<LinkId>>,
}

impl Topology {
    /// AS record by dense id.
    pub fn asn(&self, id: AsId) -> &AsNode {
        &self.ases[id.idx()]
    }

    /// Router record by dense id.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.idx()]
    }

    /// Link record by dense id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Resolve an ASN to its dense id.
    pub fn as_id(&self, asn: Asn) -> Option<AsId> {
        self.as_by_asn.get(&asn).copied()
    }

    /// The AS owning an address per longest-prefix match.
    pub fn owner_of(&self, addr: Ipv4Addr) -> Option<AsId> {
        self.prefixes.lookup_value(addr).copied()
    }

    /// Inter-AS links between two ASes (order-insensitive).
    pub fn inter_as_links(&self, a: AsId, b: AsId) -> &[LinkId] {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.links_between
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All stub ASes (candidate probe hosts).
    pub fn stub_ases(&self) -> impl Iterator<Item = &AsNode> {
        self.ases.iter().filter(|a| a.tier == AsTier::Stub)
    }

    /// The link joining two adjacent routers, if any.
    pub fn link_between_routers(&self, a: RouterId, b: RouterId) -> Option<&Link> {
        self.router(a)
            .links
            .iter()
            .map(|&l| self.link(l))
            .find(|l| l.touches(b))
    }

    /// Sanity-check internal consistency; returns human-readable problems.
    ///
    /// Run by the builder after construction and by tests.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, a) in self.ases.iter().enumerate() {
            if a.id.idx() != i {
                problems.push(format!("AS {} stored at index {i}", a.id));
            }
            for &p in &a.providers {
                if !self.ases[p.idx()].customers.contains(&a.id) {
                    problems.push(format!("{}: provider {} lacks back-edge", a.name, p));
                }
            }
            for &p in &a.peers {
                if !self.ases[p.idx()].peers.contains(&a.id) {
                    problems.push(format!("{}: peer {} lacks back-edge", a.name, p));
                }
            }
        }
        for (i, r) in self.routers.iter().enumerate() {
            if r.id.idx() != i {
                problems.push(format!("router {} stored at index {i}", r.id));
            }
            for &l in &r.links {
                if !self.links[l.idx()].touches(r.id) {
                    problems.push(format!("router {} lists non-incident link {l}", r.id));
                }
            }
            // Anycast servers share the service address and are resolved
            // through `service_by_addr`, not `router_by_ip`.
            let is_anycast_server = self.service_by_addr.contains_key(&r.ip);
            if !is_anycast_server && self.router_by_ip.get(&r.ip) != Some(&r.id) {
                problems.push(format!("router {} ip {} not indexed", r.id, r.ip));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.idx() != i {
                problems.push(format!("link {} stored at index {i}", l.id));
            }
            if l.base_delay_ms < 0.0 || !l.base_delay_ms.is_finite() {
                problems.push(format!("link {} has bad delay {}", l.id, l.base_delay_ms));
            }
            for r in [l.a, l.b] {
                if !self.routers[r.idx()].links.contains(&l.id) {
                    problems.push(format!("link {} missing from router {r} adjacency", l.id));
                }
            }
        }
        for svc in &self.services {
            for inst in &svc.instances {
                let entry = self.router(inst.entry);
                let server = self.router(inst.server);
                if entry.as_id != svc.operator || server.as_id != svc.operator {
                    problems.push(format!(
                        "{}: instance routers outside operator AS",
                        svc.name
                    ));
                }
                if self.link_between_routers(inst.entry, inst.server).is_none() {
                    problems.push(format!("{}: entry/server not adjacent", svc.name));
                }
            }
        }
        problems
    }
}
