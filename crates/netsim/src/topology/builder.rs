//! Topology construction: low-level primitives plus a seeded generator.
//!
//! Scenarios combine both: the case-study ASes (Level3, the K-root
//! operator, an AMS-IX-like fabric, a leaking regional ISP) are laid out
//! explicitly with the primitives, then [`TopologyConfig::build`]-style
//! background ASes fill in the Internet around them.

use super::{
    AnycastInstance, AnycastService, AsNode, AsTier, CapacityClass, Link, LinkKind, Relationship,
    Router, RouterKind, Topology,
};
use crate::geo::{self, CityId, Region, CITIES};
use crate::ids::{AsId, LinkId, RouterId};
use pinpoint_model::{Asn, Prefix};
use pinpoint_stats::rng::{derive_seed, SplitMix64};
use std::net::Ipv4Addr;

/// Incremental topology builder.
#[derive(Debug)]
pub struct TopologyBuilder {
    topo: Topology,
    rng: SplitMix64,
    next_block: u32,
}

impl TopologyBuilder {
    /// Start an empty topology; `seed` drives every random choice.
    pub fn new(seed: u64) -> Self {
        TopologyBuilder {
            topo: Topology::default(),
            rng: SplitMix64::new(derive_seed(seed, "topology-builder")),
            next_block: 0,
        }
    }

    /// Allocate the next /16 from the private build space (16.0.0.0 up).
    fn alloc_prefix(&mut self, len: u8) -> Prefix {
        let base = 16u32 << 24;
        let net = base + (self.next_block << 16);
        self.next_block += 1;
        Prefix::new(Ipv4Addr::from(net), len)
    }

    /// Add an AS. IXP-LAN ASes receive a /21; everyone else a /16.
    pub fn add_as(&mut self, asn: Asn, name: &str, tier: AsTier) -> AsId {
        assert!(
            !self.topo.as_by_asn.contains_key(&asn),
            "duplicate ASN {asn}"
        );
        let id = AsId(self.topo.ases.len() as u32);
        let len = if tier == AsTier::IxpLan { 21 } else { 16 };
        let prefix = self.alloc_prefix(len);
        self.topo.prefixes.insert(prefix, id);
        self.topo.as_by_asn.insert(asn, id);
        self.topo.ases.push(AsNode {
            id,
            asn,
            name: name.to_string(),
            tier,
            prefix,
            routers: Vec::new(),
            providers: Vec::new(),
            customers: Vec::new(),
            peers: Vec::new(),
            multi_island: tier == AsTier::AnycastOp,
        });
        id
    }

    /// Add a router for `as_id` in `city`. The primary IP is the next host
    /// address in the AS prefix.
    pub fn add_router(&mut self, as_id: AsId, city: CityId) -> RouterId {
        self.add_router_kind(as_id, city, RouterKind::Core)
    }

    fn add_router_kind(&mut self, as_id: AsId, city: CityId, kind: RouterKind) -> RouterId {
        let id = RouterId(self.topo.routers.len() as u32);
        let asn = &self.topo.ases[as_id.idx()];
        let host_idx = asn.routers.len() as u64 + 1;
        let ip = asn.prefix.nth(host_idx * 7 % asn.prefix.size().max(2)); // spread, deterministic
        let label = format!(
            "{}.{}",
            asn.name.to_lowercase().replace(' ', "-"),
            CITIES[city.idx()].code.to_lowercase()
        );
        let router = Router {
            id,
            as_id,
            city,
            ip,
            lan_ips: Default::default(),
            kind,
            links: Vec::new(),
            label,
        };
        // A hash-spread collision would silently shadow a router; regenerate
        // sequentially in that (rare) case.
        let ip = if self.topo.router_by_ip.contains_key(&ip) {
            let mut k = host_idx;
            loop {
                k += 1;
                let cand = asn.prefix.nth(k % asn.prefix.size());
                if !self.topo.router_by_ip.contains_key(&cand) {
                    break cand;
                }
            }
        } else {
            ip
        };
        let mut router = router;
        router.ip = ip;
        self.topo.router_by_ip.insert(ip, id);
        self.topo.ases[as_id.idx()].routers.push(id);
        self.topo.routers.push(router);
        id
    }

    /// Connect two routers. Propagation delay comes from their cities.
    pub fn link_routers(
        &mut self,
        a: RouterId,
        b: RouterId,
        kind: LinkKind,
        capacity: CapacityClass,
    ) -> LinkId {
        assert_ne!(a, b, "self-link");
        if let Some(l) = self.topo.link_between_routers(a, b) {
            return l.id;
        }
        let id = LinkId(self.topo.links.len() as u32);
        let delay = geo::propagation_delay_ms(self.topo.router(a).city, self.topo.router(b).city);
        self.topo.links.push(Link {
            id,
            a,
            b,
            kind,
            capacity,
            base_delay_ms: delay,
        });
        self.topo.routers[a.idx()].links.push(id);
        self.topo.routers[b.idx()].links.push(id);
        let (as_a, as_b) = (self.topo.router(a).as_id, self.topo.router(b).as_id);
        if as_a != as_b {
            let key = if as_a <= as_b {
                (as_a, as_b)
            } else {
                (as_b, as_a)
            };
            self.topo.links_between.entry(key).or_default().push(id);
        }
        id
    }

    /// Declare a provider-customer relationship and create `n_links`
    /// physical interconnects at the closest city pairs.
    pub fn provider_customer(&mut self, provider: AsId, customer: AsId, n_links: usize) {
        assert_ne!(provider, customer);
        if !self.topo.ases[customer.idx()].providers.contains(&provider) {
            self.topo.ases[customer.idx()].providers.push(provider);
            self.topo.ases[provider.idx()].customers.push(customer);
        }
        let cap = match self.topo.ases[customer.idx()].tier {
            AsTier::Stub | AsTier::AnycastOp => CapacityClass::Edge,
            _ => CapacityClass::Standard,
        };
        self.wire_closest(
            provider,
            customer,
            LinkKind::InterAs(Relationship::ProviderCustomer),
            cap,
            n_links,
        );
    }

    /// Declare settlement-free peering over a private interconnect.
    pub fn peer_private(&mut self, a: AsId, b: AsId, n_links: usize, cap: CapacityClass) {
        assert_ne!(a, b);
        if !self.topo.ases[a.idx()].peers.contains(&b) {
            self.topo.ases[a.idx()].peers.push(b);
            self.topo.ases[b.idx()].peers.push(a);
        }
        self.wire_closest(
            a,
            b,
            LinkKind::InterAs(Relationship::PeerPeer),
            cap,
            n_links,
        );
    }

    fn wire_closest(
        &mut self,
        a: AsId,
        b: AsId,
        kind: LinkKind,
        cap: CapacityClass,
        n_links: usize,
    ) {
        let mut pairs: Vec<(f64, RouterId, RouterId)> = Vec::new();
        for &ra in &self.topo.ases[a.idx()].routers {
            for &rb in &self.topo.ases[b.idx()].routers {
                if self.topo.router(ra).kind != RouterKind::Core
                    || self.topo.router(rb).kind != RouterKind::Core
                {
                    continue;
                }
                let d = geo::distance_km(self.topo.router(ra).city, self.topo.router(rb).city);
                pairs.push((d, ra, rb));
            }
        }
        assert!(
            !pairs.is_empty(),
            "no linkable routers between {} and {}",
            self.topo.ases[a.idx()].name,
            self.topo.ases[b.idx()].name
        );
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        for &(_, ra, rb) in pairs.iter().take(n_links.max(1)) {
            self.link_routers(ra, rb, kind, cap);
        }
    }

    /// Create an IXP: a peering-LAN AS with a fabric in `city`.
    pub fn add_ixp(&mut self, asn: Asn, name: &str, city: CityId) -> AsId {
        let id = self.add_as(asn, name, AsTier::IxpLan);
        // Remember the fabric city through a zero-router convention: the
        // city is stored on demand by members; we keep it in the AS name
        // domain via a marker router-less AS. The city is carried by the
        // membership calls below.
        let _ = city;
        id
    }

    /// Ensure `member` has a router at `city` (the IXP's city), assign it a
    /// LAN interface address from the IXP prefix, and return the router.
    pub fn join_ixp(&mut self, member: AsId, ixp: AsId, city: CityId) -> RouterId {
        assert_eq!(
            self.topo.ases[ixp.idx()].tier,
            AsTier::IxpLan,
            "{} is not an IXP",
            self.topo.ases[ixp.idx()].name
        );
        let existing = self.topo.ases[member.idx()]
            .routers
            .iter()
            .copied()
            .find(|&r| {
                self.topo.router(r).city == city && self.topo.router(r).kind == RouterKind::Core
            });
        let router = match existing {
            Some(r) => r,
            None => {
                let r = self.add_router(member, city);
                self.attach_to_nearest_sibling(r);
                r
            }
        };
        if !self.topo.routers[router.idx()].lan_ips.contains_key(&ixp) {
            let ixp_prefix = self.topo.ases[ixp.idx()].prefix;
            let used = self
                .topo
                .routers
                .iter()
                .filter(|r| r.lan_ips.contains_key(&ixp))
                .count() as u64;
            let lan_ip = ixp_prefix.nth(used + 2);
            self.topo.routers[router.idx()].lan_ips.insert(ixp, lan_ip);
            self.topo.router_by_ip.insert(lan_ip, router);
        }
        router
    }

    /// Peer two IXP members bilaterally across the fabric.
    ///
    /// Both must have joined (`join_ixp`) first. Creates the `IxpLan` link
    /// and the AS-level peer relationship.
    pub fn peer_via_ixp(&mut self, a: AsId, b: AsId, ixp: AsId, city: CityId) {
        let ra = self.join_ixp(a, ixp, city);
        let rb = self.join_ixp(b, ixp, city);
        if !self.topo.ases[a.idx()].peers.contains(&b) {
            self.topo.ases[a.idx()].peers.push(b);
            self.topo.ases[b.idx()].peers.push(a);
        }
        self.link_routers(ra, rb, LinkKind::IxpLan(ixp), CapacityClass::Standard);
    }

    /// Connect a newly created router into its AS's existing mesh via the
    /// nearest sibling (keeps the intra-AS graph connected).
    fn attach_to_nearest_sibling(&mut self, r: RouterId) {
        let as_id = self.topo.router(r).as_id;
        if self.topo.ases[as_id.idx()].multi_island {
            return; // islands stay disconnected by design
        }
        let city = self.topo.router(r).city;
        let nearest = self.topo.ases[as_id.idx()]
            .routers
            .iter()
            .copied()
            .filter(|&s| s != r && self.topo.router(s).kind == RouterKind::Core)
            .min_by(|&x, &y| {
                let dx = geo::distance_km(city, self.topo.router(x).city);
                let dy = geo::distance_km(city, self.topo.router(y).city);
                dx.partial_cmp(&dy).unwrap().then(x.cmp(&y))
            });
        if let Some(s) = nearest {
            self.link_routers(r, s, LinkKind::IntraAs, CapacityClass::Standard);
        }
    }

    /// Create an anycast service operated by `operator` (tier
    /// [`AsTier::AnycastOp`]). The service address is host `.129` of the
    /// operator's prefix, echoing K-root's 193.0.14.129.
    pub fn add_anycast_service(&mut self, operator: AsId, name: &str) -> usize {
        assert!(
            self.topo.ases[operator.idx()].multi_island,
            "anycast operator must be multi-island"
        );
        let addr = self.topo.ases[operator.idx()].prefix.nth(129);
        let idx = self.topo.services.len();
        self.topo.services.push(AnycastService {
            name: name.to_string(),
            addr,
            operator,
            instances: Vec::new(),
        });
        self.topo.service_by_addr.insert(addr, idx);
        idx
    }

    /// Add an instance (entry router + server) of a service in `city`.
    ///
    /// The caller is responsible for connecting the entry router to the
    /// local IXP or a transit provider.
    pub fn add_anycast_instance(&mut self, service: usize, city: CityId) -> (RouterId, RouterId) {
        let operator = self.topo.services[service].operator;
        let entry = self.add_router(operator, city);
        let server = self.add_router_kind(operator, city, RouterKind::Server);
        // The server answers with the anycast address, shared across
        // instances; remove its unique IP from the reverse index and alias
        // it to the service address.
        let unique_ip = self.topo.router(server).ip;
        self.topo.router_by_ip.remove(&unique_ip);
        let addr = self.topo.services[service].addr;
        self.topo.routers[server.idx()].ip = addr;
        self.link_routers(entry, server, LinkKind::IntraAs, CapacityClass::Edge);
        self.topo.services[service].instances.push(AnycastInstance {
            city,
            entry,
            server,
        });
        (entry, server)
    }

    /// Add a unicast end host (e.g. a measurement anchor) attached to an
    /// existing router of the same AS.
    pub fn add_host(&mut self, attach_to: RouterId, name: &str) -> RouterId {
        let as_id = self.topo.router(attach_to).as_id;
        let city = self.topo.router(attach_to).city;
        let host = self.add_router_kind(as_id, city, RouterKind::Server);
        self.topo.routers[host.idx()].label = name.to_string();
        self.link_routers(attach_to, host, LinkKind::IntraAs, CapacityClass::Edge);
        host
    }

    /// Build a connected intra-AS backbone over the AS's core routers:
    /// a longitude-ordered chain plus a closing ring and random chords.
    pub fn mesh_intra_as(&mut self, as_id: AsId, chord_prob: f64) {
        let mut routers: Vec<RouterId> = self.topo.ases[as_id.idx()]
            .routers
            .iter()
            .copied()
            .filter(|&r| self.topo.router(r).kind == RouterKind::Core)
            .collect();
        if routers.len() < 2 {
            return;
        }
        routers.sort_by(|&a, &b| {
            let la = CITIES[self.topo.router(a).city.idx()].lon;
            let lb = CITIES[self.topo.router(b).city.idx()].lon;
            la.partial_cmp(&lb).unwrap().then(a.cmp(&b))
        });
        let cap = if self.topo.ases[as_id.idx()].tier == AsTier::Tier1 {
            CapacityClass::Backbone
        } else {
            CapacityClass::Standard
        };
        for w in routers.windows(2) {
            self.link_routers(w[0], w[1], LinkKind::IntraAs, cap);
        }
        if routers.len() > 2 {
            self.link_routers(routers[0], *routers.last().unwrap(), LinkKind::IntraAs, cap);
        }
        for i in 0..routers.len() {
            for j in (i + 2)..routers.len() {
                if self.rng.next_bool(chord_prob) {
                    self.link_routers(routers[i], routers[j], LinkKind::IntraAs, cap);
                }
            }
        }
    }

    /// Access to the builder's RNG for callers making seeded choices.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Peek at the topology under construction.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Finish; panics if validation fails (a builder bug, not user error).
    pub fn build(self) -> Topology {
        let problems = self.topo.validate();
        assert!(
            problems.is_empty(),
            "inconsistent topology: {}",
            problems.join("; ")
        );
        self.topo
    }
}

/// Parameters for the background-Internet generator.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of tier-1 (transit-free) ASes.
    pub tier1s: usize,
    /// Number of transit ASes.
    pub transits: usize,
    /// Number of stub (edge) ASes.
    pub stubs: usize,
    /// Number of IXPs (placed in the busiest cities).
    pub ixps: usize,
    /// Probability two transits co-located at an IXP peer there.
    pub peering_prob: f64,
    /// Probability a stub is multihomed to a second transit.
    pub multihome_prob: f64,
    /// Cities per tier-1 AS.
    pub tier1_cities: usize,
    /// Cities per transit AS.
    pub transit_cities: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 1,
            tier1s: 4,
            transits: 12,
            stubs: 48,
            ixps: 3,
            peering_prob: 0.5,
            multihome_prob: 0.35,
            tier1_cities: 10,
            transit_cities: 4,
        }
    }
}

impl TopologyConfig {
    /// First generated ASN (kept clear of the case studies' well-known
    /// numbers).
    pub const BASE_ASN: u32 = 64_500;

    /// Generate a background Internet into a fresh builder and return it so
    /// scenarios can add their named ASes before calling
    /// [`TopologyBuilder::build`].
    pub fn builder(&self) -> TopologyBuilder {
        let mut b = TopologyBuilder::new(self.seed);
        self.populate(&mut b);
        b
    }

    /// Generate and finish a standalone topology.
    pub fn build(&self) -> Topology {
        self.builder().build()
    }

    /// Add the generated background Internet into an existing builder.
    pub fn populate(&self, b: &mut TopologyBuilder) {
        let mut rng = SplitMix64::new(derive_seed(self.seed, "topology-config"));
        let mut next_asn = Self::BASE_ASN;
        let mut asn = |rng: &mut SplitMix64| {
            next_asn += 1 + rng.next_below(3) as u32;
            Asn(next_asn)
        };

        // --- IXPs in the busiest (European + US) cities -------------------
        let ixp_cities = ["AMS", "LON", "FRA", "NYC", "SIN", "LAX"];
        let mut ixps: Vec<(AsId, CityId)> = Vec::new();
        for code in ixp_cities.iter().take(self.ixps) {
            let city = geo::city_by_code(code).expect("ixp city");
            let a = asn(&mut rng);
            let id = b.add_ixp(a, &format!("ix-{}", code.to_lowercase()), city);
            ixps.push((id, city));
        }

        // --- Tier-1 clique -------------------------------------------------
        let mut tier1s = Vec::new();
        for i in 0..self.tier1s {
            let a = asn(&mut rng);
            let id = b.add_as(a, &format!("backbone-{i}"), AsTier::Tier1);
            // Global footprint: spread across all regions.
            let mut cities: Vec<CityId> = (0..CITIES.len() as u16).map(CityId).collect();
            rng.shuffle(&mut cities);
            for c in cities.into_iter().take(self.tier1_cities) {
                b.add_router(id, c);
            }
            b.mesh_intra_as(id, 0.15);
            tier1s.push(id);
        }
        for i in 0..tier1s.len() {
            for j in (i + 1)..tier1s.len() {
                b.peer_private(tier1s[i], tier1s[j], 2, CapacityClass::Backbone);
            }
        }

        // --- Transit ASes ---------------------------------------------------
        let regions = [
            Region::Europe,
            Region::NorthAmerica,
            Region::AsiaPacific,
            Region::SouthAmerica,
            Region::MiddleEastAfrica,
        ];
        let mut transits: Vec<(AsId, Region)> = Vec::new();
        for i in 0..self.transits {
            let a = asn(&mut rng);
            let region = regions[i % 3]; // weight towards EU/NA/APAC
            let id = b.add_as(a, &format!("transit-{i}"), AsTier::Transit);
            let mut cities: Vec<CityId> = (0..CITIES.len() as u16)
                .map(CityId)
                .filter(|c| CITIES[c.idx()].region == region)
                .collect();
            rng.shuffle(&mut cities);
            for c in cities.iter().take(self.transit_cities) {
                b.add_router(id, *c);
            }
            b.mesh_intra_as(id, 0.25);
            // One or two tier-1 providers.
            let p1 = *rng.choose(&tier1s);
            b.provider_customer(p1, id, 1);
            if rng.next_bool(0.6) {
                let p2 = *rng.choose(&tier1s);
                if p2 != p1 {
                    b.provider_customer(p2, id, 1);
                }
            }
            transits.push((id, region));
        }

        // Transit presence + peering at IXPs.
        for &(ixp, city) in &ixps {
            let local: Vec<AsId> = transits
                .iter()
                .filter(|(_, r)| *r == CITIES[city.idx()].region)
                .map(|(id, _)| *id)
                .collect();
            for (i, &a) in local.iter().enumerate() {
                b.join_ixp(a, ixp, city);
                for &c in local.iter().skip(i + 1) {
                    if rng.next_bool(self.peering_prob) {
                        b.peer_via_ixp(a, c, ixp, city);
                    }
                }
            }
        }

        // --- Stubs -----------------------------------------------------------
        for i in 0..self.stubs {
            let a = asn(&mut rng);
            let id = b.add_as(a, &format!("edge-{i}"), AsTier::Stub);
            let region = regions[rng.next_below(3) as usize];
            let cities: Vec<CityId> = (0..CITIES.len() as u16)
                .map(CityId)
                .filter(|c| CITIES[c.idx()].region == region)
                .collect();
            let city = *rng.choose(&cities);
            b.add_router(id, city);
            // Prefer a same-region transit.
            let candidates: Vec<AsId> = transits
                .iter()
                .filter(|(_, r)| *r == region)
                .map(|(t, _)| *t)
                .collect();
            let provider = if candidates.is_empty() {
                transits[rng.next_below(transits.len() as u64) as usize].0
            } else {
                *rng.choose(&candidates)
            };
            b.provider_customer(provider, id, 1);
            if rng.next_bool(self.multihome_prob) {
                let other = transits[rng.next_below(transits.len() as u64) as usize].0;
                if other != provider {
                    b.provider_customer(other, id, 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AsTier;

    #[test]
    fn generated_topology_is_consistent() {
        let topo = TopologyConfig::default().build();
        assert!(topo.validate().is_empty());
        assert!(topo.ases.len() >= 4 + 12 + 48);
        assert!(topo.routers.len() > 60);
        assert!(!topo.links.is_empty());
        assert_eq!(topo.stub_ases().count(), 48);
    }

    #[test]
    fn generation_is_deterministic() {
        let t1 = TopologyConfig::default().build();
        let t2 = TopologyConfig::default().build();
        assert_eq!(t1.ases.len(), t2.ases.len());
        assert_eq!(t1.routers.len(), t2.routers.len());
        assert_eq!(t1.links.len(), t2.links.len());
        for (a, b) in t1.routers.iter().zip(&t2.routers) {
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.city, b.city);
        }
        let cfg = TopologyConfig {
            seed: 99,
            ..TopologyConfig::default()
        };
        let t3 = cfg.build();
        // Different seed, different wiring (link count differs in general).
        assert!(
            t3.links.len() != t1.links.len() || {
                t3.routers
                    .iter()
                    .zip(&t1.routers)
                    .any(|(x, y)| x.city != y.city)
            }
        );
    }

    #[test]
    fn stubs_have_providers_and_no_customers() {
        let topo = TopologyConfig::default().build();
        for stub in topo.stub_ases() {
            assert!(!stub.providers.is_empty(), "{} has no provider", stub.name);
            assert!(stub.customers.is_empty());
        }
    }

    #[test]
    fn tier1s_form_a_peer_clique() {
        let topo = TopologyConfig::default().build();
        let t1s: Vec<_> = topo
            .ases
            .iter()
            .filter(|a| a.tier == AsTier::Tier1)
            .collect();
        for a in &t1s {
            for b in &t1s {
                if a.id != b.id {
                    assert!(a.peers.contains(&b.id), "{} !~ {}", a.name, b.name);
                }
            }
            assert!(a.providers.is_empty(), "tier-1 with a provider");
        }
    }

    #[test]
    fn ixp_membership_assigns_lan_addresses() {
        let topo = TopologyConfig::default().build();
        let ixp = topo
            .ases
            .iter()
            .find(|a| a.tier == AsTier::IxpLan)
            .expect("an ixp");
        let members: Vec<_> = topo
            .routers
            .iter()
            .filter(|r| r.lan_ips.contains_key(&ixp.id))
            .collect();
        assert!(members.len() >= 2, "IXP with {} members", members.len());
        for m in &members {
            let lan_ip = m.lan_ips[&ixp.id];
            assert!(ixp.prefix.contains(lan_ip), "LAN IP outside IXP prefix");
            assert_eq!(topo.owner_of(lan_ip), Some(ixp.id));
            // The member's primary address maps to its own AS.
            assert_eq!(topo.owner_of(m.ip), Some(m.as_id));
        }
    }

    #[test]
    fn anycast_service_shares_address_across_instances() {
        let mut b = TopologyBuilder::new(7);
        let op = b.add_as(Asn(25152), "k-root-ops", AsTier::AnycastOp);
        let svc = b.add_anycast_service(op, "K-root");
        let ams = geo::city_by_code("AMS").unwrap();
        let tyo = geo::city_by_code("TYO").unwrap();
        let (e1, s1) = b.add_anycast_instance(svc, ams);
        let (e2, s2) = b.add_anycast_instance(svc, tyo);
        // Give entries upstream connectivity so validate passes cleanly.
        let transit = b.add_as(Asn(64900), "t", AsTier::Transit);
        b.add_router(transit, ams);
        b.add_router(transit, tyo);
        b.provider_customer(transit, op, 2);
        let topo = b.build();
        assert_eq!(topo.router(s1).ip, topo.router(s2).ip);
        assert_ne!(topo.router(e1).ip, topo.router(e2).ip);
        let svc = &topo.services[0];
        assert_eq!(svc.instances.len(), 2);
        assert_eq!(topo.service_by_addr.get(&svc.addr), Some(&0));
        // Anycast islands are not internally connected.
        assert!(topo.link_between_routers(e1, e2).is_none());
    }

    #[test]
    fn add_host_attaches_server() {
        let mut b = TopologyBuilder::new(3);
        let stub = b.add_as(Asn(65001), "edge", AsTier::Stub);
        let city = geo::city_by_code("PAR").unwrap();
        let r = b.add_router(stub, city);
        let h = b.add_host(r, "anchor-par");
        let topo_ref = b.topology();
        assert_eq!(topo_ref.router(h).kind, RouterKind::Server);
        assert!(topo_ref.link_between_routers(r, h).is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate ASN")]
    fn duplicate_asn_panics() {
        let mut b = TopologyBuilder::new(1);
        b.add_as(Asn(1), "a", AsTier::Stub);
        b.add_as(Asn(1), "b", AsTier::Stub);
    }

    #[test]
    fn router_ips_unique_and_owned() {
        let topo = TopologyConfig::default().build();
        let mut seen = std::collections::HashSet::new();
        for r in &topo.routers {
            assert!(seen.insert(r.ip), "duplicate ip {}", r.ip);
            assert_eq!(topo.owner_of(r.ip), Some(r.as_id));
        }
    }
}
