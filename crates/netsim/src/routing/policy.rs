//! Gao–Rexford valley-free route computation with route-leak support.
//!
//! For one destination AS, every other AS gets at most one best route,
//! selected by: route class (customer > peer > provider), then AS-path
//! length, then a deterministic per-(destination, chooser, neighbor) hash.
//! The hash tie-break stands in for the myriad arbitrary tie-breaks of real
//! BGP (router IDs, IGP distances) and gives the simulated Internet
//! per-destination path diversity — important for return-path asymmetry.
//!
//! Export rules (Gao–Rexford):
//! * routes are exported to **customers** unconditionally;
//! * routes are exported to **peers and providers** only if learned from a
//!   customer (or originated).
//!
//! A [`LeakSpec`] suspends the second rule for one (leaker, upstream) pair:
//! the leaker re-exports *everything* to that upstream, which — believing
//! the leaker is an ordinary customer — imports the routes at customer
//! preference and propagates them widely. This reproduces the §7.2 incident
//! mechanics.

use crate::ids::AsId;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Preference class of a route, ordered from most to least preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// The destination itself.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// A selected best route at one AS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteEntry {
    /// Preference class.
    pub class: RouteClass,
    /// AS-path length to the destination (0 at the origin).
    pub path_len: u32,
    /// Next AS towards the destination (`None` at the origin).
    pub next_hop: Option<AsId>,
    /// Deterministic tie-break key (lower wins).
    tie: u64,
}

impl RouteEntry {
    fn rank(&self) -> (u8, u32, u64) {
        let class = match self.class {
            RouteClass::Origin => 0,
            RouteClass::Customer => 1,
            RouteClass::Peer => 2,
            RouteClass::Provider => 3,
        };
        (class, self.path_len, self.tie)
    }
}

/// A route leak: `leaker` re-exports all routes to `upstream`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakSpec {
    /// The AS leaking routes (Telekom Malaysia in the paper's case study).
    pub leaker: AsId,
    /// The provider accepting them (Level3 Global Crossing).
    pub upstream: AsId,
}

/// Best routes of every AS towards one destination AS.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// The destination.
    pub dest: AsId,
    entries: Vec<Option<RouteEntry>>,
}

impl RouteTable {
    /// Best route at `from`, if the destination is reachable.
    pub fn entry(&self, from: AsId) -> Option<&RouteEntry> {
        self.entries[from.idx()].as_ref()
    }

    /// The AS-level path from `from` to the destination (inclusive of both
    /// ends). `None` if unreachable.
    pub fn as_path(&self, from: AsId) -> Option<Vec<AsId>> {
        let mut path = vec![from];
        let mut cur = from;
        // Recorded path lengths strictly decrease along next-hop chains, so
        // the walk terminates; the bound is a belt-and-braces guard.
        for _ in 0..=self.entries.len() {
            let e = self.entries[cur.idx()].as_ref()?;
            match e.next_hop {
                None => return Some(path),
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
            }
        }
        None
    }

    /// Number of ASes with a route.
    pub fn reachable_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .rotate_left(23)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c)
        .rotate_left(31)
        .wrapping_add(d);
    x ^= x >> 29;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 32)
}

/// Compute the route table for `dest` under optional leaks.
///
/// `salt` perturbs tie-breaks only; scenarios use the topology seed so that
/// routing is stable across runs.
pub fn compute_routes(topo: &Topology, dest: AsId, leaks: &[LeakSpec], salt: u64) -> RouteTable {
    let n = topo.ases.len();
    let mut entries: Vec<Option<RouteEntry>> = vec![None; n];
    entries[dest.idx()] = Some(RouteEntry {
        class: RouteClass::Origin,
        path_len: 0,
        next_hop: None,
        tie: 0,
    });

    let mut queue: VecDeque<AsId> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(dest);
    queued[dest.idx()] = true;

    while let Some(a) = queue.pop_front() {
        queued[a.idx()] = false;
        let route_a = match entries[a.idx()] {
            Some(r) => r,
            None => continue,
        };
        let from_customer_or_origin =
            matches!(route_a.class, RouteClass::Origin | RouteClass::Customer);
        let node = topo.asn(a);

        // Collect (neighbor, class-at-neighbor) export targets.
        let mut targets: Vec<(AsId, RouteClass)> = Vec::new();
        // To customers: always. The customer imports it as a provider route.
        for &c in &node.customers {
            targets.push((c, RouteClass::Provider));
        }
        if from_customer_or_origin {
            for &p in &node.peers {
                targets.push((p, RouteClass::Peer));
            }
            for &p in &node.providers {
                targets.push((p, RouteClass::Customer));
            }
        }
        // Leaks: `a` exports everything to the designated upstream, which
        // imports at customer preference.
        for leak in leaks {
            if leak.leaker == a && !from_customer_or_origin {
                targets.push((leak.upstream, RouteClass::Customer));
            }
        }

        for (nbr, class) in targets {
            // An AS never imports a route whose path already contains it —
            // here that can only be the immediate re-import, since recorded
            // lengths strictly decrease along next-hop chains.
            if route_a.next_hop == Some(nbr) {
                continue;
            }
            let candidate = RouteEntry {
                class,
                path_len: route_a.path_len + 1,
                next_hop: Some(a),
                tie: mix(salt, dest.0 as u64, nbr.0 as u64, a.0 as u64) >> 16,
            };
            let better = match &entries[nbr.idx()] {
                None => true,
                Some(cur) => candidate.rank() < cur.rank(),
            };
            if better {
                entries[nbr.idx()] = Some(candidate);
                if !queued[nbr.idx()] {
                    queue.push_back(nbr);
                    queued[nbr.idx()] = true;
                }
            }
        }
    }

    RouteTable { dest, entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::city_by_code;
    use crate::topology::builder::{TopologyBuilder, TopologyConfig};
    use crate::topology::{AsTier, CapacityClass};
    use pinpoint_model::Asn;

    /// A hand-built diamond: two tier-1 peers on top, a transit under each,
    /// stubs at the bottom.
    fn diamond() -> (Topology, Vec<AsId>) {
        let mut b = TopologyBuilder::new(42);
        let lon = city_by_code("LON").unwrap();
        let nyc = city_by_code("NYC").unwrap();
        let fra = city_by_code("FRA").unwrap();
        let t1a = b.add_as(Asn(100), "t1a", AsTier::Tier1);
        let t1b = b.add_as(Asn(200), "t1b", AsTier::Tier1);
        b.add_router(t1a, lon);
        b.add_router(t1a, nyc);
        b.mesh_intra_as(t1a, 0.0);
        b.add_router(t1b, lon);
        b.add_router(t1b, nyc);
        b.mesh_intra_as(t1b, 0.0);
        b.peer_private(t1a, t1b, 1, CapacityClass::Backbone);
        let ta = b.add_as(Asn(300), "ta", AsTier::Transit);
        b.add_router(ta, lon);
        b.add_router(ta, fra);
        b.mesh_intra_as(ta, 0.0);
        let tb = b.add_as(Asn(400), "tb", AsTier::Transit);
        b.add_router(tb, nyc);
        b.provider_customer(t1a, ta, 1);
        b.provider_customer(t1b, tb, 1);
        let sa = b.add_as(Asn(500), "sa", AsTier::Stub);
        b.add_router(sa, fra);
        b.provider_customer(ta, sa, 1);
        let sb = b.add_as(Asn(600), "sb", AsTier::Stub);
        b.add_router(sb, nyc);
        b.provider_customer(tb, sb, 1);
        let ids = vec![t1a, t1b, ta, tb, sa, sb];
        (b.build(), ids)
    }

    #[test]
    fn stub_to_stub_goes_over_the_top() {
        let (topo, ids) = diamond();
        let (sa, sb) = (ids[4], ids[5]);
        let table = compute_routes(&topo, sb, &[], 7);
        let path = table.as_path(sa).unwrap();
        // sa → ta → t1a → t1b → tb → sb (up, across the peer edge, down).
        assert_eq!(path.len(), 6);
        assert_eq!(path[0], sa);
        assert_eq!(*path.last().unwrap(), sb);
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        let (topo, ids) = diamond();
        let (t1a, ta) = (ids[0], ids[2]);
        // From t1a's perspective, ta (its customer subtree) must be reached
        // via the customer edge, not any peer detour.
        let table = compute_routes(&topo, ta, &[], 7);
        let e = table.entry(t1a).unwrap();
        assert_eq!(e.class, RouteClass::Customer);
        assert_eq!(e.path_len, 1);
    }

    #[test]
    fn origin_entry_is_origin() {
        let (topo, ids) = diamond();
        let table = compute_routes(&topo, ids[5], &[], 7);
        let e = table.entry(ids[5]).unwrap();
        assert_eq!(e.class, RouteClass::Origin);
        assert_eq!(e.path_len, 0);
        assert_eq!(e.next_hop, None);
    }

    #[test]
    fn all_reachable_in_connected_hierarchy() {
        let (topo, ids) = diamond();
        for &dest in &ids {
            let table = compute_routes(&topo, dest, &[], 7);
            assert_eq!(table.reachable_count(), topo.ases.len(), "dest {dest}");
        }
    }

    fn is_valley_free(topo: &Topology, path: &[AsId]) -> bool {
        // Classify each edge walked from source towards destination:
        // up (towards provider), across (peer), down (towards customer).
        // Valid: up* across? down*.
        #[derive(PartialEq, PartialOrd)]
        enum Phase {
            Up,
            Across,
            Down,
        }
        let mut phase = Phase::Up;
        for w in path.windows(2) {
            let (x, y) = (topo.asn(w[0]), w[1]);
            let step = if x.providers.contains(&y) {
                Phase::Up
            } else if x.peers.contains(&y) {
                Phase::Across
            } else if x.customers.contains(&y) {
                Phase::Down
            } else {
                return false; // no relationship at all
            };
            if step < phase {
                return false;
            }
            // `Across` may appear at most once.
            phase = if step == Phase::Across {
                Phase::Down
            } else {
                step
            };
        }
        true
    }

    #[test]
    fn generated_topology_paths_are_valley_free_and_loop_free() {
        let topo = TopologyConfig::default().build();
        let stubs: Vec<AsId> = topo.stub_ases().map(|a| a.id).collect();
        let mut checked = 0;
        for &dest in stubs.iter().take(6) {
            let table = compute_routes(&topo, dest, &[], 99);
            for src in topo.ases.iter().map(|a| a.id) {
                if let Some(path) = table.as_path(src) {
                    let mut seen = std::collections::HashSet::new();
                    assert!(path.iter().all(|a| seen.insert(*a)), "loop in {path:?}");
                    assert!(is_valley_free(&topo, &path), "valley in {path:?}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "only {checked} paths checked");
    }

    #[test]
    fn route_leak_attracts_traffic() {
        // t1a ── t1b        leak: `leaker` (customer of ta and tb)
        //  |       |          re-exports everything to tb.
        //  ta      tb
        //   \     /
        //   leaker
        // Destination: sa (customer of ta). Without the leak, tb reaches sa
        // via its provider t1b (provider route). With the leak, tb hears sa
        // from its customer `leaker` and prefers that customer route.
        let mut b = TopologyBuilder::new(5);
        let lon = city_by_code("LON").unwrap();
        let kul = city_by_code("KUL").unwrap();
        let fra = city_by_code("FRA").unwrap();
        let t1a = b.add_as(Asn(100), "t1a", AsTier::Tier1);
        b.add_router(t1a, lon);
        let t1b = b.add_as(Asn(200), "t1b", AsTier::Tier1);
        b.add_router(t1b, lon);
        b.peer_private(t1a, t1b, 1, CapacityClass::Backbone);
        let ta = b.add_as(Asn(300), "ta", AsTier::Transit);
        b.add_router(ta, lon);
        b.provider_customer(t1a, ta, 1);
        let tb = b.add_as(Asn(3549), "tb", AsTier::Transit);
        b.add_router(tb, lon);
        b.provider_customer(t1b, tb, 1);
        let leaker = b.add_as(Asn(4788), "leaker", AsTier::Transit);
        b.add_router(leaker, kul);
        b.provider_customer(ta, leaker, 1);
        b.provider_customer(tb, leaker, 1);
        let sa = b.add_as(Asn(500), "sa", AsTier::Stub);
        b.add_router(sa, fra);
        b.provider_customer(ta, sa, 1);
        let topo = b.build();

        let clean = compute_routes(&topo, sa, &[], 1);
        let e = clean.entry(tb).unwrap();
        assert_eq!(e.class, RouteClass::Provider);
        assert_eq!(clean.as_path(tb).unwrap(), vec![tb, t1b, t1a, ta, sa]);

        let leaked = compute_routes(
            &topo,
            sa,
            &[LeakSpec {
                leaker,
                upstream: tb,
            }],
            1,
        );
        let e = leaked.entry(tb).unwrap();
        assert_eq!(e.class, RouteClass::Customer, "leak not preferred");
        assert_eq!(leaked.as_path(tb).unwrap(), vec![tb, leaker, ta, sa]);
        // And the leak propagates: t1b now also hears the customer route
        // from tb and sends traffic down through the leaker.
        assert_eq!(
            leaked.as_path(t1b).unwrap(),
            vec![t1b, tb, leaker, ta, sa],
            "upstream did not re-export the leak"
        );
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let topo = TopologyConfig::default().build();
        let dest = topo.stub_ases().next().unwrap().id;
        let t1 = compute_routes(&topo, dest, &[], 42);
        let t2 = compute_routes(&topo, dest, &[], 42);
        for a in topo.ases.iter().map(|a| a.id) {
            assert_eq!(t1.as_path(a), t2.as_path(a));
        }
    }
}
