//! Router-level forwarding: intra-AS shortest paths and path stitching.
//!
//! Given an AS-level route (from [`super::policy`]), the stitcher walks the
//! router graph: inside each AS, packets follow precomputed shortest paths
//! (Dijkstra over intra-AS links, weighted by propagation delay); at each
//! AS boundary the exit interconnect is chosen hot-potato (closest exit to
//! the current router) with per-flow ECMP among near-equal candidates —
//! Paris traceroute keeps the flow identifier fixed, so one traceroute sees
//! one consistent path, while different probes spread over the alternatives
//! (§2's "Paris traceroute [mitigates] issues raised by load balancers").

use crate::ids::{AsId, LinkId, RouterId};
use crate::routing::policy::RouteTable;
use crate::topology::{LinkKind, RouterKind, Topology};
use std::collections::HashMap;

/// Infinite distance marker.
const INF: f64 = f64::INFINITY;

/// All-pairs shortest paths inside one AS.
#[derive(Debug, Clone)]
pub struct IntraMatrix {
    /// Router ids in local order.
    routers: Vec<RouterId>,
    /// RouterId → local index.
    local: HashMap<RouterId, usize>,
    /// `next[f][t]`: next router on the shortest path f→t (`None` when
    /// unreachable — distinct islands of a multi-island AS).
    next: Vec<Vec<Option<RouterId>>>,
    /// `dist[f][t]` in milliseconds.
    dist: Vec<Vec<f64>>,
}

impl IntraMatrix {
    fn build(topo: &Topology, as_id: AsId) -> Self {
        let routers: Vec<RouterId> = topo.asn(as_id).routers.clone();
        let local: HashMap<RouterId, usize> =
            routers.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let n = routers.len();
        let mut next = vec![vec![None; n]; n];
        let mut dist = vec![vec![INF; n]; n];

        // Dijkstra from every router over intra-AS links only.
        for (src_i, _) in routers.iter().enumerate() {
            let mut d = vec![INF; n];
            let mut first_hop: Vec<Option<RouterId>> = vec![None; n];
            let mut done = vec![false; n];
            d[src_i] = 0.0;
            loop {
                // Linear extract-min: per-AS router counts are small (<50).
                let mut u = None;
                let mut best = INF;
                for i in 0..n {
                    if !done[i] && d[i] < best {
                        best = d[i];
                        u = Some(i);
                    }
                }
                let Some(u) = u else { break };
                done[u] = true;
                for &lid in &topo.router(routers[u]).links {
                    let link = topo.link(lid);
                    if link.kind != LinkKind::IntraAs {
                        continue;
                    }
                    let v = link.other(routers[u]);
                    let Some(&v_i) = local.get(&v) else { continue };
                    let nd = d[u] + link.base_delay_ms;
                    // Deterministic tie-break: strictly-better only, with
                    // neighbor order fixed by the topology's link order.
                    if nd < d[v_i] - 1e-12 {
                        d[v_i] = nd;
                        first_hop[v_i] = if u == src_i { Some(v) } else { first_hop[u] };
                    }
                }
            }
            dist[src_i].copy_from_slice(&d);
            next[src_i].copy_from_slice(&first_hop);
        }
        IntraMatrix {
            routers,
            local,
            next,
            dist,
        }
    }

    /// Shortest-path distance between two routers of this AS (ms).
    pub fn distance(&self, from: RouterId, to: RouterId) -> f64 {
        match (self.local.get(&from), self.local.get(&to)) {
            (Some(&f), Some(&t)) => self.dist[f][t],
            _ => INF,
        }
    }

    /// The full router path `from → to`, inclusive. `None` if unreachable.
    pub fn path(&self, from: RouterId, to: RouterId) -> Option<Vec<RouterId>> {
        let (&f, &t) = (self.local.get(&from)?, self.local.get(&to)?);
        if f == t {
            return Some(vec![from]);
        }
        if self.dist[f][t].is_infinite() {
            return None;
        }
        let mut path = vec![from];
        let mut cur = f;
        while cur != t {
            let nxt = self.next[cur][t]?;
            path.push(nxt);
            cur = self.local[&nxt];
            if path.len() > self.routers.len() {
                return None; // defensive: corrupted matrix
            }
        }
        Some(path)
    }
}

/// Precomputed intra-AS matrices for the whole topology.
#[derive(Debug, Clone)]
pub struct Forwarding {
    per_as: Vec<IntraMatrix>,
}

impl Forwarding {
    /// Build matrices for every AS.
    pub fn new(topo: &Topology) -> Self {
        let per_as = (0..topo.ases.len())
            .map(|i| IntraMatrix::build(topo, AsId(i as u32)))
            .collect();
        Forwarding { per_as }
    }

    /// The matrix of one AS.
    pub fn intra(&self, as_id: AsId) -> &IntraMatrix {
        &self.per_as[as_id.idx()]
    }
}

/// ECMP slack: interconnect candidates within this many ms of the best are
/// eligible and chosen per-flow. Wide enough that parallel interconnects in
/// one metro area genuinely load-balance (giving forwarding models their
/// multi-next-hop shape), narrow enough that intercontinental detours never
/// qualify.
const ECMP_SLACK_MS: f64 = 1.2;

fn flow_hash(flow: u64, stage: u64, link: u64) -> u64 {
    let mut x = flow ^ stage.wrapping_mul(0xA24B_AED4_963E_E407);
    x ^= link.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    x ^= x >> 28;
    x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^ (x >> 33)
}

/// Stitches router-level paths along AS-level routes.
#[derive(Debug)]
pub struct PathStitcher<'a> {
    topo: &'a Topology,
    fwd: &'a Forwarding,
}

impl<'a> PathStitcher<'a> {
    /// Create a stitcher over a topology and its forwarding matrices.
    pub fn new(topo: &'a Topology, fwd: &'a Forwarding) -> Self {
        PathStitcher { topo, fwd }
    }

    /// Stitch the full router path from `src_router` to the target.
    ///
    /// `table` must be the route table for the target's AS. For anycast
    /// targets pass `target = None`: the path ends at the server of whichever
    /// instance island the stitching enters; for unicast pass the target
    /// router. Returns the router sequence inclusive of both endpoints, or
    /// `None` when no data-plane path exists.
    pub fn route(
        &self,
        src_router: RouterId,
        table: &RouteTable,
        target: Option<RouterId>,
        flow: u64,
    ) -> Option<Vec<RouterId>> {
        let src_as = self.topo.router(src_router).as_id;
        let as_path = table.as_path(src_as)?;
        let mut path = vec![src_router];
        let mut cur = src_router;

        for (stage, w) in as_path.windows(2).enumerate() {
            let (here, next_as) = (w[0], w[1]);
            let candidates = self.topo.inter_as_links(here, next_as);
            if candidates.is_empty() {
                return None;
            }
            // Hot potato: exit via the interconnect closest to `cur`,
            // per-flow ECMP across near-equal options.
            let mut best_cost = INF;
            let mut scored: Vec<(f64, LinkId, RouterId, RouterId)> = Vec::new();
            for &lid in candidates {
                let link = self.topo.link(lid);
                let (exit, entry) = if self.topo.router(link.a).as_id == here {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                };
                let cost = self.fwd.intra(here).distance(cur, exit);
                if cost.is_finite() {
                    best_cost = best_cost.min(cost);
                    scored.push((cost, lid, exit, entry));
                }
            }
            if scored.is_empty() {
                return None;
            }
            let chosen = scored
                .iter()
                .filter(|(c, ..)| *c <= best_cost + ECMP_SLACK_MS)
                .max_by_key(|(_, lid, ..)| flow_hash(flow, stage as u64, lid.0 as u64))
                .copied()?;
            let (_, _, exit, entry) = chosen;
            let hops = self.fwd.intra(here).path(cur, exit)?;
            path.extend(hops.into_iter().skip(1));
            path.push(entry);
            cur = entry;
        }

        // Final AS: deliver to the target router (unicast) or the island
        // server (anycast).
        let final_as = *as_path.last()?;
        match target {
            Some(t) => {
                let hops = self.fwd.intra(final_as).path(cur, t)?;
                path.extend(hops.into_iter().skip(1));
            }
            None => {
                let svc_server = self.topo.services.iter().find_map(|svc| {
                    if svc.operator != final_as {
                        return None;
                    }
                    svc.instances
                        .iter()
                        .find(|inst| inst.entry == cur)
                        .map(|inst| inst.server)
                });
                match svc_server {
                    Some(server) => path.push(server),
                    None => {
                        // Entered an anycast AS at a non-entry router (can
                        // happen if the server is directly attached): only
                        // valid if cur is already a server.
                        if self.topo.router(cur).kind != RouterKind::Server {
                            return None;
                        }
                    }
                }
            }
        }
        Some(path)
    }

    /// One-way propagation distance of a stitched path (ms, base delays
    /// only — dynamics add queueing on top).
    pub fn path_base_delay(&self, path: &[RouterId]) -> f64 {
        path.windows(2)
            .map(|w| {
                self.topo
                    .link_between_routers(w[0], w[1])
                    .map(|l| l.base_delay_ms)
                    .unwrap_or(0.0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::policy::compute_routes;
    use crate::topology::builder::TopologyConfig;

    fn setup() -> (Topology, Forwarding) {
        let topo = TopologyConfig::default().build();
        let fwd = Forwarding::new(&topo);
        (topo, fwd)
    }

    #[test]
    fn intra_matrix_symmetric_and_triangle() {
        let (topo, fwd) = setup();
        // Pick the largest AS for a meaningful check.
        let big = topo.ases.iter().max_by_key(|a| a.routers.len()).unwrap();
        let m = fwd.intra(big.id);
        let rs = &big.routers;
        for &a in rs.iter().take(6) {
            assert_eq!(m.distance(a, a), 0.0);
            for &b in rs.iter().take(6) {
                let dab = m.distance(a, b);
                let dba = m.distance(b, a);
                assert!((dab - dba).abs() < 1e-9, "asymmetric {dab} vs {dba}");
                for &c in rs.iter().take(6) {
                    let dac = m.distance(a, c);
                    let dcb = m.distance(c, b);
                    if dac.is_finite() && dcb.is_finite() {
                        assert!(dab <= dac + dcb + 1e-9, "triangle violated");
                    }
                }
            }
        }
    }

    #[test]
    fn intra_path_is_connected_and_matches_distance() {
        let (topo, fwd) = setup();
        let big = topo.ases.iter().max_by_key(|a| a.routers.len()).unwrap();
        let m = fwd.intra(big.id);
        let rs = &big.routers;
        for &a in rs.iter().take(5) {
            for &b in rs.iter().take(5) {
                let path = m.path(a, b).expect("connected AS");
                assert_eq!(path[0], a);
                assert_eq!(*path.last().unwrap(), b);
                // Each consecutive pair is physically linked.
                let mut total = 0.0;
                for w in path.windows(2) {
                    let l = topo.link_between_routers(w[0], w[1]).expect("adjacent");
                    total += l.base_delay_ms;
                }
                assert!((total - m.distance(a, b)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stitched_path_crosses_correct_ases() {
        let (topo, fwd) = setup();
        let stitcher = PathStitcher::new(&topo, &fwd);
        let stubs: Vec<_> = topo.stub_ases().collect();
        let (src_as, dst_as) = (stubs[0], stubs[stubs.len() - 1]);
        let src_router = src_as.routers[0];
        let dst_router = dst_as.routers[0];
        let table = compute_routes(&topo, dst_as.id, &[], 3);
        let as_path = table.as_path(src_as.id).unwrap();
        let path = stitcher
            .route(src_router, &table, Some(dst_router), 12345)
            .expect("path");
        assert_eq!(path[0], src_router);
        assert_eq!(*path.last().unwrap(), dst_router);
        // The sequence of distinct ASes along the router path equals the
        // AS-level route.
        let mut as_seq = Vec::new();
        for &r in &path {
            let a = topo.router(r).as_id;
            if as_seq.last() != Some(&a) {
                as_seq.push(a);
            }
        }
        assert_eq!(as_seq, as_path);
        // No repeated routers (loop-free).
        let mut seen = std::collections::HashSet::new();
        assert!(path.iter().all(|r| seen.insert(*r)), "router loop");
    }

    #[test]
    fn same_flow_same_path_different_flow_may_differ() {
        let (topo, fwd) = setup();
        let stitcher = PathStitcher::new(&topo, &fwd);
        let stubs: Vec<_> = topo.stub_ases().collect();
        let table = compute_routes(&topo, stubs[1].id, &[], 3);
        let src = stubs[7].routers[0];
        let dst = stubs[1].routers[0];
        let p1 = stitcher.route(src, &table, Some(dst), 42).unwrap();
        let p2 = stitcher.route(src, &table, Some(dst), 42).unwrap();
        assert_eq!(p1, p2, "Paris invariant broken: same flow, same path");
        // Over many flows, at least the path set is stable & loop-free.
        for flow in 0..20 {
            let p = stitcher.route(src, &table, Some(dst), flow).unwrap();
            assert_eq!(p[0], src);
            assert_eq!(*p.last().unwrap(), dst);
        }
    }

    #[test]
    fn unreachable_island_returns_none() {
        let (topo, fwd) = setup();
        // Distance between routers of different ASes is infinite in an
        // intra matrix. (Skip router-less ASes such as IXP LANs.)
        let first_as = topo.ases.iter().find(|a| !a.routers.is_empty()).unwrap();
        let a = first_as.routers[0];
        let other_as = topo
            .ases
            .iter()
            .find(|x| x.id != topo.router(a).as_id && !x.routers.is_empty())
            .unwrap();
        let b = other_as.routers[0];
        assert!(fwd.intra(topo.router(a).as_id).distance(a, b).is_infinite());
        assert!(fwd.intra(topo.router(a).as_id).path(a, b).is_none());
    }
}
