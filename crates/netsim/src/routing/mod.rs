//! Routing: AS-level policy routes and router-level forwarding.
//!
//! Two layers, mirroring reality:
//!
//! * [`policy`] computes **AS-level** best routes per destination AS under
//!   Gao–Rexford export rules (customer > peer > provider, then shortest
//!   path, then a deterministic per-destination tie-break). Route leaks are
//!   first-class: a leaker AS re-exporting a provider/peer route to another
//!   provider, which imports it as a (preferred) customer route — the
//!   Telekom Malaysia incident of §7.2.
//! * [`forwarding`] stitches **router-level** paths: hot-potato exit
//!   selection with per-flow ECMP across near-equal interconnects, and
//!   shortest-path (Dijkstra) forwarding inside each AS.
//!
//! Forward and return paths are computed independently — the probe's
//! round-trip to hop X uses `route(probe_as → dest)` outbound and
//! `route(X_as → probe_as)` for the reply, which is what makes differential
//! RTTs contain the return-path error term ε the paper's method is designed
//! to cancel (§4.1).

pub mod forwarding;
pub mod policy;

pub use forwarding::{Forwarding, PathStitcher};
pub use policy::{compute_routes, LeakSpec, RouteClass, RouteEntry, RouteTable};
