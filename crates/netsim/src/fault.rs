//! Feed-fault injection: corrupts the *delivery* of a bin stream the way
//! real measurement feeds fail, while the bins themselves stay pure.
//!
//! The artifact model ([`crate::dynamics::ArtifactModel`]) corrupts
//! *records*; this module corrupts the *transport*: feeds stall, TCP
//! connections drop mid-stream, retransmissions deliver the same bin
//! twice, buffering reorders adjacent bins, and a cut connection
//! truncates a bin's records. A consumer that survives eight months of a
//! live Atlas stream (§8) has to survive all of these.
//!
//! [`FaultModel`] is the seeded decision function — every fault is a pure
//! function of `(seed, bin)`, so two iterations over the same schedule
//! produce byte-identical fault streams, and a restarted consumer faces
//! exactly the faults it would have faced before the crash.
//! [`FaultyFeed`] applies it as an iterator adapter over any
//! `(BinId, Vec<R>)` source, which makes it a `BinSource` at the analysis
//! boundary (every iterator of bin pairs is one) — so batch, incremental,
//! pipelined, and service entry paths all see the *same* faulty feed.
//!
//! Fault classes split by visibility:
//!
//! * **Bin-stream faults** — duplicated bins, reordered bins, truncated
//!   bins — change which `(BinId, records)` pairs come out of the
//!   iterator. Every entry path sees them; a robust consumer rejects
//!   duplicates and out-of-order bins ([`RecoveredFeed`] is the
//!   canonical client-side recovery, and the live collector implements
//!   the same rule).
//! * **Transport markers** — [`FeedEvent::Stall`] and
//!   [`FeedEvent::Disconnect`] — carry no data. Offline consumers skip
//!   them ([`RecoveredFeed`] does); the live service's collector
//!   interprets them as wall-clock stalls and connection drops, driving
//!   its retry/backoff machinery.

use pinpoint_model::BinId;
use pinpoint_stats::rng::SplitMix64;
use std::collections::VecDeque;

/// Domain-separation mix for per-(class, bin) decision RNGs (same shape
/// as the dynamics module's).
fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x
        .rotate_left(27)
        .wrapping_add(c)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = x
        .rotate_left(31)
        .wrapping_add(d)
        .wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 30)
}

/// One delivery event of a faulty feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedEvent<F> {
    /// A bin arrived — possibly a duplicate, out of order, or truncated.
    Bin(BinId, F),
    /// The feed went quiet for roughly this many poll intervals before
    /// the next delivery. Carries no data; offline consumers skip it.
    Stall(u64),
    /// The connection dropped. The next event is what a reconnected
    /// client sees; a live collector counts a retry here.
    Disconnect,
}

/// Deterministic seeded feed-fault injection (see the module docs).
///
/// Like [`crate::dynamics::ArtifactModel`]: [`FaultModel::new`] disables
/// every class, [`FaultModel::mild`] / [`FaultModel::hostile`] are the
/// graded presets, rates are per-bin probabilities in `[0, 1]`, and every
/// decision derives from `(seed, bin)` alone.
#[derive(Debug, Clone)]
pub struct FaultModel {
    seed: u64,
    /// Per-bin probability that a stall marker precedes the bin.
    pub stall_rate: f64,
    /// Largest stall length (poll intervals); actual lengths are seeded
    /// in `[1, max_stall]`.
    pub max_stall: u64,
    /// Emit a [`FeedEvent::Disconnect`] after every `n` delivered bins
    /// (`0` disables). "Disconnect after N bins" with a reconnecting
    /// client becomes "disconnect every N bins" on a long stream.
    pub disconnect_every: u64,
    /// Per-bin probability that the bin is delivered twice.
    pub duplicate_rate: f64,
    /// Per-bin probability that the bin is held back and delivered after
    /// its successors, within [`FaultModel::reorder_window`].
    pub reorder_rate: f64,
    /// How many successor bins may overtake a held-back bin (≥ 1 for
    /// reordering to be possible).
    pub reorder_window: usize,
    /// Per-bin probability that the bin's records are truncated to a
    /// seeded fraction (a connection cut mid-bin).
    pub truncate_rate: f64,
}

impl FaultModel {
    /// A clean feed: every fault class disabled.
    pub fn new(seed: u64) -> Self {
        FaultModel {
            seed,
            stall_rate: 0.0,
            max_stall: 3,
            disconnect_every: 0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            reorder_window: 1,
            truncate_rate: 0.0,
        }
    }

    /// Mild faults: the occasional stall, duplicate, and reorder of a
    /// production feed, plus a disconnect roughly daily on hour bins.
    pub fn mild(seed: u64) -> Self {
        FaultModel {
            stall_rate: 0.05,
            disconnect_every: 24,
            duplicate_rate: 0.04,
            reorder_rate: 0.04,
            truncate_rate: 0.02,
            ..FaultModel::new(seed)
        }
    }

    /// Hostile faults: every class an order of magnitude above mild — a
    /// feed falling apart, kept as the stress grade.
    pub fn hostile(seed: u64) -> Self {
        FaultModel {
            stall_rate: 0.30,
            max_stall: 5,
            disconnect_every: 5,
            duplicate_rate: 0.25,
            reorder_rate: 0.25,
            reorder_window: 2,
            truncate_rate: 0.15,
            ..FaultModel::new(seed)
        }
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.stall_rate > 0.0
            || self.disconnect_every > 0
            || self.duplicate_rate > 0.0
            || self.reorder_rate > 0.0
            || self.truncate_rate > 0.0
    }

    fn decide(&self, class: u64, bin: BinId, rate: f64) -> bool {
        rate > 0.0 && SplitMix64::new(mix(self.seed, class, bin.0, 0)).next_bool(rate)
    }

    /// Seeded stall length before `bin`, or `None`.
    pub fn stall_before(&self, bin: BinId) -> Option<u64> {
        if !self.decide(0x57A1, bin, self.stall_rate) {
            return None;
        }
        let mut r = SplitMix64::new(mix(self.seed, 0x57A2, bin.0, 1));
        Some(1 + r.next_below(self.max_stall.max(1)))
    }

    /// Whether `bin` is delivered twice.
    pub fn duplicates(&self, bin: BinId) -> bool {
        self.decide(0xD0B1, bin, self.duplicate_rate)
    }

    /// Whether `bin` is held back behind its successors.
    pub fn reorders(&self, bin: BinId) -> bool {
        self.reorder_window > 0 && self.decide(0x2E0D, bin, self.reorder_rate)
    }

    /// Truncated record count for a `bin` holding `len` records (`len`
    /// when the bin is delivered whole).
    pub fn truncated_len(&self, bin: BinId, len: usize) -> usize {
        if !self.decide(0x7259, bin, self.truncate_rate) {
            return len;
        }
        let mut r = SplitMix64::new(mix(self.seed, 0x725A, bin.0, 1));
        // Keep a seeded prefix in [0, 90%] — a cut never delivers more.
        ((len as f64) * r.next_f64() * 0.9) as usize
    }
}

/// Iterator adapter applying a [`FaultModel`] to a `(BinId, Vec<R>)`
/// source, yielding [`FeedEvent`]s (see the module docs). Being an
/// iterator of events, it composes with [`RecoveredFeed`] to become a
/// clean `BinSource` again for offline entry paths.
#[derive(Debug)]
pub struct FaultyFeed<I, R>
where
    I: Iterator<Item = (BinId, Vec<R>)>,
    R: Clone,
{
    inner: I,
    model: FaultModel,
    /// Events decided but not yet yielded (duplicates, flushed holds).
    queue: VecDeque<FeedEvent<Vec<R>>>,
    /// Bins held back by reordering, waiting for successors to overtake.
    held: VecDeque<(BinId, Vec<R>, usize)>,
    /// Bins delivered since the last disconnect marker.
    since_disconnect: u64,
    exhausted: bool,
}

impl<I, R> FaultyFeed<I, R>
where
    I: Iterator<Item = (BinId, Vec<R>)>,
    R: Clone,
{
    /// Wrap a bin source with a fault model.
    pub fn new(inner: I, model: FaultModel) -> Self {
        FaultyFeed {
            inner,
            model,
            queue: VecDeque::new(),
            held: VecDeque::new(),
            since_disconnect: 0,
            exhausted: false,
        }
    }

    /// Queue the delivery events of one bin (stall marker, the bin, its
    /// duplicate, a disconnect marker), applying truncation.
    fn deliver(&mut self, bin: BinId, mut records: Vec<R>) {
        if let Some(stall) = self.model.stall_before(bin) {
            self.queue.push_back(FeedEvent::Stall(stall));
        }
        let keep = self.model.truncated_len(bin, records.len());
        records.truncate(keep);
        let dup = self.model.duplicates(bin);
        if dup {
            self.queue.push_back(FeedEvent::Bin(bin, records.clone()));
        }
        self.queue.push_back(FeedEvent::Bin(bin, records));
        self.since_disconnect += 1;
        if self.model.disconnect_every > 0 && self.since_disconnect >= self.model.disconnect_every {
            self.since_disconnect = 0;
            self.queue.push_back(FeedEvent::Disconnect);
        }
    }

    /// Age the held bins by one delivered successor; deliver those whose
    /// window expired.
    fn age_held(&mut self) {
        for held in &mut self.held {
            held.2 += 1;
        }
        while let Some(&(_, _, age)) = self.held.front() {
            if age >= self.model.reorder_window.max(1) {
                let (bin, records, _) = self.held.pop_front().unwrap();
                self.deliver(bin, records);
            } else {
                break;
            }
        }
    }
}

impl<I, R> Iterator for FaultyFeed<I, R>
where
    I: Iterator<Item = (BinId, Vec<R>)>,
    R: Clone,
{
    type Item = FeedEvent<Vec<R>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(event) = self.queue.pop_front() {
                return Some(event);
            }
            if self.exhausted {
                // Flush any bins still held back by reordering.
                let (bin, records, _) = self.held.pop_front()?;
                self.deliver(bin, records);
                continue;
            }
            match self.inner.next() {
                Some((bin, records)) => {
                    if self.model.reorders(bin) {
                        self.held.push_back((bin, records, 0));
                    } else {
                        self.deliver(bin, records);
                        self.age_held();
                    }
                }
                None => self.exhausted = true,
            }
        }
    }
}

/// The canonical client-side recovery over a [`FeedEvent`] stream: skip
/// transport markers, drop duplicate and out-of-order bins (a bin ≤ the
/// last accepted one), yield a strictly increasing `(BinId, F)` stream —
/// which is exactly what every analysis entry path requires, and the
/// same rejection rule the live collector applies.
#[derive(Debug)]
pub struct RecoveredFeed<I, F>
where
    I: Iterator<Item = FeedEvent<F>>,
{
    inner: I,
    last: Option<BinId>,
    /// Bins dropped as duplicate or out-of-order so far.
    pub rejected: usize,
    /// Transport markers (stalls + disconnects) skipped so far.
    pub markers: usize,
}

impl<I, F> RecoveredFeed<I, F>
where
    I: Iterator<Item = FeedEvent<F>>,
{
    /// Wrap a fault-event stream.
    pub fn new(inner: I) -> Self {
        RecoveredFeed {
            inner,
            last: None,
            rejected: 0,
            markers: 0,
        }
    }
}

impl<I, F> Iterator for RecoveredFeed<I, F>
where
    I: Iterator<Item = FeedEvent<F>>,
{
    type Item = (BinId, F);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.inner.next()? {
                FeedEvent::Bin(bin, feed) => {
                    if self.last.is_some_and(|last| bin.0 <= last.0) {
                        self.rejected += 1;
                        continue;
                    }
                    self.last = Some(bin);
                    return Some((bin, feed));
                }
                FeedEvent::Stall(_) | FeedEvent::Disconnect => {
                    self.markers += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins(n: u64) -> Vec<(BinId, Vec<u32>)> {
        (0..n).map(|b| (BinId(b), vec![b as u32; 10])).collect()
    }

    #[test]
    fn clean_model_is_passthrough() {
        let model = FaultModel::new(7);
        assert!(!model.is_active());
        let events: Vec<_> = FaultyFeed::new(bins(5).into_iter(), model).collect();
        assert_eq!(events.len(), 5);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(*event, FeedEvent::Bin(BinId(i as u64), vec![i as u32; 10]));
        }
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let a: Vec<_> = FaultyFeed::new(bins(60).into_iter(), FaultModel::hostile(42)).collect();
        let b: Vec<_> = FaultyFeed::new(bins(60).into_iter(), FaultModel::hostile(42)).collect();
        assert_eq!(a, b, "fault injection is not deterministic");
        let c: Vec<_> = FaultyFeed::new(bins(60).into_iter(), FaultModel::hostile(43)).collect();
        assert_ne!(a, c, "seed has no effect");
    }

    #[test]
    fn hostile_feed_exhibits_every_fault_class() {
        let events: Vec<_> =
            FaultyFeed::new(bins(200).into_iter(), FaultModel::hostile(11)).collect();
        let stalls = events
            .iter()
            .filter(|e| matches!(e, FeedEvent::Stall(_)))
            .count();
        let disconnects = events
            .iter()
            .filter(|e| matches!(e, FeedEvent::Disconnect))
            .count();
        let bins_seen: Vec<BinId> = events
            .iter()
            .filter_map(|e| match e {
                FeedEvent::Bin(b, _) => Some(*b),
                _ => None,
            })
            .collect();
        assert!(stalls > 0, "no stalls");
        assert!(disconnects > 0, "no disconnects");
        assert!(bins_seen.len() > 200, "no duplicates: {}", bins_seen.len());
        assert!(
            bins_seen.windows(2).any(|w| w[1].0 <= w[0].0),
            "no reordering/duplication visible in bin order"
        );
        let truncated = events
            .iter()
            .any(|e| matches!(e, FeedEvent::Bin(_, r) if r.len() < 10));
        assert!(truncated, "no truncation");
    }

    #[test]
    fn every_bin_is_eventually_delivered() {
        for seed in [1u64, 7, 99] {
            let events: Vec<_> =
                FaultyFeed::new(bins(80).into_iter(), FaultModel::hostile(seed)).collect();
            let mut seen: Vec<u64> = events
                .iter()
                .filter_map(|e| match e {
                    FeedEvent::Bin(b, _) => Some(b.0),
                    _ => None,
                })
                .collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen, (0..80).collect::<Vec<_>>(), "seed {seed}: bins lost");
        }
    }

    #[test]
    fn recovery_yields_strictly_increasing_bins() {
        let faulty = FaultyFeed::new(bins(100).into_iter(), FaultModel::hostile(5));
        let mut recovered = RecoveredFeed::new(faulty);
        let mut last = None;
        let mut count = 0usize;
        for (bin, records) in &mut recovered {
            if let Some(last) = last {
                assert!(bin.0 > last, "bin {} after {last}", bin.0);
            }
            last = Some(bin.0);
            assert!(records.len() <= 10);
            count += 1;
        }
        assert!(count <= 100);
        // Reordering means a held-back bin arriving late is rejected, so
        // some loss is expected under hostile faults — but most bins land.
        assert!(count > 50, "recovery kept only {count}/100 bins");
        assert!(recovered.rejected > 0, "hostile feed produced no rejects");
        assert!(recovered.markers > 0, "hostile feed produced no markers");
    }

    #[test]
    fn truncation_never_grows_a_bin() {
        let model = FaultModel {
            truncate_rate: 1.0,
            ..FaultModel::new(3)
        };
        for b in 0..50u64 {
            let n = model.truncated_len(BinId(b), 10);
            assert!(n < 10, "bin {b}: truncated to {n}");
        }
        // A truncated empty bin stays empty.
        assert_eq!(model.truncated_len(BinId(0), 0), 0);
    }
}
