//! Link dynamics: utilization, queueing delay, loss, and per-packet noise.
//!
//! The model reproduces the statistical texture that motivates the paper's
//! robust estimators (§3, Challenge 2):
//!
//! * **Queueing** — each link has a stable base utilization, a gentle
//!   diurnal swing, and per-hour jitter; queueing delay follows the
//!   M/M/1-shaped `u/(1−u)` curve scaled by capacity class. Events add
//!   `extra_util`, which is how DDoS congestion and leak-attracted traffic
//!   surface as tens-to-hundreds of milliseconds.
//! * **Loss** — negligible below a utilization knee, then rising steeply
//!   (REDish AQM): heavy congestion mostly *delays* packets and only drops
//!   a few, matching the K-root observation that "packet loss at root
//!   servers has been negligible" while delays soared. Events can also
//!   force loss outright (IXP fabric outage → loss = 1).
//! * **Per-packet noise** — a log-normal body, occasional Pareto slow-path
//!   spikes (ICMP generation on the router CPU, [28]), and rare gross
//!   outliers. The outliers are what break the arithmetic mean in Fig. 3b
//!   while leaving the median untouched.
//!
//! Everything is a pure function of `(seed, link, bin | packet identity)` —
//! no hidden state — so traceroute results are reproducible and
//! time-travel queries are allowed.

use crate::ids::{LinkId, RouterId};
use crate::topology::{CapacityClass, Link};
use pinpoint_model::SimTime;
use pinpoint_stats::distributions::{LogNormal, Pareto};
use pinpoint_stats::rng::SplitMix64;

fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x
        .rotate_left(27)
        .wrapping_add(c)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = x
        .rotate_left(31)
        .wrapping_add(d)
        .wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 30)
}

/// Parameters of the delay/queueing model.
#[derive(Debug, Clone)]
pub struct DelayModel {
    seed: u64,
    /// Base utilization is drawn uniformly from this range per link.
    pub base_util: (f64, f64),
    /// Peak-to-mean amplitude of the diurnal utilization swing.
    pub diurnal_amplitude: f64,
    /// Std-dev of per-hour utilization jitter.
    pub hourly_jitter: f64,
    /// Queue delay at u = 0.5 for a [`CapacityClass::Standard`] link (ms).
    pub queue_scale_ms: f64,
}

impl DelayModel {
    /// Model with the defaults used by the scenarios.
    pub fn new(seed: u64) -> Self {
        DelayModel {
            seed,
            base_util: (0.15, 0.45),
            diurnal_amplitude: 0.04,
            hourly_jitter: 0.01,
            queue_scale_ms: 1.0,
        }
    }

    fn capacity_factor(c: CapacityClass) -> f64 {
        match c {
            // Big pipes queue less at a given utilization.
            CapacityClass::Backbone => 0.5,
            CapacityClass::Standard => 1.0,
            CapacityClass::Edge => 1.6,
        }
    }

    /// Stable per-link base utilization.
    pub fn base_utilization(&self, link: LinkId) -> f64 {
        let mut r = SplitMix64::new(mix(self.seed, 0xBA5E, link.0 as u64, 0));
        r.next_range_f64(self.base_util.0, self.base_util.1)
    }

    /// Utilization of a link at time `t`, including `extra` from events.
    ///
    /// Clamped to `[0.01, 0.98]`: the cap keeps the `u/(1−u)` queue finite
    /// and bounds single-link event deltas at realistic levels (tens of
    /// milliseconds; the paper's largest per-link shifts come from several
    /// congested links stacking along a path).
    pub fn utilization(&self, link: LinkId, t: SimTime, extra: f64) -> f64 {
        let base = self.base_utilization(link);
        let hour_of_day = (t.secs() % 86_400) as f64 / 3600.0;
        // Per-link phase so the world is not synchronized.
        let phase = (mix(self.seed, 0x0D1A, link.0 as u64, 1) % 24) as f64;
        let diurnal = self.diurnal_amplitude
            * (2.0 * std::f64::consts::PI * (hour_of_day + phase) / 24.0).sin();
        let bin = t.secs() / 3600;
        let mut r = SplitMix64::new(mix(self.seed, 0x7177, link.0 as u64, bin));
        let jitter = (r.next_f64() - 0.5) * 2.0 * self.hourly_jitter;
        (base + diurnal + jitter + extra).clamp(0.01, 0.98)
    }

    /// One-way delay contribution of a link at time `t` (ms): propagation
    /// plus queueing.
    pub fn link_delay_ms(&self, link: &Link, t: SimTime, extra_util: f64) -> f64 {
        let u = self.utilization(link.id, t, extra_util);
        let queue = self.queue_scale_ms * Self::capacity_factor(link.capacity) * u / (1.0 - u);
        link.base_delay_ms + queue
    }
}

/// Parameters of the loss model.
#[derive(Debug, Clone)]
pub struct LossModel {
    seed: u64,
    /// Utilization above which AQM starts dropping.
    pub knee: f64,
    /// Loss probability as utilization reaches 1.0.
    pub max_loss: f64,
    /// Background random loss floor (transmission errors etc.).
    pub floor: f64,
}

impl LossModel {
    /// Model with the defaults used by the scenarios.
    ///
    /// The knee sits high: AQM keeps loss negligible until links approach
    /// saturation (§3 Challenge 3 — "routers implementing active queue
    /// management … drop packets to avoid significant delay increase", yet
    /// the root-server DDoS showed huge delays with negligible loss).
    pub fn new(seed: u64) -> Self {
        LossModel {
            seed,
            knee: 0.95,
            max_loss: 0.5,
            floor: 2e-4,
        }
    }

    /// Loss probability on a link at utilization `u`, with `forced` loss
    /// from events (e.g. a fabric outage) overriding upward.
    pub fn loss_probability(&self, u: f64, forced: f64) -> f64 {
        let congestion = if u <= self.knee {
            0.0
        } else {
            let x = (u - self.knee) / (1.0 - self.knee);
            x * x * self.max_loss
        };
        (self.floor + congestion).max(forced).clamp(0.0, 1.0)
    }

    /// Deterministic per-packet drop decision.
    ///
    /// The packet identity `(link, t, flow, salt)` seeds the draw, so
    /// repeating a query replays the same fate.
    pub fn drops(&self, link: LinkId, t: SimTime, flow: u64, salt: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut r = SplitMix64::new(mix(self.seed ^ salt, link.0 as u64, t.secs(), flow));
        r.next_bool(p)
    }
}

/// Parameters of the per-packet noise model.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    seed: u64,
    body: LogNormal,
    /// Probability of an ICMP slow-path spike.
    pub spike_prob: f64,
    spike: Pareto,
    /// Probability of a gross measurement outlier.
    pub outlier_prob: f64,
    outlier: Pareto,
    /// Cap applied to any single noise draw (ms).
    pub cap_ms: f64,
    icmp_gen: LogNormal,
}

impl NoiseModel {
    /// Model with the defaults used by the scenarios.
    ///
    /// Tuned so a well-observed link's hourly Wilson CI spans a few hundred
    /// microseconds to a few milliseconds — matching Fig. 2, where raw
    /// differential RTTs have σ ≈ 12 ms yet medians move less than 0.2 ms.
    pub fn new(seed: u64) -> Self {
        NoiseModel {
            seed,
            body: LogNormal::from_median(0.25, 0.7),
            spike_prob: 0.03,
            spike: Pareto::new(2.5, 1.4),
            outlier_prob: 4e-4,
            outlier: Pareto::new(80.0, 1.2),
            cap_ms: 3000.0,
            icmp_gen: LogNormal::from_median(0.35, 0.7),
        }
    }

    /// Per-packet additive RTT noise for a reply from `router` (ms).
    ///
    /// Includes the router's ICMP generation time (slow path) and the
    /// stochastic components described in the module docs.
    pub fn rtt_noise_ms(&self, router: RouterId, t: SimTime, flow: u64, packet: u64) -> f64 {
        let mut r = SplitMix64::new(mix(
            self.seed,
            router.0 as u64,
            t.secs().wrapping_mul(3).wrapping_add(packet),
            flow,
        ));
        let mut total = self.body.sample(&mut r) + self.icmp_gen.sample(&mut r);
        if r.next_bool(self.spike_prob) {
            total += self.spike.sample(&mut r);
        }
        if r.next_bool(self.outlier_prob) {
            total += self.outlier.sample(&mut r);
        }
        total.min(self.cap_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkKind;
    use pinpoint_stats::quantile::median;

    fn link(id: u32, base: f64, cap: CapacityClass) -> Link {
        Link {
            id: LinkId(id),
            a: RouterId(0),
            b: RouterId(1),
            kind: LinkKind::IntraAs,
            capacity: cap,
            base_delay_ms: base,
        }
    }

    #[test]
    fn utilization_bounded_and_stable_per_bin() {
        let m = DelayModel::new(9);
        for lid in 0..50u32 {
            for h in 0..48u64 {
                let t = SimTime::from_hours(h);
                let u = m.utilization(LinkId(lid), t, 0.0);
                assert!((0.01..=0.98).contains(&u));
                // Same bin, same value.
                let u2 = m.utilization(LinkId(lid), t + SimTime(100), 0.0);
                // Jitter is per-hour; within-hour values share the bin seed
                // but differ by diurnal position — tolerance covers that.
                assert!((u - u2).abs() < 0.01, "{u} vs {u2}");
            }
        }
    }

    #[test]
    fn extra_utilization_raises_delay() {
        let m = DelayModel::new(9);
        let l = link(3, 5.0, CapacityClass::Standard);
        let t = SimTime::from_hours(7);
        let quiet = m.link_delay_ms(&l, t, 0.0);
        let congested = m.link_delay_ms(&l, t, 0.55);
        assert!(quiet >= 5.0);
        assert!(
            congested > quiet + 2.0,
            "congestion invisible: {quiet} → {congested}"
        );
        // Saturated link queues dramatically.
        let saturated = m.link_delay_ms(&l, t, 2.0);
        assert!(saturated > quiet + 35.0, "saturated {saturated}");
    }

    #[test]
    fn capacity_class_orders_queueing() {
        let m = DelayModel::new(1);
        let t = SimTime::from_hours(3);
        // Same link id so the base utilization matches across classes.
        let q = |cap| m.link_delay_ms(&link(7, 1.0, cap), t, 0.4) - 1.0;
        assert!(q(CapacityClass::Backbone) < q(CapacityClass::Standard));
        assert!(q(CapacityClass::Standard) < q(CapacityClass::Edge));
    }

    #[test]
    fn loss_curve_shape() {
        let m = LossModel::new(4);
        assert_eq!(m.loss_probability(0.5, 0.0), m.floor);
        assert_eq!(m.loss_probability(0.9, 0.0), m.floor);
        let near = m.loss_probability(0.97, 0.0);
        let at_full = m.loss_probability(1.0, 0.0);
        assert!(near > m.floor && near < at_full);
        assert!((at_full - (m.floor + m.max_loss)).abs() < 1e-12);
        // Forced loss dominates.
        assert_eq!(m.loss_probability(0.1, 1.0), 1.0);
    }

    #[test]
    fn drops_deterministic_and_rate_accurate() {
        let m = LossModel::new(8);
        let p = 0.2;
        let mut dropped = 0;
        for flow in 0..20_000u64 {
            let d1 = m.drops(LinkId(1), SimTime(500), flow, 0, p);
            let d2 = m.drops(LinkId(1), SimTime(500), flow, 0, p);
            assert_eq!(d1, d2, "non-deterministic drop");
            if d1 {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / 20_000.0;
        assert!((rate - p).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn noise_is_positive_and_median_small() {
        let m = NoiseModel::new(3);
        let samples: Vec<f64> = (0..20_000)
            .map(|i| m.rtt_noise_ms(RouterId(5), SimTime(i), i, 0))
            .collect();
        assert!(samples.iter().all(|&x| x > 0.0 && x <= 3000.0));
        let med = median(&samples).unwrap();
        assert!(med < 1.5, "median noise {med} ms");
        // Heavy tail exists (some samples far above the median) — this is
        // what defeats the mean-based detector.
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 30.0 * med, "no heavy tail: max {max}, med {med}");
    }

    #[test]
    fn noise_deterministic_per_packet_identity() {
        let m = NoiseModel::new(3);
        let a = m.rtt_noise_ms(RouterId(1), SimTime(9), 7, 2);
        let b = m.rtt_noise_ms(RouterId(1), SimTime(9), 7, 2);
        assert_eq!(a, b);
        let c = m.rtt_noise_ms(RouterId(1), SimTime(9), 7, 3);
        assert_ne!(a, c, "packet index ignored");
    }
}
