//! Link dynamics: utilization, queueing delay, loss, and per-packet noise.
//!
//! The model reproduces the statistical texture that motivates the paper's
//! robust estimators (§3, Challenge 2):
//!
//! * **Queueing** — each link has a stable base utilization, a gentle
//!   diurnal swing, and per-hour jitter; queueing delay follows the
//!   M/M/1-shaped `u/(1−u)` curve scaled by capacity class. Events add
//!   `extra_util`, which is how DDoS congestion and leak-attracted traffic
//!   surface as tens-to-hundreds of milliseconds.
//! * **Loss** — negligible below a utilization knee, then rising steeply
//!   (REDish AQM): heavy congestion mostly *delays* packets and only drops
//!   a few, matching the K-root observation that "packet loss at root
//!   servers has been negligible" while delays soared. Events can also
//!   force loss outright (IXP fabric outage → loss = 1).
//! * **Per-packet noise** — a log-normal body, occasional Pareto slow-path
//!   spikes (ICMP generation on the router CPU, [28]), and rare gross
//!   outliers. The outliers are what break the arithmetic mean in Fig. 3b
//!   while leaving the median untouched.
//!
//! Everything is a pure function of `(seed, link, bin | packet identity)` —
//! no hidden state — so traceroute results are reproducible and
//! time-travel queries are allowed.

use crate::ids::{LinkId, RouterId};
use crate::topology::{CapacityClass, Link};
use pinpoint_model::records::{Hop, TracerouteRecord};
use pinpoint_model::SimTime;
use pinpoint_stats::distributions::{LogNormal, Pareto};
use pinpoint_stats::rng::SplitMix64;

fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x
        .rotate_left(27)
        .wrapping_add(c)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = x
        .rotate_left(31)
        .wrapping_add(d)
        .wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 30)
}

/// Parameters of the delay/queueing model.
#[derive(Debug, Clone)]
pub struct DelayModel {
    seed: u64,
    /// Base utilization is drawn uniformly from this range per link.
    pub base_util: (f64, f64),
    /// Peak-to-mean amplitude of the diurnal utilization swing.
    pub diurnal_amplitude: f64,
    /// Std-dev of per-hour utilization jitter.
    pub hourly_jitter: f64,
    /// Queue delay at u = 0.5 for a [`CapacityClass::Standard`] link (ms).
    pub queue_scale_ms: f64,
}

impl DelayModel {
    /// Model with the defaults used by the scenarios.
    pub fn new(seed: u64) -> Self {
        DelayModel {
            seed,
            base_util: (0.15, 0.45),
            diurnal_amplitude: 0.04,
            hourly_jitter: 0.01,
            queue_scale_ms: 1.0,
        }
    }

    fn capacity_factor(c: CapacityClass) -> f64 {
        match c {
            // Big pipes queue less at a given utilization.
            CapacityClass::Backbone => 0.5,
            CapacityClass::Standard => 1.0,
            CapacityClass::Edge => 1.6,
        }
    }

    /// Stable per-link base utilization.
    pub fn base_utilization(&self, link: LinkId) -> f64 {
        let mut r = SplitMix64::new(mix(self.seed, 0xBA5E, link.0 as u64, 0));
        r.next_range_f64(self.base_util.0, self.base_util.1)
    }

    /// Utilization of a link at time `t`, including `extra` from events.
    ///
    /// Clamped to `[0.01, 0.98]`: the cap keeps the `u/(1−u)` queue finite
    /// and bounds single-link event deltas at realistic levels (tens of
    /// milliseconds; the paper's largest per-link shifts come from several
    /// congested links stacking along a path).
    pub fn utilization(&self, link: LinkId, t: SimTime, extra: f64) -> f64 {
        let base = self.base_utilization(link);
        let hour_of_day = (t.secs() % 86_400) as f64 / 3600.0;
        // Per-link phase so the world is not synchronized.
        let phase = (mix(self.seed, 0x0D1A, link.0 as u64, 1) % 24) as f64;
        let diurnal = self.diurnal_amplitude
            * (2.0 * std::f64::consts::PI * (hour_of_day + phase) / 24.0).sin();
        let bin = t.secs() / 3600;
        let mut r = SplitMix64::new(mix(self.seed, 0x7177, link.0 as u64, bin));
        let jitter = (r.next_f64() - 0.5) * 2.0 * self.hourly_jitter;
        (base + diurnal + jitter + extra).clamp(0.01, 0.98)
    }

    /// One-way delay contribution of a link at time `t` (ms): propagation
    /// plus queueing.
    pub fn link_delay_ms(&self, link: &Link, t: SimTime, extra_util: f64) -> f64 {
        let u = self.utilization(link.id, t, extra_util);
        let queue = self.queue_scale_ms * Self::capacity_factor(link.capacity) * u / (1.0 - u);
        link.base_delay_ms + queue
    }
}

/// Parameters of the loss model.
#[derive(Debug, Clone)]
pub struct LossModel {
    seed: u64,
    /// Utilization above which AQM starts dropping.
    pub knee: f64,
    /// Loss probability as utilization reaches 1.0.
    pub max_loss: f64,
    /// Background random loss floor (transmission errors etc.).
    pub floor: f64,
}

impl LossModel {
    /// Model with the defaults used by the scenarios.
    ///
    /// The knee sits high: AQM keeps loss negligible until links approach
    /// saturation (§3 Challenge 3 — "routers implementing active queue
    /// management … drop packets to avoid significant delay increase", yet
    /// the root-server DDoS showed huge delays with negligible loss).
    pub fn new(seed: u64) -> Self {
        LossModel {
            seed,
            knee: 0.95,
            max_loss: 0.5,
            floor: 2e-4,
        }
    }

    /// Loss probability on a link at utilization `u`, with `forced` loss
    /// from events (e.g. a fabric outage) overriding upward.
    pub fn loss_probability(&self, u: f64, forced: f64) -> f64 {
        let congestion = if u <= self.knee {
            0.0
        } else {
            let x = (u - self.knee) / (1.0 - self.knee);
            x * x * self.max_loss
        };
        (self.floor + congestion).max(forced).clamp(0.0, 1.0)
    }

    /// Deterministic per-packet drop decision.
    ///
    /// The packet identity `(link, t, flow, salt)` seeds the draw, so
    /// repeating a query replays the same fate.
    pub fn drops(&self, link: LinkId, t: SimTime, flow: u64, salt: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut r = SplitMix64::new(mix(self.seed ^ salt, link.0 as u64, t.secs(), flow));
        r.next_bool(p)
    }
}

/// Parameters of the per-packet noise model.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    seed: u64,
    body: LogNormal,
    /// Probability of an ICMP slow-path spike.
    pub spike_prob: f64,
    spike: Pareto,
    /// Probability of a gross measurement outlier.
    pub outlier_prob: f64,
    outlier: Pareto,
    /// Cap applied to any single noise draw (ms).
    pub cap_ms: f64,
    icmp_gen: LogNormal,
}

impl NoiseModel {
    /// Model with the defaults used by the scenarios.
    ///
    /// Tuned so a well-observed link's hourly Wilson CI spans a few hundred
    /// microseconds to a few milliseconds — matching Fig. 2, where raw
    /// differential RTTs have σ ≈ 12 ms yet medians move less than 0.2 ms.
    pub fn new(seed: u64) -> Self {
        NoiseModel {
            seed,
            body: LogNormal::from_median(0.25, 0.7),
            spike_prob: 0.03,
            spike: Pareto::new(2.5, 1.4),
            outlier_prob: 4e-4,
            outlier: Pareto::new(80.0, 1.2),
            cap_ms: 3000.0,
            icmp_gen: LogNormal::from_median(0.35, 0.7),
        }
    }

    /// Per-packet additive RTT noise for a reply from `router` (ms).
    ///
    /// Includes the router's ICMP generation time (slow path) and the
    /// stochastic components described in the module docs.
    pub fn rtt_noise_ms(&self, router: RouterId, t: SimTime, flow: u64, packet: u64) -> f64 {
        let mut r = SplitMix64::new(mix(
            self.seed,
            router.0 as u64,
            t.secs().wrapping_mul(3).wrapping_add(packet),
            flow,
        ));
        let mut total = self.body.sample(&mut r) + self.icmp_gen.sample(&mut r);
        if r.next_bool(self.spike_prob) {
            total += self.spike.sample(&mut r);
        }
        if r.next_bool(self.outlier_prob) {
            total += self.outlier.sample(&mut r);
        }
        total.min(self.cap_ms)
    }
}

/// Measurement-artifact injection: corrupts *emitted* traceroute records
/// the way real Atlas feeds are corrupted, while the network engine itself
/// stays clean and pure.
///
/// The noise models above perturb what the network genuinely did; this
/// model perturbs what the *measurement* claims the network did — the
/// artifact classes the traceroute-artifact literature catalogs and the
/// paper's deployment has to survive:
///
/// * **Per-flow load-balancer path divergence** — some probe packets take
///   a sibling ECMP branch, so one TTL's responses come from a router
///   that is not on the path the adjacent TTLs saw, fabricating IP links
///   that do not exist. A quarter of diverged hops instead replay a
///   router from two TTLs earlier — the measured-routing-loop shape that
///   load balancing paints into records, which a sanitizer must
///   quarantine rather than repair.
/// * **Wrong-hop reply attribution** — ICMP responses matched to the
///   wrong probe (netpoke measured 56 % mis-attributed replies in the
///   wild), modeled as adjacent TTLs swapping their reply sets: reversed
///   false links plus non-monotone RTTs.
/// * **Missing hops** — a TTL's responses are lost in collection, so the
///   hops on either side appear adjacent (another false link).
/// * **Duplicated hops** — the same router reported at two consecutive
///   TTLs (firmware off-by-one; loop-like records).
/// * **Probe clock skew** — a skewed probe inflates every RTT it reports
///   by a slowly drifting offset. Differential RTTs subtract near-hop
///   from far-hop times measured by the *same* probe, so a constant
///   offset cancels — injecting it proves that robustness.
///
/// Every decision is a pure function of `(seed, record identity)` — same
/// record, same corruption — so corrupted runs stay exactly reproducible
/// and chunking/streaming/pipelining cannot change what the detectors see.
/// Each artifact class has an independent `0.0–1.0` rate knob; a rate of
/// `0.0` disables the class, and [`ArtifactModel::new`] starts with every
/// class disabled.
#[derive(Debug, Clone)]
pub struct ArtifactModel {
    seed: u64,
    /// Per-hop probability that a middle hop's responses come from a
    /// divergent load-balancer sibling (same /24, different router),
    /// fabricating two false links around it; a quarter of the diverged
    /// hops instead repeat the router two TTLs back, painting a loop.
    pub false_link_rate: f64,
    /// Per-adjacent-pair probability that two TTLs swap their reply sets
    /// (wrong-hop ICMP attribution).
    pub wrong_hop_rate: f64,
    /// Per-hop probability that a middle hop vanishes from the record.
    pub missing_hop_rate: f64,
    /// Per-hop probability that a hop is duplicated at the next TTL.
    pub duplicate_hop_rate: f64,
    /// Fraction of probes whose clock is skewed.
    pub clock_skew_rate: f64,
    /// Largest per-probe clock-skew offset (ms); the actual offset drifts
    /// per hour within `[0.2, 1.0] ×` this.
    pub max_skew_ms: f64,
}

impl ArtifactModel {
    /// A clean model: every artifact class disabled.
    pub fn new(seed: u64) -> Self {
        ArtifactModel {
            seed,
            false_link_rate: 0.0,
            wrong_hop_rate: 0.0,
            missing_hop_rate: 0.0,
            duplicate_hop_rate: 0.0,
            clock_skew_rate: 0.0,
            max_skew_ms: 250.0,
        }
    }

    /// Mild corruption: a few percent of hops affected — the texture of a
    /// well-behaved production feed.
    pub fn mild(seed: u64) -> Self {
        ArtifactModel {
            false_link_rate: 0.02,
            wrong_hop_rate: 0.01,
            missing_hop_rate: 0.02,
            duplicate_hop_rate: 0.02,
            clock_skew_rate: 0.05,
            ..ArtifactModel::new(seed)
        }
    }

    /// Hostile corruption: every class an order of magnitude above mild —
    /// a feed no sane operator would ship, kept as the stress grade.
    pub fn hostile(seed: u64) -> Self {
        ArtifactModel {
            false_link_rate: 0.10,
            wrong_hop_rate: 0.06,
            missing_hop_rate: 0.08,
            duplicate_hop_rate: 0.08,
            clock_skew_rate: 0.25,
            ..ArtifactModel::new(seed)
        }
    }

    /// Whether any artifact class is enabled.
    pub fn is_active(&self) -> bool {
        self.false_link_rate > 0.0
            || self.wrong_hop_rate > 0.0
            || self.missing_hop_rate > 0.0
            || self.duplicate_hop_rate > 0.0
            || self.clock_skew_rate > 0.0
    }

    /// Stable per-record identity hash — every artifact class derives its
    /// own RNG from this, so tuning one class never shifts another's draws.
    fn record_ident(&self, rec: &TracerouteRecord) -> u64 {
        mix(
            self.seed,
            u64::from(rec.probe_id.0),
            rec.timestamp.secs(),
            (u64::from(rec.msm_id.0) << 16) ^ u64::from(rec.paris_id),
        )
    }

    /// Corrupt one emitted record in place (deterministically; see the
    /// type docs for the artifact classes and their application order:
    /// clock skew, wrong-hop swaps, load-balancer divergence, missing
    /// hops, duplicated hops).
    pub fn corrupt(&self, rec: &mut TracerouteRecord) {
        if !self.is_active() || rec.hops.is_empty() {
            return;
        }
        let ident = self.record_ident(rec);
        self.apply_clock_skew(rec);
        self.apply_wrong_hop(rec, ident);
        self.apply_false_links(rec, ident);
        self.apply_missing_hops(rec, ident);
        self.apply_duplicate_hops(rec, ident);
    }

    /// Clock skew: probe selection is persistent (a skewed probe stays
    /// skewed), the offset drifts per hour, and every responsive reply of
    /// the record shifts by the same amount — which differential RTTs
    /// cancel.
    fn apply_clock_skew(&self, rec: &mut TracerouteRecord) {
        if self.clock_skew_rate <= 0.0 {
            return;
        }
        let probe = u64::from(rec.probe_id.0);
        let mut sel = SplitMix64::new(mix(self.seed, 0x5E3A, probe, 0));
        if !sel.next_bool(self.clock_skew_rate) {
            return;
        }
        let hour = rec.timestamp.secs() / 3600;
        let mut drift = SplitMix64::new(mix(self.seed, 0x5E3B, probe, hour));
        let skew = drift.next_range_f64(0.2, 1.0) * self.max_skew_ms;
        for hop in &mut rec.hops {
            for reply in &mut hop.replies {
                if let Some(ms) = reply.rtt_ms {
                    reply.rtt_ms = Some(ms + skew);
                }
            }
        }
    }

    /// Wrong-hop attribution: adjacent TTLs swap their reply sets (the
    /// addresses AND the RTTs — the replies really arrived, they were
    /// just matched to the wrong probe packet).
    fn apply_wrong_hop(&self, rec: &mut TracerouteRecord, ident: u64) {
        if self.wrong_hop_rate <= 0.0 || rec.hops.len() < 2 {
            return;
        }
        let mut r = SplitMix64::new(mix(ident, 0x3209, 1, 0));
        for i in 0..rec.hops.len() - 1 {
            if r.next_bool(self.wrong_hop_rate) {
                let (a, b) = rec.hops.split_at_mut(i + 1);
                std::mem::swap(&mut a[i].replies, &mut b[0].replies);
            }
        }
    }

    /// Load-balancer path divergence: a middle hop's responses are
    /// rewritten to a sibling address in the same /24 (the parallel ECMP
    /// branch), fabricating `near → sibling` and `sibling → far` links.
    /// A quarter of the diverged hops instead repeat the responder from
    /// two TTLs back — the measured-routing-loop artifact, which is not
    /// repairable and must be quarantined downstream.
    fn apply_false_links(&self, rec: &mut TracerouteRecord, ident: u64) {
        if self.false_link_rate <= 0.0 || rec.hops.len() < 3 {
            return;
        }
        let mut r = SplitMix64::new(mix(ident, 0x71A8, 2, 0));
        let last = rec.hops.len() - 1;
        for i in 1..last {
            if !r.next_bool(self.false_link_rate) {
                continue;
            }
            let paint_loop = r.next_bool(0.25);
            let loop_target = if paint_loop && i >= 2 {
                rec.hops[i - 2].first_responder()
            } else {
                None
            };
            for reply in &mut rec.hops[i].replies {
                if let Some(ip) = reply.from {
                    reply.from = Some(loop_target.unwrap_or_else(|| {
                        let o = ip.octets();
                        std::net::Ipv4Addr::new(o[0], o[1], o[2], o[3] ^ 0x40)
                    }));
                }
            }
        }
    }

    /// Missing hops: middle hops vanish from the record entirely, so the
    /// hops on either side look adjacent.
    fn apply_missing_hops(&self, rec: &mut TracerouteRecord, ident: u64) {
        if self.missing_hop_rate <= 0.0 || rec.hops.len() < 3 {
            return;
        }
        let mut r = SplitMix64::new(mix(ident, 0x90F1, 3, 0));
        let last = rec.hops.len() - 1;
        let mut i = 0;
        rec.hops.retain(|_| {
            let middle = i > 0 && i < last;
            i += 1;
            !(middle && r.next_bool(self.missing_hop_rate))
        });
    }

    /// Duplicated hops: a hop reappears at the next TTL with jittered
    /// RTTs — the loop-shaped firmware artifact the sanitizer collapses.
    fn apply_duplicate_hops(&self, rec: &mut TracerouteRecord, ident: u64) {
        if self.duplicate_hop_rate <= 0.0 || rec.hops.is_empty() {
            return;
        }
        let mut r = SplitMix64::new(mix(ident, 0xD0B7, 4, 0));
        let mut out: Vec<Hop> = Vec::with_capacity(rec.hops.len() + 1);
        for hop in rec.hops.drain(..) {
            let duplicate = out.len() < 62 && r.next_bool(self.duplicate_hop_rate);
            if duplicate {
                let mut dup = hop.clone();
                for reply in &mut dup.replies {
                    if let Some(ms) = reply.rtt_ms {
                        reply.rtt_ms = Some(ms + r.next_range_f64(0.0, 0.4));
                    }
                }
                dup.ttl = dup.ttl.saturating_add(1);
                out.push(hop);
                out.push(dup);
            } else {
                out.push(hop);
            }
        }
        rec.hops = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkKind;
    use pinpoint_stats::quantile::median;

    fn link(id: u32, base: f64, cap: CapacityClass) -> Link {
        Link {
            id: LinkId(id),
            a: RouterId(0),
            b: RouterId(1),
            kind: LinkKind::IntraAs,
            capacity: cap,
            base_delay_ms: base,
        }
    }

    #[test]
    fn utilization_bounded_and_stable_per_bin() {
        let m = DelayModel::new(9);
        for lid in 0..50u32 {
            for h in 0..48u64 {
                let t = SimTime::from_hours(h);
                let u = m.utilization(LinkId(lid), t, 0.0);
                assert!((0.01..=0.98).contains(&u));
                // Same bin, same value.
                let u2 = m.utilization(LinkId(lid), t + SimTime(100), 0.0);
                // Jitter is per-hour; within-hour values share the bin seed
                // but differ by diurnal position — tolerance covers that.
                assert!((u - u2).abs() < 0.01, "{u} vs {u2}");
            }
        }
    }

    #[test]
    fn extra_utilization_raises_delay() {
        let m = DelayModel::new(9);
        let l = link(3, 5.0, CapacityClass::Standard);
        let t = SimTime::from_hours(7);
        let quiet = m.link_delay_ms(&l, t, 0.0);
        let congested = m.link_delay_ms(&l, t, 0.55);
        assert!(quiet >= 5.0);
        assert!(
            congested > quiet + 2.0,
            "congestion invisible: {quiet} → {congested}"
        );
        // Saturated link queues dramatically.
        let saturated = m.link_delay_ms(&l, t, 2.0);
        assert!(saturated > quiet + 35.0, "saturated {saturated}");
    }

    #[test]
    fn capacity_class_orders_queueing() {
        let m = DelayModel::new(1);
        let t = SimTime::from_hours(3);
        // Same link id so the base utilization matches across classes.
        let q = |cap| m.link_delay_ms(&link(7, 1.0, cap), t, 0.4) - 1.0;
        assert!(q(CapacityClass::Backbone) < q(CapacityClass::Standard));
        assert!(q(CapacityClass::Standard) < q(CapacityClass::Edge));
    }

    #[test]
    fn loss_curve_shape() {
        let m = LossModel::new(4);
        assert_eq!(m.loss_probability(0.5, 0.0), m.floor);
        assert_eq!(m.loss_probability(0.9, 0.0), m.floor);
        let near = m.loss_probability(0.97, 0.0);
        let at_full = m.loss_probability(1.0, 0.0);
        assert!(near > m.floor && near < at_full);
        assert!((at_full - (m.floor + m.max_loss)).abs() < 1e-12);
        // Forced loss dominates.
        assert_eq!(m.loss_probability(0.1, 1.0), 1.0);
    }

    #[test]
    fn drops_deterministic_and_rate_accurate() {
        let m = LossModel::new(8);
        let p = 0.2;
        let mut dropped = 0;
        for flow in 0..20_000u64 {
            let d1 = m.drops(LinkId(1), SimTime(500), flow, 0, p);
            let d2 = m.drops(LinkId(1), SimTime(500), flow, 0, p);
            assert_eq!(d1, d2, "non-deterministic drop");
            if d1 {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / 20_000.0;
        assert!((rate - p).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn noise_is_positive_and_median_small() {
        let m = NoiseModel::new(3);
        let samples: Vec<f64> = (0..20_000)
            .map(|i| m.rtt_noise_ms(RouterId(5), SimTime(i), i, 0))
            .collect();
        assert!(samples.iter().all(|&x| x > 0.0 && x <= 3000.0));
        let med = median(&samples).unwrap();
        assert!(med < 1.5, "median noise {med} ms");
        // Heavy tail exists (some samples far above the median) — this is
        // what defeats the mean-based detector.
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 30.0 * med, "no heavy tail: max {max}, med {med}");
    }

    #[test]
    fn noise_deterministic_per_packet_identity() {
        let m = NoiseModel::new(3);
        let a = m.rtt_noise_ms(RouterId(1), SimTime(9), 7, 2);
        let b = m.rtt_noise_ms(RouterId(1), SimTime(9), 7, 2);
        assert_eq!(a, b);
        let c = m.rtt_noise_ms(RouterId(1), SimTime(9), 7, 3);
        assert_ne!(a, c, "packet index ignored");
    }

    use pinpoint_model::records::Reply;
    use pinpoint_model::{Asn, MeasurementId, ProbeId};
    use std::net::Ipv4Addr;

    fn trace(probe: u32, hops: usize) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(5),
            probe_id: ProbeId(probe),
            probe_asn: Asn(64500),
            dst: Ipv4Addr::new(198, 51, 100, 1),
            timestamp: SimTime(7 * 3600 + 120),
            paris_id: 2,
            hops: (0..hops)
                .map(|i| {
                    Hop::new(
                        i as u8 + 1,
                        (0..3)
                            .map(|k| {
                                Reply::new(
                                    Ipv4Addr::new(10, 0, i as u8, 1),
                                    5.0 * (i as f64 + 1.0) + 0.1 * f64::from(k),
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
            destination_reached: true,
        }
    }

    #[test]
    fn artifact_model_inactive_is_identity() {
        let m = ArtifactModel::new(7);
        assert!(!m.is_active());
        let want = trace(1, 6);
        let mut got = want.clone();
        m.corrupt(&mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn artifact_corruption_is_deterministic_per_record() {
        let m = ArtifactModel::hostile(7);
        assert!(m.is_active());
        let mut a = trace(1, 8);
        let mut b = trace(1, 8);
        m.corrupt(&mut a);
        m.corrupt(&mut b);
        assert_eq!(a, b, "same record identity must corrupt identically");
        // A different record identity draws an independent fate (this
        // particular seed/probe pair demonstrably differs — deterministic).
        let mut c = trace(2, 8);
        m.corrupt(&mut c);
        assert_ne!(c.hops, a.hops, "corruption ignored record identity");
    }

    #[test]
    fn artifact_classes_do_what_they_say() {
        // Drive each class at rate 1.0 in isolation over a known record.
        let base = trace(3, 6);

        let mut m = ArtifactModel::new(11);
        m.missing_hop_rate = 1.0;
        let mut r = base.clone();
        m.corrupt(&mut r);
        assert_eq!(r.hops.len(), 2, "every middle hop must vanish");

        let mut m = ArtifactModel::new(11);
        m.duplicate_hop_rate = 1.0;
        let mut r = base.clone();
        m.corrupt(&mut r);
        assert_eq!(r.hops.len(), 12, "every hop must duplicate");
        assert_eq!(r.hops[0].first_responder(), r.hops[1].first_responder());

        let mut m = ArtifactModel::new(11);
        m.false_link_rate = 1.0;
        let mut r = base.clone();
        m.corrupt(&mut r);
        for (i, hop) in r.hops.iter().enumerate() {
            let diverged = hop.first_responder() != base.hops[i].first_responder();
            let middle = i > 0 && i + 1 < base.hops.len();
            assert_eq!(
                diverged, middle,
                "hop {i}: divergence must hit middles only"
            );
        }

        let mut m = ArtifactModel::new(11);
        m.clock_skew_rate = 1.0;
        let mut r = base.clone();
        m.corrupt(&mut r);
        let shift = r.hops[0].replies[0].rtt_ms.unwrap() - base.hops[0].replies[0].rtt_ms.unwrap();
        assert!(shift >= 0.2 * m.max_skew_ms && shift <= m.max_skew_ms);
        for (h, hop) in r.hops.iter().enumerate() {
            for (k, reply) in hop.replies.iter().enumerate() {
                let d = reply.rtt_ms.unwrap() - base.hops[h].replies[k].rtt_ms.unwrap();
                assert!((d - shift).abs() < 1e-9, "skew must be a constant offset");
            }
        }

        let mut m = ArtifactModel::new(11);
        m.wrong_hop_rate = 1.0;
        let mut r = base.clone();
        m.corrupt(&mut r);
        assert_ne!(
            r.hops[0].first_responder(),
            base.hops[0].first_responder(),
            "rate-1.0 wrong-hop attribution must move the first hop's replies"
        );
    }

    #[test]
    fn false_links_sometimes_paint_loops() {
        let mut m = ArtifactModel::new(11);
        m.false_link_rate = 1.0;
        let mut looped = 0usize;
        for p in 0..50 {
            let mut r = trace(p, 8);
            m.corrupt(&mut r);
            // A loop is a responder that reappears after an intervening
            // different responder (adjacent repeats would be dup-shaped).
            let mut seen = std::collections::BTreeSet::new();
            let mut prev = None;
            for ip in r.hops.iter().filter_map(|h| h.first_responder()) {
                if Some(ip) == prev {
                    continue;
                }
                if !seen.insert(ip) {
                    looped += 1;
                    break;
                }
                prev = Some(ip);
            }
        }
        assert!(
            looped > 10,
            "rate-1.0 false links painted loops in only {looped}/50 records"
        );
    }

    #[test]
    fn artifact_rates_scale_with_knobs() {
        let mut m = ArtifactModel::new(5);
        m.missing_hop_rate = 0.25;
        let mut removed = 0usize;
        let n = 2000;
        for p in 0..n {
            let mut r = trace(p, 10);
            m.corrupt(&mut r);
            removed += 10 - r.hops.len();
        }
        // 8 middle hops per record at 25 %.
        let rate = removed as f64 / (n as f64 * 8.0);
        assert!((rate - 0.25).abs() < 0.03, "missing-hop rate {rate}");
    }
}
