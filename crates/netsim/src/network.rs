//! The simulation engine: Paris traceroute queries against the topology.
//!
//! [`Network`] combines topology, routing, dynamics, and events; its
//! [`Network::traceroute`] method answers measurement queries exactly the
//! way the RIPE Atlas data behaves from the detector's point of view:
//!
//! * the **forward path** is the policy-routed, hot-potato-stitched router
//!   sequence from the probe's gateway to the destination (anycast resolves
//!   to the nearest instance);
//! * every hop's **RTT** is forward one-way delay + ICMP generation +
//!   **independently routed return-path** delay + per-packet noise — so
//!   differential RTTs contain exactly the ε return-path term of Eq. 2/3;
//! * **loss** applies per packet per link crossing (forward and return),
//!   plus blackhole events; all-lost hops appear as `*`;
//! * replies arriving over IXP LAN links carry the responder's LAN
//!   interface address, mapping the hop to the IXP's ASN as in §7.3.
//!
//! All randomness is derived from `(seed, packet identity)`; queries are
//! pure and the engine is `Sync`, so callers may parallelize sweeps.

use crate::dynamics::{DelayModel, LossModel, NoiseModel};
use crate::events::{EventSchedule, ResolvedSchedule};
use crate::ids::{AsId, RouterId};
use crate::routing::forwarding::{Forwarding, PathStitcher};
use crate::routing::policy::{compute_routes, RouteTable};
use crate::topology::{RouterKind, Topology};
use pinpoint_model::SimTime;
use pinpoint_stats::rng::derive_seed;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, RwLock};

/// One hop of a traceroute result.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHop {
    /// The router at this hop (ground truth — not visible to detectors).
    pub router: RouterId,
    /// Address the router answers with (`None` if it never responds).
    pub ip: Option<Ipv4Addr>,
    /// Per-packet RTT in ms; `None` = packet or reply lost.
    pub rtts: Vec<Option<f64>>,
}

/// A complete traceroute answer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceOutcome {
    /// Hops in TTL order, starting at the probe's gateway router.
    pub hops: Vec<TraceHop>,
    /// Whether the destination answered at the final hop.
    pub reached: bool,
}

/// A traceroute request.
#[derive(Debug, Clone, Copy)]
pub struct TraceQuery {
    /// The probe's gateway router.
    pub src: RouterId,
    /// Destination address (unicast router/host or anycast service).
    pub dst: Ipv4Addr,
    /// Initiation time.
    pub t: SimTime,
    /// Paris flow identifier: constant per traceroute, varied across
    /// traceroutes; drives ECMP choices deterministically.
    pub flow: u64,
    /// Packets per hop (Atlas sends 3).
    pub packets_per_hop: usize,
}

/// The simulation engine.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    fwd: Forwarding,
    delay: DelayModel,
    loss: LossModel,
    noise: NoiseModel,
    schedule: ResolvedSchedule,
    route_cache: RwLock<HashMap<(AsId, u64), Arc<RouteTable>>>,
    seed: u64,
    /// Probability that a router never answers traceroute (stable property).
    pub silent_router_prob: f64,
    /// Fixed probe access-network RTT contribution (ms).
    pub access_rtt_ms: f64,
}

impl Network {
    /// Build an engine with default dynamics models.
    pub fn new(topo: Topology, seed: u64, schedule: &EventSchedule) -> Self {
        let fwd = Forwarding::new(&topo);
        let resolved = schedule.resolve(&topo);
        Network {
            fwd,
            delay: DelayModel::new(derive_seed(seed, "delay")),
            loss: LossModel::new(derive_seed(seed, "loss")),
            noise: NoiseModel::new(derive_seed(seed, "noise")),
            schedule: resolved,
            route_cache: RwLock::new(HashMap::new()),
            seed,
            silent_router_prob: 0.02,
            access_rtt_ms: 0.6,
            topo,
        }
    }

    /// Replace the delay model (scenario tuning).
    pub fn set_delay_model(&mut self, m: DelayModel) {
        self.delay = m;
    }

    /// Replace the loss model (scenario tuning).
    pub fn set_loss_model(&mut self, m: LossModel) {
        self.loss = m;
    }

    /// Replace the noise model (scenario tuning).
    pub fn set_noise_model(&mut self, m: NoiseModel) {
        self.noise = m;
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The resolved event schedule.
    pub fn schedule(&self) -> &ResolvedSchedule {
        &self.schedule
    }

    /// Whether a router is permanently traceroute-silent.
    pub fn is_silent(&self, r: RouterId) -> bool {
        if self.topo.router(r).kind == RouterKind::Server {
            return false; // servers always answer
        }
        let h = derive_seed(self.seed ^ (r.0 as u64) << 20, "silent");
        (h as f64 / u64::MAX as f64) < self.silent_router_prob
    }

    /// Route table towards `dest_as` at time `t` (cached per epoch).
    pub fn routes_to(&self, dest_as: AsId, t: SimTime) -> Arc<RouteTable> {
        let epoch = self.schedule.routing_epoch(t);
        if let Some(table) = self
            .route_cache
            .read()
            .expect("route cache poisoned")
            .get(&(dest_as, epoch))
        {
            return table.clone();
        }
        let dest_asn = self.topo.asn(dest_as).asn;
        let leaks = self.schedule.active_leaks(t, dest_asn);
        let table = Arc::new(compute_routes(&self.topo, dest_as, &leaks, self.seed));
        self.route_cache
            .write()
            .expect("route cache poisoned")
            .insert((dest_as, epoch), table.clone());
        table
    }

    /// Resolve a destination address to `(dest AS, unicast target)`.
    ///
    /// Anycast services return `None` as target (the stitcher picks the
    /// island server).
    pub fn resolve_destination(&self, dst: Ipv4Addr) -> Option<(AsId, Option<RouterId>)> {
        if let Some(&svc) = self.topo.service_by_addr.get(&dst) {
            return Some((self.topo.services[svc].operator, None));
        }
        if let Some(&r) = self.topo.router_by_ip.get(&dst) {
            return Some((self.topo.router(r).as_id, Some(r)));
        }
        None
    }

    /// The forward router path for a query, if one exists.
    pub fn forward_path(&self, q: &TraceQuery) -> Option<Vec<RouterId>> {
        let (dest_as, target) = self.resolve_destination(q.dst)?;
        let table = self.routes_to(dest_as, q.t);
        let stitcher = PathStitcher::new(&self.topo, &self.fwd);
        stitcher.route(q.src, &table, target, q.flow)
    }

    /// One-way delay along a router path at `t` (ms), queueing included.
    pub fn one_way_delay_ms(&self, path: &[RouterId], t: SimTime) -> f64 {
        path.windows(2)
            .map(|w| match self.topo.link_between_routers(w[0], w[1]) {
                Some(l) => {
                    let extra = self.schedule.extra_util(l.id, t);
                    self.delay.link_delay_ms(l, t, extra)
                }
                None => 0.0,
            })
            .sum()
    }

    /// Whether a packet survives all link crossings of `path` at `t`.
    fn survives(&self, path: &[RouterId], t: SimTime, flow: u64, salt: u64) -> bool {
        for (pos, w) in path.windows(2).enumerate() {
            let Some(l) = self.topo.link_between_routers(w[0], w[1]) else {
                continue;
            };
            let extra = self.schedule.extra_util(l.id, t);
            let u = self.delay.utilization(l.id, t, extra);
            let forced = self.schedule.forced_loss(l.id, t);
            let p = self.loss.loss_probability(u, forced);
            if self
                .loss
                .drops(l.id, t, flow, salt.wrapping_add(pos as u64) << 1, p)
            {
                return false;
            }
        }
        true
    }

    /// The return router path from `responder` back to the probe gateway.
    fn return_path(
        &self,
        responder: RouterId,
        probe_gateway: RouterId,
        t: SimTime,
        flow: u64,
    ) -> Option<Vec<RouterId>> {
        let probe_as = self.topo.router(probe_gateway).as_id;
        let table = self.routes_to(probe_as, t);
        let stitcher = PathStitcher::new(&self.topo, &self.fwd);
        // Replies are a different 5-tuple: derive a per-responder flow so
        // return ECMP is independent of the forward choice but stable.
        let rflow = flow ^ (responder.0 as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        stitcher.route(responder, &table, Some(probe_gateway), rflow)
    }

    /// Execute a Paris traceroute.
    pub fn traceroute(&self, q: &TraceQuery) -> TraceOutcome {
        let Some(fpath) = self.forward_path(q) else {
            return TraceOutcome::default();
        };
        let mut hops = Vec::with_capacity(fpath.len());
        let mut reached = false;

        // Cumulative forward delay to each hop, evaluated once.
        let mut cum_fwd = Vec::with_capacity(fpath.len());
        let mut acc = 0.0;
        cum_fwd.push(0.0);
        for w in fpath.windows(2) {
            if let Some(l) = self.topo.link_between_routers(w[0], w[1]) {
                let extra = self.schedule.extra_util(l.id, q.t);
                acc += self.delay.link_delay_ms(l, q.t, extra);
            }
            cum_fwd.push(acc);
        }

        for (h, &router) in fpath.iter().enumerate() {
            let is_dest = h == fpath.len() - 1;
            let silent = self.is_silent(router) && !is_dest;
            let arrival = if h == 0 {
                None
            } else {
                self.topo.link_between_routers(fpath[h - 1], router)
            };
            let response_ip = self.topo.router(router).response_ip(arrival);

            // The return path is per-responder, shared by the hop's packets.
            let rpath = if silent {
                None
            } else {
                self.return_path(router, q.src, q.t, q.flow)
            };
            let ret_delay = rpath.as_ref().map(|p| self.one_way_delay_ms(p, q.t));

            let mut rtts = Vec::with_capacity(q.packets_per_hop);
            for k in 0..q.packets_per_hop {
                let salt = ((h as u64) << 24) ^ ((k as u64) << 8);
                // Forward leg: the probe packet must reach hop h.
                let fwd_ok = self.survives(&fpath[..=h], q.t, q.flow, salt);
                // Reply leg: the ICMP must make it back.
                let reply_ok = match (&rpath, fwd_ok, silent) {
                    (_, false, _) | (_, _, true) | (None, _, _) => false,
                    (Some(rp), true, false) => self.survives(rp, q.t, q.flow, salt ^ 0x5A5A_5A5A),
                };
                if reply_ok {
                    let noise = self
                        .noise
                        .rtt_noise_ms(router, q.t, q.flow, (h * 8 + k) as u64);
                    let rtt = cum_fwd[h] + ret_delay.unwrap_or(0.0) + self.access_rtt_ms + noise;
                    rtts.push(Some(rtt));
                    if is_dest {
                        reached = true;
                    }
                } else {
                    rtts.push(None);
                }
            }
            let any_response = rtts.iter().any(Option::is_some);
            hops.push(TraceHop {
                router,
                ip: if silent || !any_response {
                    if silent {
                        None
                    } else {
                        // Responsive router whose packets all got lost this
                        // time still has a known address, but traceroute
                        // cannot see it: report None.
                        None
                    }
                } else {
                    Some(response_ip)
                },
                rtts,
            });
        }
        TraceOutcome { hops, reached }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{LinkSelector, NetworkEvent};
    use crate::topology::builder::TopologyConfig;
    use pinpoint_model::Asn;

    fn quiet_network() -> Network {
        let topo = TopologyConfig::default().build();
        Network::new(topo, 11, &EventSchedule::new())
    }

    fn pick_src_dst(net: &Network) -> (RouterId, Ipv4Addr) {
        let stubs: Vec<_> = net.topology().stub_ases().collect();
        let src = stubs[0].routers[0];
        let dst = net.topology().router(stubs[stubs.len() - 1].routers[0]).ip;
        (src, dst)
    }

    #[test]
    fn traceroute_reaches_unicast_destination() {
        let net = quiet_network();
        let (src, dst) = pick_src_dst(&net);
        let out = net.traceroute(&TraceQuery {
            src,
            dst,
            t: SimTime::from_hours(5),
            flow: 77,
            packets_per_hop: 3,
        });
        assert!(out.hops.len() >= 3, "path too short: {}", out.hops.len());
        assert!(out.reached, "destination not reached");
        let last = out.hops.last().unwrap();
        assert_eq!(last.ip, Some(dst));
        // Every hop carries exactly 3 reply slots.
        assert!(out.hops.iter().all(|h| h.rtts.len() == 3));
    }

    #[test]
    fn rtts_increase_with_distance_modulo_asymmetry() {
        // RTTs are not strictly monotone (return paths differ per hop), but
        // the destination RTT must exceed the first hop's.
        let net = quiet_network();
        let (src, dst) = pick_src_dst(&net);
        let out = net.traceroute(&TraceQuery {
            src,
            dst,
            t: SimTime::from_hours(3),
            flow: 5,
            packets_per_hop: 3,
        });
        let first = out.hops.first().unwrap().rtts[0];
        let last = out.hops.last().unwrap().rtts.iter().flatten().next();
        if let (Some(f), Some(&l)) = (first, last) {
            assert!(l > f, "far RTT {l} <= near RTT {f}");
        }
    }

    #[test]
    fn traceroute_is_deterministic() {
        let net = quiet_network();
        let (src, dst) = pick_src_dst(&net);
        let q = TraceQuery {
            src,
            dst,
            t: SimTime::from_hours(9),
            flow: 123,
            packets_per_hop: 3,
        };
        assert_eq!(net.traceroute(&q), net.traceroute(&q));
    }

    #[test]
    fn unknown_destination_yields_empty() {
        let net = quiet_network();
        let (src, _) = pick_src_dst(&net);
        let out = net.traceroute(&TraceQuery {
            src,
            dst: "203.0.113.77".parse().unwrap(),
            t: SimTime::ZERO,
            flow: 1,
            packets_per_hop: 3,
        });
        assert!(out.hops.is_empty());
        assert!(!out.reached);
    }

    #[test]
    fn congestion_event_raises_rtt_beyond_event_window() {
        let net_topo = TopologyConfig::default().build();
        let stubs: Vec<_> = net_topo.stub_ases().map(|a| (a.id, a.asn)).collect();
        let (dst_as, dst_asn) = stubs[stubs.len() - 1];
        let dst_router = net_topo.asn(dst_as).routers[0];
        let dst_ip = net_topo.router(dst_router).ip;
        let src = net_topo.asn(stubs[0].0).routers[0];
        let schedule = EventSchedule::new().with(NetworkEvent::Congestion {
            selector: LinkSelector::WithinAs(dst_asn),
            start: SimTime::from_hours(10),
            end: SimTime::from_hours(12),
            extra_util: 0.58,
        });
        let net = Network::new(net_topo, 11, &schedule);
        let rtt_at = |h: u64| {
            let out = net.traceroute(&TraceQuery {
                src,
                dst: dst_ip,
                t: SimTime::from_hours(h),
                flow: 9,
                packets_per_hop: 3,
            });
            out.hops
                .last()
                .and_then(|hop| hop.rtts.iter().flatten().next().copied())
        };
        // Compare medians of a few flows to smooth noise.
        let quiet = rtt_at(8);
        let busy = rtt_at(11);
        if let (Some(q), Some(b)) = (quiet, busy) {
            assert!(b > q + 3.0, "congestion invisible: {q} vs {b}");
        } else {
            panic!("missing rtts: {quiet:?} {busy:?}");
        }
    }

    #[test]
    fn link_failure_blackholes_downstream_hops() {
        let topo = TopologyConfig::default().build();
        let stubs: Vec<_> = topo.stub_ases().map(|a| a.id).collect();
        let dst_as = stubs[stubs.len() - 1];
        let dst_router = topo.asn(dst_as).routers[0];
        let dst_ip = topo.router(dst_router).ip;
        let src = topo.asn(stubs[0]).routers[0];
        // Fail the destination stub's uplink(s).
        let dst_asn = topo.asn(dst_as).asn;
        let provider_asn = topo.asn(topo.asn(dst_as).providers[0]).asn;
        let schedule = EventSchedule::new().with(NetworkEvent::LinkFailure {
            selector: LinkSelector::Between(dst_asn, provider_asn),
            start: SimTime::from_hours(1),
            end: SimTime::from_hours(2),
        });
        let net = Network::new(topo, 13, &schedule);
        let q = |h: u64| {
            net.traceroute(&TraceQuery {
                src,
                dst: dst_ip,
                t: SimTime::from_hours(h),
                flow: 3,
                packets_per_hop: 3,
            })
        };
        let before = q(0);
        let during = q(1);
        // If the path crosses the failed link (single-homed stub), the
        // destination becomes unreachable during the failure.
        if before.reached && net.topology().asn(dst_as).providers.len() == 1 {
            assert!(!during.reached, "blackhole had no effect");
            // The last hops must be all-timeout.
            let last = during.hops.last().unwrap();
            assert!(last.rtts.iter().all(Option::is_none));
        }
    }

    #[test]
    fn anycast_goes_to_nearby_instance() {
        use crate::geo::city_by_code;
        use crate::topology::builder::TopologyBuilder;
        use crate::topology::{AsTier, CapacityClass};
        // Build a world with two anycast instances (AMS, TYO) and two
        // stubs, one in Europe and one in Asia.
        let mut b = TopologyBuilder::new(21);
        let ams = city_by_code("AMS").unwrap();
        let tyo = city_by_code("TYO").unwrap();
        let t_eu = b.add_as(Asn(100), "transit-eu", AsTier::Transit);
        b.add_router(t_eu, ams);
        let t_ap = b.add_as(Asn(200), "transit-ap", AsTier::Transit);
        b.add_router(t_ap, tyo);
        b.peer_private(t_eu, t_ap, 1, CapacityClass::Backbone);
        let op = b.add_as(Asn(25152), "root-ops", AsTier::AnycastOp);
        let svc = b.add_anycast_service(op, "K-root");
        let (e1, _s1) = b.add_anycast_instance(svc, ams);
        let (e2, _s2) = b.add_anycast_instance(svc, tyo);
        b.provider_customer(t_eu, op, 1);
        b.provider_customer(t_ap, op, 1);
        let s_eu = b.add_as(Asn(300), "edge-eu", AsTier::Stub);
        b.add_router(s_eu, ams);
        b.provider_customer(t_eu, s_eu, 1);
        let s_ap = b.add_as(Asn(400), "edge-ap", AsTier::Stub);
        b.add_router(s_ap, tyo);
        b.provider_customer(t_ap, s_ap, 1);
        let svc_addr = b.topology().services[svc].addr;
        let eu_gw = b.topology().asn(s_eu).routers[0];
        let ap_gw = b.topology().asn(s_ap).routers[0];
        let topo = b.build();
        let net = Network::new(topo, 17, &EventSchedule::new());

        let trace = |src| {
            net.traceroute(&TraceQuery {
                src,
                dst: svc_addr,
                t: SimTime::from_hours(1),
                flow: 2,
                packets_per_hop: 3,
            })
        };
        let eu = trace(eu_gw);
        let ap = trace(ap_gw);
        assert!(eu.reached && ap.reached);
        // Both reach the same service address...
        assert_eq!(eu.hops.last().unwrap().ip, Some(svc_addr));
        assert_eq!(ap.hops.last().unwrap().ip, Some(svc_addr));
        // ...but via different instances (different penultimate routers and
        // very different RTTs).
        let eu_pen = eu.hops[eu.hops.len() - 2].router;
        let ap_pen = ap.hops[ap.hops.len() - 2].router;
        assert_ne!(eu_pen, ap_pen, "both probes hit the same instance");
        assert_eq!(net.topology().router(eu_pen).id, e1);
        assert_eq!(net.topology().router(ap_pen).id, e2);
        let eu_rtt = eu.hops.last().unwrap().rtts[0].unwrap();
        let ap_rtt = ap.hops.last().unwrap().rtts[0].unwrap();
        assert!(eu_rtt < 30.0, "EU probe took a detour: {eu_rtt} ms");
        assert!(ap_rtt < 30.0, "AP probe took a detour: {ap_rtt} ms");
    }

    #[test]
    fn silent_routers_exist_and_are_stable() {
        let mut net = quiet_network();
        net.silent_router_prob = 0.3;
        let silent_count = (0..net.topology().routers.len())
            .filter(|&i| net.is_silent(RouterId(i as u32)))
            .count();
        assert!(silent_count > 0, "no silent routers at 30%");
        for i in 0..net.topology().routers.len() {
            let r = RouterId(i as u32);
            assert_eq!(net.is_silent(r), net.is_silent(r));
        }
    }
}
