//! Synthetic geography: cities, great-circle distances, propagation delay.
//!
//! Router-to-router propagation delay is derived from the great-circle
//! distance between the cities hosting the routers, at the speed of light in
//! fiber (~200 km/ms) with a path-stretch factor for non-ideal cable runs.
//! This replaces the paper's implicit reliance on real geography (reverse
//! DNS placed the Level(3) congestion in "Amsterdam, Berlin, Dublin,
//! Frankfurt, London, Los Angeles, Miami, New York, Paris, Vienna, and
//! Washington", §7.2).

/// Index of a city in [`CITIES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CityId(pub u16);

impl CityId {
    /// As a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// The city record.
    pub fn info(self) -> &'static City {
        &CITIES[self.idx()]
    }
}

/// A city that can host routers, probes, and IXPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// Short name (also used in reverse-DNS-style router labels).
    pub name: &'static str,
    /// Three-letter code used in labels (`"AMS"`, `"LHR"`, ...).
    pub code: &'static str,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Region tag used by the topology builder to cluster connectivity.
    pub region: Region,
}

/// Coarse world region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Europe.
    Europe,
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Asia-Pacific.
    AsiaPacific,
    /// Middle East / Africa.
    MiddleEastAfrica,
}

/// The world cities available to the topology builder.
///
/// The list intentionally includes every location named in the paper's case
/// studies (Kansas City, St. Petersburg, Poznan, Frankfurt, Amsterdam,
/// London, New York, Kuala Lumpur, ...).
// Kuala Lumpur's real latitude happens to be 3.14; it is not an
// approximation of pi.
#[allow(clippy::approx_constant)]
pub const CITIES: &[City] = &[
    City {
        name: "Amsterdam",
        code: "AMS",
        lat: 52.37,
        lon: 4.90,
        region: Region::Europe,
    },
    City {
        name: "London",
        code: "LON",
        lat: 51.51,
        lon: -0.13,
        region: Region::Europe,
    },
    City {
        name: "Frankfurt",
        code: "FRA",
        lat: 50.11,
        lon: 8.68,
        region: Region::Europe,
    },
    City {
        name: "Paris",
        code: "PAR",
        lat: 48.86,
        lon: 2.35,
        region: Region::Europe,
    },
    City {
        name: "Zurich",
        code: "ZRH",
        lat: 47.38,
        lon: 8.54,
        region: Region::Europe,
    },
    City {
        name: "Munich",
        code: "MUC",
        lat: 48.14,
        lon: 11.58,
        region: Region::Europe,
    },
    City {
        name: "Vienna",
        code: "VIE",
        lat: 48.21,
        lon: 16.37,
        region: Region::Europe,
    },
    City {
        name: "Stockholm",
        code: "STO",
        lat: 59.33,
        lon: 18.07,
        region: Region::Europe,
    },
    City {
        name: "Poznan",
        code: "POZ",
        lat: 52.41,
        lon: 16.93,
        region: Region::Europe,
    },
    City {
        name: "Warsaw",
        code: "WAW",
        lat: 52.23,
        lon: 21.01,
        region: Region::Europe,
    },
    City {
        name: "Moscow",
        code: "MOW",
        lat: 55.76,
        lon: 37.62,
        region: Region::Europe,
    },
    City {
        name: "St. Petersburg",
        code: "LED",
        lat: 59.94,
        lon: 30.31,
        region: Region::Europe,
    },
    City {
        name: "Madrid",
        code: "MAD",
        lat: 40.42,
        lon: -3.70,
        region: Region::Europe,
    },
    City {
        name: "Milan",
        code: "MIL",
        lat: 45.46,
        lon: 9.19,
        region: Region::Europe,
    },
    City {
        name: "Dublin",
        code: "DUB",
        lat: 53.35,
        lon: -6.26,
        region: Region::Europe,
    },
    City {
        name: "Berlin",
        code: "BER",
        lat: 52.52,
        lon: 13.40,
        region: Region::Europe,
    },
    City {
        name: "New York",
        code: "NYC",
        lat: 40.71,
        lon: -74.01,
        region: Region::NorthAmerica,
    },
    City {
        name: "Washington",
        code: "WDC",
        lat: 38.91,
        lon: -77.04,
        region: Region::NorthAmerica,
    },
    City {
        name: "Miami",
        code: "MIA",
        lat: 25.76,
        lon: -80.19,
        region: Region::NorthAmerica,
    },
    City {
        name: "Chicago",
        code: "CHI",
        lat: 41.88,
        lon: -87.63,
        region: Region::NorthAmerica,
    },
    City {
        name: "Dallas",
        code: "DAL",
        lat: 32.78,
        lon: -96.80,
        region: Region::NorthAmerica,
    },
    City {
        name: "Kansas City",
        code: "MKC",
        lat: 39.10,
        lon: -94.58,
        region: Region::NorthAmerica,
    },
    City {
        name: "Los Angeles",
        code: "LAX",
        lat: 34.05,
        lon: -118.24,
        region: Region::NorthAmerica,
    },
    City {
        name: "San Jose",
        code: "SJC",
        lat: 37.34,
        lon: -121.89,
        region: Region::NorthAmerica,
    },
    City {
        name: "Seattle",
        code: "SEA",
        lat: 47.61,
        lon: -122.33,
        region: Region::NorthAmerica,
    },
    City {
        name: "Toronto",
        code: "YYZ",
        lat: 43.65,
        lon: -79.38,
        region: Region::NorthAmerica,
    },
    City {
        name: "Sao Paulo",
        code: "GRU",
        lat: -23.55,
        lon: -46.63,
        region: Region::SouthAmerica,
    },
    City {
        name: "Buenos Aires",
        code: "EZE",
        lat: -34.60,
        lon: -58.38,
        region: Region::SouthAmerica,
    },
    City {
        name: "Tokyo",
        code: "TYO",
        lat: 35.68,
        lon: 139.69,
        region: Region::AsiaPacific,
    },
    City {
        name: "Osaka",
        code: "OSA",
        lat: 34.69,
        lon: 135.50,
        region: Region::AsiaPacific,
    },
    City {
        name: "Seoul",
        code: "SEL",
        lat: 37.57,
        lon: 126.98,
        region: Region::AsiaPacific,
    },
    City {
        name: "Hong Kong",
        code: "HKG",
        lat: 22.32,
        lon: 114.17,
        region: Region::AsiaPacific,
    },
    City {
        name: "Singapore",
        code: "SIN",
        lat: 1.35,
        lon: 103.82,
        region: Region::AsiaPacific,
    },
    City {
        name: "Kuala Lumpur",
        code: "KUL",
        lat: 3.14,
        lon: 101.69,
        region: Region::AsiaPacific,
    },
    City {
        name: "Sydney",
        code: "SYD",
        lat: -33.87,
        lon: 151.21,
        region: Region::AsiaPacific,
    },
    City {
        name: "Mumbai",
        code: "BOM",
        lat: 19.08,
        lon: 72.88,
        region: Region::AsiaPacific,
    },
    City {
        name: "Dubai",
        code: "DXB",
        lat: 25.20,
        lon: 55.27,
        region: Region::MiddleEastAfrica,
    },
    City {
        name: "Johannesburg",
        code: "JNB",
        lat: -26.20,
        lon: 28.05,
        region: Region::MiddleEastAfrica,
    },
    City {
        name: "Nairobi",
        code: "NBO",
        lat: -1.29,
        lon: 36.82,
        region: Region::MiddleEastAfrica,
    },
    City {
        name: "Cairo",
        code: "CAI",
        lat: 30.04,
        lon: 31.24,
        region: Region::MiddleEastAfrica,
    },
];

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal speed in optical fiber, km per millisecond (~2/3 c).
pub const FIBER_KM_PER_MS: f64 = 200.0;

/// Multiplier accounting for cable paths not following great circles.
pub const PATH_STRETCH: f64 = 1.3;

/// Great-circle distance between two cities (haversine), in km.
pub fn distance_km(a: CityId, b: CityId) -> f64 {
    let (ca, cb) = (a.info(), b.info());
    let (lat1, lon1) = (ca.lat.to_radians(), ca.lon.to_radians());
    let (lat2, lon2) = (cb.lat.to_radians(), cb.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One-way propagation delay between two cities in milliseconds.
///
/// Same-city links get a small metro-fiber floor rather than zero.
pub fn propagation_delay_ms(a: CityId, b: CityId) -> f64 {
    let d = distance_km(a, b);
    (d * PATH_STRETCH / FIBER_KM_PER_MS).max(0.05)
}

/// Find a city by its three-letter code.
pub fn city_by_code(code: &str) -> Option<CityId> {
    CITIES
        .iter()
        .position(|c| c.code == code)
        .map(|i| CityId(i as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_lookup() {
        let ams = city_by_code("AMS").unwrap();
        assert_eq!(ams.info().name, "Amsterdam");
        assert!(city_by_code("XXX").is_none());
    }

    #[test]
    fn known_distances_are_plausible() {
        // London–New York is ~5570 km.
        let d = distance_km(city_by_code("LON").unwrap(), city_by_code("NYC").unwrap());
        assert!((5400.0..5800.0).contains(&d), "LON-NYC {d} km");
        // Amsterdam–Frankfurt is ~365 km.
        let d2 = distance_km(city_by_code("AMS").unwrap(), city_by_code("FRA").unwrap());
        assert!((300.0..450.0).contains(&d2), "AMS-FRA {d2} km");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = city_by_code("TYO").unwrap();
        let b = city_by_code("SIN").unwrap();
        assert!((distance_km(a, b) - distance_km(b, a)).abs() < 1e-9);
        assert!(distance_km(a, a) < 1e-9);
    }

    #[test]
    fn propagation_delay_scales() {
        let lon = city_by_code("LON").unwrap();
        let nyc = city_by_code("NYC").unwrap();
        let syd = city_by_code("SYD").unwrap();
        let transatlantic = propagation_delay_ms(lon, nyc);
        // ~5570 km * 1.3 / 200 ≈ 36 ms one-way.
        assert!((30.0..45.0).contains(&transatlantic), "{transatlantic} ms");
        assert!(propagation_delay_ms(lon, syd) > transatlantic);
        // Metro floor.
        assert!(propagation_delay_ms(lon, lon) >= 0.05);
    }

    #[test]
    fn all_paper_case_study_cities_present() {
        for code in [
            "MKC", "LED", "POZ", "FRA", "AMS", "LON", "NYC", "KUL", "ZRH", "MUC",
        ] {
            assert!(city_by_code(code).is_some(), "missing {code}");
        }
    }
}
