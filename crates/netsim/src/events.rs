//! Ground-truth event injection.
//!
//! Scenarios script network disruptions against the simulator; each maps to
//! one of the paper's case studies:
//!
//! * [`NetworkEvent::Congestion`] — utilization surge on selected links
//!   (§7.1, DDoS traffic hammering root-server instances and their IXP
//!   uplinks);
//! * [`NetworkEvent::RouteLeak`] — a customer re-exporting routes to a
//!   provider that accepts them (§7.2, Telekom Malaysia → Level3 Global
//!   Crossing);
//! * [`NetworkEvent::IxpOutage`] — the peering fabric blackholes traffic
//!   while routes stay up (§7.3, AMS-IX: "traffic was not rerouted but
//!   dropped");
//! * [`NetworkEvent::LinkFailure`] — a single link silently dropping
//!   everything.
//!
//! Selectors are resolved against the topology once, at network
//! construction, so the per-packet hot path only consults precomputed link
//! sets.

use crate::ids::LinkId;
use crate::routing::policy::LeakSpec;
use crate::topology::{LinkKind, Topology};
use pinpoint_model::{Asn, SimTime};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Which links an event applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkSelector {
    /// One specific link.
    Link(LinkId),
    /// Every link incident to the router owning this IP address.
    TouchingIp(Ipv4Addr),
    /// Every link with at least one endpoint in the AS.
    WithinAs(Asn),
    /// Every inter-AS link between the two ASes.
    Between(Asn, Asn),
    /// Every peering-LAN link of the IXP.
    IxpLanOf(Asn),
    /// A deterministic pseudo-random sample of the AS's links: a link is
    /// selected when `hash(link) mod 1000 < permille`. Lets scenarios model
    /// *heterogeneous* impact (some routers saturated, others fine — the
    /// §7.2 reality where delay and loss coexisted in one AS).
    SampleWithinAs {
        /// The AS whose links are sampled.
        asn: Asn,
        /// Selection rate in permille (0–1000).
        permille: u16,
        /// Salt so different events sample different subsets.
        salt: u64,
    },
}

impl LinkSelector {
    /// Resolve to the concrete link set.
    pub fn resolve(&self, topo: &Topology) -> HashSet<LinkId> {
        let mut out = HashSet::new();
        match self {
            LinkSelector::Link(l) => {
                out.insert(*l);
            }
            LinkSelector::TouchingIp(ip) => {
                if let Some(&r) = topo.router_by_ip.get(ip) {
                    out.extend(topo.router(r).links.iter().copied());
                }
                // Anycast service addresses shadow several servers.
                if let Some(&svc) = topo.service_by_addr.get(ip) {
                    for inst in &topo.services[svc].instances {
                        out.extend(topo.router(inst.server).links.iter().copied());
                    }
                }
            }
            LinkSelector::WithinAs(asn) => {
                if let Some(a) = topo.as_id(*asn) {
                    for l in &topo.links {
                        if topo.router(l.a).as_id == a || topo.router(l.b).as_id == a {
                            out.insert(l.id);
                        }
                    }
                }
            }
            LinkSelector::Between(x, y) => {
                if let (Some(a), Some(b)) = (topo.as_id(*x), topo.as_id(*y)) {
                    out.extend(topo.inter_as_links(a, b).iter().copied());
                }
            }
            LinkSelector::IxpLanOf(asn) => {
                if let Some(a) = topo.as_id(*asn) {
                    for l in &topo.links {
                        if l.kind == LinkKind::IxpLan(a) {
                            out.insert(l.id);
                        }
                    }
                }
            }
            LinkSelector::SampleWithinAs {
                asn,
                permille,
                salt,
            } => {
                if let Some(a) = topo.as_id(*asn) {
                    for l in &topo.links {
                        if topo.router(l.a).as_id == a || topo.router(l.b).as_id == a {
                            let h = pinpoint_stats::rng::derive_seed(
                                salt ^ u64::from(l.id.0),
                                "link-sample",
                            );
                            if (h % 1000) < u64::from(*permille) {
                                out.insert(l.id);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Which destination ASes a route leak affects.
///
/// The Telekom Malaysia incident leaked a large *subset* of the routing
/// table; leaking everything would warp global routing far beyond the
/// documented event (and make previously-learned links vanish from
/// observation entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeakScope {
    /// Every destination leaks.
    All,
    /// A deterministic pseudo-random sample of destination ASes:
    /// a destination is affected when `hash(salt, asn) mod 1000 < permille`.
    SampleDests {
        /// Selection rate in permille (0–1000).
        permille: u16,
        /// Salt for the sample.
        salt: u64,
    },
}

impl LeakScope {
    /// Whether a destination AS is inside the scope.
    pub fn covers(&self, dest: Asn) -> bool {
        match self {
            LeakScope::All => true,
            LeakScope::SampleDests { permille, salt } => {
                let h = pinpoint_stats::rng::derive_seed(salt ^ u64::from(dest.0), "leak-scope");
                (h % 1000) < u64::from(*permille)
            }
        }
    }
}

/// A scripted disruption.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkEvent {
    /// Utilization surge on selected links during a window.
    Congestion {
        /// Affected links.
        selector: LinkSelector,
        /// Start (inclusive).
        start: SimTime,
        /// End (exclusive).
        end: SimTime,
        /// Additional utilization (pushes links toward saturation).
        extra_util: f64,
    },
    /// A route leak active during a window.
    RouteLeak {
        /// The leaking AS.
        leaker: Asn,
        /// The provider accepting and propagating the leak.
        upstream: Asn,
        /// Which destinations' routes leak.
        scope: LeakScope,
        /// Start (inclusive).
        start: SimTime,
        /// End (exclusive).
        end: SimTime,
    },
    /// IXP fabric outage: all LAN links drop everything; routing unchanged.
    IxpOutage {
        /// The IXP's LAN ASN.
        ixp: Asn,
        /// Start (inclusive).
        start: SimTime,
        /// End (exclusive).
        end: SimTime,
    },
    /// Selected links silently drop all packets; routing unchanged.
    LinkFailure {
        /// Affected links.
        selector: LinkSelector,
        /// Start (inclusive).
        start: SimTime,
        /// End (exclusive).
        end: SimTime,
    },
    /// Selected links drop a fraction of packets (scripted saturation-level
    /// loss; the route-leak case study uses this for the "routers … dropped
    /// a lot of packets" ground truth).
    PacketLoss {
        /// Affected links.
        selector: LinkSelector,
        /// Start (inclusive).
        start: SimTime,
        /// End (exclusive).
        end: SimTime,
        /// Drop probability in `[0, 1]`.
        loss: f64,
    },
}

impl NetworkEvent {
    /// Event window `(start, end)`.
    pub fn window(&self) -> (SimTime, SimTime) {
        match self {
            NetworkEvent::Congestion { start, end, .. }
            | NetworkEvent::RouteLeak { start, end, .. }
            | NetworkEvent::IxpOutage { start, end, .. }
            | NetworkEvent::LinkFailure { start, end, .. }
            | NetworkEvent::PacketLoss { start, end, .. } => (*start, *end),
        }
    }

    /// Whether the event is active at `t` (start inclusive, end exclusive).
    pub fn active_at(&self, t: SimTime) -> bool {
        let (s, e) = self.window();
        s <= t && t < e
    }
}

/// An ordered list of scripted events.
#[derive(Debug, Clone, Default)]
pub struct EventSchedule {
    /// The events, in no particular order.
    pub events: Vec<NetworkEvent>,
}

impl EventSchedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an event (builder style).
    pub fn with(mut self, ev: NetworkEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Resolve selectors against a topology for fast per-packet queries.
    pub fn resolve(&self, topo: &Topology) -> ResolvedSchedule {
        let mut congestion = Vec::new();
        let mut blackholes = Vec::new();
        let mut leaks = Vec::new();
        for ev in &self.events {
            match ev {
                NetworkEvent::Congestion {
                    selector,
                    start,
                    end,
                    extra_util,
                } => congestion.push(ResolvedWindowed {
                    links: selector.resolve(topo),
                    start: *start,
                    end: *end,
                    value: *extra_util,
                }),
                NetworkEvent::LinkFailure {
                    selector,
                    start,
                    end,
                } => blackholes.push(ResolvedWindowed {
                    links: selector.resolve(topo),
                    start: *start,
                    end: *end,
                    value: 1.0,
                }),
                NetworkEvent::IxpOutage { ixp, start, end } => blackholes.push(ResolvedWindowed {
                    links: LinkSelector::IxpLanOf(*ixp).resolve(topo),
                    start: *start,
                    end: *end,
                    value: 1.0,
                }),
                NetworkEvent::PacketLoss {
                    selector,
                    start,
                    end,
                    loss,
                } => blackholes.push(ResolvedWindowed {
                    links: selector.resolve(topo),
                    start: *start,
                    end: *end,
                    value: loss.clamp(0.0, 1.0),
                }),
                NetworkEvent::RouteLeak {
                    leaker,
                    upstream,
                    scope,
                    start,
                    end,
                } => {
                    if let (Some(l), Some(u)) = (topo.as_id(*leaker), topo.as_id(*upstream)) {
                        leaks.push((
                            LeakSpec {
                                leaker: l,
                                upstream: u,
                            },
                            *scope,
                            *start,
                            *end,
                        ));
                    }
                }
            }
        }
        // Routing epochs change exactly at leak boundaries.
        let mut boundaries: Vec<SimTime> = leaks.iter().flat_map(|(_, _, s, e)| [*s, *e]).collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        ResolvedSchedule {
            congestion,
            blackholes,
            leaks,
            boundaries,
        }
    }
}

#[derive(Debug, Clone)]
struct ResolvedWindowed {
    links: HashSet<LinkId>,
    start: SimTime,
    end: SimTime,
    value: f64,
}

impl ResolvedWindowed {
    fn applies(&self, link: LinkId, t: SimTime) -> bool {
        self.start <= t && t < self.end && self.links.contains(&link)
    }
}

/// Event schedule with selectors resolved to concrete link sets.
#[derive(Debug, Clone, Default)]
pub struct ResolvedSchedule {
    congestion: Vec<ResolvedWindowed>,
    blackholes: Vec<ResolvedWindowed>,
    leaks: Vec<(LeakSpec, LeakScope, SimTime, SimTime)>,
    boundaries: Vec<SimTime>,
}

impl ResolvedSchedule {
    /// Total extra utilization on a link at `t` from active congestion.
    pub fn extra_util(&self, link: LinkId, t: SimTime) -> f64 {
        self.congestion
            .iter()
            .filter(|c| c.applies(link, t))
            .map(|c| c.value)
            .sum()
    }

    /// Forced loss probability on a link at `t` (1.0 inside a blackhole).
    pub fn forced_loss(&self, link: LinkId, t: SimTime) -> f64 {
        self.blackholes
            .iter()
            .filter(|b| b.applies(link, t))
            .map(|b| b.value)
            .fold(0.0, f64::max)
    }

    /// Route leaks active at `t` affecting routes towards `dest`.
    pub fn active_leaks(&self, t: SimTime, dest: Asn) -> Vec<LeakSpec> {
        self.leaks
            .iter()
            .filter(|(_, scope, s, e)| *s <= t && t < *e && scope.covers(dest))
            .map(|(l, _, _, _)| *l)
            .collect()
    }

    /// Routing epoch at `t`: increments at every leak boundary, so route
    /// tables can be cached per `(destination, epoch)`.
    pub fn routing_epoch(&self, t: SimTime) -> u64 {
        self.boundaries.partition_point(|&b| b <= t) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::builder::TopologyConfig;
    use crate::topology::AsTier;

    #[test]
    fn selector_within_as_resolves() {
        let topo = TopologyConfig::default().build();
        let stub = topo.stub_ases().next().unwrap();
        let links = LinkSelector::WithinAs(stub.asn).resolve(&topo);
        assert!(!links.is_empty());
        for l in &links {
            let link = topo.link(*l);
            assert!(topo.router(link.a).as_id == stub.id || topo.router(link.b).as_id == stub.id);
        }
    }

    #[test]
    fn selector_between_matches_interconnects() {
        let topo = TopologyConfig::default().build();
        let stub = topo.stub_ases().next().unwrap();
        let provider = topo.asn(stub.providers[0]);
        let links = LinkSelector::Between(stub.asn, provider.asn).resolve(&topo);
        assert!(!links.is_empty());
        assert_eq!(
            links,
            topo.inter_as_links(stub.id, provider.id)
                .iter()
                .copied()
                .collect()
        );
    }

    #[test]
    fn selector_ixp_lan_resolves_fabric_links() {
        let topo = TopologyConfig::default().build();
        let ixp = topo.ases.iter().find(|a| a.tier == AsTier::IxpLan).unwrap();
        let links = LinkSelector::IxpLanOf(ixp.asn).resolve(&topo);
        for l in &links {
            assert_eq!(topo.link(*l).kind, LinkKind::IxpLan(ixp.id));
        }
    }

    #[test]
    fn selector_touching_ip() {
        let topo = TopologyConfig::default().build();
        let r = &topo.routers[0];
        let links = LinkSelector::TouchingIp(r.ip).resolve(&topo);
        assert_eq!(links, r.links.iter().copied().collect());
        assert!(LinkSelector::TouchingIp("203.0.113.9".parse().unwrap())
            .resolve(&topo)
            .is_empty());
    }

    #[test]
    fn windows_and_epochs() {
        let topo = TopologyConfig::default().build();
        let schedule = EventSchedule::new()
            .with(NetworkEvent::Congestion {
                selector: LinkSelector::Link(LinkId(0)),
                start: SimTime::from_hours(10),
                end: SimTime::from_hours(12),
                extra_util: 0.5,
            })
            .with(NetworkEvent::RouteLeak {
                leaker: topo.ases[5].asn,
                upstream: topo.ases[1].asn,
                scope: LeakScope::All,
                start: SimTime::from_hours(20),
                end: SimTime::from_hours(22),
            });
        let resolved = schedule.resolve(&topo);
        assert_eq!(resolved.extra_util(LinkId(0), SimTime::from_hours(9)), 0.0);
        assert_eq!(resolved.extra_util(LinkId(0), SimTime::from_hours(10)), 0.5);
        assert_eq!(resolved.extra_util(LinkId(0), SimTime::from_hours(11)), 0.5);
        assert_eq!(resolved.extra_util(LinkId(0), SimTime::from_hours(12)), 0.0);
        assert_eq!(resolved.extra_util(LinkId(1), SimTime::from_hours(11)), 0.0);

        let any_dest = Asn(64999);
        assert!(resolved
            .active_leaks(SimTime::from_hours(19), any_dest)
            .is_empty());
        assert_eq!(
            resolved
                .active_leaks(SimTime::from_hours(21), any_dest)
                .len(),
            1
        );
        assert_eq!(resolved.routing_epoch(SimTime::from_hours(19)), 0);
        assert_eq!(resolved.routing_epoch(SimTime::from_hours(20)), 1);
        assert_eq!(resolved.routing_epoch(SimTime::from_hours(22)), 2);
    }

    #[test]
    fn overlapping_congestion_sums() {
        let topo = TopologyConfig::default().build();
        let mk = |s: u64, e: u64, v: f64| NetworkEvent::Congestion {
            selector: LinkSelector::Link(LinkId(3)),
            start: SimTime::from_hours(s),
            end: SimTime::from_hours(e),
            extra_util: v,
        };
        let resolved = EventSchedule::new()
            .with(mk(0, 10, 0.2))
            .with(mk(5, 15, 0.3))
            .resolve(&topo);
        assert_eq!(resolved.extra_util(LinkId(3), SimTime::from_hours(7)), 0.5);
    }

    #[test]
    fn ixp_outage_forces_loss() {
        let topo = TopologyConfig::default().build();
        let ixp = topo.ases.iter().find(|a| a.tier == AsTier::IxpLan).unwrap();
        let lan_links = LinkSelector::IxpLanOf(ixp.asn).resolve(&topo);
        let resolved = EventSchedule::new()
            .with(NetworkEvent::IxpOutage {
                ixp: ixp.asn,
                start: SimTime::from_hours(1),
                end: SimTime::from_hours(2),
            })
            .resolve(&topo);
        if let Some(&l) = lan_links.iter().next() {
            assert_eq!(resolved.forced_loss(l, SimTime::from_hours(1)), 1.0);
            assert_eq!(resolved.forced_loss(l, SimTime::from_hours(3)), 0.0);
        }
    }
}
