//! Dense index types for topology entities.
//!
//! ASes, routers, and links live in flat `Vec`s inside [`crate::Topology`];
//! these newtypes keep the indices from being mixed up.

use std::fmt;

/// Index of an AS in the topology's AS table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(pub u32);

/// Index of a router in the topology's router table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

/// Index of a link in the topology's link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl AsId {
    /// As a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// As a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// As a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as#{}", self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r#{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_round_trip() {
        assert_eq!(AsId(3).idx(), 3);
        assert_eq!(RouterId(9).idx(), 9);
        assert_eq!(LinkId(0).idx(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(AsId(1).to_string(), "as#1");
        assert_eq!(RouterId(2).to_string(), "r#2");
        assert_eq!(LinkId(3).to_string(), "l#3");
    }
}
