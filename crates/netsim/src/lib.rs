//! # pinpoint-netsim
//!
//! A deterministic Internet simulator: the substrate the paper's methods are
//! evaluated on. The real paper consumes eight months of RIPE Atlas
//! traceroutes over the live Internet; neither is available offline, so this
//! crate provides a synthetic Internet with *controlled ground truth* that
//! produces the same traceroute-visible artifacts the detectors consume:
//!
//! * **Topology** ([`topology`]) — a seeded AS-level graph (tier-1 clique,
//!   transit hierarchy, stub edge, IXP peering LANs) with one router per
//!   (AS, city) and geographic propagation delays; IPv4 prefixes allocated
//!   per AS and anycast services announced from multiple instances.
//! * **Routing** ([`routing`]) — Gao–Rexford valley-free policy routing with
//!   deterministic tie-breaks, hot-potato intra-AS forwarding over per-AS
//!   Dijkstra, per-flow ECMP, and — crucially for the paper's Challenge 1 —
//!   **independently computed return paths**, so round-trip times genuinely
//!   mix forward and reverse path delays.
//! * **Dynamics** ([`dynamics`]) — per-link utilization with diurnal
//!   variation feeding an M/M/1-shaped queueing delay, RED-like loss, and a
//!   per-packet noise model (log-normal body, Pareto slow-path spikes, rare
//!   gross outliers) reproducing the statistical texture of real RTTs.
//! * **Events** ([`events`]) — injectable ground-truth disruptions:
//!   targeted congestion (the DDoS case study), BGP route leaks (the
//!   Telekom Malaysia case study), IXP fabric outages (the AMS-IX case
//!   study), and link failures.
//! * **Engine** ([`network`]) — `Network::traceroute` answers Paris
//!   traceroute queries at a given time as a *pure function* of the
//!   scenario seed, so every experiment is exactly reproducible.
//!
//! Everything is synchronous and CPU-bound by design; queries are cheap and
//! the engine is `Sync`, so harnesses can sweep scenarios across threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod events;
pub mod fault;
pub mod geo;
pub mod ids;
pub mod network;
pub mod routing;
pub mod topology;

pub use dynamics::ArtifactModel;
pub use events::{EventSchedule, NetworkEvent};
pub use fault::{FaultModel, FaultyFeed, FeedEvent, RecoveredFeed};
pub use ids::{AsId, LinkId, RouterId};
pub use network::{Network, TraceHop, TraceOutcome};
pub use topology::{builder::TopologyBuilder, builder::TopologyConfig, Topology};
