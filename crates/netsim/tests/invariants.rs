//! Cross-seed invariants of the simulated Internet.
//!
//! These validate the substrate claims DESIGN.md makes — in particular
//! that the simulator genuinely produces the *path asymmetry* that the
//! paper's differential-RTT method exists to survive ("past studies report
//! about 90% of AS-level routes as asymmetric", §3 Challenge 1).

use pinpoint_model::SimTime;
use pinpoint_netsim::network::TraceQuery;
use pinpoint_netsim::routing::forwarding::{Forwarding, PathStitcher};
use pinpoint_netsim::routing::policy::compute_routes;
use pinpoint_netsim::{EventSchedule, Network, TopologyConfig};

#[test]
fn as_level_routes_are_substantially_asymmetric() {
    for seed in [1u64, 7, 42] {
        let cfg = TopologyConfig {
            seed,
            ..TopologyConfig::default()
        };
        let topo = cfg.build();
        let stubs: Vec<_> = topo.stub_ases().map(|a| a.id).collect();
        let mut asym = 0usize;
        let mut total = 0usize;
        for (i, &a) in stubs.iter().enumerate().take(12) {
            let to_a = compute_routes(&topo, a, &[], seed);
            for &b in stubs.iter().skip(i + 1).take(12) {
                let to_b = compute_routes(&topo, b, &[], seed);
                let fwd = to_b.as_path(a);
                let rev = to_a.as_path(b);
                if let (Some(mut f), Some(r)) = (fwd, rev) {
                    f.reverse();
                    total += 1;
                    if f != r {
                        asym += 1;
                    }
                }
            }
        }
        let rate = asym as f64 / total.max(1) as f64;
        // The simulated hierarchy is small, so many stub pairs have a
        // unique valley-free path; ~20-30 % measured asymmetry is the
        // structural floor (the real Internet's ~90 % comes from much
        // richer peering). What the method needs is that a *substantial*
        // fraction of return paths differ — see DESIGN.md.
        assert!(
            rate > 0.12,
            "seed {seed}: only {rate:.2} of {total} AS paths asymmetric — \
             differential RTTs would not contain the ε term the method cancels"
        );
    }
}

#[test]
fn router_level_forward_and_return_paths_differ() {
    let topo = TopologyConfig::default().build();
    let net = Network::new(topo, 99, &EventSchedule::new());
    let stubs: Vec<_> = net.topology().stub_ases().map(|a| a.routers[0]).collect();
    let mut asym = 0usize;
    let mut total = 0usize;
    for (i, &src) in stubs.iter().enumerate().take(10) {
        for &dst_router in stubs.iter().skip(i + 1).take(10) {
            let dst = net.topology().router(dst_router).ip;
            let Some(fwd) = net.forward_path(&TraceQuery {
                src,
                dst,
                t: SimTime::from_hours(1),
                flow: 5,
                packets_per_hop: 3,
            }) else {
                continue;
            };
            let src_ip = net.topology().router(src).ip;
            let Some(rev) = net.forward_path(&TraceQuery {
                src: dst_router,
                dst: src_ip,
                t: SimTime::from_hours(1),
                flow: 5,
                packets_per_hop: 3,
            }) else {
                continue;
            };
            total += 1;
            let mut rev_rev = rev.clone();
            rev_rev.reverse();
            if rev_rev != fwd {
                asym += 1;
            }
        }
    }
    assert!(total > 20, "too few pairs stitched: {total}");
    let rate = asym as f64 / total as f64;
    // Router-level asymmetry exceeds AS-level: hot-potato exits and
    // per-flow ECMP diverge even on AS-symmetric routes.
    assert!(rate > 0.15, "router-level asymmetry rate only {rate:.2}");
}

#[test]
fn stitched_paths_never_loop_across_seeds() {
    for seed in [3u64, 13, 31] {
        let cfg = TopologyConfig {
            seed,
            ..TopologyConfig::default()
        };
        let topo = cfg.build();
        let fwd = Forwarding::new(&topo);
        let stitcher = PathStitcher::new(&topo, &fwd);
        let stubs: Vec<_> = topo.stub_ases().collect();
        let dst = stubs[stubs.len() - 1];
        let table = compute_routes(&topo, dst.id, &[], seed);
        for s in stubs.iter().take(20) {
            for flow in 0..4u64 {
                if let Some(path) = stitcher.route(s.routers[0], &table, Some(dst.routers[0]), flow)
                {
                    let mut seen = std::collections::HashSet::new();
                    assert!(
                        path.iter().all(|r| seen.insert(*r)),
                        "seed {seed}: loop in stitched path {path:?}"
                    );
                    // Adjacent routers are physically linked.
                    for w in path.windows(2) {
                        assert!(
                            topo.link_between_routers(w[0], w[1]).is_some(),
                            "seed {seed}: non-adjacent hop"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn rtt_decomposition_matches_eq2() {
    // RTT(P→Y) − RTT(P→X) must equal δ(XY) + ε up to per-packet noise:
    // verify that the deterministic part of the engine's RTTs obeys the
    // paper's Eq. 2 decomposition (forward one-way delays + return paths).
    let topo = TopologyConfig::default().build();
    let net = Network::new(topo, 5, &EventSchedule::new());
    let stubs: Vec<_> = net.topology().stub_ases().map(|a| a.routers[0]).collect();
    let src = stubs[0];
    let dst = net.topology().router(stubs[stubs.len() - 1]).ip;
    let q = TraceQuery {
        src,
        dst,
        t: SimTime::from_hours(2),
        flow: 9,
        packets_per_hop: 3,
    };
    let Some(fpath) = net.forward_path(&q) else {
        return;
    };
    if fpath.len() < 3 {
        return;
    }
    // One-way forward delay is additive along the path.
    let d_all = net.one_way_delay_ms(&fpath, q.t);
    let d_head = net.one_way_delay_ms(&fpath[..fpath.len() - 1], q.t);
    let last = net
        .topology()
        .link_between_routers(fpath[fpath.len() - 2], fpath[fpath.len() - 1])
        .expect("adjacent");
    let d_last = net.one_way_delay_ms(&[last.a, last.b], q.t);
    assert!(
        (d_all - d_head - d_last).abs() < 1e-9,
        "one-way delay not additive: {d_all} vs {d_head} + {d_last}"
    );
}
