//! Probe deployment over the simulated topology.
//!
//! Atlas probes are unevenly distributed — some ASes host hundreds, most
//! host a handful. The deployment helper reproduces that skew with a
//! Zipf-like allocation so the probe-diversity machinery of §4.3 (the ≥3-AS
//! rule and the entropy rebalancing) actually gets exercised.

use pinpoint_model::{Asn, ProbeId};
use pinpoint_netsim::ids::{AsId, RouterId};
use pinpoint_netsim::Topology;
use pinpoint_stats::rng::{derive_seed, SplitMix64};

/// A deployed measurement probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Identifier carried into measurement records.
    pub id: ProbeId,
    /// Gateway router the probe's traceroutes start from.
    pub gateway: RouterId,
    /// Hosting AS (dense id).
    pub as_id: AsId,
    /// Hosting AS number (recorded on every traceroute for the diversity
    /// filter).
    pub asn: Asn,
}

/// A set of probes with lookup helpers.
#[derive(Debug, Clone, Default)]
pub struct ProbeDeployment {
    /// All probes, indexed by position (== probe id).
    pub probes: Vec<Probe>,
}

impl ProbeDeployment {
    /// Number of probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether no probes are deployed.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Probe by id.
    pub fn get(&self, id: ProbeId) -> Option<&Probe> {
        self.probes.get(id.0 as usize)
    }

    /// Number of distinct hosting ASes.
    pub fn distinct_ases(&self) -> usize {
        let mut ases: Vec<AsId> = self.probes.iter().map(|p| p.as_id).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len()
    }
}

/// Deploy `count` probes across the topology's stub ASes.
///
/// The first `min(count, stubs)` probes cover every stub once (the real
/// platform's long tail of single-probe ASes); the remainder follow a
/// Zipf-like allocation over a shuffled stub order, so a few ASes host
/// many probes — the skew the §4.3 entropy criterion exists for.
/// Deterministic in `seed`.
pub fn deploy_probes(topo: &Topology, count: usize, seed: u64) -> ProbeDeployment {
    let mut rng = SplitMix64::new(derive_seed(seed, "probe-deployment"));
    let mut stubs: Vec<&pinpoint_netsim::topology::AsNode> = topo.stub_ases().collect();
    assert!(!stubs.is_empty(), "no stub ASes to host probes");
    rng.shuffle(&mut stubs);

    // Zipf weights over the shuffled order.
    let weights: Vec<f64> = (0..stubs.len()).map(|k| 1.0 / (k as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();

    let mut probes = Vec::with_capacity(count);
    for i in 0..count {
        let pick = if i < stubs.len() {
            i // coverage pass: one probe per stub
        } else {
            // Weighted pick for the remainder.
            let mut x = rng.next_f64() * total;
            let mut pick = 0;
            for (k, w) in weights.iter().enumerate() {
                if x < *w {
                    pick = k;
                    break;
                }
                x -= w;
            }
            pick
        };
        let stub = stubs[pick];
        let gateway = *rng.choose(&stub.routers);
        probes.push(Probe {
            id: ProbeId(i as u32),
            gateway,
            as_id: stub.id,
            asn: stub.asn,
        });
    }
    ProbeDeployment { probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_netsim::TopologyConfig;

    #[test]
    fn deployment_covers_many_ases_with_skew() {
        let topo = TopologyConfig::default().build();
        let d = deploy_probes(&topo, 200, 5);
        assert_eq!(d.len(), 200);
        let ases = d.distinct_ases();
        assert!(ases >= 10, "only {ases} ASes covered");
        // Skew: the busiest AS hosts several times the median count.
        let mut counts = std::collections::HashMap::new();
        for p in &d.probes {
            *counts.entry(p.as_id).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 10, "no heavy AS (max {max})");
    }

    #[test]
    fn deployment_is_deterministic() {
        let topo = TopologyConfig::default().build();
        let a = deploy_probes(&topo, 50, 9);
        let b = deploy_probes(&topo, 50, 9);
        assert_eq!(a.probes, b.probes);
        let c = deploy_probes(&topo, 50, 10);
        assert_ne!(a.probes, c.probes);
    }

    #[test]
    fn probes_live_on_their_as_routers() {
        let topo = TopologyConfig::default().build();
        let d = deploy_probes(&topo, 80, 1);
        for p in &d.probes {
            assert_eq!(topo.router(p.gateway).as_id, p.as_id);
            assert_eq!(topo.asn(p.as_id).asn, p.asn);
        }
    }

    #[test]
    fn get_by_id() {
        let topo = TopologyConfig::default().build();
        let d = deploy_probes(&topo, 10, 1);
        assert_eq!(d.get(ProbeId(3)).unwrap().id, ProbeId(3));
        assert!(d.get(ProbeId(99)).is_none());
    }
}
