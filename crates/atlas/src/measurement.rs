//! Measurement definitions and scheduling.
//!
//! A [`Measurement`] is a recurring traceroute task: a target address, an
//! interval, and the probes participating. Scheduling uses per-(probe,
//! measurement) phase offsets so traceroutes spread across each interval
//! instead of arriving in synchronized bursts — like the real platform.

use pinpoint_model::{MeasurementId, ProbeId, SimTime};
use pinpoint_stats::rng::derive_seed;
use std::net::Ipv4Addr;

/// The Atlas measurement classes used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasurementKind {
    /// Probe → DNS root service, every 30 minutes.
    Builtin,
    /// Probe → anchor host, every 15 minutes.
    Anchoring,
    /// User-defined traceroute towards an arbitrary target — the §8
    /// deployment analyzes these as independent streams alongside the
    /// builtins (default 15-minute interval, like a typical one-off).
    UserDefined,
}

impl MeasurementKind {
    /// Default interval for the class, in seconds.
    pub fn default_interval(self) -> u64 {
        match self {
            MeasurementKind::Builtin => 1800,
            MeasurementKind::Anchoring | MeasurementKind::UserDefined => 900,
        }
    }

    /// Probing rate r in traceroutes per hour (Appendix B notation).
    pub fn rate_per_hour(self) -> f64 {
        3600.0 / self.default_interval() as f64
    }
}

/// A recurring traceroute measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Identifier stamped on resulting records.
    pub id: MeasurementId,
    /// Class (controls the default interval).
    pub kind: MeasurementKind,
    /// Target address (anycast service or unicast host).
    pub target: Ipv4Addr,
    /// Interval between traceroutes from one probe, in seconds.
    pub interval_secs: u64,
    /// Participating probes.
    pub probes: Vec<ProbeId>,
}

impl Measurement {
    /// Create a measurement with the class's default interval.
    pub fn new(
        id: MeasurementId,
        kind: MeasurementKind,
        target: Ipv4Addr,
        probes: Vec<ProbeId>,
    ) -> Self {
        Measurement {
            id,
            kind,
            target,
            interval_secs: kind.default_interval(),
            probes,
        }
    }

    /// Deterministic phase offset of a probe within the interval.
    pub fn phase(&self, probe: ProbeId) -> u64 {
        derive_seed(
            (u64::from(self.id.0) << 32) | u64::from(probe.0),
            "measurement-phase",
        ) % self.interval_secs
    }

    /// Firing times of `probe` within `[from, to)`.
    pub fn firings(&self, probe: ProbeId, from: SimTime, to: SimTime) -> Vec<SimTime> {
        assert!(from <= to, "inverted window");
        let phase = self.phase(probe);
        let mut out = Vec::new();
        // First firing at or after `from`.
        let start = from.secs().saturating_sub(phase);
        let mut k = start / self.interval_secs;
        if k * self.interval_secs + phase < from.secs() {
            k += 1;
        }
        loop {
            let t = k * self.interval_secs + phase;
            if t >= to.secs() {
                break;
            }
            out.push(SimTime(t));
            k += 1;
        }
        out
    }

    /// The Paris flow identifier used for the `n`-th traceroute of a probe.
    ///
    /// Atlas cycles paris ids over a small set (16); the flow stays constant
    /// within one traceroute, giving load-balancer-stable paths, while
    /// successive traceroutes explore sibling paths.
    pub fn paris_id(&self, probe: ProbeId, n: u64) -> u16 {
        ((u64::from(probe.0) ^ n.wrapping_mul(7)) % 16) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msm() -> Measurement {
        Measurement::new(
            MeasurementId(5001),
            MeasurementKind::Builtin,
            "198.51.100.1".parse().unwrap(),
            vec![ProbeId(0), ProbeId(1)],
        )
    }

    #[test]
    fn kinds_have_paper_rates() {
        assert_eq!(MeasurementKind::Builtin.default_interval(), 1800);
        assert_eq!(MeasurementKind::Builtin.rate_per_hour(), 2.0);
        assert_eq!(MeasurementKind::Anchoring.default_interval(), 900);
        assert_eq!(MeasurementKind::Anchoring.rate_per_hour(), 4.0);
    }

    #[test]
    fn firings_cover_interval_at_expected_rate() {
        let m = msm();
        let fires = m.firings(ProbeId(0), SimTime::ZERO, SimTime::from_hours(6));
        // 2 per hour for 6 hours.
        assert_eq!(fires.len(), 12);
        for w in fires.windows(2) {
            assert_eq!(w[1].secs() - w[0].secs(), 1800);
        }
        for t in &fires {
            assert!(t.secs() < 6 * 3600);
        }
    }

    #[test]
    fn firings_respect_window_boundaries() {
        let m = msm();
        let all = m.firings(ProbeId(1), SimTime::ZERO, SimTime::from_hours(2));
        let first_half = m.firings(ProbeId(1), SimTime::ZERO, SimTime::from_hours(1));
        let second_half = m.firings(ProbeId(1), SimTime::from_hours(1), SimTime::from_hours(2));
        let mut glued = first_half.clone();
        glued.extend(second_half);
        assert_eq!(all, glued, "window split changed the schedule");
    }

    #[test]
    fn phases_differ_across_probes() {
        let m = msm();
        let phases: std::collections::HashSet<u64> = (0..50).map(|i| m.phase(ProbeId(i))).collect();
        assert!(phases.len() > 30, "phases heavily collide");
        for p in phases {
            assert!(p < m.interval_secs);
        }
    }

    #[test]
    fn paris_ids_cycle_within_range() {
        let m = msm();
        let ids: Vec<u16> = (0..32).map(|n| m.paris_id(ProbeId(7), n)).collect();
        assert!(ids.iter().all(|&p| p < 16));
        let distinct: std::collections::HashSet<u16> = ids.iter().copied().collect();
        assert!(distinct.len() > 4, "paris ids barely vary: {distinct:?}");
    }

    #[test]
    fn empty_window_no_firings() {
        let m = msm();
        assert!(m
            .firings(ProbeId(0), SimTime::from_hours(3), SimTime::from_hours(3))
            .is_empty());
    }
}
