//! # pinpoint-atlas
//!
//! A RIPE Atlas measurement platform emulator over [`pinpoint_netsim`].
//!
//! The paper consumes two classes of repetitive Atlas measurements (§2):
//!
//! * **builtin** — every probe traceroutes each of the 13 DNS root services
//!   every 30 minutes (r = 2/hour in Appendix B's notation);
//! * **anchoring** — ~400 probes traceroute 189 anchor hosts every
//!   15 minutes (r = 4/hour).
//!
//! This crate reproduces the *shape* of that data: probe deployment over
//! the simulated stub ASes (uneven by design, so the §4.3 diversity filter
//! has work to do), measurement scheduling with per-probe phase offsets,
//! Paris traceroute execution (3 packets per hop, flow id constant within a
//! traceroute, cycled across traceroutes), and conversion into the
//! [`pinpoint_model::TracerouteRecord`] interchange format the detectors
//! consume — the same records a user would build from real Atlas JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measurement;
pub mod platform;
pub mod probe;

pub use measurement::{Measurement, MeasurementKind};
pub use platform::Platform;
pub use probe::{deploy_probes, Probe, ProbeDeployment};
