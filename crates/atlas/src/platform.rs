//! The measurement platform: executes schedules against the simulator and
//! emits traceroute records per time bin.
//!
//! [`Platform::collect_bin`] is the batch interface the evaluation harness
//! uses (one call per analysis bin); [`Platform::stream`] is the
//! near-real-time interface mirroring the Atlas streaming API the paper's
//! §8 "Internet Health Report" deployment consumes.

use crate::measurement::{Measurement, MeasurementKind};
use crate::probe::ProbeDeployment;
use pinpoint_model::records::{Hop, Reply, TracerouteRecord};
use pinpoint_model::{BinId, MeasurementId, SimTime};
use pinpoint_netsim::network::TraceQuery;
use pinpoint_netsim::{ArtifactModel, Network};
use std::net::Ipv4Addr;

/// The emulated measurement platform.
#[derive(Debug)]
pub struct Platform {
    net: Network,
    probes: ProbeDeployment,
    measurements: Vec<Measurement>,
    /// Analysis bin length in seconds (1 hour in the paper).
    pub bin_secs: u64,
    /// Measurement-artifact injection applied to every emitted record
    /// (`None` = a clean feed).
    artifacts: Option<ArtifactModel>,
}

impl Platform {
    /// Assemble a platform. Measurements are added with
    /// [`Platform::add_builtin_mesh`] / [`Platform::add_measurement`].
    pub fn new(net: Network, probes: ProbeDeployment) -> Self {
        Platform {
            net,
            probes,
            measurements: Vec::new(),
            bin_secs: 3600,
            artifacts: None,
        }
    }

    /// The underlying network engine.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Corrupt every emitted record with the given
    /// [`ArtifactModel`] (`None` restores a clean feed). Corruption is a
    /// pure function of the record's identity, so batch, chunked, and
    /// streamed collection of the same bin keep emitting identical
    /// records — only *dirtier* ones.
    pub fn set_artifact_model(&mut self, model: Option<ArtifactModel>) {
        self.artifacts = model;
    }

    /// The artifact model in effect, if any.
    pub fn artifact_model(&self) -> Option<&ArtifactModel> {
        self.artifacts.as_ref()
    }

    /// The probe deployment.
    pub fn probes(&self) -> &ProbeDeployment {
        &self.probes
    }

    /// The registered measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Register a measurement.
    pub fn add_measurement(&mut self, m: Measurement) {
        self.measurements.push(m);
    }

    /// Register builtin measurements: every probe → every anycast service.
    ///
    /// Mirrors the Atlas builtins towards the 13 root services; our
    /// scenarios typically register 3–6 services.
    pub fn add_builtin_mesh(&mut self) {
        let all_probes: Vec<_> = self.probes.probes.iter().map(|p| p.id).collect();
        let targets: Vec<Ipv4Addr> = self
            .net
            .topology()
            .services
            .iter()
            .map(|s| s.addr)
            .collect();
        for (i, target) in targets.into_iter().enumerate() {
            let id = MeasurementId(5000 + i as u32);
            self.measurements.push(Measurement::new(
                id,
                MeasurementKind::Builtin,
                target,
                all_probes.clone(),
            ));
        }
    }

    /// Register anchoring measurements: the given probes → each target.
    pub fn add_anchoring(&mut self, targets: &[Ipv4Addr], probe_stride: usize) {
        let probes: Vec<_> = self
            .probes
            .probes
            .iter()
            .step_by(probe_stride.max(1))
            .map(|p| p.id)
            .collect();
        for (i, &target) in targets.iter().enumerate() {
            let id = MeasurementId(7000 + i as u32);
            self.measurements.push(Measurement::new(
                id,
                MeasurementKind::Anchoring,
                target,
                probes.clone(),
            ));
        }
    }

    /// Execute every measurement firing inside the bin and return records
    /// sorted by timestamp.
    pub fn collect_bin(&self, bin: BinId) -> Vec<TracerouteRecord> {
        self.collect_bin_where(bin, |_| true)
    }

    /// Like [`Platform::collect_bin`], but only for measurements the
    /// predicate selects — the multi-stream interface: a stream is a
    /// subset of measurements (one mesh, one user-defined measurement, …)
    /// analyzed by its own detector instance, so each stream collects its
    /// own bin from the shared platform.
    pub fn collect_bin_where(
        &self,
        bin: BinId,
        mut include: impl FnMut(&Measurement) -> bool,
    ) -> Vec<TracerouteRecord> {
        let from = bin.start(self.bin_secs);
        let to = bin.end(self.bin_secs);
        let mut records = Vec::new();
        for m in self.measurements.iter().filter(|m| include(m)) {
            for &probe_id in &m.probes {
                let Some(probe) = self.probes.get(probe_id) else {
                    continue;
                };
                for t in m.firings(probe_id, from, to) {
                    let n = t.secs() / m.interval_secs;
                    let paris = m.paris_id(probe_id, n);
                    let flow =
                        (u64::from(probe_id.0) << 20) ^ (u64::from(paris) << 4) ^ u64::from(m.id.0);
                    let outcome = self.net.traceroute(&TraceQuery {
                        src: probe.gateway,
                        dst: m.target,
                        t,
                        flow,
                        packets_per_hop: 3,
                    });
                    let mut record = outcome_to_record(m.id, probe, m.target, t, paris, outcome);
                    if let Some(model) = &self.artifacts {
                        model.corrupt(&mut record);
                    }
                    records.push(record);
                }
            }
        }
        records.sort_by_key(|r| (r.timestamp, r.probe_id, r.msm_id));
        records
    }

    /// Like [`Platform::collect_bin`], but the bin arrives as a sequence
    /// of record chunks of (at most) `chunk_records` each, preserving the
    /// bin's timestamp order across the concatenation — the shape the
    /// streaming Atlas API delivers results in, and the unit the chunked
    /// ingestion front-end consumes (`Analyzer::ingest` one chunk at a
    /// time, or a whole slice of chunks at once). Chunking is pure
    /// partitioning: concatenating the chunks yields exactly
    /// [`Platform::collect_bin`]'s output.
    pub fn collect_bin_chunked(
        &self,
        bin: BinId,
        chunk_records: usize,
    ) -> Vec<Vec<TracerouteRecord>> {
        self.collect_bin(bin)
            .chunks(chunk_records.max(1))
            .map(<[TracerouteRecord]>::to_vec)
            .collect()
    }

    /// Iterate bins `[first, last)` lazily — the streaming interface.
    pub fn stream(
        &self,
        first: BinId,
        last: BinId,
    ) -> impl Iterator<Item = (BinId, Vec<TracerouteRecord>)> + '_ {
        (first.0..last.0).map(move |b| {
            let bin = BinId(b);
            (bin, self.collect_bin(bin))
        })
    }

    /// Pre-materialize a window of bins — the feed shape the cross-bin
    /// pipelined executor wants when measuring pure engine overlap: with
    /// every bin's records already collected, the only serial work
    /// between two-lane waves is the intern merge, so bin *n+1*'s scatter
    /// genuinely hides behind bin *n*'s analysis instead of waiting on
    /// the simulator. (The lazy [`Platform::stream`] works too; it just
    /// re-enters the simulator between waves.)
    pub fn collect_bins(&self, first: BinId, last: BinId) -> Vec<(BinId, Vec<TracerouteRecord>)> {
        self.stream(first, last).collect()
    }

    /// Iterate bins `[first, last)` as chunked record slices — the
    /// near-real-time interface: each bin arrives as arrival-ordered
    /// chunks ready for incremental ingestion.
    pub fn stream_chunked(
        &self,
        first: BinId,
        last: BinId,
        chunk_records: usize,
    ) -> impl Iterator<Item = (BinId, Vec<Vec<TracerouteRecord>>)> + '_ {
        (first.0..last.0).map(move |b| {
            let bin = BinId(b);
            (bin, self.collect_bin_chunked(bin, chunk_records))
        })
    }
}

/// Convert an engine outcome into the interchange record format.
fn outcome_to_record(
    msm_id: MeasurementId,
    probe: &crate::probe::Probe,
    dst: Ipv4Addr,
    t: SimTime,
    paris: u16,
    outcome: pinpoint_netsim::TraceOutcome,
) -> TracerouteRecord {
    let hops = outcome
        .hops
        .iter()
        .enumerate()
        .map(|(i, h)| {
            let replies = h
                .rtts
                .iter()
                .map(|rtt| match (h.ip, rtt) {
                    (Some(ip), Some(ms)) => Reply::new(ip, *ms),
                    _ => Reply::TIMEOUT,
                })
                .collect();
            Hop::new((i + 1) as u8, replies)
        })
        .collect();
    TracerouteRecord {
        msm_id,
        probe_id: probe.id,
        probe_asn: probe.asn,
        dst,
        timestamp: t,
        paris_id: paris,
        hops,
        destination_reached: outcome.reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::deploy_probes;
    use pinpoint_netsim::{EventSchedule, Network, TopologyConfig};

    fn platform() -> Platform {
        let topo = TopologyConfig::default().build();
        // Add a unicast anchor target in some stub.
        let net = Network::new(topo, 31, &EventSchedule::new());
        let probes = deploy_probes(net.topology(), 60, 7);
        let mut p = Platform::new(net, probes);
        // Anchor the last stub's router as a unicast target.
        let target = {
            let stubs: Vec<_> = p.network().topology().stub_ases().collect();
            p.network()
                .topology()
                .router(stubs[stubs.len() - 1].routers[0])
                .ip
        };
        p.add_measurement(Measurement::new(
            MeasurementId(7000),
            MeasurementKind::Anchoring,
            target,
            p.probes().probes.iter().map(|x| x.id).collect(),
        ));
        p
    }

    #[test]
    fn collect_bin_produces_expected_volume() {
        let p = platform();
        let records = p.collect_bin(BinId(3));
        // 60 probes × 4/hour.
        assert_eq!(records.len(), 60 * 4);
        for r in &records {
            assert!(!r.hops.is_empty(), "empty traceroute");
            assert_eq!(r.hops[0].ttl, 1);
            assert!(r.hops.iter().all(|h| h.replies.len() == 3));
            let bin_start = BinId(3).start(3600);
            let bin_end = BinId(3).end(3600);
            assert!(r.timestamp >= bin_start && r.timestamp < bin_end);
        }
    }

    #[test]
    fn most_traceroutes_reach_destination_in_quiet_network() {
        let p = platform();
        let records = p.collect_bin(BinId(0));
        let reached = records.iter().filter(|r| r.destination_reached).count();
        let rate = reached as f64 / records.len() as f64;
        assert!(rate > 0.9, "only {rate} reached");
    }

    #[test]
    fn records_are_deterministic() {
        let p = platform();
        let a = p.collect_bin(BinId(1));
        let b = p.collect_bin(BinId(1));
        assert_eq!(a, b);
    }

    #[test]
    fn links_extractable_from_records() {
        let p = platform();
        let records = p.collect_bin(BinId(0));
        let total_links: usize = records.iter().map(|r| r.links().len()).sum();
        assert!(
            total_links > records.len(),
            "too few adjacent-IP pairs: {total_links}"
        );
    }

    #[test]
    fn filtered_collection_partitions_the_bin() {
        // Splitting the measurement set into streams must lose nothing:
        // the per-stream bins, merged and re-sorted, are exactly the full
        // bin (each stream is a disjoint measurement subset).
        let mut p = platform();
        let target = {
            let topo = p.network().topology();
            topo.router(topo.stub_ases().next().unwrap().routers[0]).ip
        };
        let probes = p.probes().probes.iter().take(10).map(|x| x.id).collect();
        p.add_measurement(Measurement::new(
            MeasurementId(9000),
            MeasurementKind::UserDefined,
            target,
            probes,
        ));
        let full = p.collect_bin(BinId(2));
        let user = p.collect_bin_where(BinId(2), |m| m.kind == MeasurementKind::UserDefined);
        let rest = p.collect_bin_where(BinId(2), |m| m.kind != MeasurementKind::UserDefined);
        assert!(!user.is_empty() && !rest.is_empty());
        assert!(user.iter().all(|r| r.msm_id == MeasurementId(9000)));
        let mut merged = user;
        merged.extend(rest);
        merged.sort_by_key(|r| (r.timestamp, r.probe_id, r.msm_id));
        assert_eq!(merged, full);
    }

    #[test]
    fn stream_yields_bins_in_order() {
        let p = platform();
        let bins: Vec<BinId> = p.stream(BinId(2), BinId(5)).map(|(b, _)| b).collect();
        assert_eq!(bins, vec![BinId(2), BinId(3), BinId(4)]);
    }

    #[test]
    fn collected_window_equals_the_lazy_stream() {
        let p = platform();
        let window = p.collect_bins(BinId(1), BinId(4));
        let lazy: Vec<_> = p.stream(BinId(1), BinId(4)).collect();
        assert_eq!(window, lazy);
        assert!(window.iter().all(|(_, records)| !records.is_empty()));
    }

    #[test]
    fn chunked_collection_is_a_pure_partition() {
        let p = platform();
        let full = p.collect_bin(BinId(1));
        for chunk_records in [1usize, 7, 100, full.len(), full.len() + 50] {
            let chunks = p.collect_bin_chunked(BinId(1), chunk_records);
            assert!(
                chunks.iter().all(|c| !c.is_empty()),
                "chunk_records={chunk_records}: empty chunk emitted"
            );
            assert!(
                chunks.iter().all(|c| c.len() <= chunk_records),
                "chunk_records={chunk_records}: oversized chunk"
            );
            let merged: Vec<_> = chunks.into_iter().flatten().collect();
            assert_eq!(merged, full, "chunk_records={chunk_records}");
        }
        // Degenerate chunk size clamps to 1.
        let singles = p.collect_bin_chunked(BinId(1), 0);
        assert_eq!(singles.len(), full.len());
        // And the chunked stream covers the same window.
        let bins: Vec<BinId> = p
            .stream_chunked(BinId(2), BinId(4), 32)
            .map(|(b, chunks)| {
                assert!(!chunks.is_empty());
                b
            })
            .collect();
        assert_eq!(bins, vec![BinId(2), BinId(3)]);
    }

    #[test]
    fn artifact_model_corrupts_deterministically() {
        use pinpoint_netsim::ArtifactModel;
        let clean = platform().collect_bin(BinId(2));

        let mut p = platform();
        p.set_artifact_model(Some(ArtifactModel::hostile(0xA11)));
        let dirty = p.collect_bin(BinId(2));
        let again = p.collect_bin(BinId(2));

        // Same record count and identities (corruption never drops records),
        // byte-identical across repeated collections, and actually dirty.
        assert_eq!(dirty.len(), clean.len());
        assert_eq!(dirty, again);
        assert_ne!(dirty, clean);
        let changed = clean
            .iter()
            .zip(&dirty)
            .filter(|(c, d)| c.hops != d.hops)
            .count();
        assert!(
            changed > clean.len() / 4,
            "only {changed} records corrupted"
        );

        // Clearing the model restores the clean feed.
        p.set_artifact_model(None);
        assert_eq!(p.collect_bin(BinId(2)), clean);
    }

    #[test]
    fn builtin_mesh_requires_services() {
        let p = platform();
        // The default config has no anycast services; mesh adds nothing.
        let mut p2 = p;
        let before = p2.measurements().len();
        p2.add_builtin_mesh();
        assert_eq!(p2.measurements().len(), before);
    }
}
