//! Synthetic engine workloads.
//!
//! The scenario simulators produce *faithful* bins, but their volume is
//! bounded by simulated probe counts. The throughput benches also need a
//! bin that looks like the full Atlas stream — thousands of links, each
//! monitored by enough probes in enough ASes to survive the §4.3 diversity
//! filter — without paying simulator cost. This module fabricates such a
//! bin directly at the record level, deterministically from a seed.

use pinpoint_core::aggregate::AsMapper;
use pinpoint_model::records::{Hop, Reply, TracerouteRecord};
use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};
use pinpoint_stats::SplitMix64;
use std::net::Ipv4Addr;

/// Shape of a synthetic bin.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of distinct IP links.
    pub links: usize,
    /// Probes monitoring each link (spread over 5 ASes).
    pub probes_per_link: usize,
    /// Traceroutes each probe launches across the link per bin.
    pub shots: usize,
}

impl WorkloadSpec {
    /// A large bin: ~`links × probes × shots` records, nine differential
    /// RTT samples each.
    pub fn large() -> Self {
        WorkloadSpec {
            links: 400,
            probes_per_link: 12,
            shots: 2,
        }
    }

    /// A small smoke-test bin.
    pub fn small() -> Self {
        WorkloadSpec {
            links: 40,
            probes_per_link: 8,
            shots: 2,
        }
    }

    /// Total records this spec produces.
    pub fn records(&self) -> usize {
        self.links * self.probes_per_link * self.shots
    }

    /// A characterization-bound bin: few links, each sampled densely by
    /// probes across all five ASes — grouping is tiny (hundreds of runs
    /// per shard) but every link carries ~1.1k differential-RTT samples,
    /// so the per-link math (median/CI rank selection + Wilson bounds +
    /// the diversity verdict) is the bill. Exercises the batched
    /// shard-level characterization pass.
    pub fn characterize_heavy() -> Self {
        WorkloadSpec {
            links: 48,
            probes_per_link: 32,
            shots: 4,
        }
    }
}

fn link_ips(i: usize) -> (Ipv4Addr, Ipv4Addr, Ipv4Addr) {
    let hi = (i / 250) as u8;
    let lo = (i % 250) as u8;
    (
        Ipv4Addr::new(10, hi, lo, 1),
        Ipv4Addr::new(10, hi, lo, 2),
        Ipv4Addr::new(198, 51, hi, lo.saturating_add(1)),
    )
}

/// Build one synthetic bin of traceroute records.
///
/// Per link, `probes_per_link` probes (ASNs cycling over five values, so
/// the diversity filter passes) each fire `shots` traceroutes of three
/// responsive hops with three replies per hop — nine RTT combinations per
/// record, like a fully responsive Atlas traceroute pair. `bin` shifts the
/// timestamps and jitters the RTTs so successive bins look like a steady
/// stream.
pub fn synthetic_bin(spec: &WorkloadSpec, seed: u64, bin: u64) -> Vec<TracerouteRecord> {
    let mut rng = SplitMix64::new(seed ^ (bin.wrapping_mul(0x9E37_79B9)));
    let mut out = Vec::with_capacity(spec.records());
    for li in 0..spec.links {
        let (near, far, dst) = link_ips(li);
        let link_base = 5.0 + (li % 17) as f64;
        for p in 0..spec.probes_per_link {
            let probe = ProbeId((li * spec.probes_per_link + p) as u32);
            let asn = Asn(64000 + (p % 5) as u32);
            let eps = rng.next_range_f64(-1.0, 1.0);
            for shot in 0..spec.shots {
                let base = 10.0 + eps + rng.next_range_f64(0.0, 0.3);
                let reply3 = |addr: Ipv4Addr, rtt: f64, rng: &mut SplitMix64| {
                    Hop::new(
                        0,
                        (0..3)
                            .map(|_| Reply::new(addr, rtt + rng.next_range_f64(0.0, 0.25)))
                            .collect(),
                    )
                };
                let near_hop = reply3(near, base, &mut rng);
                let far_hop = reply3(far, base + link_base, &mut rng);
                let dst_hop = reply3(dst, base + link_base + 2.0, &mut rng);
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(5000 + li as u32),
                    probe_id: probe,
                    probe_asn: asn,
                    dst,
                    timestamp: SimTime(bin * 3600 + (shot as u64) * 1200),
                    paris_id: shot as u16,
                    hops: vec![near_hop, far_hop, dst_hop],
                    destination_reached: true,
                });
            }
        }
    }
    out
}

/// Shape of a grouping-bound bin.
///
/// The inverse of [`WorkloadSpec::characterize_heavy`]: a horde of probes
/// each contributes a *single* RTT sample per link (one shot, one reply
/// per hop), so the per-shard run buffers are long — hundreds to
/// thousands of `(link, probe)` sort keys — while every run carries one
/// sample and the per-link math stays shallow. The cost center is
/// `finalize`'s key sort: exactly the path the LSD radix sort replaces.
#[derive(Debug, Clone, Copy)]
pub struct GroupingSpec {
    /// Number of distinct IP links.
    pub links: usize,
    /// Probes tracing each link once per bin (spread over 5 ASes).
    pub probes_per_link: usize,
}

impl GroupingSpec {
    /// A large grouping-bound bin (~900 sort keys per shard).
    pub fn large() -> Self {
        GroupingSpec {
            links: 64,
            probes_per_link: 220,
        }
    }

    /// A small smoke-test bin.
    pub fn small() -> Self {
        GroupingSpec {
            links: 8,
            probes_per_link: 24,
        }
    }

    /// Total records this spec produces.
    pub fn records(&self) -> usize {
        self.links * self.probes_per_link
    }
}

/// Build one grouping-bound bin (see [`GroupingSpec`]).
///
/// One record per (link, probe): three responsive hops with a single
/// reply each, so every record contributes exactly one differential-RTT
/// sample to each of its two links. ASNs cycle over five values so the
/// links survive the §4.3 diversity floor and the grouped rows flow all
/// the way through characterization. The key universe is identical
/// across bins (steady state for the intern epoch).
pub fn grouping_bin(spec: &GroupingSpec, seed: u64, bin: u64) -> Vec<TracerouteRecord> {
    let mut rng = SplitMix64::new(seed ^ 0x6E0F ^ (bin.wrapping_mul(0x9E37_79B9)));
    let mut out = Vec::with_capacity(spec.records());
    // Probe-major emission: consecutive records cycle through every link,
    // so each shard's gathered run keys arrive thoroughly out of order —
    // the shape that actually exercises the radix grouping path (a
    // link-major sweep would hand the sorter already-ascending keys).
    for p in 0..spec.probes_per_link {
        for li in 0..spec.links {
            let (near, far, dst) = link_ips(li);
            let link_base = 4.0 + (li % 13) as f64;
            let probe = ProbeId(9_000_000 + (li * spec.probes_per_link + p) as u32);
            let base = 9.0 + rng.next_range_f64(-1.0, 1.0);
            let one = |addr: Ipv4Addr, rtt: f64| Hop::new(0, vec![Reply::new(addr, rtt)]);
            out.push(TracerouteRecord {
                msm_id: MeasurementId(21_000 + li as u32),
                probe_id: probe,
                probe_asn: Asn(64000 + (p % 5) as u32),
                dst,
                timestamp: SimTime(bin * 3600 + (p as u64 % 1800)),
                paris_id: 0,
                hops: vec![
                    one(near, base),
                    one(far, base + link_base),
                    one(dst, base + link_base + 2.0),
                ],
                destination_reached: true,
            });
        }
    }
    out
}

/// Ground-truth mapper covering the synthetic address plan.
pub fn synthetic_mapper() -> AsMapper {
    AsMapper::from_prefixes([
        ("10.0.0.0/8".parse().unwrap(), Asn(65000)),
        ("198.51.0.0/16".parse().unwrap(), Asn(65001)),
    ])
}

/// Shape of a synthetic forwarding-heavy bin.
///
/// The delay workload above exercises the §4 path (dense RTT samples per
/// link); this one stresses §5: many (router, destination) patterns, each
/// spraying packets over an ECMP-like next-hop fan-out, while keeping the
/// probe set per link below the §4.3 AS-diversity floor so the delay
/// detector drops the links early and the forwarding engine dominates the
/// bin's cost.
#[derive(Debug, Clone, Copy)]
pub struct ForwardingSpec {
    /// Distinct routers whose forwarding is modeled.
    pub routers: usize,
    /// Destinations traced through each router (patterns = routers × this).
    pub dsts_per_router: usize,
    /// Next hops each pattern spreads its packets over.
    pub next_hops: usize,
    /// Traceroutes per (router, destination) per bin.
    pub shots: usize,
}

impl ForwardingSpec {
    /// A large bin: ~`routers × dsts` patterns with a realistic (~4-hop)
    /// fan-out each.
    pub fn large() -> Self {
        ForwardingSpec {
            routers: 300,
            dsts_per_router: 4,
            next_hops: 4,
            shots: 3,
        }
    }

    /// A small smoke-test bin.
    pub fn small() -> Self {
        ForwardingSpec {
            routers: 30,
            dsts_per_router: 2,
            next_hops: 3,
            shots: 2,
        }
    }

    /// Total records this spec produces.
    pub fn records(&self) -> usize {
        self.routers * self.dsts_per_router * self.shots
    }

    /// Total (router, destination) patterns this spec produces.
    pub fn patterns(&self) -> usize {
        self.routers * self.dsts_per_router
    }
}

/// Build one synthetic forwarding-heavy bin.
///
/// Per (router, destination), `shots` single-probe traceroutes each send
/// three packets past the router; every packet picks one of `next_hops`
/// successors pseudo-randomly (a timeout once in a while, so the
/// unresponsive bucket Z stays populated). Packet spread is seeded per
/// `(seed, bin)`, so successive bins wander enough to exercise the
/// reference smoothing without (usually) tripping τ.
pub fn forwarding_bin(spec: &ForwardingSpec, seed: u64, bin: u64) -> Vec<TracerouteRecord> {
    let mut rng = SplitMix64::new(seed ^ 0xF0_0D ^ (bin.wrapping_mul(0x9E37_79B9)));
    let mut out = Vec::with_capacity(spec.records());
    for r in 0..spec.routers {
        let router = Ipv4Addr::new(10, 200, (r / 250) as u8, (r % 250) as u8);
        for d in 0..spec.dsts_per_router {
            let dst = Ipv4Addr::new(198, 51, 200 + d as u8, (r % 250) as u8);
            for shot in 0..spec.shots {
                let probe = (r * spec.dsts_per_router + d) * spec.shots + shot;
                let base = 8.0 + rng.next_range_f64(0.0, 2.0);
                let next_replies = (0..3)
                    .map(|_| {
                        // ~6% timeouts keep the Z bucket in the patterns.
                        if rng.next_range_f64(0.0, 1.0) < 0.06 {
                            Reply::TIMEOUT
                        } else {
                            let h = (rng.next_raw() % spec.next_hops as u64) as u8;
                            Reply::new(
                                Ipv4Addr::new(10, 210 + h, (r / 250) as u8, (r % 250) as u8),
                                base + 1.0 + rng.next_range_f64(0.0, 0.5),
                            )
                        }
                    })
                    .collect();
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(9000 + r as u32),
                    probe_id: ProbeId(7_000_000 + probe as u32),
                    // Two ASes < the 3-AS diversity floor: the delay path
                    // discards these links right after grouping.
                    probe_asn: Asn(64900 + (probe % 2) as u32),
                    dst,
                    timestamp: SimTime(bin * 3600 + (shot as u64) * 1100),
                    paris_id: shot as u16,
                    hops: vec![
                        Hop::new(1, vec![Reply::new(router, base); 3]),
                        Hop::new(2, next_replies),
                    ],
                    destination_reached: false,
                });
            }
        }
    }
    out
}

/// Shape of a synthetic ingestion-heavy bin.
///
/// The record→row scatter pass is the front door of every bin; this
/// workload makes it the bill. Long fully-responsive paths (three replies
/// per hop) explode into ~9 differential-RTT rows per link per record —
/// tens of rows per record — while the per-key analysis work stays small:
/// every probe sits in one of two ASes, so the §4.3 diversity floor
/// discards each link right after grouping, and the §5 patterns are few
/// (one per (path hop, destination)) with a single dominant next hop.
/// What remains is almost pure scatter + group — the layer the chunked
/// parallel front-end and the persistent intern epochs accelerate.
#[derive(Debug, Clone, Copy)]
pub struct IngestSpec {
    /// Distinct hop chains (each chain is one destination).
    pub paths: usize,
    /// Responsive hops per chain.
    pub hops_per_path: usize,
    /// Probes tracing each chain per bin.
    pub probes_per_path: usize,
    /// Traceroutes per probe per bin.
    pub shots: usize,
}

impl IngestSpec {
    /// A large scatter-dominated bin (~200k delay rows).
    pub fn large() -> Self {
        IngestSpec {
            paths: 60,
            hops_per_path: 10,
            probes_per_path: 20,
            shots: 2,
        }
    }

    /// A small smoke-test bin.
    pub fn small() -> Self {
        IngestSpec {
            paths: 8,
            hops_per_path: 5,
            probes_per_path: 4,
            shots: 1,
        }
    }

    /// Total records this spec produces.
    pub fn records(&self) -> usize {
        self.paths * self.probes_per_path * self.shots
    }
}

/// Build one synthetic ingestion-heavy bin (see [`IngestSpec`]).
///
/// The key universe (links, probes, patterns, next hops) is identical
/// for every `bin`, so bins after the first are steady state for the
/// intern epoch: the bench asserts zero intern-table insertions there.
pub fn ingest_bin(spec: &IngestSpec, seed: u64, bin: u64) -> Vec<TracerouteRecord> {
    let mut rng = SplitMix64::new(seed ^ 0x1_4E57 ^ (bin.wrapping_mul(0x9E37_79B9)));
    let hop_ip =
        |p: usize, h: usize| Ipv4Addr::new(10, 100 + (p / 250) as u8, h as u8, (p % 250) as u8);
    let mut out = Vec::with_capacity(spec.records());
    for p in 0..spec.paths {
        let dst = Ipv4Addr::new(198, 51, 150, (p % 250) as u8);
        for probe in 0..spec.probes_per_path {
            let probe_id = ProbeId(8_000_000 + (p * spec.probes_per_path + probe) as u32);
            let eps = rng.next_range_f64(-0.5, 0.5);
            for shot in 0..spec.shots {
                let base = 12.0 + eps + rng.next_range_f64(0.0, 0.2);
                let hops = (0..spec.hops_per_path)
                    .map(|h| {
                        let rtt = base + h as f64 * 1.5;
                        Hop::new(
                            h as u8 + 1,
                            (0..3)
                                .map(|_| {
                                    Reply::new(hop_ip(p, h), rtt + rng.next_range_f64(0.0, 0.3))
                                })
                                .collect(),
                        )
                    })
                    .collect();
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(11_000 + p as u32),
                    probe_id,
                    // Two ASes < the 3-AS diversity floor: grouping runs,
                    // per-link analysis doesn't — scatter dominates.
                    probe_asn: Asn(64800 + (probe % 2) as u32),
                    dst,
                    timestamp: SimTime(bin * 3600 + (shot as u64) * 900),
                    paris_id: shot as u16,
                    hops,
                    destination_reached: true,
                });
            }
        }
    }
    out
}

/// Per-stream feeds for the multi-stream fleet workload: `streams` mixed
/// bins (delay + forwarding work in each), seeded per stream so the RTT
/// and packet-spread jitter differ across streams. Sized so the whole
/// fleet bin is comparable to `mixed_full` while loading the shared pool
/// with `2 × streams` detector stages at once.
pub fn multi_stream_feeds(streams: usize, seed: u64, bin: u64) -> Vec<Vec<TracerouteRecord>> {
    let delay = WorkloadSpec {
        links: 150,
        probes_per_link: 12,
        shots: 2,
    };
    let forwarding = ForwardingSpec {
        routers: 100,
        dsts_per_router: 4,
        next_hops: 4,
        shots: 3,
    };
    (0..streams)
        .map(|s| {
            mixed_bin(
                &delay,
                &forwarding,
                seed ^ 0xA5A5u64.wrapping_mul(s as u64 + 1),
                bin,
            )
        })
        .collect()
}

/// A mixed Atlas-like bin: the delay-heavy and forwarding-heavy workloads
/// interleaved, so the combined engine runs both detectors' shard
/// pipelines (§4 ∥ §5) with real work on each side.
pub fn mixed_bin(
    delay_spec: &WorkloadSpec,
    forwarding_spec: &ForwardingSpec,
    seed: u64,
    bin: u64,
) -> Vec<TracerouteRecord> {
    let mut out = synthetic_bin(delay_spec, seed, bin);
    out.extend(forwarding_bin(forwarding_spec, seed, bin));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_core::{Analyzer, DetectorConfig};
    use pinpoint_model::BinId;

    #[test]
    fn synthetic_bin_has_expected_shape() {
        let spec = WorkloadSpec::small();
        let records = synthetic_bin(&spec, 7, 0);
        assert_eq!(records.len(), spec.records());
        // Deterministic per seed.
        assert_eq!(records, synthetic_bin(&spec, 7, 0));
        assert_ne!(records, synthetic_bin(&spec, 8, 0));
    }

    #[test]
    fn forwarding_bin_feeds_the_forwarding_detector() {
        let spec = ForwardingSpec::small();
        let records = forwarding_bin(&spec, 7, 0);
        assert_eq!(records.len(), spec.records());
        // Deterministic per seed.
        assert_eq!(records, forwarding_bin(&spec, 7, 0));
        assert_ne!(records, forwarding_bin(&spec, 8, 0));
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &records);
        // Every (router, dst) produces a forwarding model; the sub-floor
        // AS diversity keeps the delay path out of the picture.
        assert_eq!(analyzer.tracked_patterns(), spec.patterns());
        assert!(report.link_stats.is_empty());
    }

    #[test]
    fn mixed_bin_drives_both_detectors() {
        let d = WorkloadSpec::small();
        let f = ForwardingSpec::small();
        let records = mixed_bin(&d, &f, 7, 0);
        assert_eq!(records.len(), d.records() + f.records());
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &records);
        assert_eq!(report.link_stats.len(), 2 * d.links);
        assert!(analyzer.tracked_patterns() >= f.patterns());
    }

    #[test]
    fn ingest_bin_is_scatter_dominated_and_steady() {
        let spec = IngestSpec::small();
        let records = ingest_bin(&spec, 7, 0);
        assert_eq!(records.len(), spec.records());
        // Deterministic per seed.
        assert_eq!(records, ingest_bin(&spec, 7, 0));
        assert_ne!(records, ingest_bin(&spec, 7, 1));
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &records);
        // Sub-floor AS diversity: the delay path keeps no link…
        assert!(report.link_stats.is_empty());
        // …but every (path hop, destination) pattern is modeled.
        assert_eq!(
            analyzer.tracked_patterns(),
            spec.paths * (spec.hops_per_path - 1)
        );
        // Bin 1 replays the same key universe: zero intern insertions.
        analyzer.process_bin(BinId(1), &ingest_bin(&spec, 7, 1));
        assert_eq!(analyzer.ingest_stats().bin_insertions, 0);
    }

    #[test]
    fn multi_stream_feeds_drive_a_fleet() {
        use pinpoint_core::StreamRouter;
        let feeds = multi_stream_feeds(3, 7, 0);
        assert_eq!(feeds.len(), 3);
        assert!(feeds.iter().all(|f| !f.is_empty()));
        // Deterministic per seed, distinct across streams.
        assert_eq!(feeds, multi_stream_feeds(3, 7, 0));
        assert_ne!(feeds[0], feeds[1]);
        let mut router = StreamRouter::new();
        for i in 0..3 {
            router.add_stream(
                format!("stream-{i}"),
                Analyzer::new(DetectorConfig::default(), synthetic_mapper()),
            );
        }
        let report = router.process_bin(BinId(0), &feeds);
        assert_eq!(report.records(), feeds.iter().map(Vec::len).sum::<usize>());
        assert!(report.streams.iter().all(|r| !r.link_stats.is_empty()));
        assert!(router.tracked_patterns() > 0);
    }

    #[test]
    fn grouping_bin_is_sort_bound_but_fully_characterized() {
        let spec = GroupingSpec::small();
        let records = grouping_bin(&spec, 7, 0);
        assert_eq!(records.len(), spec.records());
        // Deterministic per seed; bins jitter but share one key universe.
        assert_eq!(records, grouping_bin(&spec, 7, 0));
        assert_ne!(records, grouping_bin(&spec, 8, 0));
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &records);
        // Five ASes per link: everything survives the diversity floor, so
        // the sorted runs flow all the way through characterization.
        assert_eq!(report.link_stats.len(), 2 * spec.links);
        // Steady state: bin 1 replays the same keys, zero insertions.
        analyzer.process_bin(BinId(1), &grouping_bin(&spec, 7, 1));
        assert_eq!(analyzer.ingest_stats().bin_insertions, 0);
    }

    #[test]
    fn characterize_heavy_spec_carries_dense_per_link_pools() {
        let spec = WorkloadSpec::characterize_heavy();
        let records = synthetic_bin(&spec, 7, 0);
        assert_eq!(records.len(), spec.records());
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &records);
        assert_eq!(report.link_stats.len(), 2 * spec.links);
        // The point of the spec: every link's sample pool is deep enough
        // that rank selection, not grouping, is the dominant cost.
        let samples_per_link = spec.probes_per_link * spec.shots * 9;
        assert!(
            samples_per_link > 1000,
            "characterize_heavy pools are too shallow ({samples_per_link})"
        );
    }

    #[test]
    fn synthetic_bin_survives_the_diversity_filter() {
        // All links must make it through §4.3 — otherwise the throughput
        // bench would measure an engine that discards its input.
        let spec = WorkloadSpec::small();
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &synthetic_bin(&spec, 7, 0));
        // Each record contributes two IP-adjacent links: (near, far) and
        // (far, dst).
        assert_eq!(report.link_stats.len(), 2 * spec.links);
    }
}
