//! Synthetic engine workloads.
//!
//! The scenario simulators produce *faithful* bins, but their volume is
//! bounded by simulated probe counts. The throughput benches also need a
//! bin that looks like the full Atlas stream — thousands of links, each
//! monitored by enough probes in enough ASes to survive the §4.3 diversity
//! filter — without paying simulator cost. This module fabricates such a
//! bin directly at the record level, deterministically from a seed.

use pinpoint_core::aggregate::AsMapper;
use pinpoint_model::records::{Hop, Reply, TracerouteRecord};
use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};
use pinpoint_stats::SplitMix64;
use std::net::Ipv4Addr;

/// Shape of a synthetic bin.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of distinct IP links.
    pub links: usize,
    /// Probes monitoring each link (spread over 5 ASes).
    pub probes_per_link: usize,
    /// Traceroutes each probe launches across the link per bin.
    pub shots: usize,
}

impl WorkloadSpec {
    /// A large bin: ~`links × probes × shots` records, nine differential
    /// RTT samples each.
    pub fn large() -> Self {
        WorkloadSpec {
            links: 400,
            probes_per_link: 12,
            shots: 2,
        }
    }

    /// A small smoke-test bin.
    pub fn small() -> Self {
        WorkloadSpec {
            links: 40,
            probes_per_link: 8,
            shots: 2,
        }
    }

    /// Total records this spec produces.
    pub fn records(&self) -> usize {
        self.links * self.probes_per_link * self.shots
    }
}

fn link_ips(i: usize) -> (Ipv4Addr, Ipv4Addr, Ipv4Addr) {
    let hi = (i / 250) as u8;
    let lo = (i % 250) as u8;
    (
        Ipv4Addr::new(10, hi, lo, 1),
        Ipv4Addr::new(10, hi, lo, 2),
        Ipv4Addr::new(198, 51, hi, lo.saturating_add(1)),
    )
}

/// Build one synthetic bin of traceroute records.
///
/// Per link, `probes_per_link` probes (ASNs cycling over five values, so
/// the diversity filter passes) each fire `shots` traceroutes of three
/// responsive hops with three replies per hop — nine RTT combinations per
/// record, like a fully responsive Atlas traceroute pair. `bin` shifts the
/// timestamps and jitters the RTTs so successive bins look like a steady
/// stream.
pub fn synthetic_bin(spec: &WorkloadSpec, seed: u64, bin: u64) -> Vec<TracerouteRecord> {
    let mut rng = SplitMix64::new(seed ^ (bin.wrapping_mul(0x9E37_79B9)));
    let mut out = Vec::with_capacity(spec.records());
    for li in 0..spec.links {
        let (near, far, dst) = link_ips(li);
        let link_base = 5.0 + (li % 17) as f64;
        for p in 0..spec.probes_per_link {
            let probe = ProbeId((li * spec.probes_per_link + p) as u32);
            let asn = Asn(64000 + (p % 5) as u32);
            let eps = rng.next_range_f64(-1.0, 1.0);
            for shot in 0..spec.shots {
                let base = 10.0 + eps + rng.next_range_f64(0.0, 0.3);
                let reply3 = |addr: Ipv4Addr, rtt: f64, rng: &mut SplitMix64| {
                    Hop::new(
                        0,
                        (0..3)
                            .map(|_| Reply::new(addr, rtt + rng.next_range_f64(0.0, 0.25)))
                            .collect(),
                    )
                };
                let near_hop = reply3(near, base, &mut rng);
                let far_hop = reply3(far, base + link_base, &mut rng);
                let dst_hop = reply3(dst, base + link_base + 2.0, &mut rng);
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(5000 + li as u32),
                    probe_id: probe,
                    probe_asn: asn,
                    dst,
                    timestamp: SimTime(bin * 3600 + (shot as u64) * 1200),
                    paris_id: shot as u16,
                    hops: vec![near_hop, far_hop, dst_hop],
                    destination_reached: true,
                });
            }
        }
    }
    out
}

/// Ground-truth mapper covering the synthetic address plan.
pub fn synthetic_mapper() -> AsMapper {
    AsMapper::from_prefixes([
        ("10.0.0.0/8".parse().unwrap(), Asn(65000)),
        ("198.51.0.0/16".parse().unwrap(), Asn(65001)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_core::{Analyzer, DetectorConfig};
    use pinpoint_model::BinId;

    #[test]
    fn synthetic_bin_has_expected_shape() {
        let spec = WorkloadSpec::small();
        let records = synthetic_bin(&spec, 7, 0);
        assert_eq!(records.len(), spec.records());
        // Deterministic per seed.
        assert_eq!(records, synthetic_bin(&spec, 7, 0));
        assert_ne!(records, synthetic_bin(&spec, 8, 0));
    }

    #[test]
    fn synthetic_bin_survives_the_diversity_filter() {
        // All links must make it through §4.3 — otherwise the throughput
        // bench would measure an engine that discards its input.
        let spec = WorkloadSpec::small();
        let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
        let report = analyzer.process_bin(BinId(0), &synthetic_bin(&spec, 7, 0));
        // Each record contributes two IP-adjacent links: (near, far) and
        // (far, dst).
        assert_eq!(report.link_stats.len(), 2 * spec.links);
    }
}
