//! # pinpoint-bench
//!
//! The evaluation harness: one binary per figure/table of the paper
//! (see DESIGN.md's experiment index) plus criterion performance benches.
//!
//! Every `fig*` binary accepts:
//!
//! * `--scale=small|paper` — fidelity (default `small`; `paper`
//!   approximates the published figure's probe counts and windows);
//! * `--seed=<u64>` — scenario seed (default 2015).
//!
//! Binaries print the *series the figure plots* (plus an ASCII sparkline
//! for quick eyeballing) and a `VERDICT:` line summarizing whether the
//! paper's qualitative claim reproduced. EXPERIMENTS.md records one run of
//! each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod workload;

use pinpoint_scenarios::Scale;

/// Parsed harness options.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Scenario fidelity.
    pub scale: Scale,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::Small,
            seed: 2015,
        }
    }
}

/// Parse `--scale=` / `--seed=` from `std::env::args`.
pub fn opts_from_args() -> HarnessOpts {
    let mut opts = HarnessOpts::default();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--scale=") {
            opts.scale = match v {
                "paper" => Scale::Paper,
                "small" => Scale::Small,
                other => panic!("unknown scale {other:?} (use small|paper)"),
            };
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            opts.seed = v.parse().expect("--seed must be a u64");
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: [--scale=small|paper] [--seed=N]");
            std::process::exit(0);
        }
    }
    opts
}

/// Print the standard experiment header.
pub fn header(experiment: &str, claim: &str, opts: &HarnessOpts) {
    println!("==== {experiment} ====");
    println!("paper claim: {claim}");
    println!(
        "run: scale={:?} seed={} (rerun with --scale=paper for figure fidelity)\n",
        opts.scale, opts.seed
    );
}

/// Eight-level ASCII sparkline of a series (`min..max` normalized).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Render a compact `(x, y)` table, eliding the middle of long series.
pub fn print_series(name: &str, series: &[(u64, f64)], max_rows: usize) {
    println!("{name}: {} points", series.len());
    let values: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
    println!("  {}", sparkline(&values));
    let show = max_rows.min(series.len());
    let head = show / 2;
    let tail = show - head;
    for (x, y) in series.iter().take(head) {
        println!("  {x:>6}  {y:>12.3}");
    }
    if series.len() > show {
        println!("  ... ({} rows elided) ...", series.len() - show);
    }
    for (x, y) in series.iter().skip(series.len().saturating_sub(tail)) {
        println!("  {x:>6}  {y:>12.3}");
    }
}

/// Print the final verdict line the EXPERIMENTS.md table consumes.
pub fn verdict(ok: bool, detail: &str) {
    println!(
        "\nVERDICT: {} — {detail}",
        if ok { "REPRODUCED" } else { "DIVERGED" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn default_opts() {
        let o = HarnessOpts::default();
        assert_eq!(o.seed, 2015);
        assert_eq!(o.scale, Scale::Small);
    }
}
