//! Table A: the paper's in-text aggregate statistics (§7, "Results").
//!
//! The paper reports, over 8 months of IPv4 data: 262k monitored links,
//! 147 probes per link on average, 33 % of links with at least one delay
//! alarm, 170k router IPs with forwarding models averaging ~4 next hops,
//! and delay magnitudes below 1 for 97 % of AS-hours. Our world is smaller
//! by construction; the *ratios* are the reproduction target.

use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_core::diffrtt::compute::collect_link_samples;
use pinpoint_scenarios::full;
use pinpoint_scenarios::runner::run;
use pinpoint_stats::ecdf::Ecdf;
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    let opts = opts_from_args();
    header(
        "Table A — aggregate monitoring statistics",
        "links monitored / probes per link / % links alarmed / next hops per model / P(mag<1)",
        &opts,
    );
    let case = full::case_study(opts.seed, opts.scale);
    let mut analyzer = case.analyzer();
    let mut alarmed_links: BTreeSet<pinpoint_model::IpLink> = BTreeSet::new();
    let mut seen_links: BTreeSet<pinpoint_model::IpLink> = BTreeSet::new();
    let mut probes_per_link: BTreeMap<pinpoint_model::IpLink, BTreeSet<u32>> = BTreeMap::new();
    let mut delay_mags: Vec<f64> = Vec::new();

    // Probe coverage from a representative bin (cheap; coverage is stable).
    let coverage_records = case.platform.collect_bin(case.start_bin);
    for (link, samples) in collect_link_samples(&coverage_records) {
        for probe in samples.per_probe().keys() {
            probes_per_link.entry(link).or_default().insert(probe.0);
        }
    }

    let summary = run(&case, &mut analyzer, |report| {
        for link in report.link_stats.keys() {
            seen_links.insert(*link);
        }
        for alarm in &report.delay_alarms {
            alarmed_links.insert(alarm.link);
        }
        for m in report.magnitudes.values() {
            delay_mags.push(m.delay_magnitude);
        }
    });

    let mean_probes = probes_per_link
        .values()
        .map(|s| s.len() as f64)
        .sum::<f64>()
        / probes_per_link.len().max(1) as f64;
    let pct_alarmed = 100.0 * alarmed_links.len() as f64 / seen_links.len().max(1) as f64;
    let p_below_1 = Ecdf::new(&delay_mags).cdf(1.0);

    println!("{:<46} {:>12} {:>14}", "metric", "measured", "paper (8 mo)");
    println!("{:-<74}", "");
    let rows: Vec<(&str, String, &str)> = vec![
        ("traceroutes consumed", summary.records.to_string(), "2.8 B"),
        (
            "monitored links (≥3-AS diversity)",
            seen_links.len().to_string(),
            "262 k",
        ),
        (
            "mean probes observing a link",
            format!("{mean_probes:.0}"),
            "147",
        ),
        (
            "% links with ≥1 delay alarm",
            format!("{pct_alarmed:.0} %"),
            "33 %",
        ),
        (
            "router IPs with forwarding models",
            summary.tracked_patterns.to_string(),
            "170 k keys",
        ),
        (
            "mean next hops per model",
            format!("{:.1}", summary.mean_next_hops),
            "4",
        ),
        ("P(delay magnitude < 1)", format!("{p_below_1:.3}",), "0.97"),
        ("delay alarms", summary.delay_alarms.to_string(), "—"),
        (
            "forwarding alarms",
            summary.forwarding_alarms.to_string(),
            "—",
        ),
    ];
    for (name, measured, paper) in rows {
        println!("{name:<46} {measured:>12} {paper:>14}");
    }

    println!(
        "\nnote: mean next hops per model is structurally lower than the paper's 4 —\n\
         the simulator's intra-AS forwarding is single-path, so only inter-AS ECMP\n\
         and loss events diversify patterns (documented in EXPERIMENTS.md)."
    );
    let ok = mean_probes >= 3.0
        && pct_alarmed > 1.0
        && pct_alarmed < 80.0
        && summary.mean_next_hops >= 1.05
        && p_below_1 > 0.85;
    verdict(
        ok,
        &format!(
            "probes/link {mean_probes:.0}, alarmed {pct_alarmed:.0}%, next hops {:.1}, P(<1) {p_below_1:.3} — same orders as the paper's ratios",
            summary.mean_next_hops
        ),
    );
}
