//! Engine throughput tracker: times `Analyzer::process_bin` (the sharded
//! parallel engine) against `Analyzer::process_bin_sequential` (the
//! nested-map, full-sort reference path) and writes `BENCH_pipeline.json`
//! so the perf trajectory is recorded from PR to PR.
//!
//! ```text
//! usage: pipeline_bench [--seed=N] [--reps=N] [--out=PATH]
//! ```
//!
//! Two workloads run: the steady scenario's Small bin (faithful simulator
//! output) and a synthetic Atlas-scale bin (hundreds of diversity-passing
//! links). Each is timed over `reps` repetitions on warmed analyzers and
//! summarized by the median wall time; alarm/stat outputs of both paths
//! are cross-checked for equality before any number is reported.

use pinpoint_bench::workload::{synthetic_bin, synthetic_mapper, WorkloadSpec};
use pinpoint_core::aggregate::AsMapper;
use pinpoint_core::{Analyzer, DetectorConfig};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::BinId;
use pinpoint_scenarios::{steady, Scale};
use std::io::Write as _;
use std::time::Instant;

struct WorkloadResult {
    name: String,
    records: usize,
    links: usize,
    sequential_ms: f64,
    parallel_ms: f64,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.parallel_ms
    }

    fn records_per_sec_parallel(&self) -> f64 {
        self.records as f64 / (self.parallel_ms / 1e3)
    }
}

/// Time `reps` runs of one engine path on a warmed analyzer; returns the
/// median wall milliseconds per bin.
fn time_path(
    mapper: &AsMapper,
    warm: &[TracerouteRecord],
    work: &[TracerouteRecord],
    reps: usize,
    sequential: bool,
) -> f64 {
    let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
    if sequential {
        analyzer.process_bin_sequential(BinId(0), warm);
    } else {
        analyzer.process_bin(BinId(0), warm);
    }
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let bin = BinId(1 + rep as u64);
        let t = Instant::now();
        let report = if sequential {
            analyzer.process_bin_sequential(bin, work)
        } else {
            analyzer.process_bin(bin, work)
        };
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report);
    }
    pinpoint_stats::median(&samples).expect("reps >= 1")
}

fn run_workload(
    name: &str,
    mapper: &AsMapper,
    warm: &[TracerouteRecord],
    work: &[TracerouteRecord],
    reps: usize,
) -> WorkloadResult {
    // Parity gate: identical outputs from warmed-equal analyzers, so the
    // timings below compare engines that do the same work.
    let mut a = Analyzer::new(DetectorConfig::default(), mapper.clone());
    let mut b = Analyzer::new(DetectorConfig::default(), mapper.clone());
    a.process_bin(BinId(0), warm);
    b.process_bin_sequential(BinId(0), warm);
    let ra = a.process_bin(BinId(1), work);
    let rb = b.process_bin_sequential(BinId(1), work);
    assert_eq!(
        ra.delay_alarms, rb.delay_alarms,
        "{name}: engine parity broke"
    );
    assert_eq!(ra.link_stats, rb.link_stats, "{name}: engine parity broke");
    let links = ra.link_stats.len();

    let sequential_ms = time_path(mapper, warm, work, reps, true);
    let parallel_ms = time_path(mapper, warm, work, reps, false);
    WorkloadResult {
        name: name.to_string(),
        records: work.len(),
        links,
        sequential_ms,
        parallel_ms,
    }
}

fn main() {
    let mut seed = 2015u64;
    let mut reps = 9usize;
    let mut out_path = String::from("BENCH_pipeline.json");
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed must be a u64");
        } else if let Some(v) = arg.strip_prefix("--reps=") {
            reps = v.parse().expect("--reps must be a usize");
            assert!(reps >= 1, "--reps must be at least 1");
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: pipeline_bench [--seed=N] [--reps=N] [--out=PATH]");
            return;
        } else {
            // A typo'd flag must not silently record default-parameter
            // numbers into the tracked perf-trajectory file.
            panic!("unknown argument {arg:?} (see --help)");
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("==== pipeline_bench ==== (seed {seed}, {reps} reps, {threads} hw threads)");

    // Workload 1: faithful simulator bin.
    let case = steady::case_study(seed, Scale::Small);
    let warm = case.platform.collect_bin(BinId(0));
    let work = case.platform.collect_bin(BinId(1));
    let steady_result = run_workload("steady_small", &case.mapper, &warm, &work, reps);

    // Workload 2: synthetic Atlas-scale bin.
    let spec = WorkloadSpec::large();
    let mapper = synthetic_mapper();
    let warm = synthetic_bin(&spec, seed, 0);
    let work = synthetic_bin(&spec, seed, 1);
    let large_result = run_workload("synthetic_large", &mapper, &warm, &work, reps);

    let results = [steady_result, large_result];
    for r in &results {
        println!(
            "{:<16} {:>6} records {:>5} links | sequential {:>9.3} ms | parallel {:>9.3} ms | speedup {:>5.2}x | {:>10.0} rec/s",
            r.name,
            r.records,
            r.links,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup(),
            r.records_per_sec_parallel(),
        );
    }

    // Hand-rolled JSON (the workspace deliberately has no serde_json).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"analyzer_process_bin\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"hw_threads\": {threads},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"records\": {}, \"links\": {}, \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"records_per_sec_parallel\": {:.0}}}{}\n",
            r.name,
            r.records,
            r.links,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup(),
            r.records_per_sec_parallel(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&out_path).expect("create bench output");
    file.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out_path}");
}
