//! Engine throughput tracker: times `Analyzer::process_bin` (the sharded
//! parallel engine) against `Analyzer::process_bin_sequential` (the
//! nested-map, full-sort reference path) and writes `BENCH_pipeline.json`
//! so the perf trajectory is recorded from PR to PR.
//!
//! ```text
//! usage: pipeline_bench [--seed=N] [--reps=N] [--out=PATH] [--check=PATH]
//! ```
//!
//! Thirteen workloads run: the steady scenario's Small bin (faithful
//! simulator output), a synthetic Atlas-scale delay-heavy bin (hundreds
//! of diversity-passing links), a forwarding-heavy bin (~1200 next-hop
//! patterns, links below the diversity floor), a mixed bin driving both
//! detectors' shard pipelines at once, a three-stream fleet bin run
//! through one `StreamRouter` pool (every stream's §4 and §5 shards on the
//! same workers), a scatter-dominated `ingest_heavy` bin (long responsive
//! paths, ~200k samples, almost no per-key analysis) that isolates the
//! chunked-ingestion layer, a `pipelined_stream` of mixed bins timing
//! the cross-bin pipelined executor at depth 1 vs depth 2 (ingestion of
//! bin *n+1* overlapped with analysis of bin *n*), and an
//! `artifact_heavy` bin — the mixed workload corrupted by a hostile
//! `ArtifactModel` — that times the record sanitizer's front-door pass in
//! isolation (`sanitize_ms`) and records how many records it quarantined
//! (`quarantined`, asserted non-zero), and a `service_e2e` workload that
//! pushes the mixed stream through an in-process live daemon (collector →
//! executor → reporter over bounded queues), parity-gates its cached
//! renders byte-for-byte against the offline path, and records the mean
//! collect→report latency (`e2e_latency_ms`) plus the queue high-water
//! mark (`queue_peak`, asserted ≤ capacity), and an `event_extraction`
//! workload that replays the three-stream AMS-IX outage with the empathy
//! extractor live in the merge funnel, parity-gates the incremental
//! event deltas byte-for-byte across pipeline depths, and records the
//! events and deltas the channel carried, a grouping-bound
//! `grouping_heavy` bin (a horde of single-sample probes, so the
//! per-shard `(link, probe)` key sort — the LSD radix grouping path —
//! is the bill), a characterization-bound `characterize_heavy` bin
//! (few links, ~1.1k samples each, so the batched shard-level rank
//! selection + cached Wilson bounds dominate), and a `checkpoint_heavy`
//! stream that re-runs the mixed bins with a durable state snapshot
//! taken after every bin — the crash-safety tax at its most aggressive
//! cadence — recording the isolated `Analyzer::snapshot()` wall
//! (`snapshot_ms`) and the snapshot size (`snapshot_bytes`), gated on
//! checkpoint/restore/resume byte parity. Each is timed over
//! `reps` repetitions on warmed analyzers and summarized by the median
//! wall time, with the two timed arms of every workload interleaved
//! rep by rep so clock drift and allocator growth cannot bias whichever
//! arm runs second; alarm/stat outputs of both paths are cross-checked
//! for equality before any number is reported — so a run doubles as an
//! engine-parity gate. Per workload, the work bin's intern-table
//! insertions are recorded too: a steady bin (same key universe as the
//! warm bin) must report 0 — the persistent interning epoch at work.
//!
//! `--check=PATH` additionally compares the run against a committed
//! baseline (normally the repo's `BENCH_pipeline.json`): a missing
//! baseline workload fails the run, while a >25 % parallel-throughput
//! regression emits a GitHub Actions `::warning::` annotation and keeps
//! going — machine-to-machine variance makes absolute speed advisory, but
//! parity is law.

use pinpoint_bench::workload::{
    forwarding_bin, grouping_bin, ingest_bin, mixed_bin, multi_stream_feeds, synthetic_bin,
    synthetic_mapper, ForwardingSpec, GroupingSpec, IngestSpec, WorkloadSpec,
};
use pinpoint_core::aggregate::AsMapper;
use pinpoint_core::sanitize::sanitize_records;
use pinpoint_core::{
    render, AnalysisSession, Analyzer, DetectorConfig, EventTable, FleetReport, StreamRouter,
};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::BinId;
use pinpoint_netsim::ArtifactModel;
use pinpoint_scenarios::{ixp, multi, steady, Scale};
use pinpoint_service::{Daemon, ServiceConfig};
use std::io::Write as _;
use std::time::Instant;

struct WorkloadResult {
    name: String,
    records: usize,
    links: usize,
    sequential_ms: f64,
    parallel_ms: f64,
    /// Intern-table insertions during the (warmed) work bin — 0 when the
    /// warm bin already interned the whole key universe.
    intern_inserts: u64,
    /// Median wall milliseconds of a standalone sanitizer pass over the
    /// work bin (0 for workloads that do not time it separately).
    sanitize_ms: f64,
    /// Records the sanitizer quarantined in the work bin.
    quarantined: u64,
    /// Mean collect→report latency per bin through the live daemon
    /// (0 for workloads that don't run the service).
    e2e_latency_ms: f64,
    /// High-water mark across the daemon's two bounded queues (must
    /// never exceed the configured capacity; 0 for offline workloads).
    queue_peak: u64,
    /// Distinct fleet events extracted over the workload's window (0 for
    /// workloads that do not run the empathy extractor).
    events: u64,
    /// Incremental event deltas emitted over the window — the volume the
    /// event channel actually carries.
    event_deltas: u64,
    /// Median wall milliseconds of one `Analyzer::snapshot()` call on the
    /// warmed analyzer (0 for workloads that do not checkpoint).
    snapshot_ms: f64,
    /// Size of the final snapshot in bytes (0 for workloads that do not
    /// checkpoint).
    snapshot_bytes: u64,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.parallel_ms
    }

    fn records_per_sec_parallel(&self) -> f64 {
        self.records as f64 / (self.parallel_ms / 1e3)
    }
}

/// Time `reps` bins of both engine paths on warmed analyzers with the
/// passes interleaved (sequential, parallel, sequential, parallel, …):
/// both arms see the same clock drift, allocator state, and cache
/// pressure, so their ratio is not biased by whichever arm happens to
/// run second. Returns `(sequential_ms, parallel_ms)` medians per bin.
fn time_paths(
    mapper: &AsMapper,
    warm: &[TracerouteRecord],
    work: &[TracerouteRecord],
    reps: usize,
) -> (f64, f64) {
    let mut seq = Analyzer::new(DetectorConfig::default(), mapper.clone());
    seq.process_bin_sequential(BinId(0), warm);
    let mut par = Analyzer::new(DetectorConfig::default(), mapper.clone());
    par.process_bin(BinId(0), warm);
    let mut seq_samples = Vec::with_capacity(reps);
    let mut par_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let bin = BinId(1 + rep as u64);
        let t = Instant::now();
        std::hint::black_box(seq.process_bin_sequential(bin, work));
        seq_samples.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        std::hint::black_box(par.process_bin(bin, work));
        par_samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (
        pinpoint_stats::median(&seq_samples).expect("reps >= 1"),
        pinpoint_stats::median(&par_samples).expect("reps >= 1"),
    )
}

fn run_workload(
    name: &str,
    mapper: &AsMapper,
    warm: &[TracerouteRecord],
    work: &[TracerouteRecord],
    reps: usize,
) -> WorkloadResult {
    // Parity gate: identical outputs from warmed-equal analyzers, so the
    // timings below compare engines that do the same work.
    let mut a = Analyzer::new(DetectorConfig::default(), mapper.clone());
    let mut b = Analyzer::new(DetectorConfig::default(), mapper.clone());
    a.process_bin(BinId(0), warm);
    b.process_bin_sequential(BinId(0), warm);
    let ra = a.process_bin(BinId(1), work);
    let rb = b.process_bin_sequential(BinId(1), work);
    assert_eq!(
        ra.delay_alarms, rb.delay_alarms,
        "{name}: engine parity broke"
    );
    assert_eq!(
        ra.forwarding_alarms, rb.forwarding_alarms,
        "{name}: engine parity broke"
    );
    assert_eq!(ra.link_stats, rb.link_stats, "{name}: engine parity broke");
    let links = ra.link_stats.len();
    let intern_inserts = a.ingest_stats().bin_insertions;
    let quarantined = a.sanitize_stats().bin_quarantined;

    let (sequential_ms, parallel_ms) = time_paths(mapper, warm, work, reps);
    WorkloadResult {
        name: name.to_string(),
        records: work.len(),
        links,
        sequential_ms,
        parallel_ms,
        intern_inserts,
        sanitize_ms: 0.0,
        quarantined,
        e2e_latency_ms: 0.0,
        queue_peak: 0,
        events: 0,
        event_deltas: 0,
        snapshot_ms: 0.0,
        snapshot_bytes: 0,
    }
}

/// Median wall milliseconds of a pure [`sanitize_records`] pass over one
/// bin — the sanitizer's isolated overhead, outside any detector work.
fn time_sanitize(work: &[TracerouteRecord], reps: usize) -> f64 {
    let cfg = DetectorConfig::default();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(sanitize_records(work, &cfg));
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    pinpoint_stats::median(&samples).expect("reps >= 1")
}

/// Time a stream of bins through the cross-bin pipelined executor at
/// depths 1 and 2, with the whole-stream passes interleaved (d1, d2,
/// d1, d2, …) so environmental drift cannot bias one depth's numbers.
/// Each depth keeps its own warmed analyzer whose bin clock advances
/// across passes, like the deployment's endless feed. Returns
/// `(depth1_ms, depth2_ms)` medians per bin.
fn time_pipelined_pair(
    mapper: &AsMapper,
    bins: &[Vec<TracerouteRecord>],
    reps: usize,
) -> (f64, f64) {
    let work = &bins[1..];
    let mut arms: Vec<(usize, Analyzer, Vec<f64>)> = [1usize, 2]
        .into_iter()
        .map(|depth| {
            let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
            analyzer.process_bin(BinId(0), &bins[0]);
            (depth, analyzer, Vec::with_capacity(reps))
        })
        .collect();
    for rep in 0..reps {
        let base = 1 + rep as u64 * work.len() as u64;
        for (depth, analyzer, samples) in &mut arms {
            let t = Instant::now();
            let mut session = analyzer.session(*depth);
            for (i, records) in work.iter().enumerate() {
                std::hint::black_box(session.push_bin(BinId(base + i as u64), records));
            }
            std::hint::black_box(session.flush());
            samples.push(t.elapsed().as_secs_f64() * 1e3 / work.len() as f64);
        }
    }
    let median =
        |arm: &(usize, Analyzer, Vec<f64>)| pinpoint_stats::median(&arm.2).expect("reps >= 1");
    (median(&arms[0]), median(&arms[1]))
}

/// The pipelined-executor workload: parity-gate depth 2 against depth 1
/// AND the plain serial engine bin by bin, then record depth-1 timings
/// as `sequential_ms` and depth-2 as `parallel_ms` — so `speedup` is the
/// overlap win of running bin *n+1*'s ingestion during bin *n*'s
/// analysis (≈1.0 on a 1-core machine, where there is nothing to overlap
/// with).
fn run_pipelined_workload(
    name: &str,
    mapper: &AsMapper,
    bins: &[Vec<TracerouteRecord>],
    reps: usize,
) -> WorkloadResult {
    let work = &bins[1..];
    let mut serial = Analyzer::new(DetectorConfig::default(), mapper.clone());
    serial.process_bin(BinId(0), &bins[0]);
    let want: Vec<_> = work
        .iter()
        .enumerate()
        .map(|(i, records)| serial.process_bin(BinId(1 + i as u64), records))
        .collect();
    let mut intern_inserts = 0;
    for depth in [1usize, 2] {
        let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
        analyzer.process_bin(BinId(0), &bins[0]);
        let mut got = Vec::new();
        {
            let mut session = analyzer.session(depth);
            for (i, records) in work.iter().enumerate() {
                got.extend(session.push_bin(BinId(1 + i as u64), records));
            }
            got.extend(session.flush());
        }
        assert_eq!(got.len(), want.len(), "{name}: depth {depth} lost reports");
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.bin, b.bin, "{name}: depth {depth} reordered bins");
            assert_eq!(
                a.delay_alarms, b.delay_alarms,
                "{name}: pipelined parity broke (depth {depth})"
            );
            assert_eq!(
                a.forwarding_alarms, b.forwarding_alarms,
                "{name}: pipelined parity broke (depth {depth})"
            );
            assert_eq!(
                a.link_stats, b.link_stats,
                "{name}: pipelined parity broke (depth {depth})"
            );
        }
        intern_inserts = analyzer.ingest_stats().bin_insertions;
    }

    let (sequential_ms, parallel_ms) = time_pipelined_pair(mapper, bins, reps);
    WorkloadResult {
        name: name.to_string(),
        records: work.iter().map(Vec::len).sum::<usize>() / work.len(),
        links: want[0].link_stats.len(),
        sequential_ms,
        parallel_ms,
        intern_inserts,
        sanitize_ms: 0.0,
        quarantined: 0,
        e2e_latency_ms: 0.0,
        queue_peak: 0,
        events: 0,
        event_deltas: 0,
        snapshot_ms: 0.0,
        snapshot_bytes: 0,
    }
}

/// Build the bench fleet: one analyzer per stream on the default config.
fn fleet(mapper: &AsMapper, streams: usize) -> StreamRouter {
    let mut router = StreamRouter::new();
    for i in 0..streams {
        router.add_stream(
            format!("stream-{i}"),
            Analyzer::new(DetectorConfig::default(), mapper.clone()),
        );
    }
    router
}

/// Demand two fleet reports carry identical detector outputs.
fn assert_fleet_parity(name: &str, a: &FleetReport, b: &FleetReport) {
    assert_eq!(
        a.streams.len(),
        b.streams.len(),
        "{name}: fleet parity broke"
    );
    for (ra, rb) in a.streams.iter().zip(&b.streams) {
        assert_eq!(
            ra.delay_alarms, rb.delay_alarms,
            "{name}: fleet parity broke"
        );
        assert_eq!(
            ra.forwarding_alarms, rb.forwarding_alarms,
            "{name}: fleet parity broke"
        );
        assert_eq!(ra.link_stats, rb.link_stats, "{name}: fleet parity broke");
    }
    assert_eq!(a.magnitudes, b.magnitudes, "{name}: fleet parity broke");
}

/// Time `reps` fleet bins of both router paths on warmed routers with
/// the passes interleaved, like [`time_paths`]. Returns
/// `(sequential_ms, parallel_ms)` medians per bin.
fn time_fleets(
    mapper: &AsMapper,
    warm: &[Vec<TracerouteRecord>],
    work: &[Vec<TracerouteRecord>],
    reps: usize,
) -> (f64, f64) {
    let mut seq = fleet(mapper, warm.len());
    seq.process_bin_sequential(BinId(0), warm);
    let mut par = fleet(mapper, warm.len());
    par.process_bin(BinId(0), warm);
    let mut seq_samples = Vec::with_capacity(reps);
    let mut par_samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let bin = BinId(1 + rep as u64);
        let t = Instant::now();
        std::hint::black_box(seq.process_bin_sequential(bin, work));
        seq_samples.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        std::hint::black_box(par.process_bin(bin, work));
        par_samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    (
        pinpoint_stats::median(&seq_samples).expect("reps >= 1"),
        pinpoint_stats::median(&par_samples).expect("reps >= 1"),
    )
}

/// The fleet workload: parity-gate the pooled router against the
/// sequential path, then time both.
fn run_multi_workload(
    name: &str,
    mapper: &AsMapper,
    warm: &[Vec<TracerouteRecord>],
    work: &[Vec<TracerouteRecord>],
    reps: usize,
) -> WorkloadResult {
    let mut a = fleet(mapper, warm.len());
    let mut b = fleet(mapper, warm.len());
    a.process_bin(BinId(0), warm);
    b.process_bin_sequential(BinId(0), warm);
    let ra = a.process_bin(BinId(1), work);
    let rb = b.process_bin_sequential(BinId(1), work);
    assert_fleet_parity(name, &ra, &rb);
    let links: usize = ra.streams.iter().map(|r| r.link_stats.len()).sum();
    let intern_inserts = a.ingest_stats().bin_insertions;

    let (sequential_ms, parallel_ms) = time_fleets(mapper, warm, work, reps);
    WorkloadResult {
        name: name.to_string(),
        records: work.iter().map(Vec::len).sum(),
        links,
        sequential_ms,
        parallel_ms,
        intern_inserts,
        sanitize_ms: 0.0,
        quarantined: 0,
        e2e_latency_ms: 0.0,
        queue_peak: 0,
        events: 0,
        event_deltas: 0,
        snapshot_ms: 0.0,
        snapshot_bytes: 0,
    }
}

/// The live-service workload: the same mixed-bin stream pushed through
/// an in-process [`Daemon`] (collector → executor → reporter over the
/// bounded queues) instead of a bare session. `sequential_ms` is the
/// in-process session wall per bin, `parallel_ms` the daemon wall per
/// bin (spawn → drained), so `speedup` reads as service overhead (≈1.0
/// when the pipeline hides the queue hops). Additionally records the
/// mean collect→report latency (`e2e_latency_ms`) and the high-water
/// mark across both queues (`queue_peak`, asserted ≤ capacity). Parity
/// gate: every report the daemon caches must be byte-identical to the
/// offline `render::bin_report` of the same stream.
fn run_service_workload(
    name: &str,
    mapper: &AsMapper,
    bins: &[Vec<TracerouteRecord>],
    reps: usize,
) -> WorkloadResult {
    // Offline reference: one session over the whole stream, rendered.
    let mut offline = Analyzer::new(DetectorConfig::default(), mapper.clone());
    let mut reports = Vec::new();
    {
        let mut session = offline.session(0);
        for (i, records) in bins.iter().enumerate() {
            reports.extend(session.push_bin(BinId(i as u64), records));
        }
        reports.extend(session.flush());
    }
    let links = reports.last().map_or(0, |r| r.link_stats.len());
    let want: Vec<String> = reports
        .iter()
        .map(|r| render::bin_report(r).to_string())
        .collect();

    // Offline session and live daemon over the identical feed, with the
    // arms interleaved (offline, daemon, offline, daemon, …) so drift
    // cannot bias either median; the daemon is parity-gated every rep.
    let mut offline_samples = Vec::with_capacity(reps);
    let mut wall_samples = Vec::with_capacity(reps);
    let mut latency_samples = Vec::with_capacity(reps);
    let mut queue_peak = 0usize;
    for _ in 0..reps {
        // Offline wall per bin: fresh analyzer, same cold stream.
        let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
        let t = Instant::now();
        let mut session = analyzer.session(0);
        for (i, records) in bins.iter().enumerate() {
            std::hint::black_box(session.push_bin(BinId(i as u64), records));
        }
        std::hint::black_box(session.flush());
        offline_samples.push(t.elapsed().as_secs_f64() * 1e3 / bins.len() as f64);

        let feed: Vec<(BinId, Vec<TracerouteRecord>)> = bins
            .iter()
            .enumerate()
            .map(|(i, records)| (BinId(i as u64), records.clone()))
            .collect();
        let cfg = ServiceConfig {
            http_workers: 2,
            ..ServiceConfig::default()
        };
        let analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
        let t = Instant::now();
        let daemon = Daemon::spawn(cfg, analyzer, feed.into_iter()).expect("daemon spawns");
        daemon.state().wait_done();
        wall_samples.push(t.elapsed().as_secs_f64() * 1e3 / bins.len() as f64);
        let (_, mean, _) = daemon.state().latency_ms();
        latency_samples.push(mean);
        let (collect_q, report_q) = daemon.queue_gauges();
        assert!(
            collect_q.peak <= collect_q.capacity && report_q.peak <= report_q.capacity,
            "{name}: a bounded queue exceeded its capacity"
        );
        queue_peak = queue_peak.max(collect_q.peak).max(report_q.peak);
        for (i, want) in want.iter().enumerate() {
            let got = daemon
                .state()
                .report(i as u64)
                .unwrap_or_else(|| panic!("{name}: daemon never reported bin {i}"));
            assert_eq!(
                got.as_str(),
                want,
                "{name}: daemon diverged from the offline render on bin {i}"
            );
        }
        daemon.join().expect("clean daemon exit");
    }

    WorkloadResult {
        name: name.to_string(),
        records: bins.iter().map(Vec::len).sum::<usize>() / bins.len(),
        links,
        sequential_ms: pinpoint_stats::median(&offline_samples).expect("reps >= 1"),
        parallel_ms: pinpoint_stats::median(&wall_samples).expect("reps >= 1"),
        intern_inserts: 0,
        sanitize_ms: 0.0,
        quarantined: 0,
        e2e_latency_ms: pinpoint_stats::median(&latency_samples).expect("reps >= 1"),
        queue_peak: queue_peak as u64,
        events: 0,
        event_deltas: 0,
        snapshot_ms: 0.0,
        snapshot_bytes: 0,
    }
}

/// The event-extraction workload: the three-stream AMS-IX outage driven
/// through a fleet session with the empathy extractor live. Parity gate:
/// the per-bin event deltas (rendered exactly as `pinpointd` serves
/// them) at pipeline depth 2 must be byte-for-byte identical to the
/// serial depth-1 schedule, the delta folds must agree, and the window
/// must yield at least one event. `sequential_ms` is the depth-1 fleet
/// wall per bin, `parallel_ms` the depth-2 wall, so `speedup` is the
/// cross-bin overlap win with event extraction in the merge funnel;
/// `events` / `event_deltas` record what the channel carried.
fn run_event_workload(name: &str, seed: u64, reps: usize) -> WorkloadResult {
    let mut case = multi::case_study(seed, Scale::Small);
    case.cfg = DetectorConfig::fast_test();
    let (outage_start, outage_end) = ixp::outage_bins();
    let bins: Vec<(BinId, Vec<Vec<TracerouteRecord>>)> = (outage_start - 4..outage_end + 2)
        .map(|b| (BinId(b), case.collect_bin(BinId(b))))
        .collect();

    let drive = |depth: usize| {
        let mut router = case.router();
        let mut session = router.session(depth);
        let mut deltas: Vec<String> = Vec::new();
        let mut table = EventTable::new();
        let mut absorb = |report: &FleetReport, table: &mut EventTable| {
            table.absorb(&report.events);
            deltas.extend(report.events.iter().map(|e| render::event(e).to_string()));
        };
        for (bin, feeds) in &bins {
            if let Some(report) = session.push_bin(*bin, feeds) {
                absorb(&report, &mut table);
            }
        }
        if let Some(report) = session.flush() {
            absorb(&report, &mut table);
        }
        (deltas, table)
    };
    let (want, table) = drive(1);
    assert!(
        !table.is_empty(),
        "{name}: the outage window extracted no fleet events"
    );
    let (got, got_table) = drive(2);
    assert_eq!(
        got, want,
        "{name}: event-delta parity broke across pipeline depths"
    );
    assert_eq!(
        got_table.ranked(),
        table.ranked(),
        "{name}: the delta folds diverged across pipeline depths"
    );

    // Interleave the depth passes (d1, d2, d1, d2, …) so environmental
    // drift cannot bias one depth's median.
    let mut samples = [Vec::with_capacity(reps), Vec::with_capacity(reps)];
    for _ in 0..reps {
        for (arm, depth) in [1usize, 2].into_iter().enumerate() {
            let mut router = case.router();
            let t = Instant::now();
            let mut session = router.session(depth);
            for (bin, feeds) in &bins {
                std::hint::black_box(session.push_bin(*bin, feeds));
            }
            std::hint::black_box(session.flush());
            samples[arm].push(t.elapsed().as_secs_f64() * 1e3 / bins.len() as f64);
        }
    }
    let sequential_ms = pinpoint_stats::median(&samples[0]).expect("reps >= 1");
    let parallel_ms = pinpoint_stats::median(&samples[1]).expect("reps >= 1");

    WorkloadResult {
        name: name.to_string(),
        records: bins
            .iter()
            .map(|(_, feeds)| feeds.iter().map(Vec::len).sum::<usize>())
            .sum::<usize>()
            / bins.len(),
        links: 0,
        sequential_ms,
        parallel_ms,
        intern_inserts: 0,
        sanitize_ms: 0.0,
        quarantined: 0,
        e2e_latency_ms: 0.0,
        queue_peak: 0,
        events: table.len() as u64,
        event_deltas: want.len() as u64,
        snapshot_ms: 0.0,
        snapshot_bytes: 0,
    }
}

/// The checkpoint-cadence workload: the mixed-bin stream driven once as
/// a plain session (`sequential_ms` per bin) and once checkpointing
/// after **every** bin — drain + `Analyzer::snapshot()` per push
/// (`parallel_ms` per bin), so `speedup` reads as checkpoint overhead
/// (≤ 1.0; the gap is the price of crash-safety at its most aggressive
/// cadence). The isolated `snapshot()` call is also timed on the warmed
/// analyzer (`snapshot_ms`) and the final snapshot size recorded
/// (`snapshot_bytes`). Parity gates: the checkpointing session's reports
/// byte-match the plain session's; a mid-stream snapshot restored into a
/// fresh analyzer replays the tail byte-identically; and restore →
/// re-snapshot reproduces the exact snapshot bytes.
fn run_checkpoint_workload(
    name: &str,
    mapper: &AsMapper,
    bins: &[Vec<TracerouteRecord>],
    reps: usize,
) -> WorkloadResult {
    // Uninterrupted reference.
    let mut reference = Vec::new();
    let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
    {
        let mut session = analyzer.session(0);
        for (i, records) in bins.iter().enumerate() {
            reference.extend(session.push_bin(BinId(i as u64), records));
        }
        reference.extend(session.flush());
    }
    let want: Vec<String> = reference
        .iter()
        .map(|r| render::bin_report(r).to_string())
        .collect();
    let links = reference.last().map_or(0, |r| r.link_stats.len());

    // Gate 1: checkpointing after every bin changes no report bytes.
    let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
    let mut got = Vec::new();
    let mut last_snapshot = Vec::new();
    {
        let mut session = analyzer.session(0);
        for (i, records) in bins.iter().enumerate() {
            got.extend(session.push_bin(BinId(i as u64), records));
            let (flushed, snapshot) = session.checkpoint();
            got.extend(flushed);
            last_snapshot = snapshot;
        }
        got.extend(session.flush());
    }
    assert_eq!(got.len(), want.len(), "{name}: checkpointing lost reports");
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(
            &render::bin_report(g).to_string(),
            w,
            "{name}: checkpointing changed report bytes on bin {}",
            g.bin.0
        );
    }

    // Gate 2: restore → re-snapshot is byte-identical (the codec is a
    // pure function of the analysis state).
    let resnapshot = Analyzer::restore(&last_snapshot)
        .unwrap_or_else(|e| panic!("{name}: snapshot failed to restore: {e:?}"))
        .snapshot();
    assert_eq!(
        resnapshot, last_snapshot,
        "{name}: restore → snapshot did not reproduce the bytes"
    );

    // Gate 3: a mid-stream snapshot resumes byte-identically.
    let cut = bins.len() / 2;
    let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
    let mid_snapshot = {
        let mut session = analyzer.session(0);
        for (i, records) in bins[..cut].iter().enumerate() {
            let _ = session.push_bin(BinId(i as u64), records);
        }
        session.checkpoint().1
    };
    let knobs = DetectorConfig::default();
    let mut resumed = Analyzer::restore_with(&mid_snapshot, |c| {
        c.threads = knobs.threads;
        c.ingest_chunk_records = knobs.ingest_chunk_records;
        c.pipeline_depth = knobs.pipeline_depth;
        c.radix_min_keys = knobs.radix_min_keys;
    })
    .unwrap_or_else(|e| panic!("{name}: mid-stream snapshot failed to restore: {e:?}"));
    let mut tail = Vec::new();
    {
        let mut session = resumed.session(0);
        for (i, records) in bins[cut..].iter().enumerate() {
            tail.extend(session.push_bin(BinId((cut + i) as u64), records));
        }
        tail.extend(session.flush());
    }
    assert_eq!(tail.len(), want.len() - cut, "{name}: resume lost reports");
    for (g, w) in tail.iter().zip(&want[cut..]) {
        assert_eq!(
            &render::bin_report(g).to_string(),
            w,
            "{name}: resume diverged on bin {}",
            g.bin.0
        );
    }

    // Timing: plain and checkpoint-every-bin arms interleaved, plus the
    // isolated snapshot() call on the warmed analyzer.
    let mut plain_samples = Vec::with_capacity(reps);
    let mut ckpt_samples = Vec::with_capacity(reps);
    let mut snap_samples = Vec::with_capacity(reps);
    let mut snapshot_bytes = 0usize;
    for _ in 0..reps {
        let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
        let t = Instant::now();
        let mut session = analyzer.session(0);
        for (i, records) in bins.iter().enumerate() {
            std::hint::black_box(session.push_bin(BinId(i as u64), records));
        }
        std::hint::black_box(session.flush());
        drop(session);
        plain_samples.push(t.elapsed().as_secs_f64() * 1e3 / bins.len() as f64);

        let mut analyzer = Analyzer::new(DetectorConfig::default(), mapper.clone());
        let t = Instant::now();
        let mut session = analyzer.session(0);
        for (i, records) in bins.iter().enumerate() {
            std::hint::black_box(session.push_bin(BinId(i as u64), records));
            std::hint::black_box(session.checkpoint());
        }
        std::hint::black_box(session.flush());
        drop(session);
        ckpt_samples.push(t.elapsed().as_secs_f64() * 1e3 / bins.len() as f64);

        let t = Instant::now();
        let snapshot = std::hint::black_box(analyzer.snapshot());
        snap_samples.push(t.elapsed().as_secs_f64() * 1e3);
        snapshot_bytes = snapshot.len();
    }

    WorkloadResult {
        name: name.to_string(),
        records: bins.iter().map(Vec::len).sum::<usize>() / bins.len(),
        links,
        sequential_ms: pinpoint_stats::median(&plain_samples).expect("reps >= 1"),
        parallel_ms: pinpoint_stats::median(&ckpt_samples).expect("reps >= 1"),
        intern_inserts: 0,
        sanitize_ms: 0.0,
        quarantined: 0,
        e2e_latency_ms: 0.0,
        queue_peak: 0,
        events: 0,
        event_deltas: 0,
        snapshot_ms: pinpoint_stats::median(&snap_samples).expect("reps >= 1"),
        snapshot_bytes: snapshot_bytes as u64,
    }
}

/// Pull `"field": <number>` out of one workload's object in the baseline
/// JSON (the workspace deliberately has no serde_json; the file is written
/// by this binary, so the shape is known).
fn baseline_field(baseline: &str, workload: &str, field: &str) -> Option<f64> {
    let obj_start = baseline.find(&format!("\"name\": \"{workload}\""))?;
    let obj = &baseline[obj_start..];
    let obj = &obj[..obj.find('}').unwrap_or(obj.len())];
    let v = obj.split(&format!("\"{field}\": ")).nth(1)?;
    let end = v
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(v.len());
    v[..end].parse().ok()
}

/// Compare a run against the committed baseline. A workload missing from
/// the baseline is fatal (the trajectory file must stay complete); a >25 %
/// drop in parallel throughput is a non-fatal GitHub annotation.
fn check_against_baseline(results: &[WorkloadResult], baseline_path: &str) {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("--check: cannot read {baseline_path}: {e}"));
    for r in results {
        let Some(want) = baseline_field(&baseline, &r.name, "records_per_sec_parallel") else {
            panic!(
                "--check: workload {:?} missing from {baseline_path}",
                r.name
            );
        };
        let got = r.records_per_sec_parallel();
        if got < 0.75 * want {
            println!(
                "::warning title=pipeline_bench regression::{} parallel throughput {got:.0} rec/s \
                 is {:.0}% of the committed {want:.0} rec/s",
                r.name,
                100.0 * got / want
            );
        } else {
            println!(
                "check {:<16} ok: {got:.0} rec/s vs committed {want:.0} rec/s",
                r.name
            );
        }
    }
}

fn main() {
    let mut seed = 2015u64;
    let mut reps = 9usize;
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut check_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed must be a u64");
        } else if let Some(v) = arg.strip_prefix("--reps=") {
            reps = v.parse().expect("--reps must be a usize");
            assert!(reps >= 1, "--reps must be at least 1");
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--check=") {
            check_path = Some(v.to_string());
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: pipeline_bench [--seed=N] [--reps=N] [--out=PATH] [--check=PATH]");
            return;
        } else {
            // A typo'd flag must not silently record default-parameter
            // numbers into the tracked perf-trajectory file.
            panic!("unknown argument {arg:?} (see --help)");
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("==== pipeline_bench ==== (seed {seed}, {reps} reps, {threads} hw threads)");

    // Workload 1: faithful simulator bin.
    let case = steady::case_study(seed, Scale::Small);
    let warm = case.platform.collect_bin(BinId(0));
    let work = case.platform.collect_bin(BinId(1));
    let steady_result = run_workload("steady_small", &case.mapper, &warm, &work, reps);

    // Workload 2: synthetic Atlas-scale delay-heavy bin.
    let spec = WorkloadSpec::large();
    let mapper = synthetic_mapper();
    let warm = synthetic_bin(&spec, seed, 0);
    let work = synthetic_bin(&spec, seed, 1);
    let large_result = run_workload("synthetic_large", &mapper, &warm, &work, reps);

    // Workload 3: forwarding-heavy bin (§5 dominates; delay links fall
    // below the AS-diversity floor).
    let fwd_spec = ForwardingSpec::large();
    let warm = forwarding_bin(&fwd_spec, seed, 0);
    let work = forwarding_bin(&fwd_spec, seed, 1);
    let forwarding_result = run_workload("forwarding_heavy", &mapper, &warm, &work, reps);

    // Workload 4: mixed bin — both detectors' shard pipelines loaded in
    // the same combined (§4 ∥ §5) pass.
    let warm = mixed_bin(&spec, &fwd_spec, seed, 0);
    let work = mixed_bin(&spec, &fwd_spec, seed, 1);
    let mixed_result = run_workload("mixed_full", &mapper, &warm, &work, reps);

    // Workload 5: three-stream fleet — every stream's delay + forwarding
    // shards pooled onto ONE shared worker herd via the StreamRouter.
    let warm = multi_stream_feeds(3, seed, 0);
    let work = multi_stream_feeds(3, seed, 1);
    let multi_result = run_multi_workload("multi_stream", &mapper, &warm, &work, reps);

    // Workload 6: scatter-dominated ingestion bin — the record→row front
    // end is the cost; per-key analysis is nearly free. The work bin's
    // key universe equals the warm bin's, so the persistent intern epoch
    // must report zero insertions (asserted: this is the steady-state
    // no-insertion guarantee, gated on every bench run).
    let ingest_spec = IngestSpec::large();
    let warm = ingest_bin(&ingest_spec, seed, 0);
    let work = ingest_bin(&ingest_spec, seed, 1);
    let ingest_result = run_workload("ingest_heavy", &mapper, &warm, &work, reps);
    assert_eq!(
        ingest_result.intern_inserts, 0,
        "ingest_heavy steady-state bin performed intern insertions"
    );

    // Workload 7: a stream of mixed bins through the cross-bin pipelined
    // executor — depth-1 (serial bins) timed against depth-2 (bin n+1's
    // scatter chunks overlapped with bin n's shard jobs), parity-gated
    // against the plain engine per bin. Bins share one key universe, so
    // the steady-state zero-insertion guarantee holds through the
    // pipeline too (recorded; the warm bin interns everything).
    let stream_bins: Vec<Vec<TracerouteRecord>> = (0..5)
        .map(|b| mixed_bin(&spec, &fwd_spec, seed, b))
        .collect();
    let pipelined_result = run_pipelined_workload("pipelined_stream", &mapper, &stream_bins, reps);
    assert_eq!(
        pipelined_result.intern_inserts, 0,
        "pipelined_stream steady-state bin performed intern insertions"
    );

    // Workload 8: the mixed bin mangled by a hostile artifact model —
    // loops, false links, swapped replies, duplicated hops. The engine
    // parity gate now also proves both paths sanitize identically; the
    // standalone sanitizer pass is timed separately so its overhead is
    // tracked PR over PR, along with how much the pass quarantined.
    let artifact_model = ArtifactModel::hostile(seed);
    let corrupt_bin = |b: u64| {
        // Mixed (both detectors) plus the long ingest paths: loops and
        // false links need middle hops to land on.
        let mut records = mixed_bin(&spec, &fwd_spec, seed, b);
        records.extend(ingest_bin(&ingest_spec, seed, b));
        for rec in &mut records {
            artifact_model.corrupt(rec);
        }
        records
    };
    let warm = corrupt_bin(0);
    let work = corrupt_bin(1);
    let mut artifact_result = run_workload("artifact_heavy", &mapper, &warm, &work, reps);
    artifact_result.sanitize_ms = time_sanitize(&work, reps);
    assert!(
        artifact_result.quarantined > 0,
        "artifact_heavy work bin quarantined nothing — the workload is not exercising the sanitizer"
    );

    // Workload 9: the same mixed stream served end-to-end by the live
    // daemon — the collector/executor/reporter pipeline over bounded
    // queues, parity-gated byte-for-byte against the offline render,
    // with the collect→report latency and the queue high-water mark
    // recorded in the trajectory file.
    let service_result = run_service_workload("service_e2e", &mapper, &stream_bins, reps);

    // Workload 10: the three-stream AMS-IX outage with the empathy
    // extractor live in the merge funnel — the incremental event channel
    // parity-gated across pipeline depths and timed end to end.
    let event_result = run_event_workload("event_extraction", seed, reps);

    // Workload 11: grouping-bound bin — a horde of probes, one sample
    // each, so the per-shard (link, probe) key sort in `finalize` is the
    // bill. Exercises the LSD radix grouping path end to end; the key
    // universe is steady across bins (asserted zero insertions).
    let grouping_spec = GroupingSpec::large();
    let warm = grouping_bin(&grouping_spec, seed, 0);
    let work = grouping_bin(&grouping_spec, seed, 1);
    let grouping_result = run_workload("grouping_heavy", &mapper, &warm, &work, reps);
    assert_eq!(
        grouping_result.intern_inserts, 0,
        "grouping_heavy steady-state bin performed intern insertions"
    );

    // Workload 12: characterization-bound bin — few links, ~1.1k samples
    // each across five ASes, so the shard-level batched math (rank
    // selection + cached Wilson bounds + diversity verdicts) dominates.
    let char_spec = WorkloadSpec::characterize_heavy();
    let warm = synthetic_bin(&char_spec, seed, 0);
    let work = synthetic_bin(&char_spec, seed, 1);
    let characterize_result = run_workload("characterize_heavy", &mapper, &warm, &work, reps);

    // Workload 13: the mixed stream with a durable checkpoint after
    // every bin — the crash-safety tax at its most aggressive cadence,
    // with the isolated snapshot() wall and the snapshot size recorded,
    // and the snapshot/restore/resume byte-parity gates run every time.
    let checkpoint_result =
        run_checkpoint_workload("checkpoint_heavy", &mapper, &stream_bins, reps);

    let results = [
        steady_result,
        large_result,
        forwarding_result,
        mixed_result,
        multi_result,
        ingest_result,
        pipelined_result,
        artifact_result,
        service_result,
        event_result,
        grouping_result,
        characterize_result,
        checkpoint_result,
    ];
    for r in &results {
        println!(
            "{:<16} {:>6} records {:>5} links | sequential {:>9.3} ms | parallel {:>9.3} ms | speedup {:>5.2}x | {:>10.0} rec/s | {:>4} intern inserts | sanitize {:>7.3} ms | {:>5} quarantined | e2e {:>7.3} ms | q-peak {} | {} event(s) / {} delta(s) | snapshot {:>7.3} ms / {} B",
            r.name,
            r.records,
            r.links,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup(),
            r.records_per_sec_parallel(),
            r.intern_inserts,
            r.sanitize_ms,
            r.quarantined,
            r.e2e_latency_ms,
            r.queue_peak,
            r.events,
            r.event_deltas,
            r.snapshot_ms,
            r.snapshot_bytes,
        );
    }

    // Hand-rolled JSON (the workspace deliberately has no serde_json).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"analyzer_process_bin\",\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"hw_threads\": {threads},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"records\": {}, \"links\": {}, \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}, \"records_per_sec_parallel\": {:.0}, \"intern_inserts\": {}, \"sanitize_ms\": {:.3}, \"quarantined\": {}, \"e2e_latency_ms\": {:.3}, \"queue_peak\": {}, \"events\": {}, \"event_deltas\": {}, \"snapshot_ms\": {:.3}, \"snapshot_bytes\": {}}}{}\n",
            r.name,
            r.records,
            r.links,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup(),
            r.records_per_sec_parallel(),
            r.intern_inserts,
            r.sanitize_ms,
            r.quarantined,
            r.e2e_latency_ms,
            r.queue_peak,
            r.events,
            r.event_deltas,
            r.snapshot_ms,
            r.snapshot_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&out_path).expect("create bench output");
    file.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        check_against_baseline(&results, &baseline_path);
    }
}
