//! Figure 6: delay-change magnitude of the K-root operator AS reveals the
//! two DDoS attacks.
//!
//! The paper: two unmistakable positive peaks on Nov 30 07:00–09:00 and
//! Dec 1 05:00–06:00, against a flat baseline over Nov 17 – Dec 15.

use pinpoint_bench::{header, opts_from_args, print_series, verdict};
use pinpoint_scenarios::ddos;
use pinpoint_scenarios::runner::run;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 6 — K-root operator AS delay-change magnitude",
        "two attack-window peaks of unprecedented level; flat otherwise",
        &opts,
    );
    let case = ddos::case_study(opts.seed, opts.scale);
    let kroot = case.landmarks.kroot_asn;
    let (a1s, a1e) = ddos::attack1(opts.scale);
    let (a2s, a2e) = ddos::attack2(opts.scale);
    let attack_bins: Vec<u64> = (a1s.0 / 3600..=a1e.0 / 3600)
        .chain(a2s.0 / 3600..=a2e.0 / 3600)
        .collect();
    println!("ground-truth attack bins: {attack_bins:?}\n");

    let mut analyzer = case.analyzer();
    let mut series: Vec<(u64, f64)> = Vec::new();
    run(&case, &mut analyzer, |report| {
        if let Some(m) = report.magnitude(kroot) {
            series.push((report.bin.0, m.delay_magnitude));
        }
    });
    print_series(&format!("{kroot} delay magnitude"), &series, 14);

    // Rank the bins by magnitude: the attack bins must dominate.
    let mut ranked: Vec<(u64, f64)> = series.clone();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop bins by magnitude:");
    for (bin, mag) in ranked.iter().take(6) {
        let marker = if attack_bins.contains(bin) {
            "← attack"
        } else {
            ""
        };
        println!("    bin {bin:>5}: {mag:>10.1} {marker}");
    }
    let top2: Vec<u64> = ranked.iter().take(2).map(|(b, _)| *b).collect();
    let both_peaks_are_attacks = top2.iter().all(|b| attack_bins.contains(b));
    let peak = ranked[0].1;
    let baseline_max = series
        .iter()
        .filter(|(b, _)| !attack_bins.contains(b) && !attack_bins.contains(&(b.saturating_sub(1))))
        .map(|(_, m)| m.abs())
        .fold(0.0f64, f64::max);

    verdict(
        both_peaks_are_attacks && peak > 5.0 * baseline_max.max(1.0),
        &format!(
            "top-2 magnitude bins {top2:?} inside attack windows; peak {peak:.0} vs baseline max {baseline_max:.1}"
        ),
    );
}
