//! Figure 13: forwarding-anomaly magnitude of the AMS-IX peering LAN.
//!
//! The paper: one deep negative spike on May 13 11:00 against a quiet
//! month; 770 LAN IP pairs became unresponsive; the delay method saw
//! nothing conclusive (no samples to measure).

use pinpoint_bench::{header, opts_from_args, print_series, verdict};
use pinpoint_core::forwarding::NextHop;
use pinpoint_scenarios::ixp;
use pinpoint_scenarios::runner::run;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 13 — AMS-IX forwarding-anomaly magnitude",
        "single deep negative peak at the outage; delay method silent",
        &opts,
    );
    let case = ixp::case_study(opts.seed, opts.scale);
    let amsix = case.landmarks.amsix_asn;
    let (os, oe) = ixp::outage_window();
    let outage_bins: Vec<u64> = (os.0 / 3600..=oe.0 / 3600).collect();
    println!("ground-truth outage bins: {outage_bins:?}\n");
    let mapper = case.mapper.clone();

    let mut analyzer = case.analyzer();
    let mut fwd: Vec<(u64, f64)> = Vec::new();
    let mut dly: Vec<(u64, f64)> = Vec::new();
    let mut lan_pairs = std::collections::BTreeSet::new();
    run(&case, &mut analyzer, |report| {
        if let Some(m) = report.magnitude(amsix) {
            fwd.push((report.bin.0, m.forwarding_magnitude));
            dly.push((report.bin.0, m.delay_magnitude));
        }
        if outage_bins.contains(&report.bin.0) {
            for alarm in &report.forwarding_alarms {
                for (hop, r) in &alarm.responsibilities {
                    if let NextHop::Ip(ip) = hop {
                        if *r < -0.05 && mapper.asn_of(*ip) == Some(amsix) {
                            lan_pairs.insert((alarm.router, *ip));
                        }
                    }
                }
            }
        }
    });

    print_series(&format!("{amsix} forwarding magnitude"), &fwd, 10);
    let (min_bin, min_mag) = fwd
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .copied()
        .unwrap_or((0, 0.0));
    let delay_at_outage = dly
        .iter()
        .filter(|(b, _)| outage_bins.contains(b))
        .map(|(_, m)| m.abs())
        .fold(0.0f64, f64::max);
    println!("\ndeepest magnitude: {min_mag:.1} at bin {min_bin}");
    println!("delay magnitude during the outage: {delay_at_outage:.2} (should stay small)");
    println!(
        "unresponsive LAN (router, next-hop) pairs: {}",
        lan_pairs.len()
    );

    verdict(
        outage_bins.contains(&min_bin) && min_mag < -2.0 && min_mag.abs() > delay_at_outage,
        &format!(
            "minimum {min_mag:.1} inside the outage window, forwarding ≫ delay, {} LAN pairs dark (paper: −24, 770 pairs, delay inconclusive)",
            lan_pairs.len()
        ),
    );
}
