//! Ablations: quantify the design choices DESIGN.md calls out.
//!
//! 1. **median vs mean CLT** — replace the median+Wilson estimator with the
//!    classical mean ± z·σ/√n: false alarms on a quiet link explode
//!    (Fig. 3's rationale).
//! 2. **probe-diversity filter on/off** — without the ≥3-AS rule the
//!    detector monitors more links, but the extras are single-AS views
//!    whose "delay changes" are indistinguishable from return-path noise.
//! 3. **α sweep** — large smoothing factors poison the reference during
//!    events and cause post-event echo alarms.
//! 4. **τ sweep** — looser (higher) correlation thresholds multiply
//!    forwarding alarms; the paper's −0.25 sits at the distribution knee.

use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_core::baseline::MeanDetector;
use pinpoint_core::diffrtt::compute::collect_link_samples;
use pinpoint_core::DetectorConfig;
use pinpoint_model::BinId;
use pinpoint_scenarios::{ixp, leak, steady, Scale};

fn ablation_mean_vs_median(seed: u64) -> (usize, usize) {
    // Event-free fortnight: every alarm on ANY link is a false alarm.
    let case = steady::case_study(seed, Scale::Small);
    let cfg = DetectorConfig::default();
    let mut mean_det = MeanDetector::new(&cfg);
    let mut mean_alarms = 0usize;
    let mut median_alarms = 0usize;
    let mut analyzer = case.analyzer();
    for (bin, records) in case.platform.stream(case.start_bin, BinId(48)) {
        // Paper detector: all delay alarms in a quiet world are false.
        let report = analyzer.process_bin(bin, &records);
        median_alarms += report.delay_alarms.len();
        // Mean baseline on the same per-link samples (same diversity gate:
        // only links the paper detector characterized are scored).
        for (link, samples) in collect_link_samples(&records) {
            if !report.link_stats.contains_key(&link) {
                continue;
            }
            if mean_det
                .check_link(link, bin, &samples.all_samples())
                .is_some()
            {
                mean_alarms += 1;
            }
        }
    }
    (median_alarms, mean_alarms)
}

fn ablation_diversity(seed: u64) -> (usize, usize) {
    // Count monitored links with and without the diversity filter.
    let count_links = |min_div: usize, entropy: f64| -> usize {
        let case = steady::case_study(seed, Scale::Small);
        let cfg = DetectorConfig {
            min_as_diversity: min_div,
            entropy_threshold: entropy,
            ..DetectorConfig::default()
        };
        let mut analyzer = pinpoint_core::pipeline::Analyzer::new(cfg, case.mapper.clone());
        let mut links = std::collections::BTreeSet::new();
        for (bin, records) in case.platform.stream(BinId(0), BinId(3)) {
            let report = analyzer.process_bin(bin, &records);
            links.extend(report.link_stats.keys().copied());
        }
        links.len()
    };
    (count_links(3, 0.5), count_links(1, 0.0))
}

fn ablation_alpha(seed: u64) -> Vec<(f64, usize, usize)> {
    // (alpha, alarms inside leak window, echo alarms after it)
    let (ls, le) = leak::leak_window();
    let leak_bins: Vec<u64> = (ls.0 / 3600..=le.0 / 3600).collect();
    let mut out = Vec::new();
    for alpha in [0.01, 0.1, 0.5] {
        let case = leak::case_study(seed, Scale::Small);
        let cfg = DetectorConfig {
            alpha,
            ..DetectorConfig::default()
        };
        let mut analyzer = pinpoint_core::pipeline::Analyzer::new(cfg, case.mapper.clone());
        let mut inside = 0usize;
        let mut after = 0usize;
        let end = leak_bins[leak_bins.len() - 1];
        for (bin, records) in case.platform.stream(BinId(0), BinId(end + 13)) {
            let report = analyzer.process_bin(bin, &records);
            if leak_bins.contains(&bin.0) {
                inside += report.delay_alarms.len();
            } else if bin.0 > end {
                after += report.delay_alarms.len();
            }
        }
        out.push((alpha, inside, after));
    }
    out
}

fn ablation_tau(seed: u64) -> Vec<(f64, usize, usize)> {
    // (tau, alarms inside the outage window, alarms outside = false alarms)
    let (os, oe) = ixp::outage_window();
    let outage_bins: Vec<u64> = (os.0 / 3600..=oe.0 / 3600).collect();
    let mut out = Vec::new();
    for tau in [-0.05, -0.25, -0.6] {
        let case = ixp::case_study(seed, Scale::Small);
        let cfg = DetectorConfig {
            forwarding_tau: tau,
            ..DetectorConfig::default()
        };
        let mut analyzer = pinpoint_core::pipeline::Analyzer::new(cfg, case.mapper.clone());
        let mut inside = 0usize;
        let mut outside = 0usize;
        for (bin, records) in case.platform.stream(BinId(0), BinId(7 * 24)) {
            let report = analyzer.process_bin(bin, &records);
            if outage_bins.contains(&bin.0) {
                inside += report.forwarding_alarms.len();
            } else {
                outside += report.forwarding_alarms.len();
            }
        }
        out.push((tau, inside, outside));
    }
    out
}

fn main() {
    let opts = opts_from_args();
    header(
        "Ablations — the cost of each design choice",
        "median beats mean; diversity filter removes ambiguous links; small α avoids echo; τ at the knee",
        &opts,
    );

    // Run the four studies in parallel; each builds its own scenario.
    let seed = opts.seed;
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let mut ok = true;
    std::thread::scope(|s| {
        let tx1 = tx.clone();
        s.spawn(move || {
            let (median, mean) = ablation_mean_vs_median(seed);
            tx1.send(format!(
                "1. quiet-fortnight alarms on the Fig. 2 link: median+Wilson {median}, mean±σ {mean}{}",
                if mean > median { "  → the mean misfires" } else { "" }
            ))
            .unwrap();
        });
        let tx2 = tx.clone();
        s.spawn(move || {
            let (with, without) = ablation_diversity(seed);
            tx2.send(format!(
                "2. monitored links: {with} with the ≥3-AS+entropy filter, {without} without (+{} ambiguous single-view links admitted)",
                without.saturating_sub(with)
            ))
            .unwrap();
        });
        let tx3 = tx.clone();
        s.spawn(move || {
            let rows = ablation_alpha(seed);
            let mut msg = String::from("3. α sweep on the leak (alarms in-window / echo after):");
            for (a, inside, after) in rows {
                msg.push_str(&format!("\n     α={a:<5} in={inside:<4} echo={after}"));
            }
            tx3.send(msg).unwrap();
        });
        let tx4 = tx.clone();
        s.spawn(move || {
            let rows = ablation_tau(seed);
            let mut msg =
                String::from("4. τ sweep on the IXP week (alarms in-outage / false alarms):");
            for (t, inside, outside) in rows {
                msg.push_str(&format!("\n     τ={t:<6} in={inside:<4} false={outside}"));
            }
            tx4.send(msg).unwrap();
        });
    });
    drop(tx);
    let mut results: Vec<String> = rx.iter().collect();
    results.sort();
    for r in &results {
        println!("{r}");
    }

    // Sanity: result 1 must show the mean misfiring more than the median.
    if let Some(first) = results.iter().find(|r| r.starts_with("1.")) {
        ok &= first.contains("→ the mean misfires");
    }
    verdict(ok, "ablation directions match the paper's design rationale");
}
