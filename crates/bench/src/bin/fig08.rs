//! Figure 8: the connected component of alarms around K-root at the peak
//! of the first attack.
//!
//! The paper: a star-ish component centred on the anycast address (each
//! edge ≈ one instance), adjacent to components of the F- and I-root
//! services through shared exchange points; 129 IPv4 alarms involved root
//! servers during the attack hours.

use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_core::graph::AlarmGraph;
use pinpoint_scenarios::ddos;
use pinpoint_scenarios::runner::run;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 8 — alarm component around K-root (attack peak)",
        "anycast node with high degree; F/I-root alarms adjacent via shared IXPs",
        &opts,
    );
    let case = ddos::case_study(opts.seed, opts.scale);
    let kroot = case.landmarks.kroot_addr;
    let froot = case.landmarks.froot_addr;
    let iroot = case.landmarks.iroot_addr;
    let lroot = case.landmarks.lroot_addr;
    let (a1s, a1e) = ddos::attack1(opts.scale);
    let attack_bins: Vec<u64> = (a1s.0 / 3600..=a1e.0 / 3600).collect();

    // Merge the attack-window alarms into one graph (the paper plots one
    // hour; merging the window is equivalent here and more stable at small
    // scale).
    let mut analyzer = case.analyzer();
    let mut graph = AlarmGraph::new();
    let mut root_alarms = 0usize;
    run(&case, &mut analyzer, |report| {
        if attack_bins.contains(&report.bin.0) {
            graph.add_delay_alarms(&report.delay_alarms);
            graph.add_forwarding_alarms(&report.forwarding_alarms);
            root_alarms += report
                .delay_alarms
                .iter()
                .filter(|a| [kroot, froot, iroot].iter().any(|r| a.link.touches(*r)))
                .count();
        }
    });

    println!("alarm edges during attack window: {}", graph.edge_count());
    println!("alarms touching root addresses: {root_alarms}\n");

    let comp = graph.component_of(kroot);
    match &comp {
        Some(c) => {
            println!(
                "K-root component: {} nodes, {} edges, K-root degree {}",
                c.nodes.len(),
                c.edges.len(),
                c.degree(kroot)
            );
            for e in &c.edges {
                println!(
                    "    {} — {}  (+{:.1} ms, d={:.1})",
                    e.a, e.b, e.median_shift_ms, e.deviation
                );
            }
        }
        None => println!("K-root component: none"),
    }
    let f_in_graph = graph.component_of(froot).is_some();
    let i_in_graph = graph.component_of(iroot).is_some();
    let l_clean = graph.component_of(lroot).is_none();
    println!(
        "\nF-root alarmed: {f_in_graph} | I-root alarmed: {i_in_graph} | L-root clean: {l_clean}"
    );

    let kdeg = comp.as_ref().map(|c| c.degree(kroot)).unwrap_or(0);
    verdict(
        kdeg >= 2 && l_clean,
        &format!(
            "K-root degree {kdeg} (≥2 instances reported), F={f_in_graph}/I={i_in_graph} alarmed, L-root clean={l_clean} (paper: multi-edge anycast node, A/D/G/L/M clean)"
        ),
    );
}
