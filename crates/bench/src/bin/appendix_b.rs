//! Appendix B: theoretical detectability limits.
//!
//! The paper derives the shortest detectable event for a link watched by
//! `n` vantage points probing `r` times per hour with bin length `T`:
//!
//! ```text
//! minimum usable bin  T_min = m / (3 r n)          (m = 9 packets)
//! shortest event      1/(3 r n) + T/2
//! ```
//!
//! builtin rates (r = 2, n = 3, T = 1 h) → 33 min; anchoring rates
//! (r = 4, n = 3, T = 15 min) → 9.2 min. This harness sweeps ground-truth
//! congestion bursts of increasing duration on the Cogent link, watched by
//! exactly three probes from three ASes, and reports the detection
//! transition against the theory.

use pinpoint_atlas::{deploy_probes, Measurement, MeasurementKind, Platform};
use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_core::pipeline::Analyzer;
use pinpoint_core::DetectorConfig;
use pinpoint_model::{BinId, MeasurementId, SimTime};
use pinpoint_netsim::events::{EventSchedule, LinkSelector, NetworkEvent};
use pinpoint_netsim::Network;
use pinpoint_scenarios::world::World;

struct SweepOutcome {
    duration_min: u64,
    detected: bool,
}

fn sweep(
    seed: u64,
    kind: MeasurementKind,
    bin_secs: u64,
    durations_min: &[u64],
) -> (f64, Vec<SweepOutcome>) {
    let world = World::build(seed, pinpoint_scenarios::Scale::Small);
    let link = world.landmarks.cogent_link;
    let anchor = world.landmarks.anchor_muc;
    let mapper = world.mapper();

    // Ground-truth events: one burst per day at 12:00, increasing duration.
    let link_id = {
        let a = world.topology.router_by_ip[&link.near];
        let b = world.topology.router_by_ip[&link.far];
        world.topology.link_between_routers(a, b).unwrap().id
    };
    let warmup_days = 2u64;
    let mut schedule = EventSchedule::new();
    for (i, &d) in durations_min.iter().enumerate() {
        let start = SimTime((warmup_days + i as u64) * 86_400 + 12 * 3600);
        schedule = schedule.with(NetworkEvent::Congestion {
            selector: LinkSelector::Link(link_id),
            start,
            end: SimTime(start.0 + d * 60),
            extra_util: 0.62,
        });
    }

    let net = Network::new(world.topology, seed, &schedule);
    let probes = deploy_probes(net.topology(), 120, seed);
    // Exactly three probes from three different ASes *whose forward path
    // to the anchor actually crosses the monitored link* — vantage points
    // elsewhere satisfy the diversity rule but never observe the link.
    let mut chosen = Vec::new();
    let mut seen_as = std::collections::BTreeSet::new();
    for p in &probes.probes {
        if seen_as.contains(&p.asn) {
            continue;
        }
        let crosses = (0..4u64).all(|flow| {
            net.forward_path(&pinpoint_netsim::network::TraceQuery {
                src: p.gateway,
                dst: anchor,
                t: SimTime::ZERO,
                flow,
                packets_per_hop: 3,
            })
            .map(|path| {
                path.windows(2).any(|w| {
                    let a = net.topology().router(w[0]).ip;
                    let b = net.topology().router(w[1]).ip;
                    (a, b) == (link.near, link.far)
                })
            })
            .unwrap_or(false)
        });
        if crosses {
            seen_as.insert(p.asn);
            chosen.push(p.id);
        }
        if chosen.len() == 3 {
            break;
        }
    }
    assert_eq!(chosen.len(), 3, "not enough probes crossing the link");
    let mut platform = Platform::new(net, probes);
    platform.bin_secs = bin_secs;
    platform.add_measurement(Measurement::new(MeasurementId(9000), kind, anchor, chosen));

    let cfg = DetectorConfig {
        bin_secs,
        ..DetectorConfig::default()
    };
    let mut analyzer = Analyzer::new(cfg, mapper);
    let total_bins = (warmup_days + durations_min.len() as u64 + 1) * 86_400 / bin_secs;
    let mut detected_bins: Vec<u64> = Vec::new();
    for (bin, records) in platform.stream(BinId(0), BinId(total_bins)) {
        let report = analyzer.process_bin(bin, &records);
        if report.delay_alarms.iter().any(|a| a.link == link) {
            detected_bins.push(bin.0);
        }
    }

    let r = kind.rate_per_hour();
    let n = 3.0;
    let theory_min = (1.0 / (3.0 * r * n) + (bin_secs as f64 / 3600.0) / 2.0) * 60.0;
    let outcomes = durations_min
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let event_start = (warmup_days + i as u64) * 86_400 + 12 * 3600;
            let event_end = event_start + d * 60;
            let bins = event_start / bin_secs..=event_end / bin_secs;
            SweepOutcome {
                duration_min: d,
                detected: detected_bins.iter().any(|b| bins.contains(b)),
            }
        })
        .collect();
    (theory_min, outcomes)
}

fn main() {
    let opts = opts_from_args();
    header(
        "Appendix B — shortest detectable event",
        "builtin (r=2, n=3, T=1 h) → 33 min; anchoring (r=4, n=3, T=15 min) → 9.2 min",
        &opts,
    );

    let mut all_consistent = true;
    for (label, kind, bin_secs, durations) in [
        (
            "builtin, T = 1 h",
            MeasurementKind::Builtin,
            3600u64,
            vec![10u64, 20, 30, 40, 50, 60],
        ),
        (
            "anchoring, T = 15 min",
            MeasurementKind::Anchoring,
            900,
            vec![3, 6, 9, 12, 15],
        ),
    ] {
        let (theory, outcomes) = sweep(opts.seed, kind, bin_secs, &durations);
        println!("{label}: theoretical threshold ≈ {theory:.1} min");
        for o in &outcomes {
            let expect = o.duration_min as f64 >= theory;
            let consistent = o.detected == expect
                // Allow fuzz right at the threshold (phase quantization).
                || (o.duration_min as f64 - theory).abs() < theory * 0.35;
            if !consistent {
                all_consistent = false;
            }
            println!(
                "    {:>3} min burst: detected={} (theory says {}) {}",
                o.duration_min,
                o.detected,
                expect,
                if consistent { "✓" } else { "✗" }
            );
        }
        println!();
    }
    verdict(
        all_consistent,
        "detection transitions bracket the Appendix-B thresholds (±35 % phase fuzz)",
    );
}
