//! Figure 3: Q-Q normality of the median vs the mean differential RTT.
//!
//! The paper: hourly *medians* of the Cogent link's differential RTTs fit a
//! normal distribution (Q-Q points on the diagonal, Fig. 3a); hourly
//! *means* do not — ~125 gross outliers spread across the fortnight destroy
//! them (Fig. 3b). This is the empirical license for the median-CLT.

use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_core::diffrtt::compute::collect_link_samples;
use pinpoint_scenarios::steady;
use pinpoint_scenarios::Scale;
use pinpoint_stats::descriptive::Summary;
use pinpoint_stats::normal::{qq_correlation, qq_points};
use pinpoint_stats::quantile::median;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 3 — Q-Q normality: median vs mean differential RTT",
        "medians normally distributed (points on x=y); means wrecked by outliers",
        &opts,
    );
    let case = steady::case_study(opts.seed, opts.scale);
    let link = case.landmarks.cogent_link;
    let bins = match opts.scale {
        Scale::Small => 48,
        Scale::Paper => 14 * 24,
    };

    let mut medians = Vec::new();
    let mut means = Vec::new();
    for b in 0..bins {
        let records = case.platform.collect_bin(pinpoint_model::BinId(b));
        if let Some(samples) = collect_link_samples(&records).get(&link) {
            let all = samples.all_samples();
            if let Some(m) = median(&all) {
                medians.push(m);
            }
            means.push(Summary::from_slice(&all).mean());
        }
    }

    let r_median = qq_correlation(&medians).unwrap_or(f64::NAN);
    let r_mean = qq_correlation(&means).unwrap_or(f64::NAN);

    println!("hourly estimates collected: {}", medians.len());
    println!("\n(a) median Δ Q-Q vs normal: r = {r_median:.4}");
    for (theo, samp) in qq_points(&medians).iter().step_by(medians.len().max(8) / 8) {
        println!("    theoretical {theo:>7.2}  sample {samp:>7.2}");
    }
    println!("\n(b) mean Δ Q-Q vs normal:   r = {r_mean:.4}");
    for (theo, samp) in qq_points(&means).iter().step_by(means.len().max(8) / 8) {
        println!("    theoretical {theo:>7.2}  sample {samp:>7.2}");
    }

    let ok = r_median > 0.95 && r_median > r_mean;
    verdict(
        ok,
        &format!(
            "median Q-Q r={r_median:.3} vs mean Q-Q r={r_mean:.3} (paper: median on the diagonal, mean far off)"
        ),
    );
}
