//! Figure 7: per-link differential RTT views of the root-server DDoS.
//!
//! The paper's six panels show how differently the attacks hit each
//! instance: (a) Kansas City alarmed in both windows; (b) Poznan — flat,
//! narrow, never alarmed during the attacks; (c) an instance hit in one
//! attack; (d) St. Petersburg anomalous for 14 consecutive hours; (e/f)
//! upstream links (HE at DE-CIX, Selectel) alarmed alongside their
//! instance.

use pinpoint_bench::{header, opts_from_args, sparkline, verdict};
use pinpoint_model::IpLink;
use pinpoint_scenarios::ddos;
use pinpoint_scenarios::runner::run;
use std::collections::BTreeMap;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 7 — per-instance differential RTT during the attacks",
        "instances impacted differently: both attacks / one / 14 h / untouched",
        &opts,
    );
    let case = ddos::case_study(opts.seed, opts.scale);
    let kroot_addr = case.landmarks.kroot_addr;
    let (a1s, a1e) = ddos::attack1(opts.scale);
    let (a2s, a2e) = ddos::attack2(opts.scale);
    let a1_bins: Vec<u64> = (a1s.0 / 3600..=a1e.0 / 3600).collect();
    let a2_bins: Vec<u64> = (a2s.0 / 3600..=a2e.0 / 3600).collect();
    let (ls, le) = ddos::led_window(opts.scale);
    let led_bins: Vec<u64> = (ls.0 / 3600..=le.0 / 3600).collect();

    // Map instance entry IPs (primary *and* IXP-LAN interfaces) to cities.
    let topo = case.platform.network().topology();
    let mut entry_city: BTreeMap<std::net::Ipv4Addr, &str> = BTreeMap::new();
    for (code, primary) in &case.landmarks.kroot_entries {
        entry_city.insert(*primary, code);
        if let Some(&rid) = topo.router_by_ip.get(primary) {
            for lan_ip in topo.router(rid).lan_ips.values() {
                entry_city.insert(*lan_ip, code);
            }
        }
    }

    let mut analyzer = case.analyzer();
    // link → (bin, median, alarmed)
    let mut series: BTreeMap<IpLink, Vec<(u64, f64, bool)>> = BTreeMap::new();
    run(&case, &mut analyzer, |report| {
        for (link, stat) in &report.link_stats {
            if link.far == kroot_addr || link.near == kroot_addr {
                let alarmed = report.delay_alarms.iter().any(|a| a.link == *link);
                series
                    .entry(*link)
                    .or_default()
                    .push((report.bin.0, stat.median(), alarmed));
            }
        }
    });

    println!("last-hop links to the anycast address: {}\n", series.len());
    let mut both_hit = 0;
    let mut untouched_in_attacks = 0;
    let mut led_hours_max = 0usize;
    for (link, points) in &series {
        let city = entry_city.get(&link.near).copied().unwrap_or("?");
        let meds: Vec<f64> = points.iter().map(|(_, m, _)| *m).collect();
        let alarmed: Vec<u64> = points
            .iter()
            .filter(|(_, _, a)| *a)
            .map(|(b, _, _)| *b)
            .collect();
        let in_a1 = alarmed.iter().any(|b| a1_bins.contains(b));
        let in_a2 = alarmed.iter().any(|b| a2_bins.contains(b));
        let led_hours = alarmed.iter().filter(|b| led_bins.contains(b)).count();
        println!(
            "  [{city:>3}] {link}\n        {}\n        alarmed bins: {alarmed:?} (attack1: {in_a1}, attack2: {in_a2})",
            sparkline(&meds)
        );
        if in_a1 && in_a2 {
            both_hit += 1;
        }
        // "Untouched" in the paper's sense: silent during both ground-truth
        // attack windows and the LED extension.
        let attack_alarmed = alarmed
            .iter()
            .any(|b| a1_bins.contains(b) || a2_bins.contains(b) || led_bins.contains(b));
        if !attack_alarmed {
            untouched_in_attacks += 1;
        }
        if city == "LED" {
            led_hours_max = led_hours_max.max(led_hours);
        }
    }

    println!("\ninstances alarmed in both attacks: {both_hit}");
    println!("instances silent through all attack windows (Poznan-style): {untouched_in_attacks}");
    println!("St. Petersburg alarmed hours in its 14 h window: {led_hours_max}");
    verdict(
        both_hit >= 2 && untouched_in_attacks >= 1 && led_hours_max >= 4,
        &format!(
            "{both_hit} dual-attack instances, {untouched_in_attacks} untouched, LED {led_hours_max} h (paper: mixed impact, one clean instance, 14 h tail)"
        ),
    );
}
