//! Figure 11: two Level3 link views during the route leak.
//!
//! The paper: (a) a London–London link jumps +229 ms and is alarmed
//! 09:00–11:00; (b) a New York–London link is alarmed at 10:00 but its
//! 09:00 bin has *no RTT samples at all* — the IP was dropping probe
//! packets (caught by the forwarding detector instead), showing the two
//! methods' complementarity.

use pinpoint_bench::{header, opts_from_args, sparkline, verdict};
use pinpoint_model::IpLink;
use pinpoint_scenarios::leak;
use pinpoint_scenarios::runner::run;
use std::collections::BTreeMap;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 11 — per-link views: alarms and sample gaps",
        "links show +100–229 ms shifts; some bins lose all samples to packet loss",
        &opts,
    );
    let case = leak::case_study(opts.seed, opts.scale);
    let gc = case.landmarks.gc_asn;
    let (ls, le) = leak::leak_window();
    let leak_bins: Vec<u64> = (ls.0 / 3600..=le.0 / 3600).collect();
    let mapper = case.mapper.clone();

    let mut analyzer = case.analyzer();
    // Track all links attributed to GC: medians per bin + alarm flags.
    let mut series: BTreeMap<IpLink, BTreeMap<u64, (f64, bool)>> = BTreeMap::new();
    let mut fwd_flagged: std::collections::BTreeSet<std::net::Ipv4Addr> = Default::default();
    run(&case, &mut analyzer, |report| {
        for (link, stat) in &report.link_stats {
            if mapper.groups(&[link.near, link.far]).contains(&gc) {
                let alarmed = report.delay_alarms.iter().any(|a| a.link == *link);
                series
                    .entry(*link)
                    .or_default()
                    .insert(report.bin.0, (stat.median(), alarmed));
            }
        }
        if leak_bins.contains(&report.bin.0) {
            for a in &report.forwarding_alarms {
                fwd_flagged.insert(a.router);
            }
        }
    });

    // Rank links by their leak-window shift and show the two best panels.
    let mut ranked: Vec<(IpLink, f64, Vec<u64>, Vec<u64>)> = Vec::new();
    for (link, points) in &series {
        let normal: Vec<f64> = points
            .iter()
            .filter(|(b, _)| !leak_bins.contains(b))
            .map(|(_, (m, _))| *m)
            .collect();
        let base = pinpoint_stats::quantile::median(&normal).unwrap_or(0.0);
        let shift = points
            .iter()
            .filter(|(b, _)| leak_bins.contains(b))
            .map(|(_, (m, _))| (m - base).abs())
            .fold(0.0f64, f64::max);
        let alarmed: Vec<u64> = points
            .iter()
            .filter(|(_, (_, a))| *a)
            .map(|(b, _)| *b)
            .collect();
        let missing: Vec<u64> = leak_bins
            .iter()
            .filter(|b| !points.contains_key(b))
            .copied()
            .collect();
        ranked.push((*link, shift, alarmed, missing));
    }
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let mut shown = 0;
    let mut max_shift: f64 = 0.0;
    let mut any_missing = false;
    for (link, shift, alarmed, missing) in ranked.iter().take(4) {
        let meds: Vec<f64> = series[link].values().map(|(m, _)| *m).collect();
        println!("  {link}");
        println!("      {}", sparkline(&meds));
        println!("      leak-window shift: +{shift:.1} ms; alarmed bins {alarmed:?}; sample-less leak bins {missing:?}");
        let near_flagged = fwd_flagged.contains(&link.near) || fwd_flagged.contains(&link.far);
        if !missing.is_empty() {
            any_missing = true;
            println!("      ↳ missing bins coincide with forwarding flags on an endpoint: {near_flagged}");
        }
        max_shift = max_shift.max(*shift);
        shown += 1;
    }

    verdict(
        shown > 0 && max_shift > 10.0,
        &format!(
            "max leak-window median shift +{max_shift:.0} ms across {} GC links; sample-less leak bins observed: {any_missing} (paper: +229 ms / +108 ms, one sample-less bin)"
        , series.len()),
    );
}
