//! Figure 12: the Level3 alarm component at the leak's peak hour, with
//! per-edge delay labels and forwarding-flagged nodes.
//!
//! The paper: a London-centred component whose edges carry the absolute
//! median shifts (+229 ms, +108 ms, ...) and whose red nodes are IPs also
//! implicated in forwarding anomalies — evidence that even non-rerouted
//! traffic through Level3 suffered.

use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_scenarios::leak;
use pinpoint_scenarios::runner::run;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 12 — leak-hour alarm component with edge labels",
        "connected component in Level3 with large edge shifts and red (forwarding) nodes",
        &opts,
    );
    let case = leak::case_study(opts.seed, opts.scale);
    let (ls, le) = leak::leak_window();
    let leak_bins: Vec<u64> = (ls.0 / 3600..=le.0 / 3600).collect();
    let gc = case.landmarks.gc_asn;
    let l3 = case.landmarks.level3_asn;
    let mapper = case.mapper.clone();

    let mut analyzer = case.analyzer();
    let mut best: Option<(u64, pinpoint_core::graph::AlarmGraph, usize)> = None;
    run(&case, &mut analyzer, |report| {
        if leak_bins.contains(&report.bin.0) && !report.delay_alarms.is_empty() {
            let g = report.alarm_graph();
            let edges = g.edge_count();
            if best.as_ref().map(|(_, _, e)| edges > *e).unwrap_or(true) {
                best = Some((report.bin.0, g, edges));
            }
        }
    });

    let Some((bin, graph, _)) = best else {
        verdict(false, "no alarms during the leak window");
        return;
    };
    println!("peak hour: bin {bin}\n");
    let comps = graph.components();
    let mut level3_nodes = 0usize;
    let mut max_label: f64 = 0.0;
    let mut red_nodes = 0usize;
    for (i, c) in comps.iter().enumerate() {
        println!(
            "component #{i}: {} nodes, {} edges",
            c.nodes.len(),
            c.edges.len()
        );
        for e in &c.edges {
            let a_as = mapper
                .asn_of(e.a)
                .map(|a| a.to_string())
                .unwrap_or_default();
            let b_as = mapper
                .asn_of(e.b)
                .map(|a| a.to_string())
                .unwrap_or_default();
            println!(
                "    {} ({a_as}) — {} ({b_as})  +{:.0} ms",
                e.a, e.b, e.median_shift_ms
            );
            max_label = max_label.max(e.median_shift_ms);
        }
        for n in &c.nodes {
            let asn = mapper.asn_of(*n);
            if asn == Some(gc) || asn == Some(l3) {
                level3_nodes += 1;
            }
        }
        red_nodes += c.forwarding_flagged.len();
        if !c.forwarding_flagged.is_empty() {
            println!(
                "    forwarding-flagged (red) nodes: {:?}",
                c.forwarding_flagged
            );
        }
    }

    println!("\nLevel3-family nodes in components: {level3_nodes}");
    println!("largest edge label: +{max_label:.0} ms");
    println!("red nodes: {red_nodes}");
    verdict(
        level3_nodes >= 2 && max_label > 10.0,
        &format!(
            "{level3_nodes} Level3 IPs in alarm components, max edge +{max_label:.0} ms, {red_nodes} red nodes (paper: +229/+108 ms, red NY node)"
        ),
    );
}
