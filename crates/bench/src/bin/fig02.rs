//! Figure 2: median differential RTT stability on the Cogent ZRH→MUC link.
//!
//! The paper: raw differential RTTs fluctuate heavily (σ = 12.2 vs
//! µ = 4.8), yet all hourly medians stay within a 0.2 ms band (5.2–5.4 ms)
//! and the Wilson CIs intersect the normal reference throughout — zero
//! alarms in two quiet weeks.

use pinpoint_bench::{header, opts_from_args, print_series, verdict};
use pinpoint_core::diffrtt::compute::collect_link_samples;
use pinpoint_scenarios::runner::run;
use pinpoint_scenarios::steady;
use pinpoint_stats::descriptive::Summary;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 2 — median differential RTT, Cogent ZRH→MUC",
        "raw Δ noisy (σ ≈ 2.5×µ); hourly medians within a sub-ms band; no alarms",
        &opts,
    );
    let case = steady::case_study(opts.seed, opts.scale);
    let link = case.landmarks.cogent_link;
    println!("link under study: {link}\n");

    let mut analyzer = case.analyzer();
    let mut medians: Vec<(u64, f64)> = Vec::new();
    let mut ci_widths: Vec<f64> = Vec::new();
    let mut alarms_on_link = 0usize;
    let mut raw = Summary::new();

    // Raw sample statistics from one representative bin.
    let raw_records = case.platform.collect_bin(case.start_bin);
    if let Some(samples) = collect_link_samples(&raw_records).get(&link) {
        for s in samples.all_samples() {
            raw.push(s);
        }
    }

    run(&case, &mut analyzer, |report| {
        if let Some(stat) = report.link_stats.get(&link) {
            medians.push((report.bin.0, stat.median()));
            ci_widths.push(stat.ci.width());
        }
        alarms_on_link += report
            .delay_alarms
            .iter()
            .filter(|a| a.link == link)
            .count();
    });

    println!(
        "raw differential RTTs (bin 0): n={}, mean={:.2} ms, σ={:.2} ms (σ/µ = {:.1})",
        raw.count(),
        raw.mean(),
        raw.std_dev(),
        raw.std_dev() / raw.mean().abs().max(1e-9)
    );
    print_series("hourly median Δ (ms)", &medians, 12);
    let meds: Vec<f64> = medians.iter().map(|(_, m)| *m).collect();
    let lo = meds.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = meds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean_width = ci_widths.iter().sum::<f64>() / ci_widths.len().max(1) as f64;
    println!(
        "\nmedian band: [{lo:.3}, {hi:.3}] ms (spread {:.3} ms)",
        hi - lo
    );
    println!("mean Wilson CI width: {mean_width:.3} ms");
    println!("alarms on the link: {alarms_on_link}");

    let stable = (hi - lo) < 1.0 && alarms_on_link == 0 && raw.std_dev() > 2.0 * (hi - lo);
    verdict(
        stable,
        &format!(
            "median spread {:.3} ms vs raw σ {:.2} ms, {} alarms (paper: 0.2 ms band, σ 12.2, 0 alarms)",
            hi - lo,
            raw.std_dev(),
            alarms_on_link
        ),
    );
}
