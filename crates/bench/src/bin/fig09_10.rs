//! Figures 9 & 10: Level3 delay-change and forwarding-anomaly magnitudes
//! around the Telekom Malaysia route leak.
//!
//! The paper: both Level3 ASes show positive delay-magnitude peaks (Fig. 9)
//! and negative forwarding-magnitude peaks (Fig. 10) on June 12 09:00–11:00
//! — "the most significant forwarding anomalies monitored for Level(3) in
//! our 8-month dataset".

use pinpoint_bench::{header, opts_from_args, print_series, verdict};
use pinpoint_scenarios::leak;
use pinpoint_scenarios::runner::run;

fn main() {
    let opts = opts_from_args();
    header(
        "Figures 9/10 — Level3 magnitudes during the route leak",
        "delay peaks up, forwarding peaks down, both ASes, exactly in the leak window",
        &opts,
    );
    let case = leak::case_study(opts.seed, opts.scale);
    let (gc, l3) = (case.landmarks.gc_asn, case.landmarks.level3_asn);
    let (ls, le) = leak::leak_window();
    let leak_bins: Vec<u64> = (ls.0 / 3600..=le.0 / 3600).collect();
    println!("ground-truth leak bins: {leak_bins:?}\n");

    let mut analyzer = case.analyzer();
    let mut gc_delay: Vec<(u64, f64)> = Vec::new();
    let mut gc_fwd: Vec<(u64, f64)> = Vec::new();
    let mut l3_delay: Vec<(u64, f64)> = Vec::new();
    let mut l3_fwd: Vec<(u64, f64)> = Vec::new();
    run(&case, &mut analyzer, |report| {
        if let Some(m) = report.magnitude(gc) {
            gc_delay.push((report.bin.0, m.delay_magnitude));
            gc_fwd.push((report.bin.0, m.forwarding_magnitude));
        }
        if let Some(m) = report.magnitude(l3) {
            l3_delay.push((report.bin.0, m.delay_magnitude));
            l3_fwd.push((report.bin.0, m.forwarding_magnitude));
        }
    });

    println!("— Figure 9 (delay magnitude) —");
    print_series(&format!("{gc} (Global Crossing)"), &gc_delay, 8);
    print_series(&format!("{l3} (Level3)"), &l3_delay, 8);
    println!("\n— Figure 10 (forwarding magnitude) —");
    print_series(&format!("{gc} (Global Crossing)"), &gc_fwd, 8);
    print_series(&format!("{l3} (Level3)"), &l3_fwd, 8);

    let peak_in = |s: &[(u64, f64)], sign: f64| -> (u64, f64) {
        s.iter()
            .map(|(b, v)| (*b, *v * sign))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(b, v)| (b, v * sign))
            .unwrap_or((0, 0.0))
    };
    let (gdb, gd) = peak_in(&gc_delay, 1.0);
    let (gfb, gf) = peak_in(&gc_fwd, -1.0);
    let (ldb, ld) = peak_in(&l3_delay, 1.0);
    let (lfb, lf) = peak_in(&l3_fwd, -1.0);
    println!("\npeaks: GC delay {gd:+.1}@{gdb}, GC fwd {gf:+.1}@{gfb}, L3 delay {ld:+.1}@{ldb}, L3 fwd {lf:+.1}@{lfb}");

    let ok = leak_bins.contains(&gdb)
        && leak_bins.contains(&gfb)
        && leak_bins.contains(&ldb)
        && leak_bins.contains(&lfb)
        && gd > 0.0
        && gf < 0.0
        && ld > 0.0
        && lf < 0.0;
    verdict(
        ok,
        "all four extreme bins inside the leak window with the paper's signs (+delay / −forwarding)",
    );
}
