//! Figure 5: distributions of hourly magnitudes across all ASes.
//!
//! The paper: (a) delay-change magnitude CCDF — 97 % of AS-hours below 1,
//! heavy right tail carrying the DDoS events; (b) forwarding-anomaly
//! magnitude CDF — heavy *left* tail, magnitudes below −10 only ~0.001 %
//! of the time (the route leak and AMS-IX live there).

use pinpoint_bench::{header, opts_from_args, verdict};
use pinpoint_scenarios::full;
use pinpoint_scenarios::runner::run;
use pinpoint_stats::ecdf::Ecdf;

fn main() {
    let opts = opts_from_args();
    header(
        "Figure 5 — hourly magnitude distributions over all ASes",
        "(a) P(delay mag > 1) ≈ 3 %, heavy right tail; (b) heavy left tail in forwarding",
        &opts,
    );
    let case = full::case_study(opts.seed, opts.scale);
    let mut analyzer = case.analyzer();
    let mut delay_mags: Vec<f64> = Vec::new();
    let mut fwd_mags: Vec<f64> = Vec::new();
    run(&case, &mut analyzer, |report| {
        for m in report.magnitudes.values() {
            delay_mags.push(m.delay_magnitude);
            fwd_mags.push(m.forwarding_magnitude);
        }
    });

    let delay = Ecdf::new(&delay_mags);
    let fwd = Ecdf::new(&fwd_mags);
    println!("AS-hours scored: {}\n", delay.len());

    println!("(a) delay-change magnitude CCDF  P(mag > x):");
    for x in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0] {
        println!("    x = {x:>6.1}: {:>10.6}", delay.ccdf(x));
    }
    println!("\n(b) forwarding-anomaly magnitude CDF  P(mag ≤ x):");
    for x in [-50.0, -10.0, -5.0, -2.0, -1.0, -0.5, 0.0] {
        println!("    x = {x:>6.1}: {:>10.6}", fwd.cdf(x));
    }

    let p_above_1 = delay.ccdf(1.0);
    let right_tail = delay.ccdf(50.0);
    let left_tail = fwd.cdf(-5.0);
    println!("\nP(delay mag > 1)  = {p_above_1:.4}  (paper ≈ 0.03)");
    println!("P(delay mag > 50) = {right_tail:.6}  (heavy right tail: > 0)");
    println!("P(fwd mag ≤ −5)   = {left_tail:.6}  (heavy left tail: > 0, tiny)");

    let ok = p_above_1 < 0.15 && right_tail > 0.0 && left_tail > 0.0 && left_tail < 0.05;
    verdict(
        ok,
        &format!(
            "P(>1)={p_above_1:.4}, right tail {right_tail:.2e}, left tail {left_tail:.2e} (paper: 0.03 / heavy / 1e-5-ish)"
        ),
    );
}
