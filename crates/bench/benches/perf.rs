//! Criterion performance benches for the pipeline's hot paths.
//!
//! The paper's system runs in near real time against the Atlas stream
//! (§8); these benches establish that each stage is far faster than the
//! one-hour bin cadence it must sustain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pinpoint_bench::workload::{synthetic_bin, synthetic_mapper, WorkloadSpec};
use pinpoint_core::diffrtt::compute::collect_link_samples;
use pinpoint_core::diffrtt::SampleArena;
use pinpoint_core::forwarding::collect_patterns;
use pinpoint_core::pipeline::Analyzer;
use pinpoint_core::DetectorConfig;
use pinpoint_model::{BinId, LpmTable, Prefix};
use pinpoint_netsim::network::TraceQuery;
use pinpoint_netsim::routing::policy::compute_routes;
use pinpoint_netsim::{EventSchedule, Network, TopologyConfig};
use pinpoint_scenarios::steady;
use pinpoint_scenarios::Scale;
use pinpoint_stats::sliding::SlidingRobust;
use pinpoint_stats::wilson::median_ci;
use pinpoint_stats::SplitMix64;

fn bench_stats(c: &mut Criterion) {
    let mut rng = SplitMix64::new(7);
    let samples: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 20.0).collect();
    c.bench_function("wilson_median_ci_1000", |b| {
        b.iter(|| median_ci(std::hint::black_box(&samples), 1.96))
    });

    c.bench_function("sliding_median_mad_168", |b| {
        b.iter_batched(
            || {
                let mut s = SlidingRobust::new(168);
                for i in 0..168 {
                    s.push((i % 13) as f64);
                }
                s
            },
            |mut s| s.score_and_push(std::hint::black_box(42.0)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_lpm(c: &mut Criterion) {
    let mut table: LpmTable<u32> = LpmTable::new();
    let mut rng = SplitMix64::new(3);
    for i in 0..10_000u32 {
        let addr = std::net::Ipv4Addr::from(rng.next_raw() as u32);
        let len = 8 + (rng.next_below(17)) as u8;
        table.insert(Prefix::new(addr, len), i);
    }
    let queries: Vec<std::net::Ipv4Addr> = (0..1024)
        .map(|_| std::net::Ipv4Addr::from(rng.next_raw() as u32))
        .collect();
    c.bench_function("lpm_lookup_10k_prefixes", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            table.lookup_value(std::hint::black_box(queries[i]))
        })
    });
}

fn bench_netsim(c: &mut Criterion) {
    let topo = TopologyConfig::default().build();
    let stubs: Vec<_> = topo.stub_ases().map(|a| a.routers[0]).collect();
    let dst = topo.router(stubs[stubs.len() - 1]).ip;
    let dest_as = topo.router(stubs[stubs.len() - 1]).as_id;
    let src = stubs[0];
    c.bench_function("policy_route_table", |b| {
        b.iter(|| compute_routes(std::hint::black_box(&topo), dest_as, &[], 7))
    });

    let net = Network::new(topo, 11, &EventSchedule::new());
    c.bench_function("paris_traceroute", |b| {
        let mut flow = 0u64;
        b.iter(|| {
            flow += 1;
            net.traceroute(&TraceQuery {
                src,
                dst,
                t: pinpoint_model::SimTime::from_hours(5),
                flow,
                packets_per_hop: 3,
            })
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let case = steady::case_study(2015, Scale::Small);
    let records = case.platform.collect_bin(BinId(0));
    println!("bin volume: {} traceroutes", records.len());

    c.bench_function("collect_link_samples_per_bin", |b| {
        b.iter(|| collect_link_samples(std::hint::black_box(&records)))
    });
    c.bench_function("sample_arena_build_per_bin", |b| {
        let mut arena = SampleArena::new();
        b.iter(|| {
            arena.build(std::hint::black_box(&records));
            arena.total_samples()
        })
    });
    c.bench_function("collect_patterns_per_bin", |b| {
        b.iter(|| collect_patterns(std::hint::black_box(&records)))
    });
    c.bench_function("analyzer_process_bin", |b| {
        b.iter_batched(
            || {
                let mut analyzer = Analyzer::new(DetectorConfig::default(), case.mapper.clone());
                // Warm the references so the bench covers the steady state.
                analyzer.process_bin(BinId(0), &records);
                analyzer
            },
            |mut analyzer| analyzer.process_bin(BinId(1), std::hint::black_box(&records)),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("analyzer_process_bin_sequential", |b| {
        b.iter_batched(
            || {
                let mut analyzer = Analyzer::new(DetectorConfig::default(), case.mapper.clone());
                analyzer.process_bin_sequential(BinId(0), &records);
                analyzer
            },
            |mut analyzer| {
                analyzer.process_bin_sequential(BinId(1), std::hint::black_box(&records))
            },
            BatchSize::LargeInput,
        )
    });
}

/// Engine-level throughput on a synthetic Atlas-scale bin (hundreds of
/// links, every one passing the diversity filter). The parallel/sequential
/// pair here is the headline number `pipeline_bench` records in
/// `BENCH_pipeline.json`.
fn bench_engine(c: &mut Criterion) {
    let spec = WorkloadSpec::large();
    let records = synthetic_bin(&spec, 2015, 0);
    let next = synthetic_bin(&spec, 2015, 1);
    println!(
        "synthetic bin volume: {} traceroutes, {} links",
        records.len(),
        spec.links * 2
    );

    c.bench_function("engine_bin_large_parallel", |b| {
        b.iter_batched(
            || {
                let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
                analyzer.process_bin(BinId(0), &records);
                analyzer
            },
            |mut analyzer| analyzer.process_bin(BinId(1), std::hint::black_box(&next)),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("engine_bin_large_sequential", |b| {
        b.iter_batched(
            || {
                let mut analyzer = Analyzer::new(DetectorConfig::default(), synthetic_mapper());
                analyzer.process_bin_sequential(BinId(0), &records);
                analyzer
            },
            |mut analyzer| analyzer.process_bin_sequential(BinId(1), std::hint::black_box(&next)),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stats, bench_lpm, bench_netsim, bench_pipeline, bench_engine
}
criterion_main!(benches);
