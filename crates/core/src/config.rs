//! Detector parameters, with the paper's defaults.

use crate::snapshot::{Reader, SnapshotError, Writer};

/// All tunable parameters of the detection pipeline.
///
/// Defaults reproduce the paper's configuration (see DESIGN.md §6 for the
/// sourcing table). Everything is plain data so experiments can sweep any
/// knob.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Analysis bin length in seconds (paper: 1 hour).
    pub bin_secs: u64,
    /// Normal critical value for the Wilson score (paper: 1.96 → 95 %).
    pub wilson_z: f64,
    /// Minimum number of distinct probe ASes per link (paper: 3).
    pub min_as_diversity: usize,
    /// Normalized-entropy threshold for probe-per-AS balance (paper: 0.5).
    pub entropy_threshold: f64,
    /// Minimum gap between observed and reference median to report (paper:
    /// 1 ms — "although statistically meaningful, these small anomalies are
    /// less relevant").
    pub min_median_gap_ms: f64,
    /// Exponential smoothing factor for references (paper: "a small α";
    /// 0.01 matches the published implementation's order of magnitude).
    pub alpha: f64,
    /// Number of warm-up bins before a link's reference is trusted
    /// (paper: m̄₀ = median of the first three medians).
    pub warmup_bins: usize,
    /// Correlation threshold τ for forwarding anomalies (paper: −0.25).
    pub forwarding_tau: f64,
    /// Minimum packets per (router, destination) pattern before it is
    /// compared (guards against correlating two packets).
    pub min_pattern_packets: f64,
    /// Bins a forwarding reference may go unseen before it is evicted —
    /// (router, destination) pairs churn constantly in real traceroute
    /// feeds (targets retire, paths move), and without eviction the
    /// reference maps grow without bound. One week of hourly bins by
    /// default, matching the magnitude window.
    pub reference_expiry_bins: usize,
    /// Sliding window length for the magnitude metric, in bins (paper: one
    /// week of hourly bins).
    pub magnitude_window_bins: usize,
    /// Seed for the (rare) random choices, e.g. entropy rebalancing.
    pub seed: u64,
    /// Records per scatter chunk for the chunked parallel ingestion
    /// front-end: each bin's records are split into chunks of this size,
    /// scattered in parallel on the engine pool, and re-concatenated in
    /// chunk order — so this is purely a throughput/latency knob; output
    /// is byte-identical for any value. `0` (the default) picks
    /// `ingest::DEFAULT_CHUNK_RECORDS`.
    pub ingest_chunk_records: usize,
    /// Worker threads for the per-bin link engine: `0` means "use all
    /// available cores". Results are byte-identical for any value — the
    /// engine's randomness is derived per (seed, link, bin) and its output
    /// totally ordered — so this is purely a throughput knob.
    pub threads: usize,
    /// Depth of the cross-bin pipelined executor
    /// (`Analyzer::pipelined` / `StreamRouter::pipelined`): `1` runs
    /// bins strictly serially, `2` overlaps bin *n+1*'s scatter chunks
    /// with bin *n*'s shard jobs on one worker herd, `0` (the default)
    /// picks the engine default (2). Values above 2 clamp to 2 — the
    /// serial merge fences every bin, so deeper pipelines buy nothing.
    /// Purely a throughput knob; output is byte-identical for any value.
    pub pipeline_depth: usize,
    /// Smallest per-shard element count at which the grouping paths use
    /// the stable LSD radix sort instead of the comparison sort: `0`
    /// (the default) picks the engine default
    /// (`pinpoint_stats::RADIX_MIN_KEYS`), `1` forces radix for every
    /// non-trivial shard, `usize::MAX` disables radix entirely. Because
    /// the radix sort is stable and the gathered runs arrive in record
    /// order, grouped output — and with it every report byte — is
    /// identical for every value; purely a throughput knob.
    pub radix_min_keys: usize,
    /// Run the record sanitizer in front of ingestion (default `true`).
    /// Disabling it feeds raw records — including structurally broken
    /// ones — straight to the detectors; useful only for measuring the
    /// sanitizer's own effect.
    pub sanitize: bool,
    /// Largest RTT the sanitizer accepts as physically possible, in
    /// milliseconds. Anything above (or non-finite, or negative)
    /// quarantines the record. 10 s is far beyond any real path RTT yet
    /// below the garbage values broken firmware emits.
    pub sanitize_max_rtt_ms: f64,
    /// Largest *decrease* in adjacent min-RTTs the sanitizer tolerates,
    /// in milliseconds. Mild inversions are legitimate — return paths
    /// differ per hop (the paper's Challenge 1), ICMP generation on the
    /// near router can be slow, and a noise spike on the near hop's min
    /// shifts the difference — so this is a gross-error bound, not a
    /// monotonicity requirement. 100 ms sits above anything those benign
    /// causes produce while catching wrong-hop reply attribution that
    /// swaps RTTs across a long-haul link.
    pub sanitize_max_inversion_ms: f64,
    /// Most hops a record may carry before it is quarantined as
    /// structurally bogus (real traceroutes stop at a TTL of 32–64).
    pub sanitize_max_hops: usize,
    /// Magnitude threshold for event extraction: an AS enters an event
    /// when |delay magnitude| or |forwarding magnitude| crosses this
    /// value. Shared by the post-hoc `EventExtractor` and the
    /// incremental empathy extractor; 4.0 keeps the historical reporting
    /// default (well past the ±3σ-equivalent band of the magnitude
    /// deviation score).
    pub event_threshold: f64,
    /// Most consecutive quiet bins an open event bridges before it is
    /// closed. `1` (the default) keeps the extractor's historical
    /// one-bin gap bridge: evidence at bin *b* extends an event whose
    /// last evidence was at bin *b − gap − 1* or later.
    pub event_gap_bins: u64,
    /// Minimum number of shared elements (interfaces or ASes) for two
    /// simultaneous alarms to be considered empathic and clustered into
    /// one event. `1` is the plain connected-component relation; higher
    /// values demand stronger overlap before merging.
    pub empathy_min_shared: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            bin_secs: 3600,
            wilson_z: 1.96,
            min_as_diversity: 3,
            entropy_threshold: 0.5,
            min_median_gap_ms: 1.0,
            alpha: 0.01,
            warmup_bins: 3,
            forwarding_tau: -0.25,
            min_pattern_packets: 9.0,
            reference_expiry_bins: 7 * 24,
            magnitude_window_bins: 7 * 24,
            seed: 0xF0_07,
            ingest_chunk_records: 0,
            threads: 0,
            pipeline_depth: 0,
            radix_min_keys: 0,
            sanitize: true,
            sanitize_max_rtt_ms: 10_000.0,
            sanitize_max_inversion_ms: 100.0,
            sanitize_max_hops: 64,
            event_threshold: 4.0,
            event_gap_bins: 1,
            empathy_min_shared: 1,
        }
    }
}

impl DetectorConfig {
    /// Resolved engine worker count: `threads`, or every available core
    /// when it is `0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// A configuration suited to short unit-test scenarios: faster-moving
    /// references and a short magnitude window.
    pub fn fast_test() -> Self {
        DetectorConfig {
            alpha: 0.1,
            magnitude_window_bins: 24,
            ..Default::default()
        }
    }

    /// Serialize every field in declaration order — with one exception:
    /// the four throughput knobs (`threads`, `ingest_chunk_records`,
    /// `pipeline_depth`, `radix_min_keys`) are written as `0` ("auto").
    /// They never affect output bytes, only scheduling, so normalizing
    /// them is what makes snapshots byte-identical across the whole
    /// thread × chunk × depth × radix matrix. Callers who want pinned
    /// knobs after a restore set them on the restored config.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        w.u64(self.bin_secs);
        w.f64(self.wilson_z);
        w.usize(self.min_as_diversity);
        w.f64(self.entropy_threshold);
        w.f64(self.min_median_gap_ms);
        w.f64(self.alpha);
        w.usize(self.warmup_bins);
        w.f64(self.forwarding_tau);
        w.f64(self.min_pattern_packets);
        w.usize(self.reference_expiry_bins);
        w.usize(self.magnitude_window_bins);
        w.u64(self.seed);
        w.usize(0); // ingest_chunk_records: throughput knob, normalized
        w.usize(0); // threads: throughput knob, normalized
        w.usize(0); // pipeline_depth: throughput knob, normalized
        w.usize(0); // radix_min_keys: throughput knob, normalized
        w.bool(self.sanitize);
        w.f64(self.sanitize_max_rtt_ms);
        w.f64(self.sanitize_max_inversion_ms);
        w.usize(self.sanitize_max_hops);
        w.f64(self.event_threshold);
        w.u64(self.event_gap_bins);
        w.usize(self.empathy_min_shared);
    }

    /// Rebuild a config from [`DetectorConfig::snapshot_into`] bytes.
    pub(crate) fn restore_from(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(DetectorConfig {
            bin_secs: r.u64()?,
            wilson_z: r.f64()?,
            min_as_diversity: r.usize()?,
            entropy_threshold: r.f64()?,
            min_median_gap_ms: r.f64()?,
            alpha: r.f64()?,
            warmup_bins: r.usize()?,
            forwarding_tau: r.f64()?,
            min_pattern_packets: r.f64()?,
            reference_expiry_bins: r.usize()?,
            magnitude_window_bins: r.usize()?,
            seed: r.u64()?,
            ingest_chunk_records: r.usize()?,
            threads: r.usize()?,
            pipeline_depth: r.usize()?,
            radix_min_keys: r.usize()?,
            sanitize: r.bool()?,
            sanitize_max_rtt_ms: r.f64()?,
            sanitize_max_inversion_ms: r.f64()?,
            sanitize_max_hops: r.usize()?,
            event_threshold: r.f64()?,
            event_gap_bins: r.u64()?,
            empathy_min_shared: r.usize()?,
        })
    }

    /// Reject degenerate knob values with an actionable message.
    ///
    /// Every error names the offending knob, the value it carried, and
    /// the accepted range, so a sweep harness that fat-fingers one
    /// parameter fails loudly at construction instead of silently
    /// producing garbage (a `reference_expiry_bins` of 0 would evict
    /// every reference every bin; a NaN threshold never fires). The
    /// throughput knobs (`threads`, `ingest_chunk_records`,
    /// `pipeline_depth`) accept 0 — that is their documented "auto"
    /// value. Called by `Analyzer::new`.
    pub fn validate(&self) -> Result<(), String> {
        fn finite_in(name: &str, v: f64, lo: f64, hi: f64) -> Result<(), String> {
            if !v.is_finite() || v < lo || v > hi {
                return Err(format!(
                    "DetectorConfig::{name} is {v}, expected a finite value in [{lo}, {hi}]"
                ));
            }
            Ok(())
        }
        fn at_least(name: &str, v: usize, lo: usize, why: &str) -> Result<(), String> {
            if v < lo {
                return Err(format!(
                    "DetectorConfig::{name} is {v}, expected >= {lo}: {why}"
                ));
            }
            Ok(())
        }
        at_least(
            "bin_secs",
            self.bin_secs as usize,
            1,
            "a bin must span time",
        )?;
        finite_in("wilson_z", self.wilson_z, f64::MIN_POSITIVE, 100.0)?;
        at_least(
            "min_as_diversity",
            self.min_as_diversity,
            1,
            "at least one probe AS must witness a link",
        )?;
        finite_in("entropy_threshold", self.entropy_threshold, 0.0, 1.0)?;
        finite_in("min_median_gap_ms", self.min_median_gap_ms, 0.0, f64::MAX)?;
        finite_in("alpha", self.alpha, f64::MIN_POSITIVE, 1.0)?;
        at_least(
            "warmup_bins",
            self.warmup_bins,
            1,
            "the first reference needs at least one observed median",
        )?;
        finite_in("forwarding_tau", self.forwarding_tau, -1.0, 1.0)?;
        finite_in(
            "min_pattern_packets",
            self.min_pattern_packets,
            f64::MIN_POSITIVE,
            f64::MAX,
        )?;
        at_least(
            "reference_expiry_bins",
            self.reference_expiry_bins,
            1,
            "0 would evict every reference on every bin",
        )?;
        at_least(
            "magnitude_window_bins",
            self.magnitude_window_bins,
            1,
            "the magnitude metric needs a window",
        )?;
        finite_in(
            "sanitize_max_rtt_ms",
            self.sanitize_max_rtt_ms,
            f64::MIN_POSITIVE,
            f64::MAX,
        )?;
        finite_in(
            "sanitize_max_inversion_ms",
            self.sanitize_max_inversion_ms,
            f64::MIN_POSITIVE,
            f64::MAX,
        )?;
        at_least(
            "sanitize_max_hops",
            self.sanitize_max_hops,
            1,
            "every record with hops would be quarantined",
        )?;
        finite_in(
            "event_threshold",
            self.event_threshold,
            f64::MIN_POSITIVE,
            f64::MAX,
        )?;
        if self.event_gap_bins as usize > self.magnitude_window_bins {
            return Err(format!(
                "DetectorConfig::event_gap_bins is {}, expected <= magnitude_window_bins ({}): \
                 bridging a gap longer than the scoring window would glue unrelated incidents \
                 into one event",
                self.event_gap_bins, self.magnitude_window_bins
            ));
        }
        at_least(
            "empathy_min_shared",
            self.empathy_min_shared,
            1,
            "alarms sharing no element are never empathic",
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.bin_secs, 3600);
        assert_eq!(c.wilson_z, 1.96);
        assert_eq!(c.min_as_diversity, 3);
        assert_eq!(c.entropy_threshold, 0.5);
        assert_eq!(c.min_median_gap_ms, 1.0);
        assert_eq!(c.forwarding_tau, -0.25);
        assert_eq!(c.reference_expiry_bins, 168);
        assert_eq!(c.magnitude_window_bins, 168);
        assert_eq!(c.warmup_bins, 3);
        assert_eq!(c.threads, 0, "default engine uses every core");
        assert_eq!(c.ingest_chunk_records, 0, "default chunk size is auto");
        assert_eq!(c.pipeline_depth, 0, "default pipeline depth is auto");
        assert_eq!(c.radix_min_keys, 0, "default radix threshold is auto");
        assert!(c.sanitize, "sanitizer on by default");
        assert_eq!(c.sanitize_max_hops, 64);
        assert_eq!(c.event_threshold, 4.0);
        assert_eq!(c.event_gap_bins, 1, "historical one-bin gap bridge");
        assert_eq!(c.empathy_min_shared, 1, "plain connected components");
    }

    #[test]
    fn default_and_fast_test_configs_validate() {
        DetectorConfig::default().validate().unwrap();
        DetectorConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn degenerate_knobs_are_rejected_with_the_knob_named() {
        let cases: Vec<(&str, DetectorConfig)> = vec![
            (
                "reference_expiry_bins",
                DetectorConfig {
                    reference_expiry_bins: 0,
                    ..Default::default()
                },
            ),
            (
                "alpha",
                DetectorConfig {
                    alpha: f64::NAN,
                    ..Default::default()
                },
            ),
            (
                "alpha",
                DetectorConfig {
                    alpha: 0.0,
                    ..Default::default()
                },
            ),
            (
                "wilson_z",
                DetectorConfig {
                    wilson_z: -1.96,
                    ..Default::default()
                },
            ),
            (
                "entropy_threshold",
                DetectorConfig {
                    entropy_threshold: 1.5,
                    ..Default::default()
                },
            ),
            (
                "forwarding_tau",
                DetectorConfig {
                    forwarding_tau: f64::INFINITY,
                    ..Default::default()
                },
            ),
            (
                "warmup_bins",
                DetectorConfig {
                    warmup_bins: 0,
                    ..Default::default()
                },
            ),
            (
                "bin_secs",
                DetectorConfig {
                    bin_secs: 0,
                    ..Default::default()
                },
            ),
            (
                "min_pattern_packets",
                DetectorConfig {
                    min_pattern_packets: f64::NAN,
                    ..Default::default()
                },
            ),
            (
                "magnitude_window_bins",
                DetectorConfig {
                    magnitude_window_bins: 0,
                    ..Default::default()
                },
            ),
            (
                "sanitize_max_rtt_ms",
                DetectorConfig {
                    sanitize_max_rtt_ms: 0.0,
                    ..Default::default()
                },
            ),
            (
                "sanitize_max_inversion_ms",
                DetectorConfig {
                    sanitize_max_inversion_ms: f64::NAN,
                    ..Default::default()
                },
            ),
            (
                "sanitize_max_hops",
                DetectorConfig {
                    sanitize_max_hops: 0,
                    ..Default::default()
                },
            ),
            (
                "event_threshold",
                DetectorConfig {
                    event_threshold: f64::NAN,
                    ..Default::default()
                },
            ),
            (
                "event_threshold",
                DetectorConfig {
                    event_threshold: 0.0,
                    ..Default::default()
                },
            ),
            (
                "event_gap_bins",
                DetectorConfig {
                    event_gap_bins: 1000,
                    magnitude_window_bins: 24,
                    ..Default::default()
                },
            ),
            (
                "empathy_min_shared",
                DetectorConfig {
                    empathy_min_shared: 0,
                    ..Default::default()
                },
            ),
        ];
        for (knob, cfg) in cases {
            let err = cfg.validate().expect_err(knob);
            assert!(
                err.contains(knob),
                "error for {knob} must name the knob, got: {err}"
            );
            assert!(
                err.contains("expected"),
                "error for {knob} must state the accepted range, got: {err}"
            );
        }
    }

    #[test]
    fn auto_throughput_knobs_are_accepted() {
        // 0 is the documented "auto" for every throughput knob.
        let cfg = DetectorConfig {
            threads: 0,
            ingest_chunk_records: 0,
            pipeline_depth: 0,
            radix_min_keys: 0,
            ..Default::default()
        };
        cfg.validate().unwrap();
        // And the radix extremes — always-radix and never-radix — are
        // both legal: the knob only moves work between two sorts that
        // produce identical output.
        for radix_min_keys in [1, usize::MAX] {
            DetectorConfig {
                radix_min_keys,
                ..Default::default()
            }
            .validate()
            .unwrap();
        }
    }
}
