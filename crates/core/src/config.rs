//! Detector parameters, with the paper's defaults.

/// All tunable parameters of the detection pipeline.
///
/// Defaults reproduce the paper's configuration (see DESIGN.md §6 for the
/// sourcing table). Everything is plain data so experiments can sweep any
/// knob.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Analysis bin length in seconds (paper: 1 hour).
    pub bin_secs: u64,
    /// Normal critical value for the Wilson score (paper: 1.96 → 95 %).
    pub wilson_z: f64,
    /// Minimum number of distinct probe ASes per link (paper: 3).
    pub min_as_diversity: usize,
    /// Normalized-entropy threshold for probe-per-AS balance (paper: 0.5).
    pub entropy_threshold: f64,
    /// Minimum gap between observed and reference median to report (paper:
    /// 1 ms — "although statistically meaningful, these small anomalies are
    /// less relevant").
    pub min_median_gap_ms: f64,
    /// Exponential smoothing factor for references (paper: "a small α";
    /// 0.01 matches the published implementation's order of magnitude).
    pub alpha: f64,
    /// Number of warm-up bins before a link's reference is trusted
    /// (paper: m̄₀ = median of the first three medians).
    pub warmup_bins: usize,
    /// Correlation threshold τ for forwarding anomalies (paper: −0.25).
    pub forwarding_tau: f64,
    /// Minimum packets per (router, destination) pattern before it is
    /// compared (guards against correlating two packets).
    pub min_pattern_packets: f64,
    /// Bins a forwarding reference may go unseen before it is evicted —
    /// (router, destination) pairs churn constantly in real traceroute
    /// feeds (targets retire, paths move), and without eviction the
    /// reference maps grow without bound. One week of hourly bins by
    /// default, matching the magnitude window.
    pub reference_expiry_bins: usize,
    /// Sliding window length for the magnitude metric, in bins (paper: one
    /// week of hourly bins).
    pub magnitude_window_bins: usize,
    /// Seed for the (rare) random choices, e.g. entropy rebalancing.
    pub seed: u64,
    /// Records per scatter chunk for the chunked parallel ingestion
    /// front-end: each bin's records are split into chunks of this size,
    /// scattered in parallel on the engine pool, and re-concatenated in
    /// chunk order — so this is purely a throughput/latency knob; output
    /// is byte-identical for any value. `0` (the default) picks
    /// `ingest::DEFAULT_CHUNK_RECORDS`.
    pub ingest_chunk_records: usize,
    /// Worker threads for the per-bin link engine: `0` means "use all
    /// available cores". Results are byte-identical for any value — the
    /// engine's randomness is derived per (seed, link, bin) and its output
    /// totally ordered — so this is purely a throughput knob.
    pub threads: usize,
    /// Depth of the cross-bin pipelined executor
    /// (`Analyzer::pipelined` / `StreamRouter::pipelined`): `1` runs
    /// bins strictly serially, `2` overlaps bin *n+1*'s scatter chunks
    /// with bin *n*'s shard jobs on one worker herd, `0` (the default)
    /// picks the engine default (2). Values above 2 clamp to 2 — the
    /// serial merge fences every bin, so deeper pipelines buy nothing.
    /// Purely a throughput knob; output is byte-identical for any value.
    pub pipeline_depth: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            bin_secs: 3600,
            wilson_z: 1.96,
            min_as_diversity: 3,
            entropy_threshold: 0.5,
            min_median_gap_ms: 1.0,
            alpha: 0.01,
            warmup_bins: 3,
            forwarding_tau: -0.25,
            min_pattern_packets: 9.0,
            reference_expiry_bins: 7 * 24,
            magnitude_window_bins: 7 * 24,
            seed: 0xF0_07,
            ingest_chunk_records: 0,
            threads: 0,
            pipeline_depth: 0,
        }
    }
}

impl DetectorConfig {
    /// Resolved engine worker count: `threads`, or every available core
    /// when it is `0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// A configuration suited to short unit-test scenarios: faster-moving
    /// references and a short magnitude window.
    pub fn fast_test() -> Self {
        DetectorConfig {
            alpha: 0.1,
            magnitude_window_bins: 24,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DetectorConfig::default();
        assert_eq!(c.bin_secs, 3600);
        assert_eq!(c.wilson_z, 1.96);
        assert_eq!(c.min_as_diversity, 3);
        assert_eq!(c.entropy_threshold, 0.5);
        assert_eq!(c.min_median_gap_ms, 1.0);
        assert_eq!(c.forwarding_tau, -0.25);
        assert_eq!(c.reference_expiry_bins, 168);
        assert_eq!(c.magnitude_window_bins, 168);
        assert_eq!(c.warmup_bins, 3);
        assert_eq!(c.threads, 0, "default engine uses every core");
        assert_eq!(c.ingest_chunk_records, 0, "default chunk size is auto");
        assert_eq!(c.pipeline_depth, 0, "default pipeline depth is auto");
    }
}
