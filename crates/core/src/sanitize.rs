//! Record sanitizer: the quarantine gate in front of both detectors.
//!
//! Real Atlas feeds are riddled with measurement artifacts — false links
//! and loops from per-flow load balancing, wrong-hop ICMP attribution,
//! duplicated hops, bogus RTTs. The detectors' medians absorb a lot of
//! this, but structurally broken records (loops, impossible RTTs) bias
//! link extraction itself, so they are *quarantined* — dropped before
//! scatter — rather than passed through. Records with a benignly
//! repairable defect (a duplicated adjacent hop) are *repaired* in place
//! and kept.
//!
//! The contract, in wave-model terms: [`Sanitizer::sanitize`] is a pure
//! per-record function applied **once per record slice, serially, before
//! the scatter wave is built** — in `Analyzer::open_scatter`,
//! `Analyzer::ingest`, the pipelined `overlap_wave`, and the sequential
//! reference path alike. Because the verdict for a record depends only on
//! that record and the config, the sanitized sequence is independent of
//! thread count, chunk size, and pipeline depth; downstream byte-for-byte
//! report parity is preserved by construction (and re-proven by
//! `tests/robustness.rs` over hostile feeds).
//!
//! What is checked, in order (first hit wins):
//!
//! 1. **Too many hops** — more than `sanitize_max_hops`: quarantine.
//! 2. **Impossible RTT** — any responsive reply with a non-finite,
//!    negative, or > `sanitize_max_rtt_ms` RTT: quarantine.
//! 3. **Duplicate-hop collapse** — adjacent hops answered by the same
//!    router (re-announced TTL): the later copy is removed — **repair**.
//! 4. **Loop** — the same responder at non-adjacent hops after collapse:
//!    quarantine (per-flow load-balancer artifact, would fabricate
//!    false links).
//! 5. **Gross RTT inversion** — an adjacent responsive pair whose
//!    min-RTTs *decrease* by more than `sanitize_max_inversion_ms`:
//!    quarantine. Mild inversions are legitimate (reverse-path
//!    asymmetry, Challenge 1 of the paper), so the threshold is
//!    deliberately generous.
//!
//! Constant per-probe clock skew is deliberately **not** detected here:
//! differential RTTs subtract the near hop's RTT from the far hop's, so
//! a constant offset cancels — the paper-faithful defense is the method
//! itself, not a filter.
//!
//! Counters land in [`SanitizeStats`], surfaced through
//! `Analyzer::sanitize_stats` / `StreamRouter::sanitize_stats` exactly
//! like `ingest_stats`.

use crate::config::DetectorConfig;
use pinpoint_model::records::{Hop, TracerouteRecord};
use std::net::Ipv4Addr;

/// Why a record was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quarantine {
    /// The same responder appeared at non-adjacent hops.
    Loop,
    /// A responsive reply carried a non-finite, negative, or absurdly
    /// large RTT.
    ImpossibleRtt,
    /// Adjacent min-RTTs decreased by more than the configured bound.
    RttInversion,
    /// More hops than any real traceroute produces.
    TooManyHops,
}

/// The sanitizer's judgement on one record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Verdict {
    /// Structurally sound: pass through untouched.
    Clean,
    /// Defective but repairable: the fixed copy to use instead.
    Repaired(TracerouteRecord),
    /// Structurally broken: drop, with the reason.
    Quarantined(Quarantine),
}

/// Per-bin and cumulative sanitizer counters, the `IngestStats` shape:
/// `bin_*` fields reset at every `begin_bin`, the rest accumulate over
/// the analyzer's lifetime. Fleet totals fold with
/// [`SanitizeStats::merged`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SanitizeStats {
    /// Records inspected in the most recent bin.
    pub bin_records: u64,
    /// Records quarantined in the most recent bin.
    pub bin_quarantined: u64,
    /// Records repaired in the most recent bin.
    pub bin_repaired: u64,
    /// Cumulative records inspected.
    pub records: u64,
    /// Cumulative quarantines: traceroute loops.
    pub quarantined_loops: u64,
    /// Cumulative quarantines: impossible RTT values.
    pub quarantined_rtt: u64,
    /// Cumulative quarantines: gross adjacent RTT inversions.
    pub quarantined_inversions: u64,
    /// Cumulative quarantines: hop-count overflow.
    pub quarantined_hops: u64,
    /// Cumulative repairs (duplicate-hop collapses).
    pub repaired: u64,
}

impl SanitizeStats {
    /// Total cumulative quarantines across all reasons.
    pub fn quarantined(&self) -> u64 {
        self.quarantined_loops
            + self.quarantined_rtt
            + self.quarantined_inversions
            + self.quarantined_hops
    }

    /// Sum two stat sets (e.g. every stream of a fleet).
    pub fn merged(self, other: SanitizeStats) -> SanitizeStats {
        SanitizeStats {
            bin_records: self.bin_records + other.bin_records,
            bin_quarantined: self.bin_quarantined + other.bin_quarantined,
            bin_repaired: self.bin_repaired + other.bin_repaired,
            records: self.records + other.records,
            quarantined_loops: self.quarantined_loops + other.quarantined_loops,
            quarantined_rtt: self.quarantined_rtt + other.quarantined_rtt,
            quarantined_inversions: self.quarantined_inversions + other.quarantined_inversions,
            quarantined_hops: self.quarantined_hops + other.quarantined_hops,
            repaired: self.repaired + other.repaired,
        }
    }
}

/// Smallest finite RTT among a hop's responsive replies.
fn min_rtt(hop: &Hop) -> Option<f64> {
    hop.replies
        .iter()
        .filter(|r| r.is_responsive())
        .filter_map(|r| r.rtt_ms)
        .filter(|r| r.is_finite())
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.min(r)))
        })
}

/// Judge one record against the config's sanitize knobs. Pure: the
/// verdict depends only on `(rec, cfg)`, which is what makes sanitizing
/// invisible to the thread/chunk/depth parity contract.
pub(crate) fn inspect(rec: &TracerouteRecord, cfg: &DetectorConfig) -> Verdict {
    if rec.hops.len() > cfg.sanitize_max_hops {
        return Verdict::Quarantined(Quarantine::TooManyHops);
    }
    for hop in &rec.hops {
        for reply in &hop.replies {
            if !reply.is_responsive() {
                continue;
            }
            if let Some(rtt) = reply.rtt_ms {
                if !rtt.is_finite() || rtt < 0.0 || rtt > cfg.sanitize_max_rtt_ms {
                    return Verdict::Quarantined(Quarantine::ImpossibleRtt);
                }
            }
        }
    }

    // Collapse runs of adjacent hops answered by the same router (the
    // duplicated-hop artifact), keeping the first copy of each run.
    let mut collapsed: Vec<usize> = Vec::with_capacity(rec.hops.len());
    for (i, hop) in rec.hops.iter().enumerate() {
        if let Some(&prev) = collapsed.last() {
            if let (Some(a), Some(b)) = (rec.hops[prev].first_responder(), hop.first_responder()) {
                if a == b {
                    continue;
                }
            }
        }
        collapsed.push(i);
    }
    let removed = rec.hops.len() - collapsed.len();

    // Loop check on the collapsed path: any responder still appearing
    // twice is a genuine loop, not a re-announced TTL.
    let responders: Vec<Ipv4Addr> = collapsed
        .iter()
        .filter_map(|&i| rec.hops[i].first_responder())
        .collect();
    for (i, a) in responders.iter().enumerate() {
        if responders[i + 1..].contains(a) {
            return Verdict::Quarantined(Quarantine::Loop);
        }
    }

    // Gross min-RTT inversion between adjacent responsive hops; an
    // unresponsive hop breaks the comparison chain.
    let mut prev_min: Option<f64> = None;
    for &i in &collapsed {
        let hop = &rec.hops[i];
        if hop.is_unresponsive() {
            prev_min = None;
            continue;
        }
        let here = min_rtt(hop);
        if let (Some(near), Some(far)) = (prev_min, here) {
            if near > far + cfg.sanitize_max_inversion_ms {
                return Verdict::Quarantined(Quarantine::RttInversion);
            }
        }
        if here.is_some() {
            prev_min = here;
        }
    }

    if removed == 0 {
        return Verdict::Clean;
    }
    let mut repaired = rec.clone();
    repaired.hops = collapsed.into_iter().map(|i| rec.hops[i].clone()).collect();
    Verdict::Repaired(repaired)
}

/// The per-analyzer sanitizer: counters plus a reusable buffer for the
/// slow path. Lives next to the detectors inside `Analyzer` and is
/// driven from every ingestion entry point.
#[derive(Debug, Default)]
pub(crate) struct Sanitizer {
    stats: SanitizeStats,
    buf: Vec<TracerouteRecord>,
}

impl Sanitizer {
    /// Reset the per-bin counters (cumulative ones persist).
    pub(crate) fn begin_bin(&mut self) {
        self.stats.bin_records = 0;
        self.stats.bin_quarantined = 0;
        self.stats.bin_repaired = 0;
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> SanitizeStats {
        self.stats
    }

    /// Rebuild a sanitizer carrying restored cumulative counters (the
    /// snapshot path; the record buffer is per-bin scratch).
    pub(crate) fn from_stats(stats: SanitizeStats) -> Self {
        Sanitizer {
            stats,
            buf: Vec::new(),
        }
    }

    /// Sanitize one record slice. The fast path — every record clean,
    /// the overwhelmingly common case on a healthy feed — returns the
    /// input slice itself: zero copies, one read-only pass. Otherwise
    /// the surviving records are gathered into an internal buffer that
    /// stays valid until the next `sanitize` call (by which time the
    /// previous slice's rows have been scattered into the arenas).
    pub(crate) fn sanitize<'a>(
        &'a mut self,
        records: &'a [TracerouteRecord],
        cfg: &DetectorConfig,
    ) -> &'a [TracerouteRecord] {
        self.stats.bin_records += records.len() as u64;
        self.stats.records += records.len() as u64;
        if !cfg.sanitize {
            return records;
        }
        let Some(first) = records
            .iter()
            .position(|r| !matches!(inspect(r, cfg), Verdict::Clean))
        else {
            return records;
        };
        self.buf.clear();
        self.buf.extend_from_slice(&records[..first]);
        for rec in &records[first..] {
            match inspect(rec, cfg) {
                Verdict::Clean => self.buf.push(rec.clone()),
                Verdict::Repaired(fixed) => {
                    self.stats.bin_repaired += 1;
                    self.stats.repaired += 1;
                    self.buf.push(fixed);
                }
                Verdict::Quarantined(reason) => {
                    self.stats.bin_quarantined += 1;
                    match reason {
                        Quarantine::Loop => self.stats.quarantined_loops += 1,
                        Quarantine::ImpossibleRtt => self.stats.quarantined_rtt += 1,
                        Quarantine::RttInversion => self.stats.quarantined_inversions += 1,
                        Quarantine::TooManyHops => self.stats.quarantined_hops += 1,
                    }
                }
            }
        }
        &self.buf
    }
}

/// One-shot convenience: sanitize a slice into an owned vector and
/// return the surviving records with the counters. For harnesses and
/// benches; the analyzer itself uses the zero-copy [`Sanitizer`].
pub fn sanitize_records(
    records: &[TracerouteRecord],
    cfg: &DetectorConfig,
) -> (Vec<TracerouteRecord>, SanitizeStats) {
    let mut s = Sanitizer::default();
    s.begin_bin();
    let clean = s.sanitize(records, cfg).to_vec();
    (clean, s.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::Reply;
    use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn record(hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(1),
            probe_asn: Asn(64500),
            dst: ip("10.9.9.9"),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, addr: &str, rtt: f64) -> Hop {
        Hop::new(ttl, vec![Reply::new(ip(addr), rtt); 3])
    }

    fn clean_record() -> TracerouteRecord {
        record(vec![
            hop(1, "10.0.0.1", 1.0),
            hop(2, "10.0.0.2", 5.0),
            hop(3, "10.0.0.3", 9.0),
        ])
    }

    #[test]
    fn clean_records_pass_through_zero_copy() {
        let cfg = DetectorConfig::default();
        let records = vec![clean_record(); 4];
        let mut s = Sanitizer::default();
        s.begin_bin();
        let out = s.sanitize(&records, &cfg);
        assert_eq!(out.len(), 4);
        assert!(
            std::ptr::eq(out.as_ptr(), records.as_ptr()),
            "fast path must not copy"
        );
        let st = s.stats();
        assert_eq!(st.bin_records, 4);
        assert_eq!(st.quarantined(), 0);
        assert_eq!(st.repaired, 0);
    }

    #[test]
    fn loops_are_quarantined() {
        let cfg = DetectorConfig::default();
        let rec = record(vec![
            hop(1, "10.0.0.1", 1.0),
            hop(2, "10.0.0.2", 5.0),
            hop(3, "10.0.0.1", 9.0),
        ]);
        assert_eq!(inspect(&rec, &cfg), Verdict::Quarantined(Quarantine::Loop));
    }

    #[test]
    fn impossible_rtts_are_quarantined() {
        let cfg = DetectorConfig::default();
        for bad in [
            f64::NAN,
            f64::INFINITY,
            -3.0,
            1e300,
            cfg.sanitize_max_rtt_ms * 2.0,
        ] {
            let mut rec = clean_record();
            rec.hops[1].replies[2] = Reply::new(ip("10.0.0.2"), bad);
            assert_eq!(
                inspect(&rec, &cfg),
                Verdict::Quarantined(Quarantine::ImpossibleRtt),
                "rtt {bad} must quarantine"
            );
        }
    }

    #[test]
    fn gross_inversions_quarantine_but_mild_ones_pass() {
        let cfg = DetectorConfig::default();
        // Mild inversion (reverse-path asymmetry): fine.
        let rec = record(vec![hop(1, "10.0.0.1", 40.0), hop(2, "10.0.0.2", 10.0)]);
        assert_eq!(inspect(&rec, &cfg), Verdict::Clean);
        // Gross inversion: quarantined.
        let rec = record(vec![
            hop(1, "10.0.0.1", 40.0 + cfg.sanitize_max_inversion_ms * 2.0),
            hop(2, "10.0.0.2", 10.0),
        ]);
        assert_eq!(
            inspect(&rec, &cfg),
            Verdict::Quarantined(Quarantine::RttInversion)
        );
        // An unresponsive hop breaks the comparison chain.
        let rec = record(vec![
            hop(1, "10.0.0.1", 40.0 + cfg.sanitize_max_inversion_ms * 2.0),
            Hop::new(2, vec![Reply::TIMEOUT; 3]),
            hop(3, "10.0.0.2", 10.0),
        ]);
        assert_eq!(inspect(&rec, &cfg), Verdict::Clean);
    }

    #[test]
    fn adjacent_duplicate_hops_are_collapsed() {
        let cfg = DetectorConfig::default();
        let rec = record(vec![
            hop(1, "10.0.0.1", 1.0),
            hop(2, "10.0.0.1", 1.3), // re-announced TTL: duplicate
            hop(2, "10.0.0.2", 5.0),
            hop(3, "10.0.0.3", 9.0),
        ]);
        let Verdict::Repaired(fixed) = inspect(&rec, &cfg) else {
            panic!("expected a repair");
        };
        assert_eq!(fixed.hops.len(), 3);
        assert_eq!(fixed.hops[0].first_responder(), Some(ip("10.0.0.1")));
        assert_eq!(
            fixed.hops[0].replies[0].rtt_ms,
            Some(1.0),
            "keep the first copy"
        );
        assert_eq!(fixed.hops[1].first_responder(), Some(ip("10.0.0.2")));
    }

    #[test]
    fn hop_count_overflow_is_quarantined() {
        let cfg = DetectorConfig::default();
        let hops: Vec<Hop> = (0..=cfg.sanitize_max_hops as u32)
            .map(|i| {
                Hop::new(
                    (i % 250) as u8,
                    vec![Reply::new(
                        Ipv4Addr::new(10, 1, (i / 250) as u8, (i % 250) as u8),
                        1.0 + i as f64 * 0.01,
                    )],
                )
            })
            .collect();
        let rec = record(hops);
        assert_eq!(
            inspect(&rec, &cfg),
            Verdict::Quarantined(Quarantine::TooManyHops)
        );
    }

    #[test]
    fn disabled_sanitizer_passes_everything() {
        let cfg = DetectorConfig {
            sanitize: false,
            ..DetectorConfig::default()
        };
        let rec = record(vec![hop(1, "10.0.0.1", -1.0)]);
        let (out, stats) = sanitize_records(std::slice::from_ref(&rec), &cfg);
        assert_eq!(out, vec![rec]);
        assert_eq!(stats.quarantined(), 0);
        assert_eq!(stats.records, 1);
    }

    #[test]
    fn mixed_slice_counts_every_reason() {
        let cfg = DetectorConfig::default();
        let looped = record(vec![
            hop(1, "10.0.0.1", 1.0),
            hop(2, "10.0.0.2", 5.0),
            hop(3, "10.0.0.1", 9.0),
        ]);
        let mut bad_rtt = clean_record();
        bad_rtt.hops[0].replies[0] = Reply::new(ip("10.0.0.1"), -1.0);
        let dup = record(vec![
            hop(1, "10.0.0.1", 1.0),
            hop(2, "10.0.0.1", 1.2),
            hop(3, "10.0.0.2", 5.0),
        ]);
        let records = vec![clean_record(), looped, bad_rtt, dup, clean_record()];
        let (out, stats) = sanitize_records(&records, &cfg);
        assert_eq!(out.len(), 3, "two quarantined, repaired one kept");
        assert_eq!(stats.records, 5);
        assert_eq!(stats.quarantined_loops, 1);
        assert_eq!(stats.quarantined_rtt, 1);
        assert_eq!(stats.repaired, 1);
        assert_eq!(stats.bin_quarantined, 2);
        assert_eq!(stats.bin_repaired, 1);
        assert_eq!(out[1].hops.len(), 2, "repaired record collapsed");
    }

    #[test]
    fn stats_merge_sums_fields() {
        let a = SanitizeStats {
            records: 10,
            quarantined_loops: 2,
            repaired: 1,
            ..SanitizeStats::default()
        };
        let b = SanitizeStats {
            records: 5,
            quarantined_rtt: 3,
            ..SanitizeStats::default()
        };
        let m = a.merged(b);
        assert_eq!(m.records, 15);
        assert_eq!(m.quarantined(), 5);
        assert_eq!(m.repaired, 1);
    }
}
