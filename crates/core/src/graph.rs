//! The alarm graph and its connected components (Fig. 8 / Fig. 12).
//!
//! "We create a graph, where nodes are IP addresses and links are alarms
//! generated from differential RTTs between these IP addresses. Starting
//! from the K-root server, we see alarms with common IP addresses, and
//! obtain a connected component of all alarms connected to the K-root
//! server" (§7.1). Nodes touched by forwarding anomalies are flagged, as in
//! Fig. 12's red nodes.
//!
//! Components are computed with a union-find over alarm edges.

use crate::diffrtt::DelayAlarm;
use crate::forwarding::{ForwardingAlarm, NextHop};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// An edge of the alarm graph.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmEdge {
    /// One endpoint.
    pub a: Ipv4Addr,
    /// Other endpoint.
    pub b: Ipv4Addr,
    /// |observed median − reference median| in ms — the Fig. 12 edge label.
    pub median_shift_ms: f64,
    /// The deviation d(Δ) of the strongest alarm on this pair.
    pub deviation: f64,
    /// Streams whose alarms contributed to this edge. A union graph
    /// merges duplicate cross-stream pairs into one edge but must not
    /// lose *who saw it* — the set accumulates across duplicates even
    /// when the weaker alarm's deviation is discarded. Solo graphs
    /// carry `{0}`.
    pub streams: BTreeSet<usize>,
}

/// A connected component of alarms.
#[derive(Debug, Clone, Default)]
pub struct Component {
    /// Member addresses.
    pub nodes: BTreeSet<Ipv4Addr>,
    /// Alarm edges inside the component.
    pub edges: Vec<AlarmEdge>,
    /// Addresses also implicated in forwarding anomalies (Fig. 12's red).
    pub forwarding_flagged: BTreeSet<Ipv4Addr>,
    /// Streams whose alarms contributed to any member edge or flag.
    pub streams: BTreeSet<usize>,
}

impl Component {
    /// Whether the component contains an address.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.nodes.contains(&addr)
    }

    /// Node degree within the component.
    pub fn degree(&self, addr: Ipv4Addr) -> usize {
        self.edges
            .iter()
            .filter(|e| e.a == addr || e.b == addr)
            .count()
    }
}

/// Union-find over IP addresses.
#[derive(Debug, Default)]
struct UnionFind {
    parent: HashMap<Ipv4Addr, Ipv4Addr>,
}

impl UnionFind {
    fn find(&mut self, x: Ipv4Addr) -> Ipv4Addr {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: Ipv4Addr, b: Ipv4Addr) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// The alarm graph of one (or several merged) bins.
#[derive(Debug, Default)]
pub struct AlarmGraph {
    edges: Vec<AlarmEdge>,
    forwarding_flagged: BTreeSet<Ipv4Addr>,
    /// Per-address stream provenance of forwarding flags (edge
    /// provenance lives on the edges themselves).
    flag_streams: BTreeMap<Ipv4Addr, BTreeSet<usize>>,
}

impl AlarmGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add delay alarms as edges with stream provenance `0` — the solo
    /// (single-stream) graph.
    pub fn add_delay_alarms(&mut self, alarms: &[DelayAlarm]) {
        self.add_stream_delay_alarms(0, alarms);
    }

    /// Add one stream's delay alarms as edges. Duplicate pairs keep the
    /// strongest alarm's deviation but accumulate every contributing
    /// stream, so a union graph never silently collapses cross-stream
    /// evidence.
    pub fn add_stream_delay_alarms(&mut self, stream: usize, alarms: &[DelayAlarm]) {
        for alarm in alarms {
            let canon = alarm.link.canonical();
            let shift = alarm.median_shift_ms();
            match self
                .edges
                .iter_mut()
                .find(|e| e.a == canon.near && e.b == canon.far)
            {
                Some(existing) => {
                    existing.streams.insert(stream);
                    if existing.deviation < alarm.deviation {
                        existing.deviation = alarm.deviation;
                        existing.median_shift_ms = shift;
                    }
                }
                None => self.edges.push(AlarmEdge {
                    a: canon.near,
                    b: canon.far,
                    median_shift_ms: shift,
                    deviation: alarm.deviation,
                    streams: BTreeSet::from([stream]),
                }),
            }
        }
    }

    /// Flag addresses implicated in forwarding anomalies with stream
    /// provenance `0` — the solo (single-stream) graph.
    pub fn add_forwarding_alarms(&mut self, alarms: &[ForwardingAlarm]) {
        self.add_stream_forwarding_alarms(0, alarms);
    }

    /// Flag one stream's forwarding anomalies: the modeled router and
    /// every reported (responsive) next hop, each tagged with the
    /// contributing stream.
    pub fn add_stream_forwarding_alarms(&mut self, stream: usize, alarms: &[ForwardingAlarm]) {
        let mut flag = |addr: Ipv4Addr| {
            self.forwarding_flagged.insert(addr);
            self.flag_streams.entry(addr).or_default().insert(stream);
        };
        for alarm in alarms {
            flag(alarm.router);
            for (hop, _) in &alarm.responsibilities {
                if let NextHop::Ip(addr) = hop {
                    flag(*addr);
                }
            }
        }
    }

    /// Streams that forwarding-flagged an address (empty set = never
    /// flagged).
    pub fn flag_streams(&self, addr: Ipv4Addr) -> BTreeSet<usize> {
        self.flag_streams.get(&addr).cloned().unwrap_or_default()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Every delay edge (duplicate pairs already collapsed to the
    /// strongest alarm), in first-seen order.
    pub fn edges(&self) -> &[AlarmEdge] {
        &self.edges
    }

    /// Every forwarding-flagged router — including ones that touch no
    /// delay edge and therefore appear in no [`AlarmGraph::components`]
    /// entry.
    pub fn forwarding_flagged(&self) -> &BTreeSet<Ipv4Addr> {
        &self.forwarding_flagged
    }

    /// All connected components, largest first.
    pub fn components(&self) -> Vec<Component> {
        let mut uf = UnionFind::default();
        for e in &self.edges {
            uf.union(e.a, e.b);
        }
        let mut by_root: BTreeMap<Ipv4Addr, Component> = BTreeMap::new();
        for e in &self.edges {
            let root = uf.find(e.a);
            let comp = by_root.entry(root).or_default();
            comp.nodes.insert(e.a);
            comp.nodes.insert(e.b);
            comp.streams.extend(e.streams.iter().copied());
            comp.edges.push(e.clone());
        }
        let mut comps: Vec<Component> = by_root.into_values().collect();
        for c in &mut comps {
            c.forwarding_flagged = c
                .nodes
                .intersection(&self.forwarding_flagged)
                .copied()
                .collect();
            for addr in &c.forwarding_flagged {
                if let Some(streams) = self.flag_streams.get(addr) {
                    c.streams.extend(streams.iter().copied());
                }
            }
        }
        comps.sort_by_key(|c| std::cmp::Reverse(c.nodes.len()));
        comps
    }

    /// The component containing `addr`, if any — e.g. "the connected
    /// component involving K-root" of Fig. 8.
    pub fn component_of(&self, addr: Ipv4Addr) -> Option<Component> {
        self.components().into_iter().find(|c| c.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffrtt::detect::Direction;
    use pinpoint_model::{BinId, IpLink};
    use pinpoint_stats::wilson::ConfidenceInterval;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn alarm(a: &str, b: &str, dev: f64, shift: f64) -> DelayAlarm {
        DelayAlarm {
            link: IpLink::new(ip(a), ip(b)),
            bin: BinId(0),
            observed: ConfidenceInterval::new(shift, shift + 1.0, shift + 2.0, 10),
            reference: ConfidenceInterval::new(0.0, 1.0, 2.0, 0),
            deviation: dev,
            direction: Direction::Increase,
        }
    }

    #[test]
    fn components_partition_alarms() {
        let mut g = AlarmGraph::new();
        g.add_delay_alarms(&[
            alarm("10.0.0.1", "10.0.0.2", 5.0, 10.0),
            alarm("10.0.0.2", "10.0.0.3", 3.0, 8.0),
            alarm("10.9.0.1", "10.9.0.2", 2.0, 4.0),
        ]);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].nodes.len(), 3);
        assert_eq!(comps[1].nodes.len(), 2);
        assert!(comps[0].contains(ip("10.0.0.3")));
        assert!(!comps[0].contains(ip("10.9.0.1")));
    }

    #[test]
    fn component_of_follows_kroot_style_query() {
        let mut g = AlarmGraph::new();
        let kroot = "193.0.14.129";
        g.add_delay_alarms(&[
            alarm(kroot, "80.81.192.154", 9.0, 15.0),
            alarm("80.81.192.154", "72.52.92.14", 4.0, 12.0),
            alarm("1.2.3.4", "5.6.7.8", 1.5, 3.0),
        ]);
        let comp = g.component_of(ip(kroot)).unwrap();
        assert_eq!(comp.nodes.len(), 3);
        assert_eq!(comp.degree(ip("80.81.192.154")), 2);
        assert!(g.component_of(ip("9.9.9.9")).is_none());
    }

    #[test]
    fn duplicate_edges_keep_strongest() {
        let mut g = AlarmGraph::new();
        g.add_delay_alarms(&[
            alarm("10.0.0.1", "10.0.0.2", 2.0, 5.0),
            // Same pair, reversed direction, stronger.
            alarm("10.0.0.2", "10.0.0.1", 7.0, 20.0),
            // Same pair, weaker — ignored.
            alarm("10.0.0.1", "10.0.0.2", 1.0, 2.0),
        ]);
        assert_eq!(g.edge_count(), 1);
        let comps = g.components();
        assert_eq!(comps[0].edges[0].deviation, 7.0);
        assert_eq!(comps[0].edges[0].median_shift_ms, 20.0);
    }

    #[test]
    fn forwarding_flags_intersect_components() {
        let mut g = AlarmGraph::new();
        g.add_delay_alarms(&[alarm("10.0.0.1", "10.0.0.2", 5.0, 10.0)]);
        g.add_forwarding_alarms(&[ForwardingAlarm {
            router: ip("10.0.0.2"),
            dst: ip("198.51.100.1"),
            bin: BinId(0),
            rho: -0.5,
            responsibilities: vec![
                (crate::forwarding::NextHop::Ip(ip("10.0.0.3")), -0.4),
                (crate::forwarding::NextHop::Unresponsive, 0.4),
            ],
        }]);
        let comp = g.component_of(ip("10.0.0.1")).unwrap();
        // 10.0.0.2 is in the component and flagged; 10.0.0.3 is flagged but
        // outside the delay component.
        assert!(comp.forwarding_flagged.contains(&ip("10.0.0.2")));
        assert!(!comp.forwarding_flagged.contains(&ip("10.0.0.3")));
    }

    #[test]
    fn duplicate_cross_stream_edges_keep_per_stream_provenance() {
        // Regression: the union graph used to collapse the same link
        // alarmed by two streams into one edge with no record of who saw
        // it — "affecting whom" membership was silently lossy.
        let mut g = AlarmGraph::new();
        g.add_stream_delay_alarms(0, &[alarm("10.0.0.1", "10.0.0.2", 2.0, 5.0)]);
        g.add_stream_delay_alarms(1, &[alarm("10.0.0.2", "10.0.0.1", 7.0, 20.0)]);
        g.add_stream_delay_alarms(2, &[alarm("10.0.0.1", "10.0.0.2", 1.0, 2.0)]);
        assert_eq!(g.edge_count(), 1);
        let edge = &g.edges()[0];
        // Strongest alarm still wins the metrics…
        assert_eq!(edge.deviation, 7.0);
        assert_eq!(edge.median_shift_ms, 20.0);
        // …but every contributing stream is retained, including the one
        // whose weaker alarm lost the dedup.
        assert_eq!(edge.streams, BTreeSet::from([0, 1, 2]));
        let comps = g.components();
        assert_eq!(comps[0].streams, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn forwarding_flags_carry_stream_provenance() {
        let mut g = AlarmGraph::new();
        let fwd = |router: &str| ForwardingAlarm {
            router: ip(router),
            dst: ip("198.51.100.1"),
            bin: BinId(0),
            rho: -0.5,
            responsibilities: vec![(crate::forwarding::NextHop::Ip(ip("10.0.0.3")), -0.4)],
        };
        g.add_stream_forwarding_alarms(0, &[fwd("10.0.0.2")]);
        g.add_stream_forwarding_alarms(1, &[fwd("10.0.0.2")]);
        assert_eq!(g.flag_streams(ip("10.0.0.2")), BTreeSet::from([0, 1]));
        assert_eq!(g.flag_streams(ip("10.0.0.3")), BTreeSet::from([0, 1]));
        assert!(g.flag_streams(ip("9.9.9.9")).is_empty());
    }

    #[test]
    fn empty_graph_behaves() {
        let g = AlarmGraph::new();
        assert!(g.components().is_empty());
        assert!(g.component_of(ip("1.1.1.1")).is_none());
        assert_eq!(g.edge_count(), 0);
    }
}
