//! Forwarding-anomaly detection and next-hop identification (§5.2).
//!
//! A pattern F is anomalous when its Pearson correlation with the reference
//! F̄ (aligned over the union of next hops) falls below τ = −0.25. The per-
//! hop responsibility score (Eq. 9) then attributes the change:
//!
//! ```text
//! rᵢ = −ρ_{F,F̄} · (pᵢ − p̄ᵢ) / Σⱼ |pⱼ − p̄ⱼ|
//! ```
//!
//! positive rᵢ → hop newly receiving traffic; negative rᵢ → hop starved of
//! its usual packets (or dropping them).

use super::pattern::{NextHop, Pattern, PatternKey, PatternSlice};
use super::reference::PatternReference;
use crate::config::DetectorConfig;
use pinpoint_model::BinId;
use pinpoint_stats::correlation::pearson;
use std::fmt;

/// A reported forwarding anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardingAlarm {
    /// The router whose forwarding changed.
    pub router: std::net::Ipv4Addr,
    /// The traceroute destination the model is specific to.
    pub dst: std::net::Ipv4Addr,
    /// The bin of the anomaly.
    pub bin: BinId,
    /// Pearson correlation ρ(F, F̄) — below τ by construction.
    pub rho: f64,
    /// Responsibility per next hop, most negative first.
    pub responsibilities: Vec<(NextHop, f64)>,
}

impl ForwardingAlarm {
    /// The hop with the most negative responsibility (the vanished /
    /// dropping hop), if any.
    pub fn most_devalued(&self) -> Option<&(NextHop, f64)> {
        self.responsibilities.first()
    }
}

impl fmt::Display for ForwardingAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "router {} → {} @{}: ρ={:.2}",
            self.router, self.dst, self.bin, self.rho
        )?;
        for (hop, r) in self.responsibilities.iter().take(4) {
            write!(f, " [{hop}: {r:+.2}]")?;
        }
        Ok(())
    }
}

/// An observed bin pattern, abstracted over its storage: the nested-map
/// [`Pattern`] of the reference path and the engine's flat
/// [`PatternSlice`] compare against references through the same code, so
/// the two paths cannot drift.
pub trait ObservedPattern {
    /// Packet count for a hop (0 if absent).
    fn packets(&self, hop: &NextHop) -> f64;
    /// Total packets.
    fn total_packets(&self) -> f64;
    /// Append every hop present to `out`.
    fn push_hops(&self, out: &mut Vec<NextHop>);
}

impl ObservedPattern for Pattern {
    fn packets(&self, hop: &NextHop) -> f64 {
        self.get(hop)
    }

    fn total_packets(&self) -> f64 {
        self.total()
    }

    fn push_hops(&self, out: &mut Vec<NextHop>) {
        out.extend(self.iter().map(|(h, _)| *h));
    }
}

impl ObservedPattern for PatternSlice<'_> {
    fn packets(&self, hop: &NextHop) -> f64 {
        self.get(hop)
    }

    fn total_packets(&self) -> f64 {
        self.total()
    }

    fn push_hops(&self, out: &mut Vec<NextHop>) {
        out.extend(self.iter().map(|(h, _)| h));
    }
}

/// Reusable alignment buffers: one per engine worker, so steady-state bins
/// run the check loop without allocating.
#[derive(Debug, Default)]
pub struct AlignScratch {
    hops: Vec<NextHop>,
    f: Vec<f64>,
    fbar: Vec<f64>,
}

impl AlignScratch {
    /// Align observed and reference over the sorted union of their hops.
    /// Sort + dedup of a `Vec` produces the identical hop order the
    /// original `BTreeSet` alignment did (ascending by `Ord`).
    fn align(&mut self, observed: &impl ObservedPattern, reference: &PatternReference) {
        self.hops.clear();
        observed.push_hops(&mut self.hops);
        self.hops.extend(reference.iter().map(|(h, _)| *h));
        self.hops.sort_unstable();
        self.hops.dedup();
        self.f.clear();
        self.fbar.clear();
        for h in &self.hops {
            self.f.push(observed.packets(h));
            self.fbar.push(reference.get(h));
        }
    }
}

/// Eq. 9 responsibility scores for an anomalous pattern.
pub fn responsibilities(
    hops: &[NextHop],
    f: &[f64],
    fbar: &[f64],
    rho: f64,
) -> Vec<(NextHop, f64)> {
    let denom: f64 = f.iter().zip(fbar).map(|(p, pb)| (p - pb).abs()).sum();
    if denom <= 0.0 {
        return Vec::new();
    }
    let mut out: Vec<(NextHop, f64)> = hops
        .iter()
        .zip(f.iter().zip(fbar))
        .map(|(h, (p, pb))| (*h, -rho * (p - pb) / denom))
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Compare one bin's pattern against its reference.
pub fn check(
    key: &PatternKey,
    bin: BinId,
    observed: &impl ObservedPattern,
    reference: &PatternReference,
    cfg: &DetectorConfig,
) -> Option<ForwardingAlarm> {
    check_with(
        &mut AlignScratch::default(),
        key,
        bin,
        observed,
        reference,
        cfg,
    )
}

/// [`check`] with caller-owned alignment buffers (the engine keeps one
/// [`AlignScratch`] per worker). Produces bit-identical results — the
/// scratch only recycles allocations.
pub fn check_with(
    scratch: &mut AlignScratch,
    key: &PatternKey,
    bin: BinId,
    observed: &impl ObservedPattern,
    reference: &PatternReference,
    cfg: &DetectorConfig,
) -> Option<ForwardingAlarm> {
    if !reference.is_ready() {
        return None;
    }
    if observed.total_packets() < cfg.min_pattern_packets {
        return None;
    }
    scratch.align(observed, reference);
    if scratch.hops.len() < 2 {
        return None; // correlation undefined on a single hop
    }
    let rho = pearson(&scratch.f, &scratch.fbar)?;
    if rho >= cfg.forwarding_tau {
        return None;
    }
    let responsibilities = responsibilities(&scratch.hops, &scratch.f, &scratch.fbar, rho);
    Some(ForwardingAlarm {
        router: key.router,
        dst: key.dst,
        bin,
        rho,
        responsibilities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pattern(spec: &[(&str, f64)], unresp: f64) -> Pattern {
        let mut p = Pattern::default();
        for (a, c) in spec {
            p.add(NextHop::Ip(ip(a)), *c);
        }
        if unresp > 0.0 {
            p.add(NextHop::Unresponsive, unresp);
        }
        p
    }

    fn reference(spec: &[(&str, f64)], unresp: f64) -> PatternReference {
        let mut r = PatternReference::new(&DetectorConfig::default());
        r.update(&pattern(spec, unresp));
        r
    }

    fn key() -> PatternKey {
        PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        }
    }

    #[test]
    fn stable_pattern_no_alarm() {
        let cfg = DetectorConfig::default();
        let r = reference(&[("10.0.1.1", 10.0), ("10.0.1.2", 100.0)], 5.0);
        let obs = pattern(&[("10.0.1.1", 11.0), ("10.0.1.2", 95.0)], 6.0);
        assert!(check(&key(), BinId(1), &obs, &r, &cfg).is_none());
    }

    #[test]
    fn figure4_scenario_detected_with_correct_attribution() {
        // Reference: A=10, B=100, Z=5. Anomalous: traffic leaves B for a
        // new hop C (paper Fig. 4).
        let cfg = DetectorConfig::default();
        let r = reference(&[("10.0.1.1", 10.0), ("10.0.1.2", 100.0)], 5.0);
        let obs = pattern(&[("10.0.1.1", 10.0), ("10.0.1.3", 50.0)], 15.0);
        let alarm = check(&key(), BinId(2), &obs, &r, &cfg).expect("anomaly");
        assert!(alarm.rho < -0.25);
        // B most devalued; C strongly positive; A near zero.
        let get = |a: &str| {
            alarm
                .responsibilities
                .iter()
                .find(|(h, _)| *h == NextHop::Ip(ip(a)))
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            get("10.0.1.2") < -0.1,
            "B not devalued: {}",
            get("10.0.1.2")
        );
        assert!(get("10.0.1.3") > 0.1, "C not promoted: {}", get("10.0.1.3"));
        assert!(
            get("10.0.1.1").abs() < 0.05,
            "A blamed: {}",
            get("10.0.1.1")
        );
        assert_eq!(
            alarm.most_devalued().unwrap().0,
            NextHop::Ip(ip("10.0.1.2"))
        );
    }

    #[test]
    fn packet_loss_blames_vanished_hop_and_credits_z() {
        // The AMS-IX signature: next hop B disappears, packets black-holed
        // (Z explodes). B gets negative responsibility, Z positive.
        let cfg = DetectorConfig::default();
        let r = reference(&[("80.81.192.1", 100.0)], 3.0);
        let obs = {
            let mut p = Pattern::default();
            p.add(NextHop::Unresponsive, 100.0);
            p.add(NextHop::Ip(ip("80.81.192.1")), 2.0);
            p
        };
        let alarm = check(&key(), BinId(3), &obs, &r, &cfg).expect("anomaly");
        let (hop, score) = alarm.most_devalued().unwrap();
        assert_eq!(*hop, NextHop::Ip(ip("80.81.192.1")));
        assert!(*score < -0.2);
        let z = alarm
            .responsibilities
            .iter()
            .find(|(h, _)| *h == NextHop::Unresponsive)
            .unwrap()
            .1;
        assert!(z > 0.2, "Z not credited: {z}");
    }

    #[test]
    fn responsibilities_sum_bounded() {
        // |Σ rᵢ| ≤ |ρ| and each |rᵢ| ≤ 1.
        let cfg = DetectorConfig::default();
        let r = reference(&[("10.0.1.1", 50.0), ("10.0.1.2", 50.0)], 0.0);
        let obs = pattern(&[("10.0.1.3", 80.0)], 20.0);
        let alarm = check(&key(), BinId(1), &obs, &r, &cfg).expect("anomaly");
        let total: f64 = alarm.responsibilities.iter().map(|(_, v)| v).sum();
        assert!(total.abs() <= alarm.rho.abs() + 1e-9);
        for (_, v) in &alarm.responsibilities {
            assert!(v.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn too_few_packets_suppressed() {
        let cfg = DetectorConfig::default();
        let r = reference(&[("10.0.1.1", 100.0)], 0.0);
        // Entirely flipped, but only 3 packets — below min_pattern_packets.
        let obs = pattern(&[("10.0.1.9", 3.0)], 0.0);
        assert!(check(&key(), BinId(1), &obs, &r, &cfg).is_none());
    }

    #[test]
    fn unwarmed_reference_never_alarms() {
        let cfg = DetectorConfig::default();
        let r = PatternReference::new(&cfg);
        let obs = pattern(&[("10.0.1.9", 100.0)], 0.0);
        assert!(check(&key(), BinId(0), &obs, &r, &cfg).is_none());
    }

    #[test]
    fn weak_anticorrelation_below_tau_required() {
        let cfg = DetectorConfig::default();
        // Mild shift: correlation stays positive → no alarm.
        let r = reference(&[("10.0.1.1", 60.0), ("10.0.1.2", 40.0)], 0.0);
        let obs = pattern(&[("10.0.1.1", 40.0), ("10.0.1.2", 60.0)], 0.0);
        let out = check(&key(), BinId(1), &obs, &r, &cfg);
        // Perfectly swapped two-hop pattern is ρ = −1 — that IS an alarm;
        // verify the detector honours τ with a milder case.
        assert!(out.is_some());
        let r2 = reference(&[("10.0.1.1", 60.0), ("10.0.1.2", 40.0)], 0.0);
        let obs2 = pattern(&[("10.0.1.1", 55.0), ("10.0.1.2", 45.0)], 0.0);
        assert!(check(&key(), BinId(1), &obs2, &r2, &cfg).is_none());
    }
}
