//! Packet-forwarding patterns (§5.1).
//!
//! For every responsive hop in a traceroute, the packets probing the *next*
//! TTL reveal where that router forwarded them: each reply from address B
//! adds one packet to B's count; each timeout adds one packet to the
//! aggregated unresponsive bucket Z ("next hops that do not send back ICMP
//! packets to the probes or drop packets are said to be unresponsive and
//! are indissociable in traceroutes"). Patterns are per (router IP,
//! traceroute destination) because forwarding is destination-dependent.

use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::FxHashMap;
use std::net::Ipv4Addr;

/// A next-hop slot in a forwarding pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NextHop {
    /// A responsive next hop.
    Ip(Ipv4Addr),
    /// The aggregated unresponsive bucket (the paper's Z).
    Unresponsive,
}

impl std::fmt::Display for NextHop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NextHop::Ip(ip) => write!(f, "{ip}"),
            NextHop::Unresponsive => write!(f, "*"),
        }
    }
}

/// Key of a forwarding pattern: the router and the traceroute target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKey {
    /// The router whose forwarding is modeled.
    pub router: Ipv4Addr,
    /// The traceroute destination the model is specific to.
    pub dst: Ipv4Addr,
}

/// Observed packet counts per next hop in one bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pattern {
    counts: FxHashMap<NextHop, f64>,
}

impl Pattern {
    /// Packet count for a hop (0 if absent).
    pub fn get(&self, hop: &NextHop) -> f64 {
        self.counts.get(hop).copied().unwrap_or(0.0)
    }

    /// Add packets to a hop's count.
    pub fn add(&mut self, hop: NextHop, packets: f64) {
        *self.counts.entry(hop).or_insert(0.0) += packets;
    }

    /// Iterate `(hop, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&NextHop, f64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Number of distinct next hops (including Z if present).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no packets were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total packets.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }
}

/// Build forwarding patterns from one bin of traceroutes.
pub fn collect_patterns(records: &[TracerouteRecord]) -> FxHashMap<PatternKey, Pattern> {
    let mut out: FxHashMap<PatternKey, Pattern> = FxHashMap::default();
    for rec in records {
        for i in 0..rec.hops.len().saturating_sub(1) {
            let Some(router) = rec.hops[i].first_responder() else {
                continue;
            };
            let key = PatternKey {
                router,
                dst: rec.dst,
            };
            let pattern = out.entry(key).or_default();
            for reply in &rec.hops[i + 1].replies {
                match reply.from {
                    Some(ip) if ip != router => pattern.add(NextHop::Ip(ip), 1.0),
                    // A repeated address (TTL quirk) is not a next hop.
                    Some(_) => {}
                    None => pattern.add(NextHop::Unresponsive, 1.0),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn rec(dst: &str, hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(1),
            probe_asn: Asn(64500),
            dst: ip(dst),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, replies: &[Option<&str>]) -> Hop {
        Hop::new(
            ttl,
            replies
                .iter()
                .map(|r| match r {
                    Some(a) => Reply::new(ip(a), 1.0),
                    None => Reply::TIMEOUT,
                })
                .collect(),
        )
    }

    #[test]
    fn counts_responsive_and_unresponsive_packets() {
        // Router R forwards 3 packets: two reach B, one is lost.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(2, &[Some("10.0.1.1"), Some("10.0.1.1"), None]),
            ],
        );
        let patterns = collect_patterns(&[r]);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        let p = &patterns[&key];
        assert_eq!(p.get(&NextHop::Ip(ip("10.0.1.1"))), 2.0);
        assert_eq!(p.get(&NextHop::Unresponsive), 1.0);
        assert_eq!(p.total(), 3.0);
    }

    #[test]
    fn patterns_are_destination_specific() {
        let r1 = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1")]), hop(2, &[Some("10.0.1.1")])],
        );
        let r2 = rec(
            "198.51.100.2",
            vec![hop(1, &[Some("10.0.0.1")]), hop(2, &[Some("10.0.2.1")])],
        );
        let patterns = collect_patterns(&[r1, r2]);
        assert_eq!(patterns.len(), 2);
        let k1 = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&k1].get(&NextHop::Ip(ip("10.0.1.1"))), 1.0);
        assert_eq!(patterns[&k1].get(&NextHop::Ip(ip("10.0.2.1"))), 0.0);
    }

    #[test]
    fn silent_hop_contributes_counts_but_no_model() {
        // Hop 2 is fully silent: hop 1's model counts 3 unresponsive
        // packets; no model is created for the silent hop itself.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(2, &[None, None, None]),
                hop(3, &[Some("10.0.2.1"); 3]),
            ],
        );
        let patterns = collect_patterns(&[r]);
        assert_eq!(patterns.len(), 1);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&key].get(&NextHop::Unresponsive), 3.0);
    }

    #[test]
    fn accumulates_over_traceroutes() {
        let mk = || {
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"); 3]),
                ],
            )
        };
        let patterns = collect_patterns(&[mk(), mk()]);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&key].get(&NextHop::Ip(ip("10.0.1.1"))), 6.0);
    }

    #[test]
    fn last_hop_has_no_pattern() {
        let r = rec("198.51.100.1", vec![hop(1, &[Some("10.0.0.1"); 3])]);
        assert!(collect_patterns(&[r]).is_empty());
    }
}
