//! Packet-forwarding patterns (§5.1).
//!
//! For every responsive hop in a traceroute, the packets probing the *next*
//! TTL reveal where that router forwarded them: each reply from address B
//! adds one packet to B's count; each timeout adds one packet to the
//! aggregated unresponsive bucket Z ("next hops that do not send back ICMP
//! packets to the probes or drop packets are said to be unresponsive and
//! are indissociable in traceroutes"). Patterns are per (router IP,
//! traceroute destination) because forwarding is destination-dependent.

use crate::engine;
use crate::ingest::{ChunkPool, Interner, PENDING, SENTINEL};
use crate::snapshot::{Reader, SnapshotError, Writer};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{BinId, FxHashMap};
use std::net::Ipv4Addr;

/// A next-hop slot in a forwarding pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NextHop {
    /// A responsive next hop.
    Ip(Ipv4Addr),
    /// The aggregated unresponsive bucket (the paper's Z).
    Unresponsive,
}

impl std::fmt::Display for NextHop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NextHop::Ip(ip) => write!(f, "{ip}"),
            NextHop::Unresponsive => write!(f, "*"),
        }
    }
}

/// Key of a forwarding pattern: the router and the traceroute target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKey {
    /// The router whose forwarding is modeled.
    pub router: Ipv4Addr,
    /// The traceroute destination the model is specific to.
    pub dst: Ipv4Addr,
}

/// Observed packet counts per next hop in one bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pattern {
    counts: FxHashMap<NextHop, f64>,
}

impl Pattern {
    /// Packet count for a hop (0 if absent).
    pub fn get(&self, hop: &NextHop) -> f64 {
        self.counts.get(hop).copied().unwrap_or(0.0)
    }

    /// Add packets to a hop's count.
    pub fn add(&mut self, hop: NextHop, packets: f64) {
        *self.counts.entry(hop).or_insert(0.0) += packets;
    }

    /// Iterate `(hop, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&NextHop, f64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Number of distinct next hops (including Z if present).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no packets were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total packets.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }
}

/// Build forwarding patterns from one bin of traceroutes (reference path;
/// the engine uses [`PatternArena::build`]).
pub fn collect_patterns(records: &[TracerouteRecord]) -> FxHashMap<PatternKey, Pattern> {
    let mut out: FxHashMap<PatternKey, Pattern> = FxHashMap::default();
    for rec in records {
        for i in 0..rec.hops.len().saturating_sub(1) {
            let Some(router) = rec.hops[i].first_responder() else {
                continue;
            };
            let key = PatternKey {
                router,
                dst: rec.dst,
            };
            let pattern = out.entry(key).or_default();
            for reply in &rec.hops[i + 1].replies {
                match reply.from {
                    Some(ip) if ip != router => pattern.add(NextHop::Ip(ip), 1.0),
                    // A repeated address (TTL quirk) is not a next hop.
                    Some(_) => {}
                    None => pattern.add(NextHop::Unresponsive, 1.0),
                }
            }
        }
    }
    out
}

/// Stable shard assignment for a pattern key (FxHash — see
/// [`crate::engine`] for the determinism contract).
pub(crate) fn shard_of_pattern(key: &PatternKey) -> usize {
    engine::shard_of_hashed(key)
}

/// One pattern's view into the arena: the key plus its `(hop, packets)`
/// rows, resolved against the arena's hop intern table.
#[derive(Debug, Clone, Copy)]
pub struct PatternSlice<'a> {
    /// The (router, destination) this pattern belongs to.
    pub key: PatternKey,
    counts: &'a [(u32, f64)],
    hops: &'a [NextHop],
}

impl<'a> PatternSlice<'a> {
    /// Packet count for a hop (0 if absent). Linear scan — the paper
    /// reports ~4 next hops per model on average.
    pub fn get(&self, hop: &NextHop) -> f64 {
        self.counts
            .iter()
            .find(|(slot, _)| self.hops[*slot as usize] == *hop)
            .map_or(0.0, |(_, c)| *c)
    }

    /// Iterate `(hop, packets)`.
    pub fn iter(&self) -> impl Iterator<Item = (NextHop, f64)> + 'a {
        let hops = self.hops;
        self.counts
            .iter()
            .map(move |(slot, c)| (hops[*slot as usize], *c))
    }

    /// Number of distinct next hops (including Z if present).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no packets were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total packets.
    pub fn total(&self) -> f64 {
        self.counts.iter().map(|(_, c)| *c).sum()
    }
}

/// One scatter chunk's private output for the forwarding side: per-shard
/// pattern rows plus chunk-local queues of pattern keys and next hops not
/// yet in the persistent tables. Written by exactly one scatter job, read
/// by the merge and the per-shard gather; all buffers bin-reused.
#[derive(Debug, Default)]
pub(crate) struct PatternChunk {
    /// Per-shard `(pattern_local << 32 | hop_slot, packets)` rows, in
    /// record order within the chunk. Ids may carry [`PENDING`]; the hop
    /// part may be [`SENTINEL`] (presence-only row).
    rows: Vec<Vec<(u64, f64)>>,
    /// Pattern keys first seen by this chunk, in encounter order.
    new_patterns: Vec<PatternKey>,
    /// Chunk-local dedup for `new_patterns`.
    new_pattern_ids: FxHashMap<PatternKey, u32>,
    /// Filled by the merge: pending pattern id → final shard-local id.
    pattern_patch: Vec<u32>,
    /// Next hops first seen by this chunk, in encounter order.
    new_hops: Vec<NextHop>,
    /// Chunk-local hop dedup: hop → encoded slot.
    hop_seen: FxHashMap<NextHop, u32>,
    /// Every hop this chunk touched (encoded slots, encounter order) —
    /// drives last-seen stamps for the hop table.
    touched_hops: Vec<u32>,
    /// Filled by the merge: pending hop id → final table slot.
    hop_patch: Vec<u32>,
    /// Per-(record, router-hop) accumulation scratch: identical
    /// `(pattern, hop)` packets collapse into one row before pushing.
    acc: Vec<(u32, f64)>,
}

/// The read-only arena state a scatter job shares with every other job.
/// Holds only the epoch tables (never the per-wave row workspace), so the
/// pipelined executor can run a scatter wave concurrently with the
/// previous bin's shard wave — see `crate::diffrtt::compute` for the twin.
#[derive(Clone, Copy)]
pub(crate) struct PatternScatterView<'a> {
    pub(crate) patterns: &'a [Interner<PatternKey>],
    pub(crate) hops: &'a Interner<NextHop>,
}

impl PatternChunk {
    fn clear(&mut self) {
        if self.rows.len() < engine::NUM_SHARDS {
            self.rows.resize_with(engine::NUM_SHARDS, Vec::new);
        }
        for rows in &mut self.rows {
            rows.clear();
        }
        self.new_patterns.clear();
        self.new_pattern_ids.clear();
        self.new_hops.clear();
        self.hop_seen.clear();
        self.touched_hops.clear();
        // `pattern_patch` / `hop_patch` are NOT cleared here: the merge
        // owns their lifecycle — it clears and refills both before any
        // `gather` reads them, so wiping them per wave is wasted work.
    }

    /// Scatter one record chunk into this chunk's per-shard row buffers.
    ///
    /// Replies landing on the same next hop within one (record, router)
    /// observation are accumulated into a single `(key, n)` row before
    /// pushing — reply-heavy hops produce one row per *distinct* next hop
    /// instead of one per packet. A router observed with no next-hop
    /// packets at all (empty or all-repeated successor replies) pushes one
    /// [`SENTINEL`] presence row, so the pattern still exists this bin and
    /// its reference still decays, exactly like the nested-map path.
    pub(crate) fn scatter(&mut self, records: &[TracerouteRecord], view: PatternScatterView<'_>) {
        for rec in records {
            for i in 0..rec.hops.len().saturating_sub(1) {
                let Some(router) = rec.hops[i].first_responder() else {
                    continue;
                };
                let key = PatternKey {
                    router,
                    dst: rec.dst,
                };
                let s = shard_of_pattern(&key);
                let local = match view.patterns[s].get(&key) {
                    Some(local) => local,
                    None => match self.new_pattern_ids.get(&key) {
                        Some(&pending) => pending,
                        None => {
                            self.new_patterns.push(key);
                            let pending = PENDING | (self.new_patterns.len() as u32 - 1);
                            self.new_pattern_ids.insert(key, pending);
                            pending
                        }
                    },
                };
                self.acc.clear();
                for reply in &rec.hops[i + 1].replies {
                    let hop = match reply.from {
                        Some(ip) if ip != router => NextHop::Ip(ip),
                        // A repeated address (TTL quirk) is not a next hop.
                        Some(_) => continue,
                        None => NextHop::Unresponsive,
                    };
                    let enc = match self.hop_seen.get(&hop) {
                        Some(&enc) => enc,
                        None => {
                            let enc = match view.hops.get(&hop) {
                                Some(slot) => slot,
                                None => {
                                    self.new_hops.push(hop);
                                    PENDING | (self.new_hops.len() as u32 - 1)
                                }
                            };
                            self.hop_seen.insert(hop, enc);
                            self.touched_hops.push(enc);
                            enc
                        }
                    };
                    match self.acc.iter_mut().find(|(slot, _)| *slot == enc) {
                        Some((_, packets)) => *packets += 1.0,
                        None => self.acc.push((enc, 1.0)),
                    }
                }
                let hi = u64::from(local) << 32;
                let rows = &mut self.rows[s];
                if self.acc.is_empty() {
                    rows.push((hi | u64::from(SENTINEL), 0.0));
                } else {
                    for &(slot, packets) in &self.acc {
                        rows.push((hi | u64::from(slot), packets));
                    }
                }
            }
        }
    }
}

/// One shard's per-wave row workspace: the bin's pattern rows and their
/// grouped layout. `gather` concatenates the bin's chunk buffers in chunk
/// order (patching pending ids); `finalize` (run by the shard's worker
/// thread) sorts and groups into `pool`/`entries`. Holds NO epoch state —
/// the shard's pattern intern table lives in [`PatternArena::patterns`] —
/// for the same reason as the delay side's `ShardRows`: a shard wave owns
/// this mutably while the next bin's scatter jobs read the epoch tables.
#[derive(Debug, Default)]
pub(crate) struct PatternShardRows {
    /// `(pattern_local << 32 | hop_slot, packets)` — 16 bytes, sorted by
    /// key at finalize.
    rows: Vec<(u64, f64)>,
    /// Grouped `(hop_slot, packets)` per observed pattern.
    pool: Vec<(u32, f64)>,
    /// `(pattern_local, pool start, pool len)` per observed pattern, in
    /// local-id order. Presence-only patterns have `len == 0`. Doubles as
    /// the observed-pattern list the post-wave stamp fence
    /// ([`PatternArena::stamp_bin`]) walks.
    entries: Vec<(u32, u32, u32)>,
    /// Radix ping-pong buffer, recycled across bins so steady-state
    /// finalize passes allocate nothing.
    sort_scratch: Vec<(u64, f64)>,
}

impl PatternShardRows {
    /// Concatenate this shard's rows from every chunk **in chunk order**
    /// (= record order), patching pending ids. Safe to run concurrently
    /// across shards.
    pub(crate) fn gather(&mut self, idx: usize, chunks: &[PatternChunk]) {
        self.rows.clear();
        for chunk in chunks {
            // Steady-state fast path: a chunk that discovered no new keys
            // wrote no pending ids anywhere — its buffer is final and can
            // be copied wholesale (SENTINEL rows need no patching either).
            if chunk.new_patterns.is_empty() && chunk.new_hops.is_empty() {
                self.rows.extend_from_slice(&chunk.rows[idx]);
                continue;
            }
            for &(key, packets) in &chunk.rows[idx] {
                let mut local = (key >> 32) as u32;
                if local & PENDING != 0 {
                    local = chunk.pattern_patch[(local ^ PENDING) as usize];
                }
                let mut slot = key as u32;
                if slot != SENTINEL && slot & PENDING != 0 {
                    slot = chunk.hop_patch[(slot ^ PENDING) as usize];
                }
                self.rows
                    .push(((u64::from(local) << 32) | u64::from(slot), packets));
            }
        }
    }

    /// Sort this shard's rows and lay out the grouped pool/entry indexes.
    /// Every pattern with at least one row this bin gets an entry —
    /// including presence-only ones (a hop whose successor sent no
    /// packets), whose empty observation must still decay its reference
    /// exactly as the nested-map path does. Safe to run concurrently
    /// across shards — and, in the pipelined executor, concurrently with
    /// the next bin's scatter wave: observed patterns are stamped by the
    /// caller's serial fence from the entry list this lays out.
    pub(crate) fn finalize(&mut self, radix_min_keys: usize) {
        self.pool.clear();
        self.entries.clear();
        // One u64-keyed sort over a small, cache-resident shard. Equal keys
        // are summed; the addends are whole packets, so the sum is exact
        // and independent of row order — which is also why the stable
        // radix path and the unstable comparison path yield identical
        // pools. SENTINEL sorts after every real hop slot, so presence
        // rows are consumed at the end of a group.
        if self.rows.len() >= radix_min_keys {
            pinpoint_stats::sort_by_u64_key(&mut self.rows, &mut self.sort_scratch, |r| r.0);
        } else {
            self.rows.sort_unstable_by_key(|r| r.0);
        }
        let mut i = 0;
        while i < self.rows.len() {
            let local = (self.rows[i].0 >> 32) as u32;
            let start = self.pool.len() as u32;
            while i < self.rows.len() && (self.rows[i].0 >> 32) as u32 == local {
                let key = self.rows[i].0;
                let slot = key as u32;
                let mut packets = 0.0;
                while i < self.rows.len() && self.rows[i].0 == key {
                    packets += self.rows[i].1;
                    i += 1;
                }
                if slot != SENTINEL {
                    self.pool.push((slot, packets));
                }
            }
            self.entries
                .push((local, start, self.pool.len() as u32 - start));
        }
    }

    /// Patterns observed in this shard's current bin (after `finalize`).
    pub(crate) fn pattern_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn pattern_in<'a>(
        &'a self,
        j: usize,
        keys: &'a [PatternKey],
        hops: &'a [NextHop],
    ) -> PatternSlice<'a> {
        let (local, start, len) = self.entries[j];
        PatternSlice {
            key: keys[local as usize],
            counts: &self.pool[start as usize..(start + len) as usize],
            hops,
        }
    }
}

/// Split borrow of an arena for the shard wave: mutable per-shard row
/// workspaces alongside the bin's chunk outputs and the shared
/// (read-only) intern tables, so stage construction can hand shards to
/// workers while chunk rows, pattern keys, and the hop slice stay
/// readable from every job — and, under the pipelined executor, from the
/// next bin's scatter jobs at the same time.
pub(crate) struct PatternArenaParts<'a> {
    pub(crate) rows: &'a mut [PatternShardRows],
    pub(crate) patterns: &'a [Interner<PatternKey>],
    pub(crate) chunks: &'a [PatternChunk],
    pub(crate) hops: &'a [NextHop],
}

/// The engine's flat, sharded, bin-reusable forwarding-pattern store —
/// the forwarding twin of [`crate::diffrtt::SampleArena`], fed by the
/// same chunked parallel ingestion front-end (`crate::ingest`).
///
/// Per bin: scatter jobs stage next-hop packets as 16-byte
/// `(pattern, hop, packets)` rows in private per-(chunk, shard) buffers
/// (patterns are sharded by a stable `FxHash` of their [`PatternKey`];
/// keys and hops resolve through *epoch-persistent* intern tables, so
/// steady-state bins perform zero insertions); a short sequential merge
/// assigns dense ids to the bin's new keys in chunk order (= record
/// order); then [`PatternArenaShard::gather`] +
/// [`PatternArenaShard::finalize`] — run per shard, in parallel —
/// concatenate each shard's rows in chunk order and sum them into
/// per-pattern `(hop, packets)` runs. Buffers and tables persist across
/// bins; compaction on the shared `reference_expiry_bins` clock bounds
/// the tables under key churn.
#[derive(Debug)]
pub struct PatternArena {
    /// Epoch-persistent per-shard pattern key → shard-local id tables,
    /// kept apart from the per-wave [`PatternShardRows`] so the pipelined
    /// executor can share them read-only with a concurrent scatter wave.
    patterns: Vec<Interner<PatternKey>>,
    /// Per-shard per-wave row workspace (consumed within one shard wave).
    rows: Vec<PatternShardRows>,
    /// Epoch-persistent next-hop → slot table.
    hops: Interner<NextHop>,
    /// Double-buffered scatter-chunk lanes (see `SampleArena::lanes`).
    lanes: [ChunkPool<PatternChunk>; 2],
    /// Lane of the open scatter session.
    lane: usize,
    insertions_at_bin_start: u64,
}

impl Default for PatternArena {
    fn default() -> Self {
        PatternArena {
            patterns: (0..engine::NUM_SHARDS)
                .map(|_| Interner::default())
                .collect(),
            rows: (0..engine::NUM_SHARDS)
                .map(|_| PatternShardRows::default())
                .collect(),
            hops: Interner::default(),
            lanes: [ChunkPool::default(), ChunkPool::default()],
            lane: 0,
            insertions_at_bin_start: 0,
        }
    }
}

impl PatternArena {
    /// Fresh arena (buffers grow on first use).
    pub fn new() -> Self {
        PatternArena::default()
    }

    fn total_insertions(&self) -> u64 {
        self.hops.insertions() + self.patterns.iter().map(Interner::insertions).sum::<u64>()
    }

    /// Interning-epoch counters for this arena (patterns + next hops).
    pub(crate) fn stats(&self) -> crate::ingest::IngestStats {
        crate::ingest::IngestStats {
            interned: self.hops.len() + self.patterns.iter().map(Interner::len).sum::<usize>(),
            bin_insertions: self.total_insertions() - self.insertions_at_bin_start,
            insertions: self.total_insertions(),
            evictions: self.hops.evictions()
                + self.patterns.iter().map(Interner::evictions).sum::<u64>(),
        }
    }

    /// Serialize the epoch-persistent state: per-shard pattern tables and
    /// the next-hop table (keys in dense-id order, so restore reproduces
    /// the identical id assignment) plus the bin-insertion watermark.
    /// Per-wave state (shard rows, chunk lanes) is scratch — not written.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        for table in &self.patterns {
            let (keys, seen, insertions, evictions) = table.snapshot_parts();
            w.seq(keys.len());
            for (key, bin) in keys.iter().zip(seen) {
                w.ip(key.router);
                w.ip(key.dst);
                w.u64(bin.0);
            }
            w.u64(insertions);
            w.u64(evictions);
        }
        let (keys, seen, insertions, evictions) = self.hops.snapshot_parts();
        w.seq(keys.len());
        for (hop, bin) in keys.iter().zip(seen) {
            match hop {
                NextHop::Ip(ip) => {
                    w.u8(0);
                    w.ip(*ip);
                }
                NextHop::Unresponsive => w.u8(1),
            }
            w.u64(bin.0);
        }
        w.u64(insertions);
        w.u64(evictions);
        w.u64(self.insertions_at_bin_start);
    }

    /// Rebuild an arena from [`PatternArena::snapshot_into`] bytes, with
    /// fresh (empty) per-wave scratch.
    pub(crate) fn restore_from(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut arena = PatternArena::default();
        for table in &mut arena.patterns {
            let n = r.seq()?;
            let mut keys = Vec::with_capacity(n);
            let mut seen = Vec::with_capacity(n);
            for _ in 0..n {
                let router = r.ip()?;
                let dst = r.ip()?;
                keys.push(PatternKey { router, dst });
                seen.push(BinId(r.u64()?));
            }
            *table = Interner::from_parts(keys, seen, r.u64()?, r.u64()?);
        }
        let n = r.seq()?;
        let mut keys = Vec::with_capacity(n);
        let mut seen = Vec::with_capacity(n);
        for _ in 0..n {
            let hop = match r.u8()? {
                0 => NextHop::Ip(r.ip()?),
                1 => NextHop::Unresponsive,
                _ => return Err(SnapshotError::Corrupt("next-hop tag")),
            };
            keys.push(hop);
            seen.push(BinId(r.u64()?));
        }
        arena.hops = Interner::from_parts(keys, seen, r.u64()?, r.u64()?);
        arena.insertions_at_bin_start = r.u64()?;
        Ok(arena)
    }

    /// Start a new scatter session in the current lane (see
    /// [`crate::diffrtt::SampleArena::begin_bin`]).
    pub(crate) fn begin_bin(&mut self) {
        self.lanes[self.lane].begin_bin();
        self.insertions_at_bin_start = self.total_insertions();
    }

    /// Whether a [`Self::compact`] sweep at `now` would evict anything —
    /// the pipelined executor's fence predicate.
    pub(crate) fn needs_compaction(&self, now: BinId, expiry_bins: usize) -> bool {
        self.hops.any_expired(now, expiry_bins)
            || self
                .patterns
                .iter()
                .any(|t| t.any_expired(now, expiry_bins))
    }

    /// Evict patterns and hops unseen for more than `expiry_bins` bins.
    /// Byte-for-byte invisible in reports; must run in the gap between
    /// epochs — never while any bin's scattered rows are in flight.
    pub(crate) fn compact(&mut self, now: BinId, expiry_bins: usize) {
        for table in &mut self.patterns {
            table.compact(now, expiry_bins);
        }
        self.hops.compact(now, expiry_bins);
    }

    /// Reserve `n` cleared chunk buffers for the current session and
    /// return them alongside the shared scatter view (appends, so
    /// incremental feeding extends the same bin).
    pub(crate) fn scatter_parts(
        &mut self,
        n: usize,
    ) -> (&mut [PatternChunk], PatternScatterView<'_>) {
        let PatternArena {
            lanes,
            lane,
            patterns,
            hops,
            ..
        } = self;
        (
            lanes[*lane].reserve(n, PatternChunk::clear),
            PatternScatterView { patterns, hops },
        )
    }

    /// Open the next bin's scatter session in the *opposite* lane and
    /// split the arena into both waves' disjoint parts — the forwarding
    /// twin of [`crate::diffrtt::SampleArena::split_lanes`], the depth-2
    /// overlap point.
    pub(crate) fn split_lanes(
        &mut self,
        n: usize,
    ) -> (
        PatternArenaParts<'_>,
        &mut [PatternChunk],
        PatternScatterView<'_>,
    ) {
        self.lane ^= 1;
        self.insertions_at_bin_start = self.total_insertions();
        let PatternArena {
            patterns,
            rows,
            hops,
            lanes,
            lane,
            ..
        } = self;
        let patterns: &[Interner<PatternKey>] = patterns;
        let [lane0, lane1] = lanes;
        let (pending, next) = if *lane == 0 {
            (lane1, lane0)
        } else {
            (lane0, lane1)
        };
        next.begin_bin();
        let chunks = next.reserve(n, PatternChunk::clear);
        (
            PatternArenaParts {
                rows,
                patterns,
                chunks: pending.active(),
                hops: hops.keys(),
            },
            chunks,
            PatternScatterView { patterns, hops },
        )
    }

    /// The sequential chunk-ordered merge between the scatter wave and
    /// the shard wave: assign dense ids to the bin's new pattern keys and
    /// next hops in chunk order (= record order) and stamp touched hops.
    /// Observed patterns are stamped by the post-wave fence
    /// ([`Self::stamp_bin`]).
    pub(crate) fn merge(&mut self, bin: BinId) {
        let PatternArena {
            lanes,
            lane,
            patterns,
            hops,
            ..
        } = self;
        let chunks = lanes[*lane].active_mut();
        for chunk in chunks.iter_mut() {
            chunk.pattern_patch.clear();
            for &key in &chunk.new_patterns {
                let s = shard_of_pattern(&key);
                let local = match patterns[s].get(&key) {
                    Some(local) => local,
                    None => patterns[s].insert(key, bin),
                };
                chunk.pattern_patch.push(local);
            }
            chunk.hop_patch.clear();
            for &enc in &chunk.touched_hops {
                let slot = if enc & PENDING != 0 {
                    debug_assert_eq!((enc ^ PENDING) as usize, chunk.hop_patch.len());
                    let hop = chunk.new_hops[(enc ^ PENDING) as usize];
                    let slot = match hops.get(&hop) {
                        Some(slot) => slot,
                        None => hops.insert(hop, bin),
                    };
                    chunk.hop_patch.push(slot);
                    slot
                } else {
                    enc
                };
                hops.stamp(slot, bin);
            }
        }
    }

    /// Stamp every pattern observed by the just-finished shard wave with
    /// `bin` — the forwarding half of the serial epoch fence. Must run
    /// after the wave and before any compaction decision for a later bin.
    pub(crate) fn stamp_bin(&mut self, bin: BinId) {
        for (table, shard) in self.patterns.iter_mut().zip(&self.rows) {
            for &(local, _, _) in &shard.entries {
                table.stamp(local, bin);
            }
        }
    }

    /// Scatter + merge + gather + finalize inline, as a single chunk (the
    /// single-threaded convenience entry; the engine runs chunks and
    /// shards on its workers).
    pub fn build(&mut self, records: &[TracerouteRecord]) {
        let bin = BinId(0);
        self.begin_bin();
        {
            let (chunks, view) = self.scatter_parts(1);
            chunks[0].scatter(records, view);
        }
        self.merge(bin);
        let parts = self.parts_mut();
        for (i, shard) in parts.rows.iter_mut().enumerate() {
            shard.gather(i, parts.chunks);
            shard.finalize(pinpoint_stats::RADIX_MIN_KEYS);
        }
        self.stamp_bin(bin);
    }

    /// Disjoint views for the engine's shard wave (after [`Self::merge`]),
    /// reading the current lane.
    pub(crate) fn parts_mut(&mut self) -> PatternArenaParts<'_> {
        let PatternArena {
            patterns,
            rows,
            lanes,
            lane,
            hops,
            ..
        } = self;
        PatternArenaParts {
            rows,
            patterns,
            chunks: lanes[*lane].active(),
            hops: hops.keys(),
        }
    }

    /// Number of patterns observed in the current bin (after finalize).
    pub fn pattern_count(&self) -> usize {
        self.rows.iter().map(PatternShardRows::pattern_count).sum()
    }

    /// Iterate every pattern of the current bin (after finalize; arbitrary
    /// but deterministic order).
    pub fn patterns(&self) -> impl Iterator<Item = PatternSlice<'_>> {
        let hops = self.hops.keys();
        self.rows.iter().enumerate().flat_map(move |(s, shard)| {
            (0..shard.pattern_count())
                .map(move |j| shard.pattern_in(j, self.patterns[s].keys(), hops))
        })
    }
}

/// Build one bin's patterns through the sharded arena and return them in
/// the reference path's nested-map representation. Exists so tests (and
/// the proptest in `tests/forwarding_parity.rs`) can demand equality with
/// [`collect_patterns`] on arbitrary record sets.
pub fn collect_patterns_sharded(records: &[TracerouteRecord]) -> FxHashMap<PatternKey, Pattern> {
    let mut arena = PatternArena::new();
    arena.build(records);
    let mut out = FxHashMap::default();
    for slice in arena.patterns() {
        let mut pattern = Pattern::default();
        for (hop, packets) in slice.iter() {
            pattern.add(hop, packets);
        }
        out.insert(slice.key, pattern);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn rec(dst: &str, hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(1),
            probe_asn: Asn(64500),
            dst: ip(dst),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, replies: &[Option<&str>]) -> Hop {
        Hop::new(
            ttl,
            replies
                .iter()
                .map(|r| match r {
                    Some(a) => Reply::new(ip(a), 1.0),
                    None => Reply::TIMEOUT,
                })
                .collect(),
        )
    }

    #[test]
    fn counts_responsive_and_unresponsive_packets() {
        // Router R forwards 3 packets: two reach B, one is lost.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(2, &[Some("10.0.1.1"), Some("10.0.1.1"), None]),
            ],
        );
        let patterns = collect_patterns(&[r]);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        let p = &patterns[&key];
        assert_eq!(p.get(&NextHop::Ip(ip("10.0.1.1"))), 2.0);
        assert_eq!(p.get(&NextHop::Unresponsive), 1.0);
        assert_eq!(p.total(), 3.0);
    }

    #[test]
    fn patterns_are_destination_specific() {
        let r1 = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1")]), hop(2, &[Some("10.0.1.1")])],
        );
        let r2 = rec(
            "198.51.100.2",
            vec![hop(1, &[Some("10.0.0.1")]), hop(2, &[Some("10.0.2.1")])],
        );
        let patterns = collect_patterns(&[r1, r2]);
        assert_eq!(patterns.len(), 2);
        let k1 = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&k1].get(&NextHop::Ip(ip("10.0.1.1"))), 1.0);
        assert_eq!(patterns[&k1].get(&NextHop::Ip(ip("10.0.2.1"))), 0.0);
    }

    #[test]
    fn silent_hop_contributes_counts_but_no_model() {
        // Hop 2 is fully silent: hop 1's model counts 3 unresponsive
        // packets; no model is created for the silent hop itself.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(2, &[None, None, None]),
                hop(3, &[Some("10.0.2.1"); 3]),
            ],
        );
        let patterns = collect_patterns(&[r]);
        assert_eq!(patterns.len(), 1);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&key].get(&NextHop::Unresponsive), 3.0);
    }

    #[test]
    fn accumulates_over_traceroutes() {
        let mk = || {
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"); 3]),
                ],
            )
        };
        let patterns = collect_patterns(&[mk(), mk()]);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&key].get(&NextHop::Ip(ip("10.0.1.1"))), 6.0);
    }

    #[test]
    fn last_hop_has_no_pattern() {
        let r = rec("198.51.100.1", vec![hop(1, &[Some("10.0.0.1"); 3])]);
        assert!(collect_patterns(&[r]).is_empty());
    }

    #[test]
    fn arena_matches_reference_collection() {
        // Interleaved records across several routers, destinations, and
        // reply mixes (responsive, unresponsive, repeated-address quirks):
        // the arena must regroup them identically to the nested-map path.
        let recs = vec![
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"), Some("10.0.1.2"), None]),
                    hop(3, &[Some("10.0.2.1"); 3]),
                ],
            ),
            rec(
                "198.51.100.2",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    // Repeated address: not a next hop.
                    hop(2, &[Some("10.0.0.1"), Some("10.0.1.9"), None]),
                ],
            ),
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"); 2]),
                ],
            ),
        ];
        assert_eq!(collect_patterns_sharded(&recs), collect_patterns(&recs));
    }

    #[test]
    fn arena_keeps_packet_less_patterns() {
        // Hop 2 exists but its replies resolve to no next-hop packets at
        // all (empty reply list). Both paths must still produce the empty
        // pattern — its reference decays on empty observations.
        let r = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1"); 3]), Hop::new(2, Vec::new())],
        );
        let reference = collect_patterns(std::slice::from_ref(&r));
        let sharded = collect_patterns_sharded(&[r]);
        assert_eq!(sharded, reference);
        assert_eq!(sharded.len(), 1);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert!(sharded[&key].is_empty());
    }

    #[test]
    fn packet_less_pattern_stays_when_interned_in_an_earlier_bin() {
        // Bin 1 observes the pattern with packets; bin 2 observes it with
        // an empty successor hop. With persistent interning, presence this
        // bin must come from this bin's rows — not from the epoch table —
        // so bin 2 must still yield exactly one (empty) pattern.
        let with_packets = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1"); 3]), hop(2, &[Some("10.0.1.1")])],
        );
        let empty_successor = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1"); 3]), Hop::new(2, Vec::new())],
        );
        let mut arena = PatternArena::new();
        arena.build(std::slice::from_ref(&with_packets));
        assert_eq!(arena.pattern_count(), 1);
        arena.build(std::slice::from_ref(&empty_successor));
        assert_eq!(arena.pattern_count(), 1);
        let slice = arena.patterns().next().unwrap();
        assert!(slice.is_empty());
        // A bin where the router never appears yields no pattern at all,
        // even though the key stays interned.
        arena.build(&[]);
        assert_eq!(arena.pattern_count(), 0);
    }

    #[test]
    fn replies_to_one_hop_collapse_into_one_row_with_exact_counts() {
        // 5 replies to the same next hop + 2 timeouts: the scatter-time
        // accumulation must produce the same packet counts the per-reply
        // reference path does.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(
                    2,
                    &[
                        Some("10.0.1.1"),
                        Some("10.0.1.1"),
                        None,
                        Some("10.0.1.1"),
                        Some("10.0.1.1"),
                        None,
                        Some("10.0.1.1"),
                    ],
                ),
            ],
        );
        let reference = collect_patterns(std::slice::from_ref(&r));
        let sharded = collect_patterns_sharded(&[r]);
        assert_eq!(sharded, reference);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(sharded[&key].get(&NextHop::Ip(ip("10.0.1.1"))), 5.0);
        assert_eq!(sharded[&key].get(&NextHop::Unresponsive), 2.0);
    }

    #[test]
    fn arena_is_reusable_across_bins() {
        let mk = |next: &str| {
            rec(
                "198.51.100.1",
                vec![hop(1, &[Some("10.0.0.1"); 3]), hop(2, &[Some(next); 3])],
            )
        };
        let mut arena = PatternArena::new();
        arena.build(&[mk("10.0.1.1"), mk("10.0.1.2")]);
        assert_eq!(arena.pattern_count(), 1);
        let slice = arena.patterns().next().unwrap();
        assert_eq!(slice.len(), 2);
        assert_eq!(slice.total(), 6.0);
        // Rebuild with a different bin: no stale state.
        arena.build(&[mk("10.0.9.9")]);
        assert_eq!(arena.pattern_count(), 1);
        let slice = arena.patterns().next().unwrap();
        assert_eq!(slice.len(), 1);
        assert_eq!(slice.get(&NextHop::Ip(ip("10.0.9.9"))), 3.0);
        assert_eq!(slice.get(&NextHop::Ip(ip("10.0.1.1"))), 0.0);
        // And an empty bin empties the arena.
        arena.build(&[]);
        assert_eq!(arena.pattern_count(), 0);
        // The intern epoch persisted: rebuilding a known shape performs
        // zero new insertions.
        arena.build(&[mk("10.0.1.1"), mk("10.0.1.2")]);
        assert_eq!(arena.stats().bin_insertions, 0);
    }
}
