//! Packet-forwarding patterns (§5.1).
//!
//! For every responsive hop in a traceroute, the packets probing the *next*
//! TTL reveal where that router forwarded them: each reply from address B
//! adds one packet to B's count; each timeout adds one packet to the
//! aggregated unresponsive bucket Z ("next hops that do not send back ICMP
//! packets to the probes or drop packets are said to be unresponsive and
//! are indissociable in traceroutes"). Patterns are per (router IP,
//! traceroute destination) because forwarding is destination-dependent.

use crate::engine;
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::FxHashMap;
use std::net::Ipv4Addr;

/// A next-hop slot in a forwarding pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NextHop {
    /// A responsive next hop.
    Ip(Ipv4Addr),
    /// The aggregated unresponsive bucket (the paper's Z).
    Unresponsive,
}

impl std::fmt::Display for NextHop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NextHop::Ip(ip) => write!(f, "{ip}"),
            NextHop::Unresponsive => write!(f, "*"),
        }
    }
}

/// Key of a forwarding pattern: the router and the traceroute target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKey {
    /// The router whose forwarding is modeled.
    pub router: Ipv4Addr,
    /// The traceroute destination the model is specific to.
    pub dst: Ipv4Addr,
}

/// Observed packet counts per next hop in one bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pattern {
    counts: FxHashMap<NextHop, f64>,
}

impl Pattern {
    /// Packet count for a hop (0 if absent).
    pub fn get(&self, hop: &NextHop) -> f64 {
        self.counts.get(hop).copied().unwrap_or(0.0)
    }

    /// Add packets to a hop's count.
    pub fn add(&mut self, hop: NextHop, packets: f64) {
        *self.counts.entry(hop).or_insert(0.0) += packets;
    }

    /// Iterate `(hop, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&NextHop, f64)> {
        self.counts.iter().map(|(k, v)| (k, *v))
    }

    /// Number of distinct next hops (including Z if present).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no packets were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total packets.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }
}

/// Build forwarding patterns from one bin of traceroutes (reference path;
/// the engine uses [`PatternArena::scatter`]).
pub fn collect_patterns(records: &[TracerouteRecord]) -> FxHashMap<PatternKey, Pattern> {
    let mut out: FxHashMap<PatternKey, Pattern> = FxHashMap::default();
    for rec in records {
        for i in 0..rec.hops.len().saturating_sub(1) {
            let Some(router) = rec.hops[i].first_responder() else {
                continue;
            };
            let key = PatternKey {
                router,
                dst: rec.dst,
            };
            let pattern = out.entry(key).or_default();
            for reply in &rec.hops[i + 1].replies {
                match reply.from {
                    Some(ip) if ip != router => pattern.add(NextHop::Ip(ip), 1.0),
                    // A repeated address (TTL quirk) is not a next hop.
                    Some(_) => {}
                    None => pattern.add(NextHop::Unresponsive, 1.0),
                }
            }
        }
    }
    out
}

/// Stable shard assignment for a pattern key (FxHash — see
/// [`crate::engine`] for the determinism contract).
pub(crate) fn shard_of_pattern(key: &PatternKey) -> usize {
    engine::shard_of_hashed(key)
}

/// One pattern's view into the arena: the key plus its `(hop, packets)`
/// rows, resolved against the arena's hop intern table.
#[derive(Debug, Clone, Copy)]
pub struct PatternSlice<'a> {
    /// The (router, destination) this pattern belongs to.
    pub key: PatternKey,
    counts: &'a [(u32, f64)],
    hops: &'a [NextHop],
}

impl<'a> PatternSlice<'a> {
    /// Packet count for a hop (0 if absent). Linear scan — the paper
    /// reports ~4 next hops per model on average.
    pub fn get(&self, hop: &NextHop) -> f64 {
        self.counts
            .iter()
            .find(|(slot, _)| self.hops[*slot as usize] == *hop)
            .map_or(0.0, |(_, c)| *c)
    }

    /// Iterate `(hop, packets)`.
    pub fn iter(&self) -> impl Iterator<Item = (NextHop, f64)> + 'a {
        let hops = self.hops;
        self.counts
            .iter()
            .map(move |(slot, c)| (hops[*slot as usize], *c))
    }

    /// Number of distinct next hops (including Z if present).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no packets were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total packets.
    pub fn total(&self) -> f64 {
        self.counts.iter().map(|(_, c)| *c).sum()
    }
}

/// One shard's pattern rows and grouped layout. `rows` is written by the
/// scatter pass; `finalize` (run by the shard's worker thread) sorts and
/// groups it into `pool`/`entries`.
#[derive(Debug, Default)]
pub(crate) struct PatternArenaShard {
    /// `(pattern_local << 32 | hop_slot, packets)` — 16 bytes, sorted by
    /// key at finalize.
    rows: Vec<(u64, f64)>,
    /// Local pattern id → key, in first-encounter order.
    keys: Vec<PatternKey>,
    /// Grouped `(hop_slot, packets)` per pattern.
    pool: Vec<(u32, f64)>,
    /// `entries[local]` = the pattern's `(pool start, pool len)`.
    entries: Vec<(u32, u32)>,
}

impl PatternArenaShard {
    fn clear(&mut self) {
        self.rows.clear();
        self.keys.clear();
        self.pool.clear();
        self.entries.clear();
    }

    /// Sort this shard's rows and lay out the grouped pool/entry indexes.
    /// Safe to run concurrently across shards. Every interned pattern gets
    /// an entry — including packet-less ones (a hop whose successor sent no
    /// replies), whose empty observation must still decay its reference
    /// exactly as the nested-map path does.
    pub(crate) fn finalize(&mut self) {
        self.pool.clear();
        self.entries.clear();
        // One u64-keyed sort over a small, cache-resident shard. Equal keys
        // are summed; the addends are whole packets, so the sum is exact
        // and independent of row order.
        self.rows.sort_unstable_by_key(|r| r.0);
        let mut i = 0;
        for local in 0..self.keys.len() as u32 {
            let start = self.pool.len() as u32;
            while i < self.rows.len() && (self.rows[i].0 >> 32) as u32 == local {
                let key = self.rows[i].0;
                let slot = key as u32;
                let mut packets = 0.0;
                while i < self.rows.len() && self.rows[i].0 == key {
                    packets += self.rows[i].1;
                    i += 1;
                }
                self.pool.push((slot, packets));
            }
            self.entries.push((start, self.pool.len() as u32 - start));
        }
    }

    /// Patterns in this shard (after `finalize`).
    pub(crate) fn pattern_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn pattern_in<'a>(&'a self, j: usize, hops: &'a [NextHop]) -> PatternSlice<'a> {
        let (start, len) = self.entries[j];
        PatternSlice {
            key: self.keys[j],
            counts: &self.pool[start as usize..(start + len) as usize],
            hops,
        }
    }
}

/// Split borrow of an arena: mutable shards alongside the shared hop
/// intern table, so stage construction can hand shards to workers while
/// the hop slice stays readable from every job.
pub(crate) struct PatternArenaParts<'a> {
    pub(crate) shards: &'a mut [PatternArenaShard],
    pub(crate) hops: &'a [NextHop],
}

/// The engine's flat, sharded, bin-reusable forwarding-pattern store —
/// the forwarding twin of [`crate::diffrtt::SampleArena`].
///
/// [`PatternArena::scatter`] stages every next-hop packet as a 16-byte
/// `(pattern, hop, packets)` row directly in the owning pattern's shard
/// (patterns are sharded by [`FxHasher`](pinpoint_model::hash::FxHasher)
/// on their [`PatternKey`]; patterns and hops are interned into dense ids
/// on first encounter); [`PatternArenaShard::finalize`] — run per shard,
/// in parallel — sorts each shard's rows by one u64 key and sums them into
/// per-pattern `(hop, packets)` runs. Every buffer is retained across
/// bins, so a steady stream of equally-sized bins settles into zero
/// steady-state allocation; and because rows never leave their shard, the
/// whole grouping step parallelizes without synchronization.
#[derive(Debug)]
pub struct PatternArena {
    pub(crate) shards: Vec<PatternArenaShard>,
    pattern_index: FxHashMap<PatternKey, (u32, u32)>,
    hop_index: FxHashMap<NextHop, u32>,
    hops: Vec<NextHop>,
}

impl Default for PatternArena {
    fn default() -> Self {
        PatternArena {
            shards: (0..engine::NUM_SHARDS)
                .map(|_| PatternArenaShard::default())
                .collect(),
            pattern_index: FxHashMap::default(),
            hop_index: FxHashMap::default(),
            hops: Vec::new(),
        }
    }
}

impl PatternArena {
    /// Fresh arena (buffers grow on first use).
    pub fn new() -> Self {
        PatternArena::default()
    }

    /// Stage one bin of traceroutes into per-shard rows, reusing all
    /// buffers. Call [`PatternArenaShard::finalize`] (or
    /// [`PatternArena::build`]) to group them.
    pub(crate) fn scatter(&mut self, records: &[TracerouteRecord]) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.pattern_index.clear();
        self.hop_index.clear();
        self.hops.clear();

        let shards = &mut self.shards;
        let pattern_index = &mut self.pattern_index;
        let hop_index = &mut self.hop_index;
        let hops = &mut self.hops;
        for rec in records {
            for i in 0..rec.hops.len().saturating_sub(1) {
                let Some(router) = rec.hops[i].first_responder() else {
                    continue;
                };
                let key = PatternKey {
                    router,
                    dst: rec.dst,
                };
                // Intern before the reply loop: a pattern whose successor
                // hop sent nothing still exists (and its reference decays).
                let (shard_idx, local) = *pattern_index.entry(key).or_insert_with(|| {
                    let s = shard_of_pattern(&key) as u32;
                    let local = shards[s as usize].keys.len() as u32;
                    shards[s as usize].keys.push(key);
                    (s, local)
                });
                let rows = &mut shards[shard_idx as usize].rows;
                for reply in &rec.hops[i + 1].replies {
                    let hop = match reply.from {
                        Some(ip) if ip != router => NextHop::Ip(ip),
                        // A repeated address (TTL quirk) is not a next hop.
                        Some(_) => continue,
                        None => NextHop::Unresponsive,
                    };
                    let slot = *hop_index.entry(hop).or_insert_with(|| {
                        hops.push(hop);
                        hops.len() as u32 - 1
                    });
                    rows.push(((u64::from(local) << 32) | u64::from(slot), 1.0));
                }
            }
        }
    }

    /// Scatter + finalize every shard inline (the single-threaded
    /// convenience entry; the engine finalizes shards on its workers).
    pub fn build(&mut self, records: &[TracerouteRecord]) {
        self.scatter(records);
        for shard in &mut self.shards {
            shard.finalize();
        }
    }

    /// Disjoint views for the engine stage (after [`PatternArena::scatter`]).
    pub(crate) fn parts_mut(&mut self) -> PatternArenaParts<'_> {
        PatternArenaParts {
            shards: &mut self.shards,
            hops: &self.hops,
        }
    }

    /// Number of patterns in the current bin (after finalize).
    pub fn pattern_count(&self) -> usize {
        self.shards.iter().map(|s| s.pattern_count()).sum()
    }

    /// Iterate every pattern of the current bin (after finalize; arbitrary
    /// but deterministic order).
    pub fn patterns(&self) -> impl Iterator<Item = PatternSlice<'_>> {
        let hops = &self.hops[..];
        self.shards
            .iter()
            .flat_map(move |s| (0..s.pattern_count()).map(move |j| s.pattern_in(j, hops)))
    }
}

/// Build one bin's patterns through the sharded arena and return them in
/// the reference path's nested-map representation. Exists so tests (and
/// the proptest in `tests/forwarding_parity.rs`) can demand equality with
/// [`collect_patterns`] on arbitrary record sets.
pub fn collect_patterns_sharded(records: &[TracerouteRecord]) -> FxHashMap<PatternKey, Pattern> {
    let mut arena = PatternArena::new();
    arena.build(records);
    let mut out = FxHashMap::default();
    for slice in arena.patterns() {
        let mut pattern = Pattern::default();
        for (hop, packets) in slice.iter() {
            pattern.add(hop, packets);
        }
        out.insert(slice.key, pattern);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn rec(dst: &str, hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(1),
            probe_asn: Asn(64500),
            dst: ip(dst),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, replies: &[Option<&str>]) -> Hop {
        Hop::new(
            ttl,
            replies
                .iter()
                .map(|r| match r {
                    Some(a) => Reply::new(ip(a), 1.0),
                    None => Reply::TIMEOUT,
                })
                .collect(),
        )
    }

    #[test]
    fn counts_responsive_and_unresponsive_packets() {
        // Router R forwards 3 packets: two reach B, one is lost.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(2, &[Some("10.0.1.1"), Some("10.0.1.1"), None]),
            ],
        );
        let patterns = collect_patterns(&[r]);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        let p = &patterns[&key];
        assert_eq!(p.get(&NextHop::Ip(ip("10.0.1.1"))), 2.0);
        assert_eq!(p.get(&NextHop::Unresponsive), 1.0);
        assert_eq!(p.total(), 3.0);
    }

    #[test]
    fn patterns_are_destination_specific() {
        let r1 = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1")]), hop(2, &[Some("10.0.1.1")])],
        );
        let r2 = rec(
            "198.51.100.2",
            vec![hop(1, &[Some("10.0.0.1")]), hop(2, &[Some("10.0.2.1")])],
        );
        let patterns = collect_patterns(&[r1, r2]);
        assert_eq!(patterns.len(), 2);
        let k1 = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&k1].get(&NextHop::Ip(ip("10.0.1.1"))), 1.0);
        assert_eq!(patterns[&k1].get(&NextHop::Ip(ip("10.0.2.1"))), 0.0);
    }

    #[test]
    fn silent_hop_contributes_counts_but_no_model() {
        // Hop 2 is fully silent: hop 1's model counts 3 unresponsive
        // packets; no model is created for the silent hop itself.
        let r = rec(
            "198.51.100.1",
            vec![
                hop(1, &[Some("10.0.0.1"); 3]),
                hop(2, &[None, None, None]),
                hop(3, &[Some("10.0.2.1"); 3]),
            ],
        );
        let patterns = collect_patterns(&[r]);
        assert_eq!(patterns.len(), 1);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&key].get(&NextHop::Unresponsive), 3.0);
    }

    #[test]
    fn accumulates_over_traceroutes() {
        let mk = || {
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"); 3]),
                ],
            )
        };
        let patterns = collect_patterns(&[mk(), mk()]);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert_eq!(patterns[&key].get(&NextHop::Ip(ip("10.0.1.1"))), 6.0);
    }

    #[test]
    fn last_hop_has_no_pattern() {
        let r = rec("198.51.100.1", vec![hop(1, &[Some("10.0.0.1"); 3])]);
        assert!(collect_patterns(&[r]).is_empty());
    }

    #[test]
    fn arena_matches_reference_collection() {
        // Interleaved records across several routers, destinations, and
        // reply mixes (responsive, unresponsive, repeated-address quirks):
        // the arena must regroup them identically to the nested-map path.
        let recs = vec![
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"), Some("10.0.1.2"), None]),
                    hop(3, &[Some("10.0.2.1"); 3]),
                ],
            ),
            rec(
                "198.51.100.2",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    // Repeated address: not a next hop.
                    hop(2, &[Some("10.0.0.1"), Some("10.0.1.9"), None]),
                ],
            ),
            rec(
                "198.51.100.1",
                vec![
                    hop(1, &[Some("10.0.0.1"); 3]),
                    hop(2, &[Some("10.0.1.1"); 2]),
                ],
            ),
        ];
        assert_eq!(collect_patterns_sharded(&recs), collect_patterns(&recs));
    }

    #[test]
    fn arena_keeps_packet_less_patterns() {
        // Hop 2 exists but its replies resolve to no next-hop packets at
        // all (empty reply list). Both paths must still produce the empty
        // pattern — its reference decays on empty observations.
        let r = rec(
            "198.51.100.1",
            vec![hop(1, &[Some("10.0.0.1"); 3]), Hop::new(2, Vec::new())],
        );
        let reference = collect_patterns(std::slice::from_ref(&r));
        let sharded = collect_patterns_sharded(&[r]);
        assert_eq!(sharded, reference);
        assert_eq!(sharded.len(), 1);
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        assert!(sharded[&key].is_empty());
    }

    #[test]
    fn arena_is_reusable_across_bins() {
        let mk = |next: &str| {
            rec(
                "198.51.100.1",
                vec![hop(1, &[Some("10.0.0.1"); 3]), hop(2, &[Some(next); 3])],
            )
        };
        let mut arena = PatternArena::new();
        arena.build(&[mk("10.0.1.1"), mk("10.0.1.2")]);
        assert_eq!(arena.pattern_count(), 1);
        let slice = arena.patterns().next().unwrap();
        assert_eq!(slice.len(), 2);
        assert_eq!(slice.total(), 6.0);
        // Rebuild with a different bin: no stale state.
        arena.build(&[mk("10.0.9.9")]);
        assert_eq!(arena.pattern_count(), 1);
        let slice = arena.patterns().next().unwrap();
        assert_eq!(slice.len(), 1);
        assert_eq!(slice.get(&NextHop::Ip(ip("10.0.9.9"))), 3.0);
        assert_eq!(slice.get(&NextHop::Ip(ip("10.0.1.1"))), 0.0);
        // And an empty bin empties the arena.
        arena.build(&[]);
        assert_eq!(arena.pattern_count(), 0);
    }
}
