//! Smoothed forwarding-pattern references (Eq. 8).
//!
//! `F̄_t = α F_t + (1 − α) F̄_{t−1}` with hop alignment: hops unseen in the
//! new pattern decay towards zero; first-seen hops enter from zero. Decayed
//! hops are pruned below a small floor so long-gone next hops don't bloat
//! the model (the paper reports ~4 next hops per model on average).

use super::pattern::{NextHop, Pattern};
use crate::config::DetectorConfig;
use crate::snapshot::{Reader, SnapshotError, Writer};
use pinpoint_stats::smoothing::VectorEwma;

/// Count floor below which a next hop is dropped from the reference.
const PRUNE_BELOW: f64 = 0.05;

/// The learned reference pattern of one (router, destination).
#[derive(Debug, Clone)]
pub struct PatternReference {
    ewma: VectorEwma<NextHop>,
}

impl PatternReference {
    /// Fresh reference.
    pub fn new(cfg: &DetectorConfig) -> Self {
        PatternReference {
            ewma: VectorEwma::new(cfg.alpha),
        }
    }

    /// Whether at least one bin has been folded in.
    pub fn is_ready(&self) -> bool {
        !self.ewma.is_empty()
    }

    /// Smoothed count for a next hop.
    pub fn get(&self, hop: &NextHop) -> f64 {
        self.ewma.get(hop)
    }

    /// Number of next hops in the reference.
    pub fn len(&self) -> usize {
        self.ewma.len()
    }

    /// Whether the reference is empty.
    pub fn is_empty(&self) -> bool {
        self.ewma.is_empty()
    }

    /// All `(hop, smoothed count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&NextHop, f64)> {
        self.ewma.iter()
    }

    /// Serialize the smoothed `(hop, count)` vector. The smoother's
    /// `BTreeMap` already iterates in key order, so the bytes are stable.
    /// α is derived from the config on restore, not repeated per pattern.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        w.seq(self.ewma.len());
        for (hop, count) in self.ewma.iter() {
            match hop {
                NextHop::Ip(ip) => {
                    w.u8(0);
                    w.ip(*ip);
                }
                NextHop::Unresponsive => w.u8(1),
            }
            w.f64(count);
        }
    }

    /// Rebuild a reference from [`PatternReference::snapshot_into`] bytes.
    pub(crate) fn restore_from(
        r: &mut Reader<'_>,
        cfg: &DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        let n = r.seq()?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let hop = match r.u8()? {
                0 => NextHop::Ip(r.ip()?),
                1 => NextHop::Unresponsive,
                _ => return Err(SnapshotError::Corrupt("next-hop tag")),
            };
            values.push((hop, r.f64()?));
        }
        Ok(PatternReference {
            ewma: VectorEwma::from_parts(cfg.alpha, values),
        })
    }

    /// Fold an observed bin pattern into the reference.
    pub fn update(&mut self, observed: &Pattern) {
        self.update_from(observed.iter().map(|(h, c)| (*h, c)));
    }

    /// Fold an observed `(hop, packets)` vector into the reference — the
    /// engine path's entry point, fed straight from a
    /// [`PatternSlice`](super::pattern::PatternSlice) without building a
    /// map. The smoother collects into a `BTreeMap` internally, so the
    /// result is independent of iteration order.
    pub fn update_from<I: IntoIterator<Item = (NextHop, f64)>>(&mut self, observed: I) {
        self.ewma.update(observed, PRUNE_BELOW);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pattern(spec: &[(&str, f64)], unresp: f64) -> Pattern {
        let mut p = Pattern::default();
        for (a, c) in spec {
            p.add(NextHop::Ip(ip(a)), *c);
        }
        if unresp > 0.0 {
            p.add(NextHop::Unresponsive, unresp);
        }
        p
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn first_observation_becomes_reference() {
        let mut r = PatternReference::new(&cfg());
        assert!(!r.is_ready());
        r.update(&pattern(&[("10.0.0.1", 10.0), ("10.0.0.2", 100.0)], 5.0));
        assert!(r.is_ready());
        assert_eq!(r.get(&NextHop::Ip(ip("10.0.0.1"))), 10.0);
        assert_eq!(r.get(&NextHop::Unresponsive), 5.0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn missing_hop_decays_new_hop_grows() {
        let mut c = cfg();
        c.alpha = 0.5;
        let mut r = PatternReference::new(&c);
        r.update(&pattern(&[("10.0.0.1", 100.0)], 0.0));
        r.update(&pattern(&[("10.0.0.2", 40.0)], 0.0));
        assert_eq!(r.get(&NextHop::Ip(ip("10.0.0.1"))), 50.0);
        assert_eq!(r.get(&NextHop::Ip(ip("10.0.0.2"))), 20.0);
    }

    #[test]
    fn long_gone_hops_are_pruned() {
        let mut c = cfg();
        c.alpha = 0.5;
        let mut r = PatternReference::new(&c);
        r.update(&pattern(&[("10.0.0.1", 1.0), ("10.0.0.2", 50.0)], 0.0));
        for _ in 0..30 {
            r.update(&pattern(&[("10.0.0.2", 50.0)], 0.0));
        }
        assert_eq!(r.get(&NextHop::Ip(ip("10.0.0.1"))), 0.0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn small_alpha_resists_transient_shift() {
        let mut r = PatternReference::new(&cfg());
        r.update(&pattern(&[("10.0.0.1", 100.0)], 0.0));
        // One anomalous bin: everything shifted to a new hop.
        r.update(&pattern(&[("10.0.0.9", 100.0)], 0.0));
        // Reference still overwhelmingly favours the original hop.
        assert!(r.get(&NextHop::Ip(ip("10.0.0.1"))) > 90.0);
        assert!(r.get(&NextHop::Ip(ip("10.0.0.9"))) < 2.0);
    }
}
