//! Forwarding-anomaly detection (§5).
//!
//! Delay analysis goes blind exactly when things are worst — rerouted or
//! dropped packets leave no RTT samples. The forwarding detector fills that
//! gap: it learns, per (router IP, traceroute destination), the usual
//! distribution of packets over next hops ([`pattern`]), keeps an
//! exponentially smoothed reference ([`reference`]), and reports patterns
//! whose Pearson correlation with the reference falls below τ = −0.25,
//! attributing the change to specific next hops via responsibility scores
//! ([`detect`], Eq. 9).

pub mod detect;
pub mod pattern;
pub mod reference;

pub use detect::ForwardingAlarm;
pub use pattern::{collect_patterns, NextHop, PatternKey};
pub use reference::PatternReference;

use crate::config::DetectorConfig;
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{BinId, FxHashMap};

/// Stateful forwarding-anomaly detector.
#[derive(Debug)]
pub struct ForwardingDetector {
    cfg: DetectorConfig,
    references: FxHashMap<PatternKey, PatternReference>,
}

impl ForwardingDetector {
    /// Create a detector with the given configuration.
    pub fn new(cfg: &DetectorConfig) -> Self {
        ForwardingDetector {
            cfg: cfg.clone(),
            references: FxHashMap::default(),
        }
    }

    /// Process one bin of traceroutes; returns forwarding alarms.
    pub fn process_bin(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> Vec<ForwardingAlarm> {
        let patterns = collect_patterns(records);
        let mut alarms = Vec::new();
        for (key, observed) in patterns {
            let reference = self
                .references
                .entry(key)
                .or_insert_with(|| PatternReference::new(&self.cfg));
            if let Some(alarm) = detect::check(&key, bin, &observed, reference, &self.cfg) {
                alarms.push(alarm);
            }
            reference.update(&observed);
        }
        // Most anti-correlated first; ties broken totally so output order
        // is deterministic regardless of hash-map iteration.
        alarms.sort_by(|a, b| {
            a.rho
                .partial_cmp(&b.rho)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.router, a.dst).cmp(&(b.router, b.dst)))
        });
        alarms
    }

    /// Number of (router, destination) patterns tracked.
    pub fn tracked_patterns(&self) -> usize {
        self.references.len()
    }

    /// Mean number of next hops per tracked pattern (Table A statistic:
    /// "on average forwarding models contain four different next hops").
    pub fn mean_next_hops(&self) -> f64 {
        if self.references.is_empty() {
            return 0.0;
        }
        let total: usize = self.references.values().map(|r| r.len()).sum();
        total as f64 / self.references.len() as f64
    }
}
