//! Forwarding-anomaly detection (§5).
//!
//! Delay analysis goes blind exactly when things are worst — rerouted or
//! dropped packets leave no RTT samples. The forwarding detector fills that
//! gap: it learns, per (router IP, traceroute destination), the usual
//! distribution of packets over next hops ([`pattern`]), keeps an
//! exponentially smoothed reference ([`reference`]), and reports patterns
//! whose Pearson correlation with the reference falls below τ = −0.25,
//! attributing the change to specific next hops via responsibility scores
//! ([`detect`], Eq. 9).
//!
//! ## The sharded pattern engine
//!
//! Like the delay path, [`ForwardingDetector::process_bin`] runs on the
//! shared sharded engine (`crate::engine`):
//!
//! * packets live in a flat [`pattern::PatternArena`] whose buffers are
//!   reused across bins — 16-byte `(pattern, hop, packets)` rows scattered
//!   by the chunked parallel front-end (`crate::ingest`) into per-(chunk,
//!   shard) buffers against epoch-persistent pattern/hop intern tables
//!   (zero insertions in steady state; identical replies within a record
//!   collapse into one accumulated row), concatenated per shard in chunk
//!   order so output never depends on the chunking;
//! * patterns — and their smoothed references — are sharded by a *stable*
//!   `FxHash` of the [`PatternKey`], and shard workers own their shard's
//!   reference map, so the check → alarm → reference-update pipeline needs
//!   no locks;
//! * references track the last bin their pattern appeared in and are
//!   evicted once unseen for `cfg.reference_expiry_bins`, so churned
//!   (router, destination) pairs cannot grow the maps without bound;
//! * alarms get a final total-order sort, so the output is byte-for-byte
//!   identical for any thread count — including the sequential reference
//!   path [`ForwardingDetector::process_bin_sequential`], which the parity
//!   tests compare against.

pub mod detect;
pub mod pattern;
pub mod reference;

pub use detect::ForwardingAlarm;
pub use pattern::{collect_patterns, NextHop, PatternKey};
pub use reference::PatternReference;

use crate::config::DetectorConfig;
use crate::engine;
use crate::ingest;
use crate::snapshot::{Reader, SnapshotError, Writer};
use pattern::{shard_of_pattern, PatternArena, PatternChunk, PatternShardRows};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{BinId, FxHashMap};

/// One (router, destination) reference plus the last bin it was observed
/// in — the eviction clock.
#[derive(Debug)]
struct ReferenceEntry {
    reference: PatternReference,
    last_seen: BinId,
}

/// One shard's slice of detector state.
#[derive(Debug, Default)]
struct FwdShard {
    references: FxHashMap<PatternKey, ReferenceEntry>,
}

impl FwdShard {
    /// Drop references whose pattern has not appeared for longer than the
    /// configured expiry. Runs once per bin per shard, on the shard's own
    /// worker — deterministic for any thread count.
    fn evict(&mut self, bin: BinId, cfg: &DetectorConfig) {
        self.references
            .retain(|_, e| !engine::reference_expired(bin, e.last_seen, cfg.reference_expiry_bins));
    }
}

/// What one shard produced for one bin.
#[derive(Debug, Default)]
struct FwdShardOutput {
    alarms: Vec<ForwardingAlarm>,
}

/// Stateful forwarding-anomaly detector.
#[derive(Debug)]
pub struct ForwardingDetector {
    cfg: DetectorConfig,
    shards: Vec<FwdShard>,
    arena: PatternArena,
}

impl ForwardingDetector {
    /// Create a detector with the given configuration.
    pub fn new(cfg: &DetectorConfig) -> Self {
        ForwardingDetector {
            cfg: cfg.clone(),
            shards: (0..engine::NUM_SHARDS)
                .map(|_| FwdShard::default())
                .collect(),
            arena: PatternArena::new(),
        }
    }

    /// Worker threads used per bin: the configured count, or all available
    /// cores when `cfg.threads == 0`, capped by the shard count.
    fn effective_threads(&self) -> usize {
        engine::resolve_threads(self.cfg.threads)
    }

    /// Serialize the resumable state: every shard's references (sorted by
    /// pattern key — shard maps iterate in hash order, which is not
    /// stable) and the intern-epoch arena. The config is written once at
    /// the analyzer level, not here.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        for shard in &self.shards {
            let mut entries: Vec<(&PatternKey, &ReferenceEntry)> =
                shard.references.iter().collect();
            entries.sort_by_key(|(key, _)| **key);
            w.seq(entries.len());
            for (key, e) in entries {
                w.ip(key.router);
                w.ip(key.dst);
                w.u64(e.last_seen.0);
                e.reference.snapshot_into(w);
            }
        }
        self.arena.snapshot_into(w);
    }

    /// Rebuild a detector from [`ForwardingDetector::snapshot_into`] bytes.
    pub(crate) fn restore_from(
        r: &mut Reader<'_>,
        cfg: &DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        let mut shards: Vec<FwdShard> = (0..engine::NUM_SHARDS)
            .map(|_| FwdShard::default())
            .collect();
        for (idx, shard) in shards.iter_mut().enumerate() {
            let n = r.seq()?;
            for _ in 0..n {
                let router = r.ip()?;
                let dst = r.ip()?;
                let key = PatternKey { router, dst };
                if shard_of_pattern(&key) != idx {
                    return Err(SnapshotError::Corrupt("pattern in wrong shard"));
                }
                let last_seen = BinId(r.u64()?);
                let reference = PatternReference::restore_from(r, cfg)?;
                shard.references.insert(
                    key,
                    ReferenceEntry {
                        reference,
                        last_seen,
                    },
                );
            }
        }
        let arena = PatternArena::restore_from(r)?;
        Ok(ForwardingDetector {
            cfg: cfg.clone(),
            shards,
            arena,
        })
    }

    /// Process one bin of traceroutes; returns forwarding alarms — the
    /// parallel, arena-backed engine: a scatter wave (chunk jobs), the
    /// sequential chunk-ordered intern merge, then the shard wave.
    pub fn process_bin(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> Vec<ForwardingAlarm> {
        let threads = self.effective_threads();
        let chunk = ingest::resolve_chunk_for(self.cfg.ingest_chunk_records, threads);
        self.compact_epoch(bin);
        self.begin_bin();
        engine::run_jobs(self.scatter_jobs(records, chunk), threads);
        self.merge_scatter(bin);
        let alarms = {
            let mut stage = self.stage(bin, threads);
            engine::run_jobs(stage.jobs(), threads);
            stage.finish()
        };
        self.stamp_bin(bin);
        alarms
    }

    /// Compact the intern epoch on the shared expiry clock. Must run in a
    /// drained gap — see [`crate::diffrtt::DelayDetector::compact_epoch`].
    pub(crate) fn compact_epoch(&mut self, bin: BinId) {
        self.arena.compact(bin, self.cfg.reference_expiry_bins);
    }

    /// The pipelined executor's fence predicate: whether any interned key
    /// is *overdue* (unseen beyond `reference_expiry_bins + 1` — see
    /// [`crate::diffrtt::DelayDetector::needs_compaction`] for why the
    /// tolerant bound, which accounts for the pending bin's unstamped
    /// observations, is the right one).
    pub(crate) fn needs_compaction(&self, bin: BinId) -> bool {
        self.arena
            .needs_compaction(bin, self.cfg.reference_expiry_bins + 1)
    }

    /// Open one bin's scatter session.
    pub(crate) fn begin_bin(&mut self) {
        self.arena.begin_bin();
    }

    /// The serial fence after a bin's shard wave: stamp every observed
    /// pattern's epoch entry. Must run before any compaction decision for
    /// a later bin.
    pub(crate) fn stamp_bin(&mut self, bin: BinId) {
        self.arena.stamp_bin(bin);
    }

    /// The pre-stage: one boxed scatter job per fixed-size record chunk
    /// (see [`crate::diffrtt::DelayDetector::scatter_jobs`] — the twin).
    pub(crate) fn scatter_jobs<'a>(
        &'a mut self,
        records: &'a [TracerouteRecord],
        chunk_records: usize,
    ) -> Vec<engine::Job<'a>> {
        let n = ingest::chunk_count(records.len(), chunk_records);
        let (chunks, view) = self.arena.scatter_parts(n);
        ingest::chunk_jobs(
            chunks,
            records,
            chunk_records,
            view,
            |chunk, records, view| chunk.scatter(records, view),
        )
    }

    /// The sequential merge between the scatter wave and the shard wave.
    pub(crate) fn merge_scatter(&mut self, bin: BinId) {
        self.arena.merge(bin);
    }

    /// Interning-epoch counters (patterns + next hops).
    pub fn ingest_stats(&self) -> ingest::IngestStats {
        self.arena.stats()
    }

    /// Stage one bin for the shared engine: deal the scattered-and-merged
    /// arena shards into `threads` round-robin bundles (see
    /// [`crate::diffrtt::DelayDetector::stage`] — the `Analyzer` pools
    /// both detectors' jobs on one set of workers). Callers must have run
    /// the bin's scatter jobs and [`ForwardingDetector::merge_scatter`]
    /// first.
    pub(crate) fn stage<'a>(&'a mut self, bin: BinId, threads: usize) -> ForwardingStage<'a> {
        let ForwardingDetector { cfg, shards, arena } = self;
        build_stage(arena.parts_mut(), shards, cfg, bin, threads)
    }

    /// The depth-2 overlap point — the forwarding twin of
    /// [`crate::diffrtt::DelayDetector::overlap`]: stage the pending
    /// bin's shard wave and open the next bin's scatter session (opposite
    /// chunk lane, no compaction) in one split borrow.
    pub(crate) fn overlap<'a>(
        &'a mut self,
        pending: BinId,
        records: &'a [TracerouteRecord],
        chunk_records: usize,
        threads: usize,
    ) -> (ForwardingStage<'a>, Vec<engine::Job<'a>>) {
        let ForwardingDetector { cfg, shards, arena } = self;
        let n = ingest::chunk_count(records.len(), chunk_records);
        let (parts, chunks, view) = arena.split_lanes(n);
        let scatter = ingest::chunk_jobs(
            chunks,
            records,
            chunk_records,
            view,
            |chunk, records, view| chunk.scatter(records, view),
        );
        (build_stage(parts, shards, cfg, pending, threads), scatter)
    }

    /// The original single-threaded, nested-map path — kept as the
    /// reference implementation the engine-parity tests compare the
    /// parallel engine against. Mutates the same sharded state (including
    /// last-seen eviction), so a detector driven exclusively through this
    /// method is a valid (slow) analysis stream.
    pub fn process_bin_sequential(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> Vec<ForwardingAlarm> {
        let patterns = collect_patterns(records);
        let mut alarms = Vec::new();
        for (key, observed) in patterns {
            let shard = &mut self.shards[shard_of_pattern(&key)];
            let entry = shard
                .references
                .entry(key)
                .or_insert_with(|| ReferenceEntry {
                    reference: PatternReference::new(&self.cfg),
                    last_seen: bin,
                });
            if let Some(alarm) = detect::check(&key, bin, &observed, &entry.reference, &self.cfg) {
                alarms.push(alarm);
            }
            entry.reference.update(&observed);
            entry.last_seen = bin;
        }
        for shard in &mut self.shards {
            shard.evict(bin, &self.cfg);
        }
        sort_alarms(&mut alarms);
        alarms
    }

    /// Number of (router, destination) patterns tracked.
    pub fn tracked_patterns(&self) -> usize {
        self.shards.iter().map(|s| s.references.len()).sum()
    }

    /// Mean number of next hops per tracked pattern (Table A statistic:
    /// "on average forwarding models contain four different next hops").
    pub fn mean_next_hops(&self) -> f64 {
        let tracked = self.tracked_patterns();
        if tracked == 0 {
            return 0.0;
        }
        let total: usize = self
            .shards
            .iter()
            .flat_map(|s| s.references.values())
            .map(|e| e.reference.len())
            .sum();
        total as f64 / tracked as f64
    }
}

/// One shard's slice of a staged wave: its per-wave row workspace, its
/// epoch pattern keys (read-only — safe next to a concurrent scatter
/// wave), and its detector state.
pub(crate) struct ForwardingShardTask<'a> {
    idx: usize,
    rows: &'a mut PatternShardRows,
    keys: &'a [PatternKey],
    shard: &'a mut FwdShard,
}

/// One worker's bundle: its round-robin share of shard tasks.
type ForwardingBundle<'a> = Vec<ForwardingShardTask<'a>>;

/// Deal a scattered-and-merged arena into a [`ForwardingStage`] of
/// `threads` round-robin bundles — shared by the serial stage and the
/// overlapped one.
fn build_stage<'a>(
    parts: pattern::PatternArenaParts<'a>,
    shards: &'a mut [FwdShard],
    cfg: &'a DetectorConfig,
    bin: BinId,
    threads: usize,
) -> ForwardingStage<'a> {
    let pattern::PatternArenaParts {
        rows,
        patterns,
        chunks,
        hops,
    } = parts;
    let bundles = engine::round_robin(
        rows.iter_mut()
            .enumerate()
            .zip(shards.iter_mut())
            .map(|((idx, rows), shard)| ForwardingShardTask {
                idx,
                rows,
                keys: patterns[idx].keys(),
                shard,
            }),
        threads,
    );
    ForwardingStage {
        inner: engine::ShardStage::new(bundles),
        cfg,
        bin,
        chunks,
        hops,
    }
}

/// A bin staged for the shared engine — the forwarding twin of
/// [`crate::diffrtt::DelayStage`]: an [`engine::ShardStage`] of shard
/// bundles plus the per-bin inputs every job reads, merged in job order by
/// [`ForwardingStage::finish`].
pub(crate) struct ForwardingStage<'a> {
    inner: engine::ShardStage<ForwardingBundle<'a>, FwdShardOutput>,
    cfg: &'a DetectorConfig,
    bin: BinId,
    chunks: &'a [PatternChunk],
    hops: &'a [NextHop],
}

impl<'a> ForwardingStage<'a> {
    /// One boxed job per shard bundle, each writing into its own output
    /// slot.
    pub(crate) fn jobs<'s>(&'s mut self) -> Vec<engine::Job<'s>> {
        let (cfg, bin, chunks, hops) = (self.cfg, self.bin, self.chunks, self.hops);
        self.inner
            .jobs(move |bundle| run_forwarding_bundle(bundle, cfg, bin, chunks, hops))
    }

    /// Deterministic merge of the executed jobs' outputs.
    pub(crate) fn finish(self) -> Vec<ForwardingAlarm> {
        let mut alarms = Vec::new();
        for out in self.inner.into_outputs() {
            alarms.extend(out.alarms);
        }
        sort_alarms(&mut alarms);
        alarms
    }
}

/// The per-worker shard pipeline: gather each bundled shard's chunk rows
/// in chunk order, group them, then check → alarm → reference-update
/// every pattern, then evict expired references. Shard state arrives by
/// `&mut` — no locks — and every per-pattern decision depends only on
/// `(cfg, key, bin)`, so the caller's in-order merge is independent of
/// the thread count.
fn run_forwarding_bundle(
    bundle: ForwardingBundle<'_>,
    cfg: &DetectorConfig,
    bin: BinId,
    chunks: &[PatternChunk],
    hops: &[NextHop],
) -> FwdShardOutput {
    let mut out = FwdShardOutput::default();
    // Reused across patterns: hop-alignment buffers.
    let mut scratch = detect::AlignScratch::default();
    let radix_min_keys = engine::resolve_radix(cfg.radix_min_keys);
    for ForwardingShardTask {
        idx,
        rows,
        keys,
        shard,
    } in bundle
    {
        rows.gather(idx, chunks);
        rows.finalize(radix_min_keys);
        for j in 0..rows.pattern_count() {
            let slice = rows.pattern_in(j, keys, hops);
            let entry = shard
                .references
                .entry(slice.key)
                .or_insert_with(|| ReferenceEntry {
                    reference: PatternReference::new(cfg),
                    last_seen: bin,
                });
            if let Some(alarm) =
                detect::check_with(&mut scratch, &slice.key, bin, &slice, &entry.reference, cfg)
            {
                out.alarms.push(alarm);
            }
            entry.reference.update_from(slice.iter());
            entry.last_seen = bin;
        }
        shard.evict(bin, cfg);
    }
    out
}

/// Most anti-correlated first; ties broken totally so output order is
/// deterministic regardless of hash-map iteration or shard interleaving.
fn sort_alarms(alarms: &mut [ForwardingAlarm]) {
    alarms.sort_by(|a, b| {
        a.rho
            .partial_cmp(&b.rho)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.router, a.dst).cmp(&(b.router, b.dst)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{Asn, MeasurementId, ProbeId, SimTime};
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// One probe's traceroute through router R whose next hop is `next`.
    fn rec(next: &str) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(1),
            probe_asn: Asn(64500),
            dst: ip("198.51.100.1"),
            timestamp: SimTime(0),
            paris_id: 0,
            hops: vec![
                Hop::new(1, vec![Reply::new(ip("10.0.0.1"), 1.0); 12]),
                Hop::new(2, vec![Reply::new(ip(next), 2.0); 12]),
            ],
            destination_reached: true,
        }
    }

    #[test]
    fn route_change_fires_one_alarm_in_both_paths() {
        let cfg = DetectorConfig::fast_test();
        let mut engine_path = ForwardingDetector::new(&cfg);
        let mut reference_path = ForwardingDetector::new(&cfg);
        for b in 0..6 {
            assert!(engine_path
                .process_bin(BinId(b), &[rec("10.0.1.1")])
                .is_empty());
            assert!(reference_path
                .process_bin_sequential(BinId(b), &[rec("10.0.1.1")])
                .is_empty());
        }
        // All packets move to a new next hop.
        let a = engine_path.process_bin(BinId(6), &[rec("10.0.9.9")]);
        let b = reference_path.process_bin_sequential(BinId(6), &[rec("10.0.9.9")]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(a[0].rho < -0.25);
        assert_eq!(a[0].router, ip("10.0.0.1"));
    }

    #[test]
    fn unseen_references_are_evicted_after_expiry() {
        let mut cfg = DetectorConfig::fast_test();
        cfg.reference_expiry_bins = 4;
        let mut detector = ForwardingDetector::new(&cfg);
        detector.process_bin(BinId(0), &[rec("10.0.1.1")]);
        assert_eq!(detector.tracked_patterns(), 1);
        // Quiet bins: the pattern stops appearing but survives the window…
        for b in 1..=4 {
            detector.process_bin(BinId(b), &[]);
            assert_eq!(detector.tracked_patterns(), 1, "evicted early at bin {b}");
        }
        // …and is evicted one bin past it.
        detector.process_bin(BinId(5), &[]);
        assert_eq!(detector.tracked_patterns(), 0);
    }

    #[test]
    fn eviction_is_identical_in_the_sequential_path() {
        let mut cfg = DetectorConfig::fast_test();
        cfg.reference_expiry_bins = 2;
        let mut engine_path = ForwardingDetector::new(&cfg);
        let mut reference_path = ForwardingDetector::new(&cfg);
        for (b, records) in [
            vec![rec("10.0.1.1")],
            vec![],
            vec![],
            vec![],
            vec![rec("10.0.9.9")],
        ]
        .into_iter()
        .enumerate()
        {
            let a = engine_path.process_bin(BinId(b as u64), &records);
            let s = reference_path.process_bin_sequential(BinId(b as u64), &records);
            assert_eq!(a, s, "bin {b}");
            assert_eq!(
                engine_path.tracked_patterns(),
                reference_path.tracked_patterns(),
                "bin {b}"
            );
        }
        // The reference was evicted before the route change, so bin 4 sees
        // a fresh (unwarmed) reference: no alarm, one tracked pattern.
        assert_eq!(engine_path.tracked_patterns(), 1);
    }

    #[test]
    fn reappearing_pattern_restarts_its_reference() {
        let mut cfg = DetectorConfig::fast_test();
        cfg.reference_expiry_bins = 1;
        let mut detector = ForwardingDetector::new(&cfg);
        for b in 0..3 {
            detector.process_bin(BinId(b), &[rec("10.0.1.1")]);
        }
        for b in 3..6 {
            detector.process_bin(BinId(b), &[]);
        }
        assert_eq!(detector.tracked_patterns(), 0);
        // A completely different next hop right after re-learning must not
        // alarm against the long-gone old reference.
        detector.process_bin(BinId(6), &[rec("10.0.9.9")]);
        let alarms = detector.process_bin(BinId(7), &[rec("10.0.9.9")]);
        assert!(alarms.is_empty());
    }
}
