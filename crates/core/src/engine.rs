//! The shared sharded-execution engine both detectors run on.
//!
//! PR 1 built the delay path as a sharded, allocation-lean, deterministic
//! parallel engine; this module extracts the pieces that are not specific
//! to delay analysis so the forwarding detector (and any future detector,
//! or whole per-stream analyzers) can ride the same machinery:
//!
//! * a fixed shard count ([`NUM_SHARDS`]) with *stable* shard assignment —
//!   [`shard_of_u64`] for keys that pack into a word (IP links),
//!   [`shard_of_hashed`] for arbitrary `Hash` keys (forwarding pattern
//!   keys) via the workspace's deterministic `FxHasher`;
//! * deterministic round-robin work splitting ([`round_robin`]);
//! * a scoped-thread job pool ([`run_jobs`]) that executes boxed shard
//!   jobs from *multiple* detectors on one set of workers, so the delay
//!   and forwarding shards of a bin interleave on the same cores instead
//!   of running as two separate thread herds.
//!
//! Determinism contract: a job must depend only on the state it owns plus
//! `(cfg, bin)`-derived inputs, and callers must merge job outputs in job
//! order (never completion order). Under that contract the thread count is
//! purely a throughput knob — the engine-parity tests prove it.

use pinpoint_model::BinId;
use std::hash::{BuildHasher, BuildHasherDefault};

/// Number of state shards per detector. Fixed (not tied to the thread
/// count) so a key lives in the same shard no matter how many workers run,
/// and high enough to keep any realistic core count busy.
pub(crate) const NUM_SHARDS: usize = 32;

/// Resolve a `threads` knob (`0` = all available cores) into a worker
/// count, clamped to the range useful for shard-granular work. Every
/// consumer of the engine (both detectors, the analyzer, the stream
/// router) resolves through this one function so the fleet can never
/// silently run a different worker count than a solo analyzer configured
/// the same way.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    threads.clamp(1, NUM_SHARDS)
}

/// The shared reference-expiry clock: true when `last_seen` is more than
/// `expiry_bins` bins behind `now`. Both detectors' eviction sweeps use
/// this one boundary predicate so their aging semantics cannot drift.
pub(crate) fn reference_expired(now: BinId, last_seen: BinId, expiry_bins: usize) -> bool {
    now.0.saturating_sub(last_seen.0) > expiry_bins as u64
}

/// Resolve a pipeline-depth knob (`0` = engine default) into the depth of
/// the cross-bin pipelined executor: `1` runs bins strictly serially
/// (ingest → analyze → ingest …), `2` overlaps bin *n+1*'s scatter chunks
/// with bin *n*'s shard jobs on one worker herd. Deeper pipelines would
/// need a third chunk lane without buying more overlap (the serial merge
/// fences every bin anyway), so the depth clamps to 2. Purely a
/// throughput knob — output is byte-identical for every value.
pub(crate) fn resolve_depth(depth: usize) -> usize {
    if depth == 0 {
        2
    } else {
        depth.clamp(1, 2)
    }
}

/// Resolve the *effective* schedule for a `(depth, threads)` knob pair.
/// The overlapped depth-2 executor exists to run bin *n+1*'s scatter
/// chunks while other workers grind bin *n*'s shard jobs; a resolved
/// single-worker herd has nothing to overlap, so the two-lane schedule
/// can only pay its own costs (the chunk lanes ping-pong, leaving each
/// lane's buffers cache-cold every other bin) and measures strictly
/// slower than running serially. Collapse it to the serial schedule
/// there. Reports stay byte-identical — the only visible difference is
/// cadence: the serial schedule returns each bin's report on its own
/// push instead of one push later, and `depth()` reports `1`.
pub(crate) fn resolve_schedule(depth: usize, threads: usize) -> usize {
    if resolve_threads(threads) == 1 {
        1
    } else {
        resolve_depth(depth)
    }
}

/// Resolve the `radix_min_keys` knob (`0` = engine default) into the
/// smallest per-shard element count at which the grouping paths switch
/// from the comparison sort to the stable LSD radix sort. The default is
/// [`pinpoint_stats::radix::RADIX_MIN_KEYS`] — below it the histogram
/// pre-pass costs more than the comparison sort saves. `1` forces radix
/// everywhere, `usize::MAX` disables it. Purely a throughput knob:
/// radix is stable and the gathered input is in record order, so the
/// grouped output is identical either way (`tests/engine_parity.rs`
/// sweeps `PINPOINT_RADIX` through the CI matrix to prove it).
pub(crate) fn resolve_radix(radix_min_keys: usize) -> usize {
    if radix_min_keys == 0 {
        pinpoint_stats::radix::RADIX_MIN_KEYS
    } else {
        radix_min_keys
    }
}

/// Stable shard assignment for word-packable keys: one SplitMix64 round.
/// Must not involve `RandomState` or anything process-seeded — determinism
/// across runs and thread counts depends on it.
pub(crate) fn shard_of_u64(key: u64) -> usize {
    (pinpoint_stats::SplitMix64::new(key).next_raw() % NUM_SHARDS as u64) as usize
}

/// Stable shard assignment for arbitrary hashable keys, via the
/// workspace's deterministic [`FxHasher`](pinpoint_model::hash::FxHasher).
pub(crate) fn shard_of_hashed<T: std::hash::Hash>(key: &T) -> usize {
    let h = BuildHasherDefault::<pinpoint_model::hash::FxHasher>::default().hash_one(key);
    (h % NUM_SHARDS as u64) as usize
}

/// Deal `items` into `ways` buckets round-robin, preserving order within
/// each bucket. Deterministic: bucket `w` gets items `w, w+ways, …`.
pub(crate) fn round_robin<T>(items: impl IntoIterator<Item = T>, ways: usize) -> Vec<Vec<T>> {
    let ways = ways.max(1);
    let mut out: Vec<Vec<T>> = (0..ways).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % ways].push(item);
    }
    out
}

/// One unit of shard work: owns its slice of detector state (handed out by
/// `&mut` — no locks) and writes its result into a caller-provided slot.
pub(crate) type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

/// The bundles-and-slots skeleton every staged detector shares: per-worker
/// shard bundles going in, one output slot per bundle coming back. Holds
/// the two invariants of the determinism contract in one place — each
/// bundle becomes exactly one job ([`ShardStage::jobs`] consumes the
/// bundles, so it runs at most once per stage), and outputs are read back
/// in job order, never completion order ([`ShardStage::into_outputs`]).
pub(crate) struct ShardStage<B, O> {
    bundles: Vec<B>,
    outputs: Vec<Option<O>>,
}

impl<B, O> ShardStage<B, O> {
    /// Stage the dealt bundles.
    pub(crate) fn new(bundles: Vec<B>) -> Self {
        ShardStage {
            bundles,
            outputs: Vec::new(),
        }
    }

    /// One boxed job per bundle, each running `run` and writing into its
    /// own output slot.
    pub(crate) fn jobs<'s, F>(&'s mut self, run: F) -> Vec<Job<'s>>
    where
        B: Send + 's,
        O: Send + 's,
        F: Fn(B) -> O + Copy + Send + 's,
    {
        let bundles = std::mem::take(&mut self.bundles);
        self.outputs = (0..bundles.len()).map(|_| None).collect();
        bundles
            .into_iter()
            .zip(self.outputs.iter_mut())
            .map(|(bundle, slot)| {
                Box::new(move || {
                    *slot = Some(run(bundle));
                }) as Job<'s>
            })
            .collect()
    }

    /// The executed jobs' outputs, in job order.
    pub(crate) fn into_outputs(self) -> impl Iterator<Item = O> {
        self.outputs.into_iter().flatten()
    }
}

/// The two-lane wave: one collection of jobs executed as a single
/// `run_jobs` call on one worker herd, with an *analysis* lane (the
/// pending bin's shard jobs — the critical path, since its report is
/// emitted right after the wave) dealt ahead of a *scatter* lane (the
/// next bin's chunk jobs, which only need to finish before that bin's
/// merge). Round-robin dealing preserves job order per worker, so every
/// worker drains its share of analysis jobs before touching prefetch
/// work — a priority rule, not a barrier: an idle worker starts scatter
/// chunks while its peers still grind shards.
///
/// Both the serial per-bin flow (scatter wave, then shard wave — each a
/// single-lane instance) and the cross-bin pipelined executor (shards of
/// bin *n* ∥ scatter of bin *n+1*) stage through this type, so there is
/// exactly one dealing rule to reason about. Determinism is inherited
/// from [`run_jobs`]: jobs in either lane touch disjoint state, so lane
/// interleaving is invisible in the output.
pub(crate) struct Wave<'a> {
    analysis: Vec<Job<'a>>,
    scatter: Vec<Job<'a>>,
}

impl<'a> Wave<'a> {
    /// An empty wave.
    pub(crate) fn new() -> Self {
        Wave {
            analysis: Vec::new(),
            scatter: Vec::new(),
        }
    }

    /// Add shard jobs of a bin under analysis (dealt first).
    pub(crate) fn push_analysis(&mut self, jobs: Vec<Job<'a>>) {
        self.analysis.extend(jobs);
    }

    /// Add scatter-chunk jobs of a bin being ingested (dealt after the
    /// analysis lane).
    pub(crate) fn push_scatter(&mut self, jobs: Vec<Job<'a>>) {
        self.scatter.extend(jobs);
    }

    /// Run both lanes as one wave on `threads` pooled workers.
    pub(crate) fn run(self, threads: usize) {
        let Wave {
            mut analysis,
            scatter,
        } = self;
        analysis.extend(scatter);
        run_jobs(analysis, threads);
    }
}

/// Run `jobs` on `threads` scoped workers.
///
/// Jobs are dealt to workers round-robin by index and each worker runs its
/// share *in order*, so which OS thread executes a job is a pure function
/// of `(job index, thread count)` — nothing is work-stolen, nothing races.
/// With `threads <= 1` everything runs inline on the caller's thread (no
/// spawn overhead, identical results); with fewer jobs than workers only
/// `jobs.len()` threads are spawned (an empty round-robin queue is a
/// spawn+join for nothing — incremental ingestion feeds many tiny waves).
pub(crate) fn run_jobs(jobs: Vec<Job<'_>>, threads: usize) {
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            job();
        }
        return;
    }
    let workers = threads.min(jobs.len());
    let queues = round_robin(jobs, workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|queue| {
                scope.spawn(move || {
                    for job in queue {
                        job();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("engine worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_deterministic_and_complete() {
        let buckets = round_robin(0..10, 3);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], vec![0, 3, 6, 9]);
        assert_eq!(buckets[1], vec![1, 4, 7]);
        assert_eq!(buckets[2], vec![2, 5, 8]);
        // Degenerate ways.
        assert_eq!(round_robin(0..3, 0).len(), 1);
    }

    #[test]
    fn shard_assignments_are_stable_and_in_range() {
        for k in 0..1000u64 {
            let s = shard_of_u64(k);
            assert!(s < NUM_SHARDS);
            assert_eq!(s, shard_of_u64(k));
        }
        let key = ("10.0.0.1".parse::<std::net::Ipv4Addr>().unwrap(), 7u32);
        assert_eq!(shard_of_hashed(&key), shard_of_hashed(&key));
        assert!(shard_of_hashed(&key) < NUM_SHARDS);
    }

    #[test]
    fn depth_resolution_defaults_and_clamps() {
        assert_eq!(resolve_depth(0), 2, "auto is the overlapped executor");
        assert_eq!(resolve_depth(1), 1);
        assert_eq!(resolve_depth(2), 2);
        assert_eq!(resolve_depth(9), 2, "deeper than 2 buys nothing");
    }

    #[test]
    fn schedule_collapses_to_serial_on_one_worker() {
        assert_eq!(
            resolve_schedule(2, 1),
            1,
            "one worker has nothing to overlap"
        );
        assert_eq!(resolve_schedule(0, 1), 1);
        assert_eq!(resolve_schedule(2, 2), 2);
        assert_eq!(resolve_schedule(0, 2), 2, "auto stays overlapped");
        assert_eq!(resolve_schedule(1, 8), 1, "explicit serial is honored");
    }

    #[test]
    fn radix_resolution_defaults_and_extremes() {
        assert_eq!(
            resolve_radix(0),
            pinpoint_stats::radix::RADIX_MIN_KEYS,
            "auto is the stats-crate fallback boundary"
        );
        assert_eq!(resolve_radix(1), 1, "1 forces radix everywhere");
        assert_eq!(resolve_radix(usize::MAX), usize::MAX, "MAX disables radix");
    }

    #[test]
    fn wave_runs_analysis_lane_before_scatter_lane_per_worker() {
        // Single worker → strict total order: all analysis jobs first.
        let log = std::sync::Mutex::new(Vec::new());
        let mut wave = Wave::new();
        let log_ref = &log;
        wave.push_scatter(
            (0..3)
                .map(|i| Box::new(move || log_ref.lock().unwrap().push(10 + i)) as Job)
                .collect(),
        );
        wave.push_analysis(
            (0..2)
                .map(|i| Box::new(move || log_ref.lock().unwrap().push(i)) as Job)
                .collect(),
        );
        wave.run(1);
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 10, 11, 12]);
    }

    #[test]
    fn run_jobs_executes_everything_once_per_thread_count() {
        for threads in [1usize, 2, 3, 8] {
            let slots: Vec<std::sync::Mutex<usize>> =
                (0..10).map(|_| std::sync::Mutex::new(0)).collect();
            let jobs: Vec<Job> = slots
                .iter()
                .map(|slot| Box::new(move || *slot.lock().unwrap() += 1) as Job)
                .collect();
            run_jobs(jobs, threads);
            for slot in &slots {
                assert_eq!(*slot.lock().unwrap(), 1, "threads={threads}");
            }
        }
    }
}
