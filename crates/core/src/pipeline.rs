//! The end-to-end analysis pipeline.
//!
//! [`Analyzer`] owns both detectors, the IP→AS mapper, and the magnitude
//! tracker; [`Analyzer::process_bin`] runs one analysis bin through all of
//! §4–§6 and returns a [`BinReport`]. Feed it bins in order — the
//! references and sliding windows are stateful, exactly like the online
//! deployment of §8 consuming the Atlas stream.
//!
//! Records can also arrive incrementally, as they do from the streaming
//! Atlas API: open a bin with [`Analyzer::begin_bin`], feed record slices
//! with [`Analyzer::ingest`] as they land, and close it with
//! [`Analyzer::finish_bin`]. Because the chunked scatter front-end
//! concatenates per-shard rows in chunk (= arrival) order, the report is
//! byte-identical to a batch [`Analyzer::process_bin`] over the
//! concatenated records, no matter how the feed was sliced — see
//! `examples/chunked_ingest.rs`.
//!
//! For continuous streams there is also the cross-bin pipelined executor
//! ([`Analyzer::pipelined`] → [`PipelinedDriver`]): bin *n+1*'s
//! ingestion runs overlapped with bin *n*'s analysis on one worker herd,
//! with reports still emitted strictly in bin order and byte-identical
//! to the serial schedule — see `examples/pipelined_stream.rs` and the
//! executor section in `src/README.md`.

use crate::aggregate::{
    delay_severity, forwarding_severity, AsMagnitude, AsMapper, EmpathyExtractor, FleetEvent,
    MagnitudeTracker, StreamEvidence,
};
use crate::config::DetectorConfig;
use crate::diffrtt::{DelayAlarm, DelayDetector, LinkStat};
use crate::forwarding::{ForwardingAlarm, ForwardingDetector};
use crate::graph::AlarmGraph;
use crate::sanitize::{SanitizeStats, Sanitizer};
use crate::snapshot::{self, Reader, SnapshotError, Writer};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, BinId, IpLink, Prefix};
use std::collections::{BTreeMap, HashMap};

/// Everything the pipeline learned from one bin.
///
/// Every field is public data (the serde derives come through the
/// workspace's offline shim; the canonical wire format is
/// [`crate::render::bin_report`]).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct BinReport {
    /// The bin analyzed.
    pub bin: BinId,
    /// Delay-change alarms, strongest first.
    pub delay_alarms: Vec<DelayAlarm>,
    /// Forwarding anomalies, most anti-correlated first.
    pub forwarding_alarms: Vec<ForwardingAlarm>,
    /// Per-link robust statistics (all characterized links, alarmed or not).
    pub link_stats: HashMap<IpLink, LinkStat>,
    /// Per-AS severities and magnitudes.
    pub magnitudes: BTreeMap<Asn, AsMagnitude>,
    /// Number of traceroutes consumed.
    pub records: usize,
    /// This bin's event deltas from the incremental empathy extractor
    /// (events opened, updated, or closed by this bin, ascending id) —
    /// the per-bin slice of the event channel.
    pub events: Vec<FleetEvent>,
}

impl BinReport {
    /// The alarm graph of this bin (delay edges + forwarding flags).
    pub fn alarm_graph(&self) -> AlarmGraph {
        let mut g = AlarmGraph::new();
        g.add_delay_alarms(&self.delay_alarms);
        g.add_forwarding_alarms(&self.forwarding_alarms);
        g
    }

    /// Magnitudes of one AS, if tracked.
    pub fn magnitude(&self, asn: Asn) -> Option<&AsMagnitude> {
        self.magnitudes.get(&asn)
    }
}

/// An open incremental-ingestion bin (see [`Analyzer::begin_bin`]).
#[derive(Debug, Clone, Copy)]
struct IngestSession {
    bin: BinId,
    records: usize,
}

/// The stateful §4–§6 pipeline.
#[derive(Debug)]
pub struct Analyzer {
    cfg: DetectorConfig,
    delay: DelayDetector,
    forwarding: ForwardingDetector,
    sanitizer: Sanitizer,
    mapper: AsMapper,
    magnitudes: MagnitudeTracker,
    events: EmpathyExtractor,
    session: Option<IngestSession>,
}

impl Analyzer {
    /// Create an analyzer. The `mapper` provides the §6 IP→AS grouping
    /// (from a RIB dump in production; from simulator ground truth here).
    ///
    /// # Panics
    /// When the configuration fails [`DetectorConfig::validate`] — a
    /// degenerate knob (zero expiry, NaN threshold, …) would silently
    /// produce garbage, so construction fails loudly with the knob named.
    pub fn new(cfg: DetectorConfig, mapper: AsMapper) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid DetectorConfig: {msg}");
        }
        Analyzer {
            delay: DelayDetector::new(&cfg),
            forwarding: ForwardingDetector::new(&cfg),
            sanitizer: Sanitizer::default(),
            magnitudes: MagnitudeTracker::new(cfg.magnitude_window_bins),
            events: EmpathyExtractor::new(&cfg),
            cfg,
            mapper,
            session: None,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Pre-register ASes for magnitude tracking from bin zero.
    pub fn register_ases<I: IntoIterator<Item = Asn>>(&mut self, ases: I) {
        self.magnitudes.register(ases);
    }

    /// Run one bin through the full pipeline.
    ///
    /// The bin runs as two waves on ONE scoped worker pool
    /// (`crate::engine`). First the ingestion wave: both detectors' record
    /// chunks scatter in parallel against their persistent intern tables
    /// ([`Analyzer::scatter_jobs`]), followed by the short sequential
    /// chunk-ordered intern merge. Then the shard wave: every worker
    /// interleaves delay-link shards and forwarding-pattern shards
    /// (§4 ∥ §5) instead of the two detectors racing on separate thread
    /// herds. The §6 aggregation joins their outputs. Output is
    /// byte-identical to the sequential ordering, for any thread count
    /// and any chunk size.
    ///
    /// A fleet of analyzers shares one pool the same way: see
    /// [`crate::stream::StreamRouter`], which pools every member's
    /// scatter chunks in one wave and every member's shard jobs in the
    /// next.
    pub fn process_bin(&mut self, bin: BinId, records: &[TracerouteRecord]) -> BinReport {
        assert!(
            self.session.is_none(),
            "process_bin called while an incremental bin is open (finish_bin first)"
        );
        let threads = crate::engine::resolve_threads(self.cfg.threads);
        let jobs = self.scatter_jobs(bin, records, threads);
        crate::engine::run_jobs(jobs, threads);
        self.merge_scatter(bin);
        let staged = {
            let mut stage = self.stage(bin, threads);
            let jobs = stage.jobs();
            crate::engine::run_jobs(jobs, threads);
            stage.finish()
        };
        self.stamp_bin(bin);
        self.absorb(bin, records.len(), staged)
    }

    /// Open one bin's ingestion (compact intern epochs, start scatter
    /// sessions) and return both detectors' chunk jobs for the records.
    /// The caller runs them on a pool of its choice, then calls
    /// [`Analyzer::merge_scatter`] — the stream router uses this to pool
    /// the scatter chunks of a whole fleet into one wave.
    pub(crate) fn scatter_jobs<'a>(
        &'a mut self,
        bin: BinId,
        records: &'a [TracerouteRecord],
        threads: usize,
    ) -> Vec<crate::engine::Job<'a>> {
        self.open_scatter(bin, records, true, threads)
    }

    /// [`Analyzer::scatter_jobs`] with the compaction sweep optional: the
    /// pipelined driver opens post-drain bins with `compact: false`
    /// because it has already swept both epochs at the fence.
    pub(crate) fn open_scatter<'a>(
        &'a mut self,
        bin: BinId,
        records: &'a [TracerouteRecord],
        compact: bool,
        threads: usize,
    ) -> Vec<crate::engine::Job<'a>> {
        let chunk = crate::ingest::resolve_chunk_for(self.cfg.ingest_chunk_records, threads);
        let Analyzer {
            delay,
            forwarding,
            sanitizer,
            cfg,
            ..
        } = self;
        if compact {
            delay.compact_epoch(bin);
            forwarding.compact_epoch(bin);
        }
        delay.begin_bin();
        forwarding.begin_bin();
        sanitizer.begin_bin();
        let clean = sanitizer.sanitize(records, cfg);
        let mut jobs = delay.scatter_jobs(clean, chunk);
        jobs.extend(forwarding.scatter_jobs(clean, chunk));
        jobs
    }

    /// The depth-2 overlap point: stage the *pending* bin's shard jobs
    /// (both detectors) and open the next bin's scatter session in one
    /// split borrow, so one two-lane engine wave can run them together.
    /// No compaction happens here — callers fence with
    /// [`Analyzer::needs_compaction`] / [`Analyzer::compact_epochs`].
    pub(crate) fn overlap_wave<'a>(
        &'a mut self,
        pending: BinId,
        records: &'a [TracerouteRecord],
        threads: usize,
    ) -> (AnalyzerStage<'a>, Vec<crate::engine::Job<'a>>) {
        let chunk = crate::ingest::resolve_chunk_for(self.cfg.ingest_chunk_records, threads);
        let Analyzer {
            delay,
            forwarding,
            sanitizer,
            cfg,
            ..
        } = self;
        // The pending bin's rows are already scattered into the arenas,
        // so reusing the sanitizer's buffer for the next bin is safe.
        sanitizer.begin_bin();
        let clean = sanitizer.sanitize(records, cfg);
        let (delay_stage, mut scatter) = delay.overlap(pending, clean, chunk, threads);
        let (forwarding_stage, fwd_scatter) = forwarding.overlap(pending, clean, chunk, threads);
        scatter.extend(fwd_scatter);
        (
            AnalyzerStage {
                delay: delay_stage,
                forwarding: forwarding_stage,
            },
            scatter,
        )
    }

    /// The pipelined executor's fence predicate: whether either
    /// detector's intern epoch holds an *overdue* key (a sweep may only
    /// run in a drained gap; see
    /// [`crate::diffrtt::DelayDetector::needs_compaction`] for the
    /// tolerant bound accounting for the pending bin's unstamped
    /// observations).
    pub(crate) fn needs_compaction(&self, bin: BinId) -> bool {
        self.delay.needs_compaction(bin) || self.forwarding.needs_compaction(bin)
    }

    /// Compact both detectors' intern epochs at `bin`. Must run in a
    /// drained gap — no bin's scattered rows in flight.
    pub(crate) fn compact_epochs(&mut self, bin: BinId) {
        self.delay.compact_epoch(bin);
        self.forwarding.compact_epoch(bin);
    }

    /// The serial fence after a bin's shard wave: stamp every observed
    /// link and pattern in the epoch tables. Must run before any
    /// compaction decision for a later bin.
    pub(crate) fn stamp_bin(&mut self, bin: BinId) {
        self.delay.stamp_bin(bin);
        self.forwarding.stamp_bin(bin);
    }

    /// The sequential chunk-ordered intern merge between the scatter wave
    /// and the shard wave, for both detectors.
    pub(crate) fn merge_scatter(&mut self, bin: BinId) {
        self.delay.merge_scatter(bin);
        self.forwarding.merge_scatter(bin);
    }

    /// Open a bin for incremental ingestion. Feed record slices with
    /// [`Analyzer::ingest`] as they arrive, then close the bin with
    /// [`Analyzer::finish_bin`]. The resulting report is byte-identical
    /// to [`Analyzer::process_bin`] over the concatenated records.
    ///
    /// # Panics
    /// When a previous incremental bin is still open.
    pub fn begin_bin(&mut self, bin: BinId) {
        assert!(
            self.session.is_none(),
            "begin_bin called while a bin is already open (finish_bin first)"
        );
        self.delay.compact_epoch(bin);
        self.forwarding.compact_epoch(bin);
        self.delay.begin_bin();
        self.forwarding.begin_bin();
        self.sanitizer.begin_bin();
        self.session = Some(IngestSession { bin, records: 0 });
    }

    /// Scatter one slice of the open bin's records (in arrival order)
    /// through both detectors' chunked front-ends, on the engine pool.
    ///
    /// # Panics
    /// Without an open [`Analyzer::begin_bin`] session.
    pub fn ingest(&mut self, records: &[TracerouteRecord]) {
        {
            let session = self
                .session
                .as_mut()
                .expect("ingest called without begin_bin");
            session.records += records.len();
        }
        let threads = crate::engine::resolve_threads(self.cfg.threads);
        let chunk = crate::ingest::resolve_chunk_for(self.cfg.ingest_chunk_records, threads);
        let Analyzer {
            delay,
            forwarding,
            sanitizer,
            cfg,
            ..
        } = self;
        let clean = sanitizer.sanitize(records, cfg);
        let mut jobs = delay.scatter_jobs(clean, chunk);
        jobs.extend(forwarding.scatter_jobs(clean, chunk));
        crate::engine::run_jobs(jobs, threads);
    }

    /// Close the open incremental bin: merge the intern epochs, run the
    /// shard wave, and aggregate the [`BinReport`].
    ///
    /// # Panics
    /// Without an open [`Analyzer::begin_bin`] session.
    pub fn finish_bin(&mut self) -> BinReport {
        let IngestSession { bin, records } = self
            .session
            .take()
            .expect("finish_bin called without begin_bin");
        let threads = crate::engine::resolve_threads(self.cfg.threads);
        self.merge_scatter(bin);
        let staged = {
            let mut stage = self.stage(bin, threads);
            let jobs = stage.jobs();
            crate::engine::run_jobs(jobs, threads);
            stage.finish()
        };
        self.stamp_bin(bin);
        self.absorb(bin, records, staged)
    }

    /// Interning-epoch counters summed over both detectors' arenas. A
    /// steady-state bin — every link, probe, pattern, and next hop
    /// already interned — shows `bin_insertions == 0`.
    pub fn ingest_stats(&self) -> crate::ingest::IngestStats {
        self.delay
            .ingest_stats()
            .merged(self.forwarding.ingest_stats())
    }

    /// Sanitizer counters: records inspected, quarantined (by reason),
    /// and repaired. The `bin_*` fields describe the most recently
    /// *opened* bin — under the depth-2 pipelined executor that is the
    /// in-flight bin, one ahead of the last report; the cumulative
    /// fields are schedule-independent.
    pub fn sanitize_stats(&self) -> SanitizeStats {
        self.sanitizer.stats()
    }

    /// Stage one bin's shard work for the shared engine without running
    /// it (after the scatter wave and [`Analyzer::merge_scatter`]). The
    /// caller decides which pool executes the jobs — [`Analyzer::
    /// process_bin`] runs its own, the stream router pools the jobs of a
    /// whole fleet — then collects with [`AnalyzerStage::finish`] and
    /// hands the result back through [`Analyzer::absorb`].
    pub(crate) fn stage<'a>(&'a mut self, bin: BinId, threads: usize) -> AnalyzerStage<'a> {
        let Analyzer {
            delay, forwarding, ..
        } = self;
        AnalyzerStage {
            delay: delay.stage(bin, threads),
            forwarding: forwarding.stage(bin, threads),
        }
    }

    /// Fold one staged bin's detector outputs into the analyzer's stateful
    /// trackers and aggregate them into a [`BinReport`] (§6).
    pub(crate) fn absorb(&mut self, bin: BinId, records: usize, staged: StagedBin) -> BinReport {
        self.delay.links_seen += staged.new_links;
        self.aggregate(
            bin,
            records,
            staged.delay_alarms,
            staged.link_stats,
            staged.forwarding_alarms,
        )
    }

    /// Single-threaded reference path: nested-map sample and pattern
    /// stores, full-sort characterization, detectors run back to back.
    /// Exists so the parity tests can prove the parallel engine produces
    /// identical [`BinReport`]s (and so the benches have a baseline to
    /// beat).
    pub fn process_bin_sequential(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> BinReport {
        assert!(
            self.session.is_none(),
            "process_bin_sequential called while an incremental bin is open (finish_bin first)"
        );
        let (delay_alarms, link_stats, forwarding_alarms) = {
            let Analyzer {
                delay,
                forwarding,
                sanitizer,
                cfg,
                ..
            } = &mut *self;
            sanitizer.begin_bin();
            let clean = sanitizer.sanitize(records, cfg);
            let (delay_alarms, link_stats) = delay.process_bin_sequential(bin, clean);
            let forwarding_alarms = forwarding.process_bin_sequential(bin, clean);
            (delay_alarms, link_stats, forwarding_alarms)
        };
        self.aggregate(
            bin,
            records.len(),
            delay_alarms,
            link_stats,
            forwarding_alarms,
        )
    }

    fn aggregate(
        &mut self,
        bin: BinId,
        records: usize,
        delay_alarms: Vec<DelayAlarm>,
        link_stats: HashMap<IpLink, LinkStat>,
        forwarding_alarms: Vec<ForwardingAlarm>,
    ) -> BinReport {
        let dsev = delay_severity(&delay_alarms, &self.mapper);
        let fsev = forwarding_severity(&forwarding_alarms, &self.mapper);
        let magnitudes = self.magnitudes.score_bin(&dsev, &fsev);
        // The event channel updates here — the single funnel every
        // execution path (batch, incremental, pipelined) flows through,
        // so the deltas are deterministic by construction.
        let events = self.events.observe(
            bin,
            &[StreamEvidence {
                delay: &delay_alarms,
                forwarding: &forwarding_alarms,
                mapper: &self.mapper,
            }],
            &magnitudes,
        );
        BinReport {
            bin,
            delay_alarms,
            forwarding_alarms,
            link_stats,
            magnitudes,
            records,
            events,
        }
    }

    /// The cross-bin pipelined executor over this analyzer: feed bins in
    /// order with [`PipelinedDriver::push_bin`] and reports come back in
    /// bin order, one bin behind at depth 2 — while bin *n*'s delay and
    /// forwarding shard jobs run, bin *n+1*'s scatter chunks run on the
    /// same worker herd. `depth` follows the usual knob convention: `0`
    /// resolves through [`DetectorConfig::pipeline_depth`] (whose own `0`
    /// means the engine default, depth 2); `1` is the strictly serial
    /// schedule; anything deeper clamps to 2; and a resolved one-worker
    /// herd always collapses to the serial schedule (nothing to overlap —
    /// see `engine::resolve_schedule`). Output is byte-identical to
    /// [`Analyzer::process_bin`] for every depth — the determinism
    /// contract's pipelining rule (see `src/README.md`).
    ///
    /// # Panics
    /// When an incremental [`Analyzer::begin_bin`] session is open.
    pub fn pipelined(&mut self, depth: usize) -> PipelinedDriver<'_> {
        assert!(
            self.session.is_none(),
            "pipelined called while an incremental bin is open (finish_bin first)"
        );
        let depth = crate::engine::resolve_schedule(
            if depth == 0 {
                self.cfg.pipeline_depth
            } else {
                depth
            },
            self.cfg.threads,
        );
        PipelinedDriver {
            analyzer: self,
            depth,
            pending: None,
            last: None,
        }
    }

    /// The unified [`crate::session::AnalysisSession`] over this
    /// analyzer — the one entry path behind batch, incremental, and
    /// pipelined use (see the [`crate::session`] docs). `depth` resolves
    /// like [`Analyzer::pipelined`]: `0` falls through to
    /// [`DetectorConfig::pipeline_depth`] (whose own `0` means the
    /// engine default, 2); `1` is the strictly serial schedule.
    ///
    /// # Panics
    /// When an incremental [`Analyzer::begin_bin`] session is open.
    pub fn session(&mut self, depth: usize) -> crate::session::AnalyzerSession<'_> {
        crate::session::AnalyzerSession::new(self, depth)
    }

    /// Serialize the analyzer's complete resumable state into a
    /// self-contained byte snapshot.
    ///
    /// The snapshot determinism rule (see [`crate::snapshot`]): the same
    /// analytic state always yields the same bytes, regardless of how
    /// many threads, what chunk size, which pipeline depth, or which
    /// radix threshold produced it — the four throughput knobs are
    /// normalized out, and every map is serialized in sorted or dense-id
    /// order. Restoring and feeding the remaining bins yields reports
    /// byte-identical to the uninterrupted run.
    ///
    /// # Panics
    /// When an incremental [`Analyzer::begin_bin`] session is open — a
    /// half-scattered bin is not resumable state; close it first.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::with_header(snapshot::KIND_ANALYZER);
        self.snapshot_body(&mut w);
        w.into_bytes()
    }

    /// Write the analyzer's state without the container header — the
    /// stream router embeds many of these in one fleet snapshot.
    pub(crate) fn snapshot_body(&self, w: &mut Writer) {
        assert!(
            self.session.is_none(),
            "snapshot called while an incremental bin is open (finish_bin first)"
        );
        self.cfg.snapshot_into(w);
        let prefixes = self.mapper.prefixes();
        w.seq(prefixes.len());
        for (prefix, asn) in prefixes {
            w.ip(prefix.network());
            w.u8(prefix.len());
            w.u32(asn.0);
        }
        self.delay.snapshot_into(w);
        self.forwarding.snapshot_into(w);
        let s = self.sanitizer.stats();
        for v in [
            s.bin_records,
            s.bin_quarantined,
            s.bin_repaired,
            s.records,
            s.quarantined_loops,
            s.quarantined_rtt,
            s.quarantined_inversions,
            s.quarantined_hops,
            s.repaired,
        ] {
            w.u64(v);
        }
        self.magnitudes.snapshot_into(w);
        self.events.snapshot_into(w);
    }

    /// Rebuild an analyzer from [`Analyzer::snapshot`] bytes. The
    /// restored analyzer picks up exactly where the snapshot was taken:
    /// feeding it the remaining bins produces reports byte-identical to
    /// the uninterrupted run.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::restore_with(bytes, |_| {})
    }

    /// [`Analyzer::restore`] with a configuration hook, for re-pinning
    /// the throughput knobs (`threads`, `ingest_chunk_records`,
    /// `pipeline_depth`, `radix_min_keys`) that snapshots normalize to
    /// "auto". Analytic knobs can also be inspected here, but changing
    /// them mid-stream voids the byte-parity contract.
    pub fn restore_with(
        bytes: &[u8],
        tune: impl FnOnce(&mut DetectorConfig),
    ) -> Result<Self, SnapshotError> {
        let (kind, mut r) = Reader::open(bytes)?;
        if kind != snapshot::KIND_ANALYZER {
            return Err(SnapshotError::Corrupt("not an analyzer snapshot"));
        }
        let analyzer = Self::restore_body(&mut r, tune)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(analyzer)
    }

    /// Read one analyzer body (the [`Analyzer::snapshot_body`] layout).
    pub(crate) fn restore_body(
        r: &mut Reader<'_>,
        tune: impl FnOnce(&mut DetectorConfig),
    ) -> Result<Self, SnapshotError> {
        let mut cfg = DetectorConfig::restore_from(r)?;
        tune(&mut cfg);
        if cfg.validate().is_err() {
            return Err(SnapshotError::Corrupt("invalid config"));
        }
        let n = r.seq()?;
        let mut mapper = AsMapper::new();
        for _ in 0..n {
            let addr = r.ip()?;
            let len = r.u8()?;
            if len > 32 {
                return Err(SnapshotError::Corrupt("prefix length"));
            }
            let asn = Asn(r.u32()?);
            mapper.insert(Prefix::new(addr, len), asn);
        }
        let delay = DelayDetector::restore_from(r, &cfg)?;
        let forwarding = ForwardingDetector::restore_from(r, &cfg)?;
        let stats = SanitizeStats {
            bin_records: r.u64()?,
            bin_quarantined: r.u64()?,
            bin_repaired: r.u64()?,
            records: r.u64()?,
            quarantined_loops: r.u64()?,
            quarantined_rtt: r.u64()?,
            quarantined_inversions: r.u64()?,
            quarantined_hops: r.u64()?,
            repaired: r.u64()?,
        };
        let magnitudes = MagnitudeTracker::restore_from(r)?;
        let events = EmpathyExtractor::restore_from(r)?;
        Ok(Analyzer {
            cfg,
            delay,
            forwarding,
            sanitizer: Sanitizer::from_stats(stats),
            mapper,
            magnitudes,
            events,
            session: None,
        })
    }

    /// Number of links with a learned delay reference.
    pub fn tracked_links(&self) -> usize {
        self.delay.tracked_links()
    }

    /// Number of (router, destination) forwarding models.
    pub fn tracked_patterns(&self) -> usize {
        self.forwarding.tracked_patterns()
    }

    /// Mean next hops per forwarding model (Table A).
    pub fn mean_next_hops(&self) -> f64 {
        self.forwarding.mean_next_hops()
    }

    /// The IP→AS mapper.
    pub fn mapper(&self) -> &AsMapper {
        &self.mapper
    }

    /// The event channel's cumulative view: every event extracted so
    /// far (open and closed), ranked by severity. The per-bin deltas
    /// ride on [`BinReport::events`].
    pub fn events(&self) -> Vec<FleetEvent> {
        self.events.events()
    }

    /// Events currently open.
    pub fn open_events(&self) -> usize {
        self.events.open_count()
    }
}

/// One analyzer's bin, staged for the shared engine: the delay and
/// forwarding stages side by side. [`AnalyzerStage::jobs`] hands out every
/// boxed shard job of both detectors; after the pool ran them,
/// [`AnalyzerStage::finish`] merges each detector's outputs in job order.
pub(crate) struct AnalyzerStage<'a> {
    delay: crate::diffrtt::DelayStage<'a>,
    forwarding: crate::forwarding::ForwardingStage<'a>,
}

impl<'a> AnalyzerStage<'a> {
    /// All shard jobs of this analyzer's bin (delay first, then
    /// forwarding — the engine's round-robin dealing interleaves them
    /// across workers either way).
    pub(crate) fn jobs<'s>(&'s mut self) -> Vec<crate::engine::Job<'s>> {
        let mut jobs = self.delay.jobs();
        jobs.extend(self.forwarding.jobs());
        jobs
    }

    /// Deterministic merge of both detectors' outputs.
    pub(crate) fn finish(self) -> StagedBin {
        let (delay_alarms, link_stats, new_links) = self.delay.finish();
        StagedBin {
            delay_alarms,
            link_stats,
            new_links,
            forwarding_alarms: self.forwarding.finish(),
        }
    }
}

/// What one analyzer's staged bin produced, before aggregation.
pub(crate) struct StagedBin {
    delay_alarms: Vec<DelayAlarm>,
    link_stats: HashMap<IpLink, LinkStat>,
    new_links: usize,
    forwarding_alarms: Vec<ForwardingAlarm>,
}

/// The cross-bin pipelined executor (create with [`Analyzer::pipelined`]).
///
/// At depth 2 the driver keeps one bin in flight: a pushed bin is
/// scattered and merged, and its shard wave runs *inside the next push*,
/// overlapped with that push's scatter chunks as one two-lane engine
/// wave. [`PipelinedDriver::push_bin`] therefore returns the report of
/// the **previous** bin (or `None` for the very first), and
/// [`PipelinedDriver::finish`] flushes the last one — reports always
/// emerge strictly in bin order.
///
/// Two serial fences keep the overlap byte-identical to the serial
/// schedule:
///
/// * **The merge fence.** Intern epochs only advance in the sequential
///   merge after each wave, in bin order; shard jobs never write the
///   epoch tables (observed keys are stamped after the wave). Scatter
///   output depends only on `(records, tables at bin open)`, and the
///   tables a bin opens against are identical under either schedule —
///   so id assignment, and with it every report byte, cannot change.
/// * **The epoch fence.** A compaction sweep renumbers dense ids, so it
///   may only run when no bin's rows are in flight: when any interned
///   key is overdue (unseen past `reference_expiry_bins + 1` — expired
///   even if the still-unstamped pending bin observed it), the driver
///   drains the pending bin first, sweeps, and refills the pipeline —
///   one bubble per sweep, only when something is genuinely dead. The
///   same keys get evicted as under the serial schedule, at most one
///   bin later; invisible in reports, since dense ids never reach them.
///
/// Dropping the driver without [`PipelinedDriver::finish`] abandons the
/// in-flight bin: its shard wave never runs, so it produces no report
/// and never touches the detectors' references (only its keys were
/// interned — harmless, and compacted away like any unused key).
pub struct PipelinedDriver<'a> {
    analyzer: &'a mut Analyzer,
    depth: usize,
    pending: Option<IngestSession>,
    /// Last bin pushed — enforces the increasing-order contract at every
    /// depth (`pending` alone goes `None` at depth 1 and after a drain).
    last: Option<BinId>,
}

impl PipelinedDriver<'_> {
    /// The resolved pipeline depth (1 or 2).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The underlying analyzer — its cumulative counters
    /// ([`Analyzer::ingest_stats`] / [`Analyzer::sanitize_stats`]) stay
    /// readable while bins are in flight.
    pub fn analyzer(&self) -> &Analyzer {
        self.analyzer
    }

    /// Feed the next bin. Returns the previous bin's report at depth 2
    /// (`None` on the first push), or this bin's report at depth 1.
    ///
    /// # Panics
    /// When bins are not fed in strictly increasing order.
    pub fn push_bin(&mut self, bin: BinId, records: &[TracerouteRecord]) -> Option<BinReport> {
        if let Some(last) = self.last {
            assert!(
                bin.0 > last.0,
                "pipelined bins must be fed in increasing order ({bin:?} after {last:?})"
            );
        }
        self.last = Some(bin);
        if self.depth == 1 {
            return Some(self.analyzer.process_bin(bin, records));
        }
        let threads = crate::engine::resolve_threads(self.analyzer.cfg.threads);
        let Some(pending) = self.pending else {
            // Prologue: scatter + merge the first bin; its shard wave
            // rides the next push.
            self.open_bin(bin, records, true, threads);
            return None;
        };
        if self.analyzer.needs_compaction(bin) {
            // Epoch fence: drain, sweep, refill (see the type docs).
            let report = self.drain(pending, threads);
            self.analyzer.compact_epochs(bin);
            self.open_bin(bin, records, false, threads);
            return Some(report);
        }
        // Steady state: the pending bin's shard jobs and this bin's
        // scatter chunks run as one two-lane wave on one worker herd.
        let staged = {
            let (mut stage, scatter) = self.analyzer.overlap_wave(pending.bin, records, threads);
            let mut wave = crate::engine::Wave::new();
            wave.push_analysis(stage.jobs());
            wave.push_scatter(scatter);
            wave.run(threads);
            stage.finish()
        };
        self.analyzer.stamp_bin(pending.bin);
        let report = self.analyzer.absorb(pending.bin, pending.records, staged);
        self.analyzer.merge_scatter(bin);
        self.pending = Some(IngestSession {
            bin,
            records: records.len(),
        });
        Some(report)
    }

    /// Flush the in-flight bin, if any: run its shard wave alone and
    /// return its report. Idempotent — a second call returns `None`.
    pub fn finish(&mut self) -> Option<BinReport> {
        let pending = self.pending.take()?;
        let threads = crate::engine::resolve_threads(self.analyzer.cfg.threads);
        Some(self.drain(pending, threads))
    }

    /// Scatter + merge a bin without analyzing it yet, leaving it
    /// pending — the pipeline refill shared by the prologue and the
    /// post-sweep epoch fence (which has already compacted).
    fn open_bin(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
        compact: bool,
        threads: usize,
    ) {
        let jobs = self.analyzer.open_scatter(bin, records, compact, threads);
        crate::engine::run_jobs(jobs, threads);
        self.analyzer.merge_scatter(bin);
        self.pending = Some(IngestSession {
            bin,
            records: records.len(),
        });
    }

    /// Shards-only wave for the pending bin + the post-wave fences.
    fn drain(&mut self, pending: IngestSession, threads: usize) -> BinReport {
        self.pending = None;
        let staged = {
            let mut stage = self.analyzer.stage(pending.bin, threads);
            let jobs = stage.jobs();
            crate::engine::run_jobs(jobs, threads);
            stage.finish()
        };
        self.analyzer.stamp_bin(pending.bin);
        self.analyzer.absorb(pending.bin, pending.records, staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{MeasurementId, ProbeId, SimTime};
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Hand-built three-probe world: probes in AS 100/200/300 traverse the
    /// same link (10.0.0.1 → 10.0.0.2) towards 198.51.100.1, with
    /// per-probe return-path offsets and controllable link delay.
    fn records(bin: u64, link_delay: f64, drop_far_hop: bool) -> Vec<TracerouteRecord> {
        let mut out = Vec::new();
        for (probe, asn, eps) in [(1u32, 100u32, 0.4), (2, 200, -0.8), (3, 300, 1.3)] {
            for shot in 0..2 {
                let base = 10.0 + eps;
                let far_replies = if drop_far_hop {
                    vec![Reply::TIMEOUT; 3]
                } else {
                    (0..3)
                        .map(|k| {
                            Reply::new(ip("10.0.0.2"), base + link_delay + 0.01 * f64::from(k))
                        })
                        .collect()
                };
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(1),
                    probe_id: ProbeId(probe),
                    probe_asn: pinpoint_model::Asn(asn),
                    dst: ip("198.51.100.1"),
                    timestamp: SimTime(bin * 3600 + shot * 1800),
                    paris_id: 0,
                    hops: vec![
                        Hop::new(
                            1,
                            (0..3)
                                .map(|k| Reply::new(ip("10.0.0.1"), base + 0.01 * f64::from(k)))
                                .collect(),
                        ),
                        Hop::new(2, far_replies),
                        Hop::new(
                            3,
                            vec![Reply::new(ip("198.51.100.1"), base + link_delay + 2.0); 3],
                        ),
                    ],
                    destination_reached: true,
                });
            }
        }
        out
    }

    fn mapper() -> AsMapper {
        AsMapper::from_prefixes([
            ("10.0.0.0/16".parse().unwrap(), Asn(64500)),
            ("198.51.100.0/24".parse().unwrap(), Asn(64501)),
        ])
    }

    #[test]
    fn end_to_end_delay_event_detected_and_aggregated() {
        let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
        analyzer.register_ases([Asn(64500)]);
        // Quiet warm-up.
        for b in 0..24 {
            let report = analyzer.process_bin(BinId(b), &records(b, 2.0, false));
            assert!(
                report.delay_alarms.is_empty(),
                "false alarm at bin {b}: {:?}",
                report.delay_alarms
            );
        }
        // Delay surge: +30 ms on the link.
        let report = analyzer.process_bin(BinId(24), &records(24, 32.0, false));
        assert_eq!(report.delay_alarms.len(), 1, "surge not detected");
        let alarm = &report.delay_alarms[0];
        assert_eq!(alarm.link, IpLink::new(ip("10.0.0.1"), ip("10.0.0.2")));
        assert!(alarm.median_shift_ms() > 25.0);
        // Aggregation: AS 64500 has positive delay severity and magnitude.
        let mag = report.magnitude(Asn(64500)).unwrap();
        assert!(mag.delay_severity > 0.0);
        assert!(
            mag.delay_magnitude > 1.0,
            "magnitude {}",
            mag.delay_magnitude
        );
        // The alarm graph contains the link's component.
        let g = report.alarm_graph();
        assert!(g.component_of(ip("10.0.0.2")).is_some());
    }

    #[test]
    fn end_to_end_forwarding_event_detected() {
        let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
        for b in 0..12 {
            let report = analyzer.process_bin(BinId(b), &records(b, 2.0, false));
            assert!(report.forwarding_alarms.is_empty(), "false alarm at {b}");
        }
        // The far hop goes dark (all packets lost there).
        let report = analyzer.process_bin(BinId(12), &records(12, 2.0, true));
        assert!(
            !report.forwarding_alarms.is_empty(),
            "loss event not detected"
        );
        let alarm = &report.forwarding_alarms[0];
        assert_eq!(alarm.router, ip("10.0.0.1"));
        // The vanished next hop is the most devalued.
        let (hop, score) = alarm.most_devalued().unwrap();
        assert_eq!(*hop, crate::forwarding::NextHop::Ip(ip("10.0.0.2")));
        assert!(*score < 0.0);
        // And the AS forwarding severity went negative.
        let mag = report.magnitude(Asn(64500)).unwrap();
        assert!(mag.forwarding_severity < 0.0);
    }

    #[test]
    fn no_delay_alarm_without_rtt_samples() {
        // When the far hop is dark the delay detector must stay silent for
        // that link (no samples), demonstrating the complementarity the
        // paper stresses in §7.3.
        let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
        for b in 0..12 {
            analyzer.process_bin(BinId(b), &records(b, 2.0, false));
        }
        let report = analyzer.process_bin(BinId(12), &records(12, 2.0, true));
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.0.2"));
        assert!(report.delay_alarms.iter().all(|a| a.link != link));
        assert!(!report.link_stats.contains_key(&link));
    }

    #[test]
    fn stats_present_even_without_alarms() {
        let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
        let report = analyzer.process_bin(BinId(0), &records(0, 2.0, false));
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.0.2"));
        assert!(report.link_stats.contains_key(&link));
        assert_eq!(report.records, 6);
        assert!(analyzer.tracked_links() >= 1);
        assert!(analyzer.tracked_patterns() >= 1);
    }

    #[test]
    #[should_panic(expected = "reference_expiry_bins")]
    fn degenerate_config_panics_at_construction() {
        let cfg = DetectorConfig {
            reference_expiry_bins: 0,
            ..DetectorConfig::default()
        };
        let _ = Analyzer::new(cfg, mapper());
    }

    #[test]
    fn quarantined_records_never_reach_the_detectors() {
        let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
        // A looped record traversing a link the clean records never use.
        let mut looped = records(0, 2.0, false);
        looped.truncate(1);
        let bad_link = (ip("10.0.9.1"), ip("10.0.9.2"));
        looped[0].hops = vec![
            Hop::new(1, vec![Reply::new(bad_link.0, 1.0); 3]),
            Hop::new(2, vec![Reply::new(bad_link.1, 5.0); 3]),
            Hop::new(3, vec![Reply::new(bad_link.0, 9.0); 3]),
        ];
        let mut batch = records(0, 2.0, false);
        batch.extend(looped);
        let report = analyzer.process_bin(BinId(0), &batch);
        // The raw count is reported, but the loop's link was never built.
        assert_eq!(report.records, 7);
        assert!(!report
            .link_stats
            .contains_key(&IpLink::new(bad_link.0, bad_link.1)));
        let stats = analyzer.sanitize_stats();
        assert_eq!(stats.bin_records, 7);
        assert_eq!(stats.quarantined_loops, 1);
        assert_eq!(stats.bin_quarantined, 1);
    }

    #[test]
    fn sanitize_stats_agree_across_batch_and_incremental_paths() {
        let mut looped = records(0, 2.0, false)[0].clone();
        looped.hops = vec![
            Hop::new(1, vec![Reply::new(ip("10.0.9.1"), 1.0); 3]),
            Hop::new(2, vec![Reply::new(ip("10.0.9.2"), 5.0); 3]),
            Hop::new(3, vec![Reply::new(ip("10.0.9.1"), 9.0); 3]),
        ];
        let mut batch = records(0, 2.0, false);
        batch.push(looped);

        let mut a = Analyzer::new(DetectorConfig::fast_test(), mapper());
        a.process_bin(BinId(0), &batch);

        let mut b = Analyzer::new(DetectorConfig::fast_test(), mapper());
        b.begin_bin(BinId(0));
        for chunk in batch.chunks(2) {
            b.ingest(chunk);
        }
        b.finish_bin();

        assert_eq!(a.sanitize_stats(), b.sanitize_stats());
        assert_eq!(a.sanitize_stats().quarantined(), 1);
    }
}
