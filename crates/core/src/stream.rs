//! Multi-stream analysis: a fleet of per-stream [`Analyzer`]s on one
//! shared engine pool.
//!
//! The paper's deployment (§8) analyzes many concurrent Atlas measurement
//! streams — builtin anchor meshes plus user-defined measurements — and
//! each stream needs its own references, sliding windows, and per-AS
//! baselines (mixing feeds with different probing rates into one analyzer
//! would smear every reference). [`StreamRouter`] owns one [`Analyzer`]
//! per stream and runs a whole bin of the fleet through ONE scoped worker
//! pool, in two waves. The ingestion wave pools every stream's
//! scatter-chunk jobs — stream A's record→row scatter overlaps stream
//! B's on the same workers, against each stream's own persistent intern
//! epoch. The shard wave pools every stream's delay-link shards and
//! forwarding-pattern shards, dealt round-robin onto the same workers, so
//! stream A's delay shards interleave with stream B's forwarding shards
//! instead of each stream spinning up its own thread herd.
//!
//! ## Determinism contract
//!
//! The fleet inherits the engine's contract (see `crate::engine`): shard
//! assignment is stable, job outputs merge in job order, and per-link
//! randomness derives from `(seed, link, bin)`. On top of that the router
//! adds *stream ordering*: streams are staged, merged, and aggregated in
//! the order they were added ([`StreamId`] order), never in completion
//! order. Under both rules the thread count is purely a throughput knob —
//! [`StreamRouter::process_bin`] output is byte-identical across thread
//! counts and to [`StreamRouter::process_bin_sequential`], which
//! `tests/stream_parity.rs` proves.
//!
//! ## Merged reporting
//!
//! Each bin yields a [`FleetReport`]: the per-stream [`BinReport`]s (each
//! with its own per-stream magnitudes) plus a fleet-level magnitude view —
//! per-AS severities are summed across streams
//! ([`crate::aggregate::merge_severities`]) and normalized by a fleet
//! [`MagnitudeTracker`]. Cross-stream correlation is the point: an event
//! partially visible from several vantages can cross the reporting
//! threshold in the merged view while every individual stream stays below
//! it.

use crate::aggregate::{
    merge_severities, AsMagnitude, EmpathyExtractor, FleetEvent, MagnitudeTracker, StreamEvidence,
};
use crate::config::DetectorConfig;
use crate::engine;
use crate::graph::AlarmGraph;
use crate::pipeline::{Analyzer, BinReport};
use crate::snapshot::{self, Reader, SnapshotError, Writer};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, BinId};
use std::collections::BTreeMap;

/// Index of a stream within its router, in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub usize);

/// One measurement stream of the fleet: a label (measurement-set name) and
/// its dedicated analyzer.
#[derive(Debug)]
struct Stream {
    label: String,
    analyzer: Analyzer,
}

/// A fleet of per-stream analyzers sharing one engine pool.
#[derive(Debug)]
pub struct StreamRouter {
    streams: Vec<Stream>,
    fleet_magnitudes: MagnitudeTracker,
    /// The fleet event channel, created lazily from the first stream's
    /// config at the first merge (a router is assembled before its
    /// streams exist).
    fleet_events: Option<EmpathyExtractor>,
    threads: usize,
}

impl Default for StreamRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamRouter {
    /// Empty router with the paper's default one-week fleet magnitude
    /// window.
    pub fn new() -> Self {
        Self::with_magnitude_window(DetectorConfig::default().magnitude_window_bins)
    }

    /// Empty router with an explicit fleet-level magnitude window (bins).
    pub fn with_magnitude_window(window_bins: usize) -> Self {
        StreamRouter {
            streams: Vec::new(),
            fleet_magnitudes: MagnitudeTracker::new(window_bins),
            fleet_events: None,
            threads: 0,
        }
    }

    /// Worker threads for the shared pool: `0` (default) means "use all
    /// available cores". Purely a throughput knob — output is
    /// byte-identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Add a stream; its analyzer keeps all per-stream state (references,
    /// sliding windows, magnitude baselines). Returns the stream's id —
    /// also its index into [`FleetReport::streams`].
    pub fn add_stream(&mut self, label: impl Into<String>, analyzer: Analyzer) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(Stream {
            label: label.into(),
            analyzer,
        });
        id
    }

    /// Number of streams in the fleet.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the fleet has no streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The label a stream was added under.
    pub fn label(&self, id: StreamId) -> &str {
        &self.streams[id.0].label
    }

    /// A stream's analyzer.
    pub fn analyzer(&self, id: StreamId) -> &Analyzer {
        &self.streams[id.0].analyzer
    }

    /// Pre-register ASes for magnitude tracking in the fleet view AND in
    /// every current stream, so all baselines score them from bin zero.
    pub fn register_ases<I: IntoIterator<Item = Asn>>(&mut self, ases: I) {
        let ases: Vec<Asn> = ases.into_iter().collect();
        self.fleet_magnitudes.register(ases.iter().copied());
        for stream in &mut self.streams {
            stream.analyzer.register_ases(ases.iter().copied());
        }
    }

    /// Resolved worker count for one fleet bin — the same resolution a
    /// solo analyzer uses.
    fn effective_threads(&self) -> usize {
        engine::resolve_threads(self.threads)
    }

    /// The raw `set_threads` knob, for schedule resolution (the fleet's
    /// twin of `DetectorConfig::threads`).
    pub(crate) fn configured_threads(&self) -> usize {
        self.threads
    }

    /// Run one bin of the whole fleet through one shared worker pool.
    ///
    /// `feeds[i]` is the record feed of stream `i` (one slot per stream,
    /// empty when the stream saw no traffic this bin). The fleet bin runs
    /// as two pooled waves: first every stream's scatter-chunk jobs
    /// (stream A's ingestion overlaps stream B's on the same workers),
    /// then — after the per-stream chunk-ordered intern merges, done in
    /// stream order — every stream's delay and forwarding shard jobs.
    /// The engine deals each wave's jobs round-robin onto one set of
    /// scoped workers, so the fleet runs as one thread herd.
    ///
    /// # Panics
    /// When `feeds.len()` differs from the number of streams.
    pub fn process_bin(&mut self, bin: BinId, feeds: &[Vec<TracerouteRecord>]) -> FleetReport {
        assert_eq!(
            feeds.len(),
            self.streams.len(),
            "one feed per stream (streams: {}, feeds: {})",
            self.streams.len(),
            feeds.len()
        );
        let threads = self.effective_threads();
        // Ingestion wave: every stream's scatter chunks on one pool.
        {
            let mut wave = engine::Wave::new();
            for (stream, records) in self.streams.iter_mut().zip(feeds) {
                wave.push_scatter(stream.analyzer.scatter_jobs(bin, records, threads));
            }
            wave.run(threads);
        }
        // Chunk-ordered intern merges, in stream order.
        for stream in &mut self.streams {
            stream.analyzer.merge_scatter(bin);
        }
        // Shard wave: stage every stream, pool every job, run once.
        let staged: Vec<_> = {
            let mut stages: Vec<_> = self
                .streams
                .iter_mut()
                .map(|stream| stream.analyzer.stage(bin, threads))
                .collect();
            let mut jobs = Vec::new();
            for stage in &mut stages {
                jobs.extend(stage.jobs());
            }
            engine::run_jobs(jobs, threads);
            stages.into_iter().map(|stage| stage.finish()).collect()
        };
        // Aggregate per stream in stream order, then merge.
        let reports: Vec<BinReport> = self
            .streams
            .iter_mut()
            .zip(feeds)
            .zip(staged)
            .map(|((stream, records), staged)| {
                stream.analyzer.stamp_bin(bin);
                stream.analyzer.absorb(bin, records.len(), staged)
            })
            .collect();
        self.merge(bin, reports)
    }

    /// Single-threaded reference path: every stream runs
    /// [`Analyzer::process_bin_sequential`] back to back, then the same
    /// merge. Exists so the parity tests can prove the pooled fleet
    /// produces identical [`FleetReport`]s.
    pub fn process_bin_sequential(
        &mut self,
        bin: BinId,
        feeds: &[Vec<TracerouteRecord>],
    ) -> FleetReport {
        assert_eq!(
            feeds.len(),
            self.streams.len(),
            "one feed per stream (streams: {}, feeds: {})",
            self.streams.len(),
            feeds.len()
        );
        let reports: Vec<BinReport> = self
            .streams
            .iter_mut()
            .zip(feeds)
            .map(|(stream, records)| stream.analyzer.process_bin_sequential(bin, records))
            .collect();
        self.merge(bin, reports)
    }

    /// Fleet-level aggregation: sum per-AS severities across the streams'
    /// reports, score them against the fleet magnitude baseline, and run
    /// the merged view through the fleet event channel — this is the
    /// single funnel every fleet execution path (pooled, sequential,
    /// pipelined) flows through, so the event deltas are deterministic
    /// by construction.
    fn merge(&mut self, bin: BinId, reports: Vec<BinReport>) -> FleetReport {
        let (dsev, fsev) = merge_severities(reports.iter().map(|r| &r.magnitudes));
        let magnitudes = self.fleet_magnitudes.score_bin(&dsev, &fsev);
        if self.fleet_events.is_none() {
            if let Some(s) = self.streams.first() {
                self.fleet_events = Some(EmpathyExtractor::new(s.analyzer.config()));
            }
        }
        let events = match &mut self.fleet_events {
            Some(extractor) => {
                let evidence: Vec<StreamEvidence<'_>> = reports
                    .iter()
                    .zip(&self.streams)
                    .map(|(r, s)| StreamEvidence {
                        delay: &r.delay_alarms,
                        forwarding: &r.forwarding_alarms,
                        mapper: s.analyzer.mapper(),
                    })
                    .collect();
                extractor.observe(bin, &evidence, &magnitudes)
            }
            None => Vec::new(),
        };
        FleetReport {
            bin,
            streams: reports,
            magnitudes,
            events,
        }
    }

    /// The fleet event channel's cumulative view: every event extracted
    /// so far (open and closed), ranked by merged cross-stream severity.
    /// The per-bin deltas ride on [`FleetReport::events`].
    pub fn events(&self) -> Vec<FleetEvent> {
        self.fleet_events
            .as_ref()
            .map(EmpathyExtractor::events)
            .unwrap_or_default()
    }

    /// Fleet events currently open.
    pub fn open_events(&self) -> usize {
        self.fleet_events
            .as_ref()
            .map_or(0, EmpathyExtractor::open_count)
    }

    /// Links with a learned delay reference, summed over the fleet.
    pub fn tracked_links(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.analyzer.tracked_links())
            .sum()
    }

    /// (router, destination) forwarding models, summed over the fleet.
    pub fn tracked_patterns(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.analyzer.tracked_patterns())
            .sum()
    }

    /// Interning-epoch counters summed over every stream's arenas: in a
    /// steady-state fleet bin, `bin_insertions` is zero across the board.
    pub fn ingest_stats(&self) -> crate::ingest::IngestStats {
        self.streams
            .iter()
            .map(|s| s.analyzer.ingest_stats())
            .fold(crate::ingest::IngestStats::default(), |acc, s| {
                acc.merged(s)
            })
    }

    /// Sanitizer counters summed over every stream: records inspected,
    /// quarantined (by reason), and repaired — the fleet twin of
    /// [`Analyzer::sanitize_stats`].
    pub fn sanitize_stats(&self) -> crate::sanitize::SanitizeStats {
        self.streams
            .iter()
            .map(|s| s.analyzer.sanitize_stats())
            .fold(crate::sanitize::SanitizeStats::default(), |acc, s| {
                acc.merged(s)
            })
    }

    /// The cross-bin pipelined executor over the whole fleet — the
    /// multi-stream twin of [`Analyzer::pipelined`]: at depth 2, every
    /// stream's shard jobs for the pending bin and every stream's scatter
    /// chunks for the pushed bin run as ONE two-lane wave on the shared
    /// herd. Reports come back strictly in bin order, one bin behind.
    /// `depth` resolves like the analyzer's: `0` falls through to the
    /// first stream's `DetectorConfig::pipeline_depth` (the streams of a
    /// fleet share their configuration in practice; an empty fleet takes
    /// the engine default), whose own `0` means the engine default (2);
    /// deeper than 2 clamps; and a one-worker herd ([`Self::set_threads`])
    /// collapses to the serial schedule (see `engine::resolve_schedule`).
    /// Byte-identical to [`StreamRouter::process_bin`] for every depth.
    pub fn pipelined(&mut self, depth: usize) -> FleetPipelinedDriver<'_> {
        let depth = if depth == 0 {
            self.streams
                .first()
                .map_or(0, |s| s.analyzer.config().pipeline_depth)
        } else {
            depth
        };
        let depth = engine::resolve_schedule(depth, self.threads);
        FleetPipelinedDriver {
            router: self,
            depth,
            pending: None,
            last: None,
        }
    }

    /// The unified [`crate::session::AnalysisSession`] over the fleet —
    /// the multi-stream twin of [`Analyzer::session`]. `depth` resolves
    /// like [`StreamRouter::pipelined`].
    pub fn session(&mut self, depth: usize) -> crate::session::FleetSession<'_> {
        crate::session::FleetSession::new(self, depth)
    }

    /// The depth knob a `0` falls through to: the first stream's
    /// configured `pipeline_depth` (a fleet shares its configuration in
    /// practice; an empty fleet takes the engine default).
    pub(crate) fn default_pipeline_depth(&self) -> usize {
        self.streams
            .first()
            .map_or(0, |s| s.analyzer.config().pipeline_depth)
    }

    /// Serialize the whole fleet's resumable state — every stream's
    /// label and analyzer body, the fleet magnitude baseline, and the
    /// fleet event channel — under the same determinism rule as
    /// [`Analyzer::snapshot`]: throughput knobs (including the router's
    /// own [`StreamRouter::set_threads`]) are normalized out, so the
    /// bytes are identical across the whole execution matrix.
    ///
    /// # Panics
    /// When any stream has an open incremental bin.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::with_header(snapshot::KIND_FLEET);
        w.seq(self.streams.len());
        for stream in &self.streams {
            w.str(&stream.label);
            stream.analyzer.snapshot_body(&mut w);
        }
        self.fleet_magnitudes.snapshot_into(&mut w);
        match &self.fleet_events {
            Some(extractor) => {
                w.bool(true);
                extractor.snapshot_into(&mut w);
            }
            None => w.bool(false),
        }
        w.into_bytes()
    }

    /// Rebuild a fleet from [`StreamRouter::snapshot`] bytes. The
    /// restored router's thread knob is "auto" — re-pin it with
    /// [`StreamRouter::set_threads`] if desired; the per-stream
    /// throughput knobs can be re-pinned via the `tune` hook of
    /// [`StreamRouter::restore_with`].
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::restore_with(bytes, |_| {})
    }

    /// [`StreamRouter::restore`] with a per-stream configuration hook
    /// (applied to every stream's restored config, like
    /// [`Analyzer::restore_with`]).
    pub fn restore_with(
        bytes: &[u8],
        mut tune: impl FnMut(&mut DetectorConfig),
    ) -> Result<Self, SnapshotError> {
        let (kind, mut r) = Reader::open(bytes)?;
        if kind != snapshot::KIND_FLEET {
            return Err(SnapshotError::Corrupt("not a fleet snapshot"));
        }
        let n = r.seq()?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            let label = r.str()?;
            let analyzer = Analyzer::restore_body(&mut r, &mut tune)?;
            streams.push(Stream { label, analyzer });
        }
        let fleet_magnitudes = MagnitudeTracker::restore_from(&mut r)?;
        let fleet_events = if r.bool()? {
            Some(EmpathyExtractor::restore_from(&mut r)?)
        } else {
            None
        };
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(StreamRouter {
            streams,
            fleet_magnitudes,
            fleet_events,
            threads: 0,
        })
    }
}

/// One fleet bin in flight: its id and each stream's record count.
#[derive(Debug)]
struct FleetPending {
    bin: BinId,
    records: Vec<usize>,
}

/// The fleet's cross-bin pipelined executor (create with
/// [`StreamRouter::pipelined`]). Same contract as
/// [`crate::pipeline::PipelinedDriver`] — in-order [`FleetReport`]s, one
/// bin behind at depth 2, merge and epoch fences serial — lifted to the
/// whole fleet: the two-lane wave carries `2 × streams` job sets (every
/// stream's shard bundles, then every stream's scatter chunks), and the
/// epoch fence drains when ANY stream's arenas need a compaction sweep,
/// so no stream ever renumbers ids under in-flight rows.
pub struct FleetPipelinedDriver<'a> {
    router: &'a mut StreamRouter,
    depth: usize,
    pending: Option<FleetPending>,
    /// Last bin pushed — enforces the increasing-order contract at every
    /// depth (`pending` alone goes `None` at depth 1 and after a drain).
    last: Option<BinId>,
}

impl FleetPipelinedDriver<'_> {
    /// The resolved pipeline depth (1 or 2).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The underlying router — its fleet-summed counters
    /// ([`StreamRouter::ingest_stats`] / [`StreamRouter::sanitize_stats`])
    /// stay readable while bins are in flight.
    pub fn router(&self) -> &StreamRouter {
        self.router
    }

    /// Feed the next fleet bin (`feeds[i]` is stream `i`'s records).
    /// Returns the previous bin's merged report at depth 2 (`None` on
    /// the first push), or this bin's at depth 1.
    ///
    /// # Panics
    /// When `feeds.len()` differs from the stream count, or bins are not
    /// fed in strictly increasing order.
    pub fn push_bin(&mut self, bin: BinId, feeds: &[Vec<TracerouteRecord>]) -> Option<FleetReport> {
        assert_eq!(
            feeds.len(),
            self.router.streams.len(),
            "one feed per stream (streams: {}, feeds: {})",
            self.router.streams.len(),
            feeds.len()
        );
        if let Some(last) = self.last {
            assert!(
                bin.0 > last.0,
                "pipelined bins must be fed in increasing order ({bin:?} after {last:?})"
            );
        }
        self.last = Some(bin);
        if self.depth == 1 {
            return Some(self.router.process_bin(bin, feeds));
        }
        let threads = self.router.effective_threads();
        let Some(pending) = self.pending.take() else {
            self.open_bin(bin, feeds, true, threads);
            return None;
        };
        if self
            .router
            .streams
            .iter()
            .any(|s| s.analyzer.needs_compaction(bin))
        {
            // Epoch fence: drain the fleet, sweep every stream, refill.
            let report = self.drain(pending, threads);
            for stream in &mut self.router.streams {
                stream.analyzer.compact_epochs(bin);
            }
            self.open_bin(bin, feeds, false, threads);
            return Some(report);
        }
        // Steady state: every stream's pending shard jobs + every
        // stream's next-bin scatter chunks, one two-lane wave.
        let staged: Vec<_> = {
            let mut stages = Vec::with_capacity(self.router.streams.len());
            let mut wave = engine::Wave::new();
            for (stream, records) in self.router.streams.iter_mut().zip(feeds) {
                let (stage, scatter) = stream.analyzer.overlap_wave(pending.bin, records, threads);
                wave.push_scatter(scatter);
                stages.push(stage);
            }
            for stage in &mut stages {
                wave.push_analysis(stage.jobs());
            }
            wave.run(threads);
            stages.into_iter().map(|stage| stage.finish()).collect()
        };
        let reports: Vec<BinReport> = self
            .router
            .streams
            .iter_mut()
            .zip(&pending.records)
            .zip(staged)
            .map(|((stream, &records), staged)| {
                stream.analyzer.stamp_bin(pending.bin);
                stream.analyzer.absorb(pending.bin, records, staged)
            })
            .collect();
        let report = self.router.merge(pending.bin, reports);
        for stream in &mut self.router.streams {
            stream.analyzer.merge_scatter(bin);
        }
        self.pending = Some(FleetPending {
            bin,
            records: feeds.iter().map(Vec::len).collect(),
        });
        Some(report)
    }

    /// Flush the in-flight fleet bin, if any. Idempotent.
    pub fn finish(&mut self) -> Option<FleetReport> {
        let pending = self.pending.take()?;
        let threads = self.router.effective_threads();
        Some(self.drain(pending, threads))
    }

    /// Scatter + merge a bin across the fleet without analyzing it yet.
    fn open_bin(
        &mut self,
        bin: BinId,
        feeds: &[Vec<TracerouteRecord>],
        compact: bool,
        threads: usize,
    ) {
        {
            let mut wave = engine::Wave::new();
            for (stream, records) in self.router.streams.iter_mut().zip(feeds) {
                wave.push_scatter(stream.analyzer.open_scatter(bin, records, compact, threads));
            }
            wave.run(threads);
        }
        for stream in &mut self.router.streams {
            stream.analyzer.merge_scatter(bin);
        }
        self.pending = Some(FleetPending {
            bin,
            records: feeds.iter().map(Vec::len).collect(),
        });
    }

    /// Shards-only wave for the pending fleet bin + the post-wave fences.
    fn drain(&mut self, pending: FleetPending, threads: usize) -> FleetReport {
        let staged: Vec<_> = {
            let mut stages: Vec<_> = self
                .router
                .streams
                .iter_mut()
                .map(|stream| stream.analyzer.stage(pending.bin, threads))
                .collect();
            let mut jobs = Vec::new();
            for stage in &mut stages {
                jobs.extend(stage.jobs());
            }
            engine::run_jobs(jobs, threads);
            stages.into_iter().map(|stage| stage.finish()).collect()
        };
        let reports: Vec<BinReport> = self
            .router
            .streams
            .iter_mut()
            .zip(&pending.records)
            .zip(staged)
            .map(|((stream, &records), staged)| {
                stream.analyzer.stamp_bin(pending.bin);
                stream.analyzer.absorb(pending.bin, records, staged)
            })
            .collect();
        self.router.merge(pending.bin, reports)
    }
}

/// Everything the fleet learned from one bin: the per-stream reports plus
/// the merged cross-stream magnitude view.
///
/// Serde derives come through the workspace's offline shim; the
/// canonical wire format is [`crate::render::fleet_report`].
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// The bin analyzed.
    pub bin: BinId,
    /// Per-stream reports, in [`StreamId`] order.
    pub streams: Vec<BinReport>,
    /// Fleet-level per-AS magnitudes: severities summed across streams,
    /// normalized against the fleet's own sliding baseline.
    pub magnitudes: BTreeMap<Asn, AsMagnitude>,
    /// This bin's fleet event deltas from the incremental empathy
    /// extractor (events opened, updated, or closed by this bin,
    /// ascending id) — the per-bin slice of the fleet event channel.
    pub events: Vec<FleetEvent>,
}

impl FleetReport {
    /// One stream's report.
    pub fn stream(&self, id: StreamId) -> &BinReport {
        &self.streams[id.0]
    }

    /// Merged magnitudes of one AS, if tracked.
    pub fn magnitude(&self, asn: Asn) -> Option<&AsMagnitude> {
        self.magnitudes.get(&asn)
    }

    /// Total traceroutes consumed across the fleet.
    pub fn records(&self) -> usize {
        self.streams.iter().map(|r| r.records).sum()
    }

    /// Total delay alarms across the fleet.
    pub fn delay_alarms(&self) -> usize {
        self.streams.iter().map(|r| r.delay_alarms.len()).sum()
    }

    /// Total forwarding alarms across the fleet.
    pub fn forwarding_alarms(&self) -> usize {
        self.streams.iter().map(|r| r.forwarding_alarms.len()).sum()
    }

    /// The union alarm graph of the bin: every stream's delay edges and
    /// forwarding flags in one graph, so a component fragmented across
    /// vantages connects (Fig. 8 / Fig. 12, fleet-wide). Duplicate
    /// cross-stream edges merge into one edge that keeps per-stream
    /// provenance ([`crate::graph::AlarmEdge::streams`]).
    pub fn alarm_graph(&self) -> AlarmGraph {
        let mut g = AlarmGraph::new();
        for (idx, report) in self.streams.iter().enumerate() {
            g.add_stream_delay_alarms(idx, &report.delay_alarms);
            g.add_stream_forwarding_alarms(idx, &report.forwarding_alarms);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AsMapper;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{MeasurementId, ProbeId, SimTime};
    use std::net::Ipv4Addr;

    fn mapper() -> AsMapper {
        AsMapper::from_prefixes([
            ("10.0.0.0/16".parse().unwrap(), Asn(64500)),
            ("198.51.100.0/24".parse().unwrap(), Asn(64501)),
        ])
    }

    /// Three probes traverse `near → far` towards a per-stream target,
    /// with a controllable link delay — enough to pass the §4.3 filter.
    fn feed(stream: u8, bin: u64, link_delay: f64) -> Vec<TracerouteRecord> {
        let near = Ipv4Addr::new(10, 0, stream, 1);
        let far = Ipv4Addr::new(10, 0, stream, 2);
        let dst = Ipv4Addr::new(198, 51, 100, stream + 1);
        let mut out = Vec::new();
        for (probe, asn, eps) in [(1u32, 100u32, 0.4), (2, 200, -0.8), (3, 300, 1.3)] {
            for shot in 0..2 {
                let base = 10.0 + eps;
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(u32::from(stream)),
                    probe_id: ProbeId(probe),
                    probe_asn: Asn(asn),
                    dst,
                    timestamp: SimTime(bin * 3600 + shot * 1800),
                    paris_id: 0,
                    hops: vec![
                        Hop::new(
                            1,
                            (0..3)
                                .map(|k| Reply::new(near, base + 0.01 * f64::from(k)))
                                .collect(),
                        ),
                        Hop::new(
                            2,
                            (0..3)
                                .map(|k| Reply::new(far, base + link_delay + 0.01 * f64::from(k)))
                                .collect(),
                        ),
                        Hop::new(3, vec![Reply::new(dst, base + link_delay + 2.0); 3]),
                    ],
                    destination_reached: true,
                });
            }
        }
        out
    }

    fn router(streams: usize) -> StreamRouter {
        let mut r = StreamRouter::with_magnitude_window(24);
        for i in 0..streams {
            r.add_stream(
                format!("stream-{i}"),
                Analyzer::new(DetectorConfig::fast_test(), mapper()),
            );
        }
        r.register_ases([Asn(64500)]);
        r
    }

    #[test]
    fn fleet_processes_three_streams_through_one_bin() {
        let mut r = router(3);
        assert_eq!(r.len(), 3);
        let feeds: Vec<_> = (0..3).map(|s| feed(s, 0, 2.0)).collect();
        let report = r.process_bin(BinId(0), &feeds);
        assert_eq!(report.streams.len(), 3);
        assert_eq!(report.records(), 18);
        assert!(r.tracked_links() >= 3, "each stream tracks its own links");
        // Per-stream link stats stay private to their stream.
        for (i, stream_report) in report.streams.iter().enumerate() {
            assert_eq!(stream_report.records, 6, "stream {i}");
            assert!(!stream_report.link_stats.is_empty(), "stream {i}");
        }
    }

    #[test]
    fn merged_magnitudes_sum_stream_severities() {
        let mut r = router(3);
        // Quiet warm-up for all streams.
        for b in 0..24u64 {
            let feeds: Vec<_> = (0..3).map(|s| feed(s, b, 2.0)).collect();
            r.process_bin(BinId(b), &feeds);
        }
        // All three streams see a +30 ms surge on their own link.
        let feeds: Vec<_> = (0..3).map(|s| feed(s, 24, 32.0)).collect();
        let report = r.process_bin(BinId(24), &feeds);
        assert_eq!(report.delay_alarms(), 3, "one alarm per stream");
        let merged = report.magnitude(Asn(64500)).unwrap().delay_severity;
        let summed: f64 = report
            .streams
            .iter()
            .map(|s| s.magnitude(Asn(64500)).unwrap().delay_severity)
            .sum();
        assert!((merged - summed).abs() < 1e-12, "{merged} != {summed}");
        assert!(merged > 0.0);
        // And the union graph contains each stream's alarmed link.
        let g = report.alarm_graph();
        for s in 0..3u8 {
            assert!(g.component_of(Ipv4Addr::new(10, 0, s, 2)).is_some());
        }
    }

    #[test]
    fn empty_feeds_are_valid_bins() {
        let mut r = router(2);
        let report = r.process_bin(BinId(0), &[Vec::new(), Vec::new()]);
        assert_eq!(report.records(), 0);
        assert_eq!(report.delay_alarms(), 0);
        // Registered ASes are still scored in the merged view.
        assert!(report.magnitude(Asn(64500)).is_some());
    }

    #[test]
    #[should_panic(expected = "one feed per stream")]
    fn feed_count_mismatch_panics() {
        let mut r = router(2);
        r.process_bin(BinId(0), &[Vec::new()]);
    }

    #[test]
    fn labels_and_ids_line_up() {
        let mut r = StreamRouter::new();
        assert!(r.is_empty());
        let a = r.add_stream(
            "builtin",
            Analyzer::new(DetectorConfig::fast_test(), mapper()),
        );
        let b = r.add_stream(
            "anchors",
            Analyzer::new(DetectorConfig::fast_test(), mapper()),
        );
        assert_eq!((a, b), (StreamId(0), StreamId(1)));
        assert_eq!(r.label(a), "builtin");
        assert_eq!(r.label(b), "anchors");
        assert_eq!(r.analyzer(b).tracked_links(), 0);
    }
}
