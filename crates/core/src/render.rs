//! Deterministic JSON rendering of reports and counters.
//!
//! The live service's reporter thread renders every emitted
//! [`BinReport`] / [`FleetReport`] **once** into an immutable cached
//! string; the offline scenario harness renders through the same
//! functions, so "daemon output is byte-identical to the offline run"
//! reduces to comparing two strings. Everything funnels through
//! [`pinpoint_model::json::Value`] — objects are `BTreeMap`s, so key
//! order is deterministic by construction; the only map in a report
//! with nondeterministic iteration order ([`BinReport::link_stats`], a
//! `HashMap`) is sorted by canonical link before emission. Sequences
//! that carry a meaningful order (alarms strongest-first, magnitudes in
//! ascending ASN, streams in [`crate::stream::StreamId`] order) render
//! as arrays and keep it.
//!
//! Floats go through Rust's shortest-roundtrip `f64` formatting (stable
//! across platforms and thread counts); non-finite values render as
//! `null` like most JSON encoders.

use crate::aggregate::{AsMagnitude, Element, EventKind, FleetEvent};
use crate::diffrtt::{DelayAlarm, Direction, LinkStat};
use crate::forwarding::ForwardingAlarm;
use crate::graph::{AlarmGraph, Component};
use crate::ingest::IngestStats;
use crate::pipeline::BinReport;
use crate::sanitize::SanitizeStats;
use crate::stream::FleetReport;
use pinpoint_model::json::Value;
use pinpoint_model::{Asn, IpLink};
use pinpoint_stats::ConfidenceInterval;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn count(n: usize) -> Value {
    Value::Number(n as f64)
}

fn ip(addr: Ipv4Addr) -> Value {
    Value::String(addr.to_string())
}

fn interval(ci: &ConfidenceInterval) -> Value {
    Value::object(vec![
        ("lower", num(ci.lower)),
        ("median", num(ci.median)),
        ("upper", num(ci.upper)),
        ("n", count(ci.n)),
    ])
}

fn link(l: IpLink) -> Value {
    Value::object(vec![("near", ip(l.near)), ("far", ip(l.far))])
}

/// One delay-change alarm (§4), CI bounds included.
pub fn delay_alarm(a: &DelayAlarm) -> Value {
    Value::object(vec![
        ("link", link(a.link)),
        ("bin", num(a.bin.0 as f64)),
        ("observed", interval(&a.observed)),
        ("reference", interval(&a.reference)),
        ("deviation", num(a.deviation)),
        ("median_shift_ms", num(a.median_shift_ms())),
        (
            "direction",
            Value::String(
                match a.direction {
                    Direction::Increase => "increase",
                    Direction::Decrease => "decrease",
                }
                .to_string(),
            ),
        ),
    ])
}

/// One forwarding anomaly (§5) with its per-next-hop responsibilities.
pub fn forwarding_alarm(a: &ForwardingAlarm) -> Value {
    Value::object(vec![
        ("router", ip(a.router)),
        ("dst", ip(a.dst)),
        ("bin", num(a.bin.0 as f64)),
        ("rho", num(a.rho)),
        (
            "responsibilities",
            Value::Array(
                a.responsibilities
                    .iter()
                    .map(|(hop, r)| {
                        Value::object(vec![
                            ("next_hop", Value::String(hop.to_string())),
                            ("responsibility", num(*r)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Per-AS severities and magnitudes (§6), ascending ASN.
pub fn magnitudes(map: &BTreeMap<Asn, AsMagnitude>) -> Value {
    Value::Array(
        map.iter()
            .map(|(asn, m)| {
                Value::object(vec![
                    ("asn", num(f64::from(asn.0))),
                    ("delay_severity", num(m.delay_severity)),
                    ("forwarding_severity", num(m.forwarding_severity)),
                    ("delay_magnitude", num(m.delay_magnitude)),
                    ("forwarding_magnitude", num(m.forwarding_magnitude)),
                ])
            })
            .collect(),
    )
}

fn streams(set: &std::collections::BTreeSet<usize>) -> Value {
    Value::Array(set.iter().map(|s| count(*s)).collect())
}

fn component(c: &Component) -> Value {
    Value::object(vec![
        (
            "nodes",
            Value::Array(c.nodes.iter().map(|a| ip(*a)).collect()),
        ),
        ("edges", count(c.edges.len())),
        (
            "forwarding_flagged",
            Value::Array(c.forwarding_flagged.iter().map(|a| ip(*a)).collect()),
        ),
        ("streams", streams(&c.streams)),
    ])
}

/// The alarm graph (Fig. 8 / Fig. 12): every delay edge, every
/// forwarding-flagged router, and the connected components.
pub fn alarm_graph(g: &AlarmGraph) -> Value {
    Value::object(vec![
        (
            "edges",
            Value::Array(
                g.edges()
                    .iter()
                    .map(|e| {
                        Value::object(vec![
                            ("a", ip(e.a)),
                            ("b", ip(e.b)),
                            ("median_shift_ms", num(e.median_shift_ms)),
                            ("deviation", num(e.deviation)),
                            ("streams", streams(&e.streams)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "forwarding_flagged",
            Value::Array(g.forwarding_flagged().iter().map(|a| ip(*a)).collect()),
        ),
        (
            "components",
            Value::Array(g.components().iter().map(component).collect()),
        ),
    ])
}

/// One fleet-level event (empathy cluster) — the `/events/{id}` body.
pub fn event(e: &FleetEvent) -> Value {
    let kind = match e.kind {
        EventKind::DelayChange => "delay_change",
        EventKind::ForwardingLoss => "forwarding_loss",
        EventKind::ForwardingGain => "forwarding_gain",
    };
    let (blamed_kind, blamed_value) = match e.blamed {
        Element::As(asn) => ("as", Value::Number(f64::from(asn.0))),
        Element::Interface(addr) => ("interface", ip(addr)),
    };
    Value::object(vec![
        ("id", num(e.id as f64)),
        ("start", num(e.start.0 as f64)),
        ("end", num(e.end.0 as f64)),
        ("duration_bins", num(e.duration() as f64)),
        ("status", Value::String(e.status.as_str().to_string())),
        (
            "blamed",
            Value::object(vec![
                ("kind", Value::String(blamed_kind.to_string())),
                ("value", blamed_value),
                ("shares", count(e.blamed_shares)),
            ]),
        ),
        (
            "asns",
            Value::Array(e.asns.iter().map(|a| num(f64::from(a.0))).collect()),
        ),
        (
            "interfaces",
            Value::Array(e.interfaces.iter().map(|a| ip(*a)).collect()),
        ),
        ("streams", streams(&e.streams)),
        ("delay_alarms", count(e.delay_alarms)),
        ("forwarding_alarms", count(e.forwarding_alarms)),
        ("peak_delay", num(e.peak_delay)),
        ("peak_forwarding", num(e.peak_forwarding)),
        ("severity", num(e.severity)),
        ("kind", Value::String(kind.to_string())),
        (
            "merged_into",
            e.merged_into.map_or(Value::Null, |id| num(id as f64)),
        ),
    ])
}

/// The `/events` listing: ranked events plus open/closed counts.
pub fn events(list: &[FleetEvent]) -> Value {
    let open = list.iter().filter(|e| e.is_open()).count();
    Value::object(vec![
        ("events", Value::Array(list.iter().map(event).collect())),
        ("open", count(open)),
        ("closed", count(list.len() - open)),
        ("total", count(list.len())),
    ])
}

fn link_stats(stats: &std::collections::HashMap<IpLink, LinkStat>) -> Value {
    // The one HashMap in a report: sort by canonical (near, far) so the
    // rendering is byte-stable regardless of hash iteration order.
    let mut rows: Vec<(&IpLink, &LinkStat)> = stats.iter().collect();
    rows.sort_by_key(|(l, _)| (l.near, l.far));
    Value::Array(
        rows.into_iter()
            .map(|(l, s)| {
                Value::object(vec![
                    ("near", ip(l.near)),
                    ("far", ip(l.far)),
                    ("ci", interval(&s.ci)),
                ])
            })
            .collect(),
    )
}

/// Render one [`BinReport`] — the full §4/§5/§6 product of a bin.
pub fn bin_report(r: &BinReport) -> Value {
    Value::object(vec![
        ("bin", num(r.bin.0 as f64)),
        ("records", count(r.records)),
        (
            "delay_alarms",
            Value::Array(r.delay_alarms.iter().map(delay_alarm).collect()),
        ),
        (
            "forwarding_alarms",
            Value::Array(r.forwarding_alarms.iter().map(forwarding_alarm).collect()),
        ),
        ("events", Value::Array(r.events.iter().map(event).collect())),
        ("link_stats", link_stats(&r.link_stats)),
        ("magnitudes", magnitudes(&r.magnitudes)),
    ])
}

/// Render one merged [`FleetReport`]: fleet totals, the per-stream
/// reports in [`crate::stream::StreamId`] order, and the merged
/// magnitude view.
pub fn fleet_report(r: &FleetReport) -> Value {
    Value::object(vec![
        ("bin", num(r.bin.0 as f64)),
        ("records", count(r.records())),
        ("delay_alarm_total", count(r.delay_alarms())),
        ("forwarding_alarm_total", count(r.forwarding_alarms())),
        ("events", Value::Array(r.events.iter().map(event).collect())),
        (
            "streams",
            Value::Array(r.streams.iter().map(bin_report).collect()),
        ),
        ("magnitudes", magnitudes(&r.magnitudes)),
    ])
}

/// Render the sanitizer counters (quarantine reasons + repairs).
pub fn sanitize_stats(s: &SanitizeStats) -> Value {
    Value::object(vec![
        ("bin_records", num(s.bin_records as f64)),
        ("bin_quarantined", num(s.bin_quarantined as f64)),
        ("bin_repaired", num(s.bin_repaired as f64)),
        ("records", num(s.records as f64)),
        ("quarantined", num(s.quarantined() as f64)),
        ("quarantined_loops", num(s.quarantined_loops as f64)),
        ("quarantined_rtt", num(s.quarantined_rtt as f64)),
        (
            "quarantined_inversions",
            num(s.quarantined_inversions as f64),
        ),
        ("quarantined_hops", num(s.quarantined_hops as f64)),
        ("repaired", num(s.repaired as f64)),
    ])
}

/// Render the interning-epoch counters.
pub fn ingest_stats(s: &IngestStats) -> Value {
    Value::object(vec![
        ("interned", count(s.interned)),
        ("bin_insertions", num(s.bin_insertions as f64)),
        ("insertions", num(s.insertions as f64)),
        ("evictions", num(s.evictions as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::BinId;
    use std::collections::HashMap;

    #[test]
    fn link_stats_render_sorted_regardless_of_insertion_order() {
        let mk = |a: &str, b: &str| IpLink::new(a.parse().unwrap(), b.parse().unwrap());
        let stat = LinkStat {
            ci: ConfidenceInterval {
                lower: 1.0,
                median: 2.0,
                upper: 3.0,
                n: 9,
            },
        };
        let mut one = HashMap::new();
        one.insert(mk("10.0.0.9", "10.0.0.2"), stat);
        one.insert(mk("10.0.0.1", "10.0.0.2"), stat);
        let mut two = HashMap::new();
        two.insert(mk("10.0.0.1", "10.0.0.2"), stat);
        two.insert(mk("10.0.0.9", "10.0.0.2"), stat);
        assert_eq!(link_stats(&one).to_string(), link_stats(&two).to_string());
        assert!(
            link_stats(&one).to_string().find("10.0.0.1").unwrap()
                < link_stats(&one).to_string().find("10.0.0.9").unwrap()
        );
    }

    #[test]
    fn empty_report_renders_stable_shape() {
        let report = BinReport {
            bin: BinId(7),
            delay_alarms: Vec::new(),
            forwarding_alarms: Vec::new(),
            link_stats: HashMap::new(),
            magnitudes: BTreeMap::new(),
            events: Vec::new(),
            records: 0,
        };
        assert_eq!(
            bin_report(&report).to_string(),
            "{\"bin\":7,\"delay_alarms\":[],\"events\":[],\
             \"forwarding_alarms\":[],\
             \"link_stats\":[],\"magnitudes\":[],\"records\":0}"
        );
    }
}
