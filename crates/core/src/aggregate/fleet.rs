//! Cross-stream severity merging for analyzer fleets.
//!
//! Each measurement stream carries its own §6 aggregation (per-stream
//! [`MagnitudeTracker`](super::MagnitudeTracker)s), but an event like the
//! AMS-IX outage is observed by *many* streams at once — anchor meshes,
//! builtins, user-defined measurements — each seeing only part of it. The
//! fleet view sums the per-AS severities across streams before magnitude
//! normalization, so partial signals that individually stay under the
//! reporting threshold combine into one clear event (the
//! traceroute-empathy idea: independent vantage streams corroborating the
//! same anomaly).

use super::magnitude::AsMagnitude;
use pinpoint_model::Asn;
use std::collections::BTreeMap;

/// Sum per-AS raw severities across the streams' per-bin magnitude maps.
///
/// Returns `(delay, forwarding)` severity maps ready for a fleet-level
/// [`MagnitudeTracker::score_bin`](super::MagnitudeTracker::score_bin).
/// Every AS any stream tracks appears in the output (severity 0 when
/// quiet), so the fleet baseline is scored in every bin exactly like the
/// per-stream ones.
pub fn merge_severities<'a, I>(streams: I) -> (BTreeMap<Asn, f64>, BTreeMap<Asn, f64>)
where
    I: IntoIterator<Item = &'a BTreeMap<Asn, AsMagnitude>>,
{
    let mut delay = BTreeMap::new();
    let mut forwarding = BTreeMap::new();
    for magnitudes in streams {
        for (&asn, m) in magnitudes {
            *delay.entry(asn).or_insert(0.0) += m.delay_severity;
            *forwarding.entry(asn).or_insert(0.0) += m.forwarding_severity;
        }
    }
    (delay, forwarding)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mags(entries: &[(u32, f64, f64)]) -> BTreeMap<Asn, AsMagnitude> {
        entries
            .iter()
            .map(|&(asn, d, f)| {
                (
                    Asn(asn),
                    AsMagnitude {
                        delay_severity: d,
                        forwarding_severity: f,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn severities_sum_per_as_across_streams() {
        let a = mags(&[(100, 2.0, -0.5), (200, 1.0, 0.0)]);
        let b = mags(&[(100, 3.0, -0.25)]);
        let (d, f) = merge_severities([&a, &b]);
        assert_eq!(d[&Asn(100)], 5.0);
        assert_eq!(d[&Asn(200)], 1.0);
        assert_eq!(f[&Asn(100)], -0.75);
        assert_eq!(f[&Asn(200)], 0.0);
    }

    #[test]
    fn quiet_ases_stay_in_the_merged_maps() {
        // A registered AS with zero severity must still be scored at the
        // fleet level — otherwise the merged baseline skips quiet bins.
        let a = mags(&[(100, 0.0, 0.0)]);
        let (d, f) = merge_severities([&a]);
        assert_eq!(d[&Asn(100)], 0.0);
        assert_eq!(f[&Asn(100)], 0.0);
    }

    #[test]
    fn empty_fleet_merges_to_empty() {
        let (d, f) = merge_severities(std::iter::empty::<&BTreeMap<Asn, AsMagnitude>>());
        assert!(d.is_empty() && f.is_empty());
    }
}
