//! Cross-stream severity merging for analyzer fleets.
//!
//! Each measurement stream carries its own §6 aggregation (per-stream
//! [`MagnitudeTracker`](super::MagnitudeTracker)s), but an event like the
//! AMS-IX outage is observed by *many* streams at once — anchor meshes,
//! builtins, user-defined measurements — each seeing only part of it. The
//! fleet view sums the per-AS severities across streams before magnitude
//! normalization, so partial signals that individually stay under the
//! reporting threshold combine into one clear event (the
//! traceroute-empathy idea: independent vantage streams corroborating the
//! same anomaly).

use super::magnitude::AsMagnitude;
use pinpoint_model::Asn;
use std::collections::BTreeMap;

use std::collections::BTreeSet;

/// The result of a provenance-keeping severity merge: summed per-AS
/// severities plus, for every AS, *which* streams contributed nonzero
/// signal — the honest "affecting whom" membership that a plain sum
/// silently collapses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergedSeverities {
    /// Σ delay severity per AS across streams.
    pub delay: BTreeMap<Asn, f64>,
    /// Σ forwarding severity per AS across streams.
    pub forwarding: BTreeMap<Asn, f64>,
    /// Streams (by index in merge order) whose delay or forwarding
    /// severity for the AS was nonzero. An AS every stream tracks but
    /// none excites has an empty set.
    pub sources: BTreeMap<Asn, BTreeSet<usize>>,
}

/// Sum per-AS raw severities across the streams' per-bin magnitude maps.
///
/// Returns `(delay, forwarding)` severity maps ready for a fleet-level
/// [`MagnitudeTracker::score_bin`](super::MagnitudeTracker::score_bin).
/// Every AS any stream tracks appears in the output (severity 0 when
/// quiet), so the fleet baseline is scored in every bin exactly like the
/// per-stream ones.
pub fn merge_severities<'a, I>(streams: I) -> (BTreeMap<Asn, f64>, BTreeMap<Asn, f64>)
where
    I: IntoIterator<Item = &'a BTreeMap<Asn, AsMagnitude>>,
{
    let merged = merge_severities_tagged(streams);
    (merged.delay, merged.forwarding)
}

/// [`merge_severities`] with per-stream provenance: the same summed
/// maps, plus which streams actually excited each AS this bin. Duplicate
/// cross-stream contributions to one AS no longer collapse into an
/// anonymous sum — the event layer reads `sources` to report affected
/// streams.
pub fn merge_severities_tagged<'a, I>(streams: I) -> MergedSeverities
where
    I: IntoIterator<Item = &'a BTreeMap<Asn, AsMagnitude>>,
{
    let mut out = MergedSeverities::default();
    for (idx, magnitudes) in streams.into_iter().enumerate() {
        for (&asn, m) in magnitudes {
            *out.delay.entry(asn).or_insert(0.0) += m.delay_severity;
            *out.forwarding.entry(asn).or_insert(0.0) += m.forwarding_severity;
            let sources = out.sources.entry(asn).or_default();
            if m.delay_severity != 0.0 || m.forwarding_severity != 0.0 {
                sources.insert(idx);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mags(entries: &[(u32, f64, f64)]) -> BTreeMap<Asn, AsMagnitude> {
        entries
            .iter()
            .map(|&(asn, d, f)| {
                (
                    Asn(asn),
                    AsMagnitude {
                        delay_severity: d,
                        forwarding_severity: f,
                        ..Default::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn severities_sum_per_as_across_streams() {
        let a = mags(&[(100, 2.0, -0.5), (200, 1.0, 0.0)]);
        let b = mags(&[(100, 3.0, -0.25)]);
        let (d, f) = merge_severities([&a, &b]);
        assert_eq!(d[&Asn(100)], 5.0);
        assert_eq!(d[&Asn(200)], 1.0);
        assert_eq!(f[&Asn(100)], -0.75);
        assert_eq!(f[&Asn(200)], 0.0);
    }

    #[test]
    fn quiet_ases_stay_in_the_merged_maps() {
        // A registered AS with zero severity must still be scored at the
        // fleet level — otherwise the merged baseline skips quiet bins.
        let a = mags(&[(100, 0.0, 0.0)]);
        let (d, f) = merge_severities([&a]);
        assert_eq!(d[&Asn(100)], 0.0);
        assert_eq!(f[&Asn(100)], 0.0);
    }

    #[test]
    fn empty_fleet_merges_to_empty() {
        let (d, f) = merge_severities(std::iter::empty::<&BTreeMap<Asn, AsMagnitude>>());
        assert!(d.is_empty() && f.is_empty());
    }

    #[test]
    fn duplicate_cross_stream_severities_keep_per_stream_provenance() {
        // Regression: two streams exciting the same AS used to merge
        // into one anonymous sum; the event layer could not say which
        // streams an incident affected.
        let a = mags(&[(100, 2.0, 0.0), (200, 0.0, 0.0)]);
        let b = mags(&[(100, 3.0, -0.5), (200, 0.0, -1.0)]);
        let c = mags(&[(100, 0.0, 0.0)]);
        let merged = merge_severities_tagged([&a, &b, &c]);
        assert_eq!(merged.delay[&Asn(100)], 5.0);
        assert_eq!(merged.sources[&Asn(100)], BTreeSet::from([0, 1]));
        assert_eq!(merged.sources[&Asn(200)], BTreeSet::from([1]));
        // The wrapper stays byte-compatible with the tagged merge.
        let (d, f) = merge_severities([&a, &b, &c]);
        assert_eq!((d, f), (merged.delay, merged.forwarding));
    }

    #[test]
    fn quiet_streams_leave_empty_source_sets() {
        let a = mags(&[(100, 0.0, 0.0)]);
        let merged = merge_severities_tagged([&a]);
        assert!(merged.sources[&Asn(100)].is_empty());
    }
}
