//! Fleet-wide event extraction via traceroute empathy.
//!
//! Per-AS magnitude runs ([`super::events`]) answer "which AS peaked";
//! operators need "what broke, where, affecting whom". Following the
//! traceroute-empathy idea (alarms sharing path segments and time
//! windows are *empathic* and belong to one incident), this module
//! clusters each bin's simultaneous alarms via connected components
//! over the shared-element relation — two pieces of evidence are
//! empathic when they share at least
//! [`empathy_min_shared`](crate::DetectorConfig::empathy_min_shared)
//! elements (an interface or an AS of the path segment) — blames the
//! most-shared element, and tracks event lifecycle Open→Updated→Closed
//! across bins with the same gap bridge as the post-hoc extractor.
//!
//! Three evidence sources feed a cluster:
//!
//! 1. delay-alarm edges (both endpoints + their ASes),
//! 2. forwarding alarms (router + responsive next hops + their ASes),
//! 3. magnitude runs — ASes whose merged magnitude crosses
//!    [`event_threshold`](crate::DetectorConfig::event_threshold), the
//!    [`EventExtractor`](super::EventExtractor) criterion acting as one
//!    evidence source beside the graph components.
//!
//! A cluster becomes (or extends) an event only when at least one of
//! its ASes crosses the threshold, and events are ranked by merged
//! cross-stream severity.
//!
//! **Determinism rule for component ordering:** evidence items are
//! numbered in stream order then alarm order (both deterministic);
//! union-find roots are the *minimum* member item index, so clusters
//! enumerate in first-evidence order; event ids are assigned from a
//! sequential counter in that order; deltas emit in ascending id.
//! Nothing here depends on thread count, chunk size, or pipeline depth
//! — [`EmpathyExtractor::observe`] consumes already-merged per-bin
//! reports, which the executor contract makes byte-identical.

use super::asmap::AsMapper;
use super::events::{bridges_gap, classify, over_threshold, EventKind};
use super::magnitude::AsMagnitude;
use crate::config::DetectorConfig;
use crate::diffrtt::DelayAlarm;
use crate::forwarding::{ForwardingAlarm, NextHop};
use crate::snapshot::{Reader, SnapshotError, Writer};
use pinpoint_model::{Asn, BinId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::Ipv4Addr;

/// A blameable element of the empathy relation: a shared AS or a shared
/// interface of the alarmed path segments.
///
/// The derived order ranks ASes before interfaces (an AS aggregates the
/// evidence of all its interfaces, so it wins blame ties), then by
/// number / address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Element {
    /// An autonomous system of the shared path segment.
    As(Asn),
    /// A shared interface (IP) of the alarmed links / patterns.
    Interface(Ipv4Addr),
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::As(asn) => write!(f, "{asn}"),
            Element::Interface(addr) => write!(f, "{addr}"),
        }
    }
}

/// Lifecycle of a [`FleetEvent`] as of the bin it was last emitted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// First emitted this bin.
    Open,
    /// Previously open; extended by this bin's evidence.
    Updated,
    /// No evidence within the gap bridge (or absorbed into another
    /// event) — final.
    Closed,
}

impl EventStatus {
    /// Stable lowercase label (the rendered JSON value).
    pub fn as_str(self) -> &'static str {
        match self {
            EventStatus::Open => "open",
            EventStatus::Updated => "updated",
            EventStatus::Closed => "closed",
        }
    }
}

/// One fleet-level incident: an empathy cluster tracked across bins.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvent {
    /// Sequential id, assigned in first-evidence order.
    pub id: u64,
    /// First bin with evidence.
    pub start: BinId,
    /// Last bin with evidence (inclusive).
    pub end: BinId,
    /// Lifecycle state as of the last emission.
    pub status: EventStatus,
    /// The most-shared element — the blamed location of the incident.
    pub blamed: Element,
    /// How many member alarms touch the blamed element.
    pub blamed_shares: usize,
    /// Every AS implicated by member evidence.
    pub asns: BTreeSet<Asn>,
    /// Every interface implicated by member evidence.
    pub interfaces: BTreeSet<Ipv4Addr>,
    /// Streams whose alarms contributed (empty for pure magnitude runs).
    pub streams: BTreeSet<usize>,
    /// Member delay alarms folded in so far.
    pub delay_alarms: usize,
    /// Member forwarding alarms folded in so far.
    pub forwarding_alarms: usize,
    /// Extreme delay magnitude among member ASes (signed).
    pub peak_delay: f64,
    /// Extreme forwarding magnitude among member ASes (signed).
    pub peak_forwarding: f64,
    /// Peak per-bin merged severity: Σ over member ASes of the dominant
    /// |magnitude| — the ranking key.
    pub severity: f64,
    /// Dominant signal, from the signed peaks.
    pub kind: EventKind,
    /// When two open events turn out to be one incident (a cluster
    /// matches both), the later-born one closes with a pointer to the
    /// survivor.
    pub merged_into: Option<u64>,
}

impl FleetEvent {
    /// Duration in bins.
    pub fn duration(&self) -> u64 {
        self.end.0 - self.start.0 + 1
    }

    /// Whether the event is still open (may gain evidence).
    pub fn is_open(&self) -> bool {
        self.status != EventStatus::Closed
    }
}

impl fmt::Display for FleetEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event #{} [{}] blamed {}: bins {}..{} ({} h), {} ASes / {} streams, \
             {} delay + {} forwarding alarms, severity {:.1}",
            self.id,
            self.status.as_str(),
            self.blamed,
            self.start,
            self.end,
            self.duration(),
            self.asns.len(),
            self.streams.len(),
            self.delay_alarms,
            self.forwarding_alarms,
            self.severity
        )
    }
}

/// One stream's per-bin evidence, borrowed from its report.
#[derive(Debug, Clone, Copy)]
pub struct StreamEvidence<'a> {
    /// The stream's delay alarms this bin.
    pub delay: &'a [DelayAlarm],
    /// The stream's forwarding alarms this bin.
    pub forwarding: &'a [ForwardingAlarm],
    /// The stream's IP→AS mapper (streams may map differently).
    pub mapper: &'a AsMapper,
}

/// Rank events for reporting: merged cross-stream severity descending,
/// ties by ascending id (older incident first).
fn rank(events: impl IntoIterator<Item = FleetEvent>) -> Vec<FleetEvent> {
    let mut out: Vec<FleetEvent> = events.into_iter().collect();
    out.sort_by(|a, b| {
        b.severity
            .partial_cmp(&a.severity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    out
}

/// A fold of emitted event deltas back into current-state rows — the
/// exact table the incremental channel's consumer (the service
/// reporter, the offline harness) keeps. Because every delta carries
/// the event's full state, absorbing deltas in emission order
/// reconstructs [`EmpathyExtractor::events`] byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    events: BTreeMap<u64, FleetEvent>,
}

impl EventTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one bin's deltas in (later state replaces earlier).
    pub fn absorb(&mut self, deltas: &[FleetEvent]) {
        for e in deltas {
            self.events.insert(e.id, e.clone());
        }
    }

    /// Current state of one event.
    pub fn get(&self, id: u64) -> Option<&FleetEvent> {
        self.events.get(&id)
    }

    /// Every event, ranked by severity (see [`EmpathyExtractor::events`]).
    pub fn ranked(&self) -> Vec<FleetEvent> {
        rank(self.events.values().cloned())
    }

    /// Events still open.
    pub fn open_count(&self) -> usize {
        self.events.values().filter(|e| e.is_open()).count()
    }

    /// Total events ever seen.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event was ever absorbed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn write_element(w: &mut Writer, e: &Element) {
    match e {
        Element::As(asn) => {
            w.u8(0);
            w.u32(asn.0);
        }
        Element::Interface(addr) => {
            w.u8(1);
            w.ip(*addr);
        }
    }
}

fn read_element(r: &mut Reader<'_>) -> Result<Element, SnapshotError> {
    match r.u8()? {
        0 => Ok(Element::As(Asn(r.u32()?))),
        1 => Ok(Element::Interface(r.ip()?)),
        _ => Err(SnapshotError::Corrupt("element tag")),
    }
}

fn write_event(w: &mut Writer, e: &FleetEvent) {
    w.u64(e.id);
    w.u64(e.start.0);
    w.u64(e.end.0);
    w.u8(match e.status {
        EventStatus::Open => 0,
        EventStatus::Updated => 1,
        EventStatus::Closed => 2,
    });
    write_element(w, &e.blamed);
    w.usize(e.blamed_shares);
    w.seq(e.asns.len());
    for asn in &e.asns {
        w.u32(asn.0);
    }
    w.seq(e.interfaces.len());
    for addr in &e.interfaces {
        w.ip(*addr);
    }
    w.seq(e.streams.len());
    for s in &e.streams {
        w.usize(*s);
    }
    w.usize(e.delay_alarms);
    w.usize(e.forwarding_alarms);
    w.f64(e.peak_delay);
    w.f64(e.peak_forwarding);
    w.f64(e.severity);
    w.u8(match e.kind {
        EventKind::DelayChange => 0,
        EventKind::ForwardingLoss => 1,
        EventKind::ForwardingGain => 2,
    });
    match e.merged_into {
        Some(id) => {
            w.bool(true);
            w.u64(id);
        }
        None => w.bool(false),
    }
}

fn read_event(r: &mut Reader<'_>) -> Result<FleetEvent, SnapshotError> {
    let id = r.u64()?;
    let start = BinId(r.u64()?);
    let end = BinId(r.u64()?);
    let status = match r.u8()? {
        0 => EventStatus::Open,
        1 => EventStatus::Updated,
        2 => EventStatus::Closed,
        _ => return Err(SnapshotError::Corrupt("event status tag")),
    };
    let blamed = read_element(r)?;
    let blamed_shares = r.usize()?;
    let mut asns = BTreeSet::new();
    for _ in 0..r.seq()? {
        asns.insert(Asn(r.u32()?));
    }
    let mut interfaces = BTreeSet::new();
    for _ in 0..r.seq()? {
        interfaces.insert(r.ip()?);
    }
    let mut streams = BTreeSet::new();
    for _ in 0..r.seq()? {
        streams.insert(r.usize()?);
    }
    let delay_alarms = r.usize()?;
    let forwarding_alarms = r.usize()?;
    let peak_delay = r.f64()?;
    let peak_forwarding = r.f64()?;
    let severity = r.f64()?;
    let kind = match r.u8()? {
        0 => EventKind::DelayChange,
        1 => EventKind::ForwardingLoss,
        2 => EventKind::ForwardingGain,
        _ => return Err(SnapshotError::Corrupt("event kind tag")),
    };
    let merged_into = if r.bool()? { Some(r.u64()?) } else { None };
    Ok(FleetEvent {
        id,
        start,
        end,
        status,
        blamed,
        blamed_shares,
        asns,
        interfaces,
        streams,
        delay_alarms,
        forwarding_alarms,
        peak_delay,
        peak_forwarding,
        severity,
        kind,
        merged_into,
    })
}

/// Cumulative per-element share counts of one open event (kept out of
/// the public [`FleetEvent`]; only the winner and its count surface).
#[derive(Debug, Default)]
struct OpenState {
    shares: BTreeMap<Element, usize>,
}

/// One bin's evidence cluster, before it is matched to events.
#[derive(Debug, Default)]
struct Cluster {
    elements: BTreeSet<Element>,
    shares: BTreeMap<Element, usize>,
    streams: BTreeSet<usize>,
    delay_alarms: usize,
    forwarding_alarms: usize,
}

/// One evidence item: a delay alarm, a forwarding alarm, or a
/// magnitude-run seed, reduced to its element set.
struct Item {
    elements: BTreeSet<Element>,
    stream: Option<usize>,
    delay: usize,
    forwarding: usize,
}

/// The incremental fleet event extractor (see the [module docs](self)).
///
/// Feed it each bin's merged evidence with
/// [`observe`](EmpathyExtractor::observe) — once per bin, in ascending
/// bin order — and it returns the bin's event *deltas*: every event
/// opened, updated, or closed by that bin, in ascending id. State is
/// one [`EventTable`] plus per-open-event share counts, so memory is
/// O(events), not O(bins).
#[derive(Debug, Default)]
pub struct EmpathyExtractor {
    threshold: f64,
    gap_bins: u64,
    min_shared: usize,
    next_id: u64,
    table: EventTable,
    open: BTreeMap<u64, OpenState>,
}

impl EmpathyExtractor {
    /// Extractor with the config's event knobs.
    pub fn new(cfg: &DetectorConfig) -> Self {
        EmpathyExtractor {
            threshold: cfg.event_threshold,
            gap_bins: cfg.event_gap_bins,
            min_shared: cfg.empathy_min_shared.max(1),
            next_id: 0,
            table: EventTable::new(),
            open: BTreeMap::new(),
        }
    }

    /// Serialize the full extractor: knobs, id counter, the event table
    /// (already id-ordered), and the per-open-event share counts. All
    /// containers are B-trees, so the bytes are stable by construction.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        w.f64(self.threshold);
        w.u64(self.gap_bins);
        w.usize(self.min_shared);
        w.u64(self.next_id);
        w.seq(self.table.events.len());
        for event in self.table.events.values() {
            write_event(w, event);
        }
        w.seq(self.open.len());
        for (id, state) in &self.open {
            w.u64(*id);
            w.seq(state.shares.len());
            for (element, count) in &state.shares {
                write_element(w, element);
                w.usize(*count);
            }
        }
    }

    /// Rebuild an extractor from [`EmpathyExtractor::snapshot_into`]
    /// bytes. The knobs come from the snapshot itself (they were captured
    /// from the config at construction), so a restored extractor behaves
    /// identically even mid-event.
    pub(crate) fn restore_from(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let threshold = r.f64()?;
        let gap_bins = r.u64()?;
        let min_shared = r.usize()?;
        let next_id = r.u64()?;
        let mut table = EventTable::new();
        for _ in 0..r.seq()? {
            let event = read_event(r)?;
            table.events.insert(event.id, event);
        }
        let mut open = BTreeMap::new();
        for _ in 0..r.seq()? {
            let id = r.u64()?;
            let mut state = OpenState::default();
            for _ in 0..r.seq()? {
                let element = read_element(r)?;
                let count = r.usize()?;
                state.shares.insert(element, count);
            }
            if !table.events.contains_key(&id) {
                return Err(SnapshotError::Corrupt("open state without event"));
            }
            open.insert(id, state);
        }
        Ok(EmpathyExtractor {
            threshold,
            gap_bins,
            min_shared,
            next_id,
            table,
            open,
        })
    }

    /// Consume one bin's merged evidence and return the event deltas.
    ///
    /// `streams` carries each stream's alarms in
    /// [`StreamId`](crate::stream::StreamId) order (a solo analyzer
    /// passes a single entry); `magnitudes` is the merged (fleet-level)
    /// magnitude map of the same bin. Call once per bin, in ascending
    /// bin order.
    pub fn observe(
        &mut self,
        bin: BinId,
        streams: &[StreamEvidence<'_>],
        magnitudes: &BTreeMap<Asn, AsMagnitude>,
    ) -> Vec<FleetEvent> {
        let mut touched: BTreeSet<u64> = BTreeSet::new();

        // 1. Close events whose last evidence is now out of gap reach.
        let stale: Vec<u64> = self
            .open
            .keys()
            .filter(|id| {
                let e = &self.table.events[id];
                !bridges_gap(e.end, bin, self.gap_bins)
            })
            .copied()
            .collect();
        for id in stale {
            self.open.remove(&id);
            let e = self.table.events.get_mut(&id).expect("open event exists");
            e.status = EventStatus::Closed;
            touched.insert(id);
        }

        // 2. Reduce this bin's evidence to items and cluster them.
        let items = collect_items(streams, magnitudes, self.threshold);
        let clusters = cluster_items(&items, self.min_shared);

        // Clusters only continue events that were open when the bin
        // started: the empathy relation already decided this bin's
        // clusters are separate incidents, so matching must not re-glue
        // them through an event created moments ago.
        let open_at_entry: Vec<u64> = self.open.keys().copied().collect();

        // 3. Fold each reportable cluster into the event table.
        for cluster in clusters {
            let asns: BTreeSet<Asn> = cluster
                .elements
                .iter()
                .filter_map(|el| match el {
                    Element::As(a) => Some(*a),
                    Element::Interface(_) => None,
                })
                .collect();
            let reportable = asns.iter().any(|a| {
                magnitudes
                    .get(a)
                    .is_some_and(|m| over_threshold(m, self.threshold))
            });
            if !reportable {
                continue;
            }
            let interfaces: BTreeSet<Ipv4Addr> = cluster
                .elements
                .iter()
                .filter_map(|el| match el {
                    Element::Interface(a) => Some(*a),
                    Element::As(_) => None,
                })
                .collect();
            let mut severity = 0.0;
            let mut peak_delay = 0.0_f64;
            let mut peak_forwarding = 0.0_f64;
            for a in &asns {
                if let Some(m) = magnitudes.get(a) {
                    severity += m.delay_magnitude.abs().max(m.forwarding_magnitude.abs());
                    if m.delay_magnitude.abs() > peak_delay.abs() {
                        peak_delay = m.delay_magnitude;
                    }
                    if m.forwarding_magnitude.abs() > peak_forwarding.abs() {
                        peak_forwarding = m.forwarding_magnitude;
                    }
                }
            }

            // Which entry-open events is this cluster empathic with?
            // Continuity uses the same `min_shared` requirement as the
            // per-bin relation, capped at the cluster's element count so
            // a single-element magnitude run can still extend its event.
            let need = self.min_shared.min(cluster.elements.len()).max(1);
            let matches: Vec<u64> = open_at_entry
                .iter()
                .filter(|id| {
                    self.open.get(id).is_some_and(|st| {
                        cluster
                            .elements
                            .iter()
                            .filter(|el| st.shares.contains_key(el))
                            .take(need)
                            .count()
                            >= need
                    })
                })
                .copied()
                .collect();

            let winner = match matches.first() {
                Some(&id) => id,
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.table.events.insert(
                        id,
                        FleetEvent {
                            id,
                            start: bin,
                            end: bin,
                            status: EventStatus::Open,
                            blamed: *cluster
                                .elements
                                .iter()
                                .next()
                                .expect("cluster has elements"),
                            blamed_shares: 0,
                            asns: BTreeSet::new(),
                            interfaces: BTreeSet::new(),
                            streams: BTreeSet::new(),
                            delay_alarms: 0,
                            forwarding_alarms: 0,
                            peak_delay: 0.0,
                            peak_forwarding: 0.0,
                            severity: 0.0,
                            kind: EventKind::DelayChange,
                            merged_into: None,
                        },
                    );
                    self.open.insert(id, OpenState::default());
                    id
                }
            };

            // Two open events matched by one cluster are one incident:
            // the lowest id survives, the others close into it.
            for &loser in matches.iter().skip(1) {
                let state = self.open.remove(&loser).expect("matched event is open");
                let folded = self.table.events.get_mut(&loser).expect("event exists");
                folded.status = EventStatus::Closed;
                folded.merged_into = Some(winner);
                let folded = folded.clone();
                touched.insert(loser);
                let w = self.table.events.get_mut(&winner).expect("winner exists");
                w.start = w.start.min(folded.start);
                w.asns.extend(folded.asns.iter().copied());
                w.interfaces.extend(folded.interfaces.iter().copied());
                w.streams.extend(folded.streams.iter().copied());
                w.delay_alarms += folded.delay_alarms;
                w.forwarding_alarms += folded.forwarding_alarms;
                w.severity = w.severity.max(folded.severity);
                if folded.peak_delay.abs() > w.peak_delay.abs() {
                    w.peak_delay = folded.peak_delay;
                }
                if folded.peak_forwarding.abs() > w.peak_forwarding.abs() {
                    w.peak_forwarding = folded.peak_forwarding;
                }
                let ws = self.open.get_mut(&winner).expect("winner is open");
                for (el, n) in state.shares {
                    *ws.shares.entry(el).or_insert(0) += n;
                }
            }

            // Fold the cluster into the winner.
            let state = self.open.get_mut(&winner).expect("winner is open");
            for (el, n) in &cluster.shares {
                *state.shares.entry(*el).or_insert(0) += n;
            }
            let (blamed, blamed_shares) = blame(&state.shares);
            let e = self.table.events.get_mut(&winner).expect("winner exists");
            // Born this bin → Open; evidence for an older event → Updated.
            if e.start != bin {
                e.status = EventStatus::Updated;
            }
            e.end = bin;
            e.blamed = blamed;
            e.blamed_shares = blamed_shares;
            e.asns.extend(asns.iter().copied());
            e.interfaces.extend(interfaces.iter().copied());
            e.streams.extend(cluster.streams.iter().copied());
            e.delay_alarms += cluster.delay_alarms;
            e.forwarding_alarms += cluster.forwarding_alarms;
            e.severity = e.severity.max(severity);
            if peak_delay.abs() > e.peak_delay.abs() {
                e.peak_delay = peak_delay;
            }
            if peak_forwarding.abs() > e.peak_forwarding.abs() {
                e.peak_forwarding = peak_forwarding;
            }
            e.kind = classify(e.peak_delay, e.peak_forwarding);
            touched.insert(winner);
        }

        touched
            .into_iter()
            .map(|id| self.table.events[&id].clone())
            .collect()
    }

    /// Every event ever extracted (open and closed), ranked by merged
    /// cross-stream severity descending, ties by ascending id.
    pub fn events(&self) -> Vec<FleetEvent> {
        self.table.ranked()
    }

    /// Events still open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

/// Reduce one bin's evidence to items: each alarm (or magnitude-run
/// seed) with its element set.
fn collect_items(
    streams: &[StreamEvidence<'_>],
    magnitudes: &BTreeMap<Asn, AsMagnitude>,
    threshold: f64,
) -> Vec<Item> {
    let mut items = Vec::new();
    let push_addr = |elements: &mut BTreeSet<Element>, mapper: &AsMapper, addr: Ipv4Addr| {
        elements.insert(Element::Interface(addr));
        if let Some(asn) = mapper.asn_of(addr) {
            elements.insert(Element::As(asn));
        }
    };
    for (idx, s) in streams.iter().enumerate() {
        for a in s.delay {
            let mut elements = BTreeSet::new();
            push_addr(&mut elements, s.mapper, a.link.near);
            push_addr(&mut elements, s.mapper, a.link.far);
            items.push(Item {
                elements,
                stream: Some(idx),
                delay: 1,
                forwarding: 0,
            });
        }
        for a in s.forwarding {
            let mut elements = BTreeSet::new();
            push_addr(&mut elements, s.mapper, a.router);
            for (hop, _) in &a.responsibilities {
                if let NextHop::Ip(addr) = hop {
                    push_addr(&mut elements, s.mapper, *addr);
                }
            }
            items.push(Item {
                elements,
                stream: Some(idx),
                delay: 0,
                forwarding: 1,
            });
        }
    }
    // Magnitude-run seeds: the EventExtractor criterion as an evidence
    // source — an AS over threshold anchors a cluster even with no
    // surviving alarm this bin (e.g. a pure severity echo).
    for (asn, m) in magnitudes {
        if over_threshold(m, threshold) {
            items.push(Item {
                elements: BTreeSet::from([Element::As(*asn)]),
                stream: None,
                delay: 0,
                forwarding: 0,
            });
        }
    }
    items
}

/// Union-find items into clusters. Two alarms are empathic when they
/// share at least `min_shared` elements. A single-element magnitude
/// seed can never meet a requirement above one, so under a strict
/// relation it instead attaches to the *first* alarm naming its AS —
/// attaching to every match would let one seed transitively bridge
/// clusters the alarm relation keeps apart. Roots are minimum member
/// indexes, so the returned clusters enumerate in first-evidence order.
fn cluster_items(items: &[Item], min_shared: usize) -> Vec<Cluster> {
    let mut parent: Vec<usize> = (0..items.len()).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        // Smaller root wins: roots stay minimum member indexes.
        match ra.cmp(&rb) {
            std::cmp::Ordering::Less => parent[rb] = ra,
            std::cmp::Ordering::Greater => parent[ra] = rb,
            std::cmp::Ordering::Equal => {}
        }
    }
    if min_shared <= 1 {
        // Linear pass: any shared element links two items.
        let mut first_seen: BTreeMap<Element, usize> = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            for el in &item.elements {
                match first_seen.get(el) {
                    Some(&j) => union(&mut parent, i, j),
                    None => {
                        first_seen.insert(*el, i);
                    }
                }
            }
        }
    } else {
        let is_seed = |it: &Item| it.delay + it.forwarding == 0;
        for i in 0..items.len() {
            if is_seed(&items[i]) {
                continue;
            }
            for j in (i + 1)..items.len() {
                if is_seed(&items[j]) {
                    continue;
                }
                let shared = items[i]
                    .elements
                    .intersection(&items[j].elements)
                    .take(min_shared)
                    .count();
                if shared >= min_shared {
                    union(&mut parent, i, j);
                }
            }
        }
        for i in 0..items.len() {
            if !is_seed(&items[i]) {
                continue;
            }
            let host = (0..items.len()).find(|&j| {
                !is_seed(&items[j]) && !items[i].elements.is_disjoint(&items[j].elements)
            });
            if let Some(j) = host {
                union(&mut parent, i, j);
            }
        }
    }
    let mut by_root: BTreeMap<usize, Cluster> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        let root = find(&mut parent, i);
        let c = by_root.entry(root).or_default();
        for el in &item.elements {
            c.elements.insert(*el);
            let entry = c.shares.entry(*el).or_insert(0);
            // Shares count member *alarms* touching the element; a
            // magnitude seed contributes the element but no share.
            if item.delay + item.forwarding > 0 {
                *entry += 1;
            }
        }
        c.streams.extend(item.stream);
        c.delay_alarms += item.delay;
        c.forwarding_alarms += item.forwarding;
    }
    by_root.into_values().collect()
}

/// The most-shared element; ties break by [`Element`] order (ASes
/// before interfaces, then numerically ascending).
fn blame(shares: &BTreeMap<Element, usize>) -> (Element, usize) {
    let mut best: Option<(Element, usize)> = None;
    for (el, &n) in shares {
        match best {
            Some((_, m)) if m >= n => {}
            _ => best = Some((*el, n)),
        }
    }
    best.expect("an event always has at least one element")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffrtt::detect::Direction;
    use pinpoint_model::IpLink;
    use pinpoint_stats::wilson::ConfidenceInterval;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mapper() -> AsMapper {
        AsMapper::from_prefixes([
            ("16.0.0.0/16".parse().unwrap(), Asn(100)),
            ("16.1.0.0/16".parse().unwrap(), Asn(200)),
            ("16.2.0.0/16".parse().unwrap(), Asn(300)),
        ])
    }

    fn delay_alarm(near: &str, far: &str, d: f64) -> DelayAlarm {
        DelayAlarm {
            link: IpLink::new(ip(near), ip(far)),
            bin: BinId(0),
            observed: ConfidenceInterval::new(9.0, 10.0, 11.0, 10),
            reference: ConfidenceInterval::new(1.0, 2.0, 3.0, 0),
            deviation: d,
            direction: Direction::Increase,
        }
    }

    fn fwd_alarm(router: &str, hops: &[(&str, f64)]) -> ForwardingAlarm {
        ForwardingAlarm {
            router: ip(router),
            dst: ip("198.51.100.1"),
            bin: BinId(0),
            rho: -0.8,
            responsibilities: hops.iter().map(|(h, r)| (NextHop::Ip(ip(h)), *r)).collect(),
        }
    }

    fn mag(d: f64, f: f64) -> AsMagnitude {
        AsMagnitude {
            delay_severity: 0.0,
            forwarding_severity: 0.0,
            delay_magnitude: d,
            forwarding_magnitude: f,
        }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            event_threshold: 4.0,
            ..Default::default()
        }
    }

    #[test]
    fn quiet_bin_emits_nothing() {
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        let deltas = ex.observe(
            BinId(0),
            &[StreamEvidence {
                delay: &[],
                forwarding: &[],
                mapper: &m,
            }],
            &BTreeMap::new(),
        );
        assert!(deltas.is_empty());
        assert!(ex.events().is_empty());
    }

    #[test]
    fn alarms_without_a_magnitude_peak_stay_unreported() {
        // Evidence clusters only become events once an AS crosses the
        // threshold — alarms alone are not reportable.
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        let alarms = [delay_alarm("16.0.0.1", "16.0.0.2", 5.0)];
        let mags = BTreeMap::from([(Asn(100), mag(1.0, 0.0))]);
        let deltas = ex.observe(
            BinId(0),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &mags,
        );
        assert!(deltas.is_empty());
    }

    #[test]
    fn shared_interface_clusters_two_streams_into_one_event() {
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        // Stream 0 and stream 1 alarm different links sharing 16.0.0.2.
        let a0 = [delay_alarm("16.0.0.1", "16.0.0.2", 5.0)];
        let a1 = [delay_alarm("16.0.0.2", "16.1.0.9", 6.0)];
        let mags = BTreeMap::from([(Asn(100), mag(9.0, 0.0)), (Asn(200), mag(0.5, 0.0))]);
        let deltas = ex.observe(
            BinId(3),
            &[
                StreamEvidence {
                    delay: &a0,
                    forwarding: &[],
                    mapper: &m,
                },
                StreamEvidence {
                    delay: &a1,
                    forwarding: &[],
                    mapper: &m,
                },
            ],
            &mags,
        );
        assert_eq!(deltas.len(), 1);
        let e = &deltas[0];
        assert_eq!(e.status, EventStatus::Open);
        assert_eq!(e.streams, BTreeSet::from([0, 1]));
        assert_eq!(e.asns, BTreeSet::from([Asn(100), Asn(200)]));
        assert_eq!(e.delay_alarms, 2);
        // AS100 is touched by both alarms — most shared, blamed.
        assert_eq!(e.blamed, Element::As(Asn(100)));
        assert_eq!(e.blamed_shares, 2);
        assert_eq!(e.kind, EventKind::DelayChange);
    }

    #[test]
    fn disjoint_clusters_become_separate_events() {
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        let alarms = [
            delay_alarm("16.0.0.1", "16.0.0.2", 5.0),
            delay_alarm("16.2.0.1", "16.2.0.2", 6.0),
        ];
        let mags = BTreeMap::from([(Asn(100), mag(9.0, 0.0)), (Asn(300), mag(-7.0, 0.0))]);
        let deltas = ex.observe(
            BinId(0),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &mags,
        );
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].id, 0);
        assert_eq!(deltas[1].id, 1);
        assert_eq!(deltas[0].asns, BTreeSet::from([Asn(100)]));
        assert_eq!(deltas[1].asns, BTreeSet::from([Asn(300)]));
        // Ranked by severity: AS100's 9.0 beats AS300's 7.0.
        let ranked = ex.events();
        assert_eq!(ranked[0].id, 0);
        assert!(ranked[0].severity > ranked[1].severity);
    }

    #[test]
    fn lifecycle_open_updated_closed_with_gap_bridge() {
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        let alarms = [delay_alarm("16.0.0.1", "16.0.0.2", 5.0)];
        let hot = BTreeMap::from([(Asn(100), mag(9.0, 0.0))]);
        let quiet = BTreeMap::from([(Asn(100), mag(0.1, 0.0))]);
        let d0 = ex.observe(
            BinId(10),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &hot,
        );
        assert_eq!(d0.len(), 1);
        assert_eq!(d0[0].status, EventStatus::Open);

        // Quiet bin: nothing emitted, event still open (gap bridge).
        let d1 = ex.observe(BinId(11), &[], &quiet);
        assert!(d1.is_empty());
        assert_eq!(ex.open_count(), 1);

        // Evidence one bin later extends the same event.
        let d2 = ex.observe(
            BinId(12),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &hot,
        );
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].id, d0[0].id);
        assert_eq!(d2[0].status, EventStatus::Updated);
        assert_eq!(d2[0].start, BinId(10));
        assert_eq!(d2[0].end, BinId(12));

        // Two quiet bins exceed the gap: the event closes.
        let d3 = ex.observe(BinId(13), &[], &quiet);
        assert!(d3.is_empty());
        let d4 = ex.observe(BinId(15), &[], &quiet);
        assert_eq!(d4.len(), 1);
        assert_eq!(d4[0].status, EventStatus::Closed);
        assert_eq!(d4[0].end, BinId(12));
        assert_eq!(ex.open_count(), 0);

        // New evidence after the close opens a fresh event.
        let d5 = ex.observe(
            BinId(16),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &hot,
        );
        assert_eq!(d5.len(), 1);
        assert_eq!(d5[0].status, EventStatus::Open);
        assert_ne!(d5[0].id, d0[0].id);
    }

    #[test]
    fn bridged_clusters_merge_open_events() {
        // Bin 0: two disjoint events. Bin 1: a forwarding alarm spans
        // both clusters' ASes — they are one incident; the younger event
        // closes into the older.
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        let alarms = [
            delay_alarm("16.0.0.1", "16.0.0.2", 5.0),
            delay_alarm("16.2.0.1", "16.2.0.2", 6.0),
        ];
        let mags = BTreeMap::from([(Asn(100), mag(9.0, 0.0)), (Asn(300), mag(-7.0, 0.0))]);
        let d0 = ex.observe(
            BinId(0),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &mags,
        );
        assert_eq!(d0.len(), 2);
        let bridge = [fwd_alarm("16.0.0.2", &[("16.2.0.1", -0.4)])];
        let d1 = ex.observe(
            BinId(1),
            &[StreamEvidence {
                delay: &[],
                forwarding: &bridge,
                mapper: &m,
            }],
            &mags,
        );
        assert_eq!(d1.len(), 2);
        assert_eq!(d1[0].id, 0);
        assert_eq!(d1[0].status, EventStatus::Updated);
        assert_eq!(d1[1].id, 1);
        assert_eq!(d1[1].status, EventStatus::Closed);
        assert_eq!(d1[1].merged_into, Some(0));
        assert_eq!(d1[0].asns, BTreeSet::from([Asn(100), Asn(300)]));
        assert_eq!(d1[0].delay_alarms, 2);
        assert_eq!(d1[0].forwarding_alarms, 1);
        assert_eq!(ex.open_count(), 1);
    }

    #[test]
    fn min_shared_two_keeps_single_overlap_apart() {
        let strict = DetectorConfig {
            empathy_min_shared: 2,
            ..cfg()
        };
        let m = mapper();
        // The two alarms share only AS100 (one element).
        let alarms = [
            delay_alarm("16.0.0.1", "16.0.0.2", 5.0),
            delay_alarm("16.0.0.9", "16.1.0.1", 6.0),
        ];
        let mags = BTreeMap::from([(Asn(100), mag(9.0, 0.0)), (Asn(200), mag(8.0, 0.0))]);
        let mut ex = EmpathyExtractor::new(&strict);
        let deltas = ex.observe(
            BinId(0),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &mags,
        );
        assert_eq!(deltas.len(), 2, "single shared element must not merge");
        let mut lax = EmpathyExtractor::new(&cfg());
        let deltas = lax.observe(
            BinId(0),
            &[StreamEvidence {
                delay: &alarms,
                forwarding: &[],
                mapper: &m,
            }],
            &mags,
        );
        assert_eq!(deltas.len(), 1, "default relation merges on one element");
    }

    #[test]
    fn magnitude_run_alone_seeds_an_event() {
        // The refactored EventExtractor criterion as an evidence source:
        // an AS over threshold with no alarm still opens an event.
        let mut ex = EmpathyExtractor::new(&cfg());
        let mags = BTreeMap::from([(Asn(100), mag(0.0, -11.0))]);
        let deltas = ex.observe(BinId(0), &[], &mags);
        assert_eq!(deltas.len(), 1);
        let e = &deltas[0];
        assert_eq!(e.blamed, Element::As(Asn(100)));
        assert_eq!(e.kind, EventKind::ForwardingLoss);
        assert_eq!(e.severity, 11.0);
        assert!(e.streams.is_empty());
    }

    #[test]
    fn event_table_fold_matches_extractor_state() {
        let mut ex = EmpathyExtractor::new(&cfg());
        let m = mapper();
        let mut table = EventTable::new();
        let alarms = [delay_alarm("16.0.0.1", "16.0.0.2", 5.0)];
        let hot = BTreeMap::from([(Asn(100), mag(9.0, 0.0))]);
        let quiet = BTreeMap::from([(Asn(100), mag(0.1, 0.0))]);
        for bin in 0..8u64 {
            let streams = [StreamEvidence {
                delay: if bin % 3 == 0 { &alarms } else { &[] },
                forwarding: &[],
                mapper: &m,
            }];
            let mags = if bin % 3 == 0 { &hot } else { &quiet };
            let deltas = ex.observe(BinId(bin), &streams, mags);
            table.absorb(&deltas);
        }
        assert_eq!(table.ranked(), ex.events());
        assert_eq!(table.open_count(), ex.open_count());
    }
}
