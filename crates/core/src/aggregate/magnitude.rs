//! The magnitude metric (Eq. 10) over per-AS severity time series.
//!
//! For each AS, two [`pinpoint_stats::SlidingRobust`] windows (one week of
//! bins) normalize the current severity: `mag = (x − median) / (1 +
//! 1.4826·MAD)`. Every AS must be scored in *every* bin — including
//! alarm-free ones, where severity is 0 — otherwise the sliding baseline
//! would be biased toward busy hours.

use crate::snapshot::{Reader, SnapshotError, Writer};
use pinpoint_model::Asn;
use pinpoint_stats::sliding::SlidingRobust;
use std::collections::{BTreeMap, HashMap};

/// Magnitudes of one AS in one bin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AsMagnitude {
    /// Raw delay severity Σ d(Δ).
    pub delay_severity: f64,
    /// Raw forwarding severity Σ rᵢ.
    pub forwarding_severity: f64,
    /// Normalized delay magnitude (Eq. 10).
    pub delay_magnitude: f64,
    /// Normalized forwarding magnitude (Eq. 10).
    pub forwarding_magnitude: f64,
}

/// Tracks per-AS sliding windows and scores each bin.
#[derive(Debug)]
pub struct MagnitudeTracker {
    window_bins: usize,
    delay: HashMap<Asn, SlidingRobust>,
    forwarding: HashMap<Asn, SlidingRobust>,
    known: std::collections::BTreeSet<Asn>,
}

impl MagnitudeTracker {
    /// Create a tracker with the given window length (bins).
    pub fn new(window_bins: usize) -> Self {
        MagnitudeTracker {
            window_bins,
            delay: HashMap::new(),
            forwarding: HashMap::new(),
            known: Default::default(),
        }
    }

    /// Pre-register ASes so they are scored from the first bin even before
    /// their first alarm.
    pub fn register<I: IntoIterator<Item = Asn>>(&mut self, ases: I) {
        self.known.extend(ases);
    }

    /// Score one bin given its per-AS severities; returns magnitudes for
    /// every known AS.
    pub fn score_bin(
        &mut self,
        delay_sev: &BTreeMap<Asn, f64>,
        fwd_sev: &BTreeMap<Asn, f64>,
    ) -> BTreeMap<Asn, AsMagnitude> {
        // ASes appearing for the first time join the tracked set.
        self.known.extend(delay_sev.keys().copied());
        self.known.extend(fwd_sev.keys().copied());

        let mut out = BTreeMap::new();
        for &asn in &self.known {
            let ds = delay_sev.get(&asn).copied().unwrap_or(0.0);
            let fs = fwd_sev.get(&asn).copied().unwrap_or(0.0);
            let dwin = self
                .delay
                .entry(asn)
                .or_insert_with(|| SlidingRobust::new(self.window_bins));
            let dmag = dwin.score_and_push(ds).unwrap_or(0.0);
            let fwin = self
                .forwarding
                .entry(asn)
                .or_insert_with(|| SlidingRobust::new(self.window_bins));
            let fmag = fwin.score_and_push(fs).unwrap_or(0.0);
            out.insert(
                asn,
                AsMagnitude {
                    delay_severity: ds,
                    forwarding_severity: fs,
                    delay_magnitude: dmag,
                    forwarding_magnitude: fmag,
                },
            );
        }
        out
    }

    /// Number of ASes currently tracked.
    pub fn tracked_ases(&self) -> usize {
        self.known.len()
    }

    /// Serialize the window length, the known-AS set, and both per-AS
    /// sliding windows (sorted by AS — hash maps iterate unstably) with
    /// their contents oldest-first.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        w.usize(self.window_bins);
        w.seq(self.known.len());
        for asn in &self.known {
            w.u32(asn.0);
        }
        for windows in [&self.delay, &self.forwarding] {
            let mut entries: Vec<(&Asn, &SlidingRobust)> = windows.iter().collect();
            entries.sort_by_key(|(asn, _)| **asn);
            w.seq(entries.len());
            for (asn, window) in entries {
                w.u32(asn.0);
                w.seq(window.len());
                for x in window.values() {
                    w.f64(x);
                }
            }
        }
    }

    /// Rebuild a tracker from [`MagnitudeTracker::snapshot_into`] bytes.
    pub(crate) fn restore_from(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let window_bins = r.usize()?;
        if window_bins == 0 {
            return Err(SnapshotError::Corrupt("zero magnitude window"));
        }
        let mut tracker = MagnitudeTracker::new(window_bins);
        let n = r.seq()?;
        for _ in 0..n {
            tracker.known.insert(Asn(r.u32()?));
        }
        for side in 0..2 {
            let n = r.seq()?;
            for _ in 0..n {
                let asn = Asn(r.u32()?);
                let len = r.seq()?;
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(r.f64()?);
                }
                let window = SlidingRobust::from_values(window_bins, values);
                if side == 0 {
                    tracker.delay.insert(asn, window);
                } else {
                    tracker.forwarding.insert(asn, window);
                }
            }
        }
        Ok(tracker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_as_scores_zero() {
        let mut t = MagnitudeTracker::new(24);
        t.register([Asn(100)]);
        for _ in 0..24 {
            let m = t.score_bin(&BTreeMap::new(), &BTreeMap::new());
            assert_eq!(m[&Asn(100)].delay_magnitude, 0.0);
            assert_eq!(m[&Asn(100)].forwarding_magnitude, 0.0);
        }
    }

    #[test]
    fn spike_after_quiet_week_scores_high() {
        let mut t = MagnitudeTracker::new(168);
        t.register([Asn(25152)]);
        for _ in 0..168 {
            t.score_bin(&BTreeMap::new(), &BTreeMap::new());
        }
        let mut dsev = BTreeMap::new();
        dsev.insert(Asn(25152), 300.0); // DDoS hour
        let m = t.score_bin(&dsev, &BTreeMap::new());
        assert!(
            m[&Asn(25152)].delay_magnitude > 100.0,
            "magnitude {}",
            m[&Asn(25152)].delay_magnitude
        );
        assert_eq!(m[&Asn(25152)].delay_severity, 300.0);
    }

    #[test]
    fn negative_forwarding_severity_scores_negative() {
        let mut t = MagnitudeTracker::new(48);
        t.register([Asn(1200)]);
        for _ in 0..48 {
            t.score_bin(&BTreeMap::new(), &BTreeMap::new());
        }
        let mut fsev = BTreeMap::new();
        fsev.insert(Asn(1200), -24.0); // AMS-IX outage hour
        let m = t.score_bin(&BTreeMap::new(), &fsev);
        assert!(
            m[&Asn(1200)].forwarding_magnitude < -10.0,
            "magnitude {}",
            m[&Asn(1200)].forwarding_magnitude
        );
    }

    #[test]
    fn noisy_baseline_dampens_magnitude() {
        // The same spike is less remarkable over a noisy week than over a
        // silent one — MAD normalization at work.
        let spike = 50.0;
        let mut quiet = MagnitudeTracker::new(168);
        quiet.register([Asn(1)]);
        for _ in 0..168 {
            quiet.score_bin(&BTreeMap::new(), &BTreeMap::new());
        }
        let mut noisy = MagnitudeTracker::new(168);
        noisy.register([Asn(1)]);
        for i in 0..168u64 {
            let mut sev = BTreeMap::new();
            sev.insert(Asn(1), (i % 13) as f64);
            noisy.score_bin(&sev, &BTreeMap::new());
        }
        let mut sev = BTreeMap::new();
        sev.insert(Asn(1), spike);
        let mq = quiet.score_bin(&sev, &BTreeMap::new())[&Asn(1)].delay_magnitude;
        let mn = noisy.score_bin(&sev, &BTreeMap::new())[&Asn(1)].delay_magnitude;
        assert!(mq > mn, "quiet {mq} <= noisy {mn}");
    }

    #[test]
    fn new_as_joins_on_first_alarm() {
        let mut t = MagnitudeTracker::new(24);
        assert_eq!(t.tracked_ases(), 0);
        let mut dsev = BTreeMap::new();
        dsev.insert(Asn(7), 1.0);
        let m = t.score_bin(&dsev, &BTreeMap::new());
        assert!(m.contains_key(&Asn(7)));
        assert_eq!(t.tracked_ases(), 1);
        // Present in subsequent bins even when silent.
        let m2 = t.score_bin(&BTreeMap::new(), &BTreeMap::new());
        assert!(m2.contains_key(&Asn(7)));
    }
}
