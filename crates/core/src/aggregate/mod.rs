//! AS-level aggregation and event magnitudes (§6).
//!
//! Individual alarms are too numerous to triage by hand; the paper groups
//! them per AS and tracks two severity time series per AS — Σ d(Δ) for
//! delay changes and Σ rᵢ for forwarding anomalies — then normalizes each
//! by its one-week sliding median/MAD into the *magnitude* (Eq. 10) whose
//! peaks are the reportable events.

pub mod asmap;
pub mod empathy;
pub mod events;
pub mod fleet;
pub mod magnitude;
pub mod severity;

pub use asmap::AsMapper;
pub use empathy::{Element, EmpathyExtractor, EventStatus, EventTable, FleetEvent, StreamEvidence};
pub use events::{Event, EventExtractor, EventKind};
pub use fleet::{merge_severities, merge_severities_tagged, MergedSeverities};
pub use magnitude::{AsMagnitude, MagnitudeTracker};
pub use severity::{delay_severity, forwarding_severity};
