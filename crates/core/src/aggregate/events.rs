//! Event extraction: from magnitude time series to ranked incidents.
//!
//! §6 closes with "Finding major network disruptions in an AS is done by
//! identifying peaks in either of the two time series". This module turns
//! per-bin magnitudes into consolidated [`Event`]s: consecutive bins where
//! an AS's |magnitude| exceeds a threshold merge into one incident,
//! labelled with its kind (delay vs forwarding, by which series peaked
//! harder) and ranked by peak magnitude — the triage list an operator
//! reads (§8).

use super::magnitude::AsMagnitude;
use crate::config::DetectorConfig;
use pinpoint_model::{Asn, BinId};
use std::collections::BTreeMap;
use std::fmt;

/// The reporting criterion shared by post-hoc extraction and the
/// incremental empathy extractor: either magnitude series peaking past
/// the configured threshold (§6: "identifying peaks in either of the two
/// time series").
pub(crate) fn over_threshold(m: &AsMagnitude, threshold: f64) -> bool {
    m.delay_magnitude.abs() > threshold || m.forwarding_magnitude.abs() > threshold
}

/// The gap bridge shared by both extractors: evidence at `bin` extends
/// an event whose last evidence was at `prev_end`, bridging up to
/// `gap_bins` quiet bins in between.
pub(crate) fn bridges_gap(prev_end: BinId, bin: BinId, gap_bins: u64) -> bool {
    bin.0 <= prev_end.0 + gap_bins + 1
}

/// Classify an event by its signed peaks: delay dominates when its
/// absolute peak is at least the forwarding one, otherwise the
/// forwarding sign decides loss vs attraction.
pub(crate) fn classify(peak_delay: f64, peak_forwarding: f64) -> EventKind {
    if peak_delay.abs() >= peak_forwarding.abs() {
        EventKind::DelayChange
    } else if peak_forwarding < 0.0 {
        EventKind::ForwardingLoss
    } else {
        EventKind::ForwardingGain
    }
}

/// Which detector dominated an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Delay-change magnitude peaked (congestion-style incidents).
    DelayChange,
    /// Forwarding magnitude peaked negative (loss/reroute-style incidents).
    ForwardingLoss,
    /// Forwarding magnitude peaked positive (traffic attraction).
    ForwardingGain,
}

/// A consolidated incident for one AS.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The AS concerned.
    pub asn: Asn,
    /// First bin over threshold.
    pub start: BinId,
    /// Last bin over threshold (inclusive).
    pub end: BinId,
    /// Peak |delay magnitude| within the window (signed value kept).
    pub peak_delay: f64,
    /// Extreme forwarding magnitude within the window (signed).
    pub peak_forwarding: f64,
    /// Dominant signal.
    pub kind: EventKind,
}

impl Event {
    /// Duration in bins.
    pub fn duration(&self) -> u64 {
        self.end.0 - self.start.0 + 1
    }

    /// Ranking score: the dominant peak's absolute magnitude.
    pub fn score(&self) -> f64 {
        self.peak_delay.abs().max(self.peak_forwarding.abs())
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            EventKind::DelayChange => "delay change",
            EventKind::ForwardingLoss => "packet loss / vanished hops",
            EventKind::ForwardingGain => "traffic attraction",
        };
        write!(
            f,
            "{} {}..{} ({} h): {kind}, delay mag {:+.1}, forwarding mag {:+.1}",
            self.asn,
            self.start,
            self.end,
            self.duration(),
            self.peak_delay,
            self.peak_forwarding
        )
    }
}

/// Accumulates magnitude series and extracts events.
#[derive(Debug, Default)]
pub struct EventExtractor {
    history: BTreeMap<Asn, Vec<(BinId, AsMagnitude)>>,
}

impl EventExtractor {
    /// Empty extractor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one bin's magnitudes (call once per processed bin).
    pub fn push(&mut self, bin: BinId, magnitudes: &BTreeMap<Asn, AsMagnitude>) {
        for (asn, m) in magnitudes {
            self.history.entry(*asn).or_default().push((bin, *m));
        }
    }

    /// Extract events with the configured
    /// [`event_threshold`](DetectorConfig::event_threshold) and
    /// [`event_gap_bins`](DetectorConfig::event_gap_bins): maximal runs
    /// of bins where |delay mag| or |forwarding mag| exceeds the
    /// threshold, ranked by peak score.
    pub fn events(&self, cfg: &DetectorConfig) -> Vec<Event> {
        self.events_with(cfg.event_threshold, cfg.event_gap_bins)
    }

    /// [`EventExtractor::events`] with explicit knobs (the historical
    /// signature, kept for sweeps that vary the threshold without
    /// cloning a config).
    pub fn events_with(&self, threshold: f64, gap_bins: u64) -> Vec<Event> {
        let mut out = Vec::new();
        for (asn, series) in &self.history {
            let mut current: Option<Event> = None;
            for (bin, m) in series {
                let over = over_threshold(m, threshold);
                // Short gaps are bridged (events often dip between
                // attack hours; Fig. 6's two-peak structure is two
                // events because the gap is hours long).
                let contiguous = current
                    .as_ref()
                    .map(|e| bridges_gap(e.end, *bin, gap_bins))
                    .unwrap_or(false);
                match (over, &mut current) {
                    (true, Some(e)) if contiguous => {
                        e.end = *bin;
                        if m.delay_magnitude.abs() > e.peak_delay.abs() {
                            e.peak_delay = m.delay_magnitude;
                        }
                        if m.forwarding_magnitude.abs() > e.peak_forwarding.abs() {
                            e.peak_forwarding = m.forwarding_magnitude;
                        }
                    }
                    (true, cur) => {
                        if let Some(done) = cur.take() {
                            out.push(done);
                        }
                        *cur = Some(Event {
                            asn: *asn,
                            start: *bin,
                            end: *bin,
                            peak_delay: m.delay_magnitude,
                            peak_forwarding: m.forwarding_magnitude,
                            kind: EventKind::DelayChange, // fixed up below
                        });
                    }
                    (false, _) => {}
                }
            }
            if let Some(e) = current {
                out.push(e);
            }
        }
        for e in &mut out {
            e.kind = classify(e.peak_delay, e.peak_forwarding);
        }
        out.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.asn, a.start).cmp(&(b.asn, b.start)))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: f64) -> DetectorConfig {
        DetectorConfig {
            event_threshold: threshold,
            ..Default::default()
        }
    }

    fn mag(d: f64, f: f64) -> AsMagnitude {
        AsMagnitude {
            delay_severity: 0.0,
            forwarding_severity: 0.0,
            delay_magnitude: d,
            forwarding_magnitude: f,
        }
    }

    fn push_series(ex: &mut EventExtractor, asn: Asn, series: &[(u64, f64, f64)]) {
        for &(bin, d, f) in series {
            let mut m = BTreeMap::new();
            m.insert(asn, mag(d, f));
            ex.push(BinId(bin), &m);
        }
    }

    #[test]
    fn quiet_series_has_no_events() {
        let mut ex = EventExtractor::new();
        push_series(
            &mut ex,
            Asn(1),
            &(0..48).map(|b| (b, 0.3, -0.2)).collect::<Vec<_>>(),
        );
        assert!(ex.events(&cfg(3.0)).is_empty());
    }

    #[test]
    fn contiguous_peak_becomes_one_event() {
        let mut ex = EventExtractor::new();
        let mut series: Vec<(u64, f64, f64)> = (0..10).map(|b| (b, 0.0, 0.0)).collect();
        series.extend([(10, 40.0, -0.5), (11, 90.0, -1.0), (12, 25.0, -0.2)]);
        series.extend((13..20).map(|b| (b, 0.0, 0.0)));
        push_series(&mut ex, Asn(25152), &series);
        let events = ex.events(&cfg(3.0));
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!((e.start, e.end), (BinId(10), BinId(12)));
        assert_eq!(e.duration(), 3);
        assert_eq!(e.peak_delay, 90.0);
        assert_eq!(e.kind, EventKind::DelayChange);
    }

    #[test]
    fn separate_attacks_become_separate_events() {
        // Fig. 6 structure: two peaks separated by ~20 quiet hours.
        let mut ex = EventExtractor::new();
        let mut series: Vec<(u64, f64, f64)> = Vec::new();
        for b in 0..50 {
            let d = if (10..=12).contains(&b) {
                100.0
            } else if b == 34 {
                80.0
            } else {
                0.1
            };
            series.push((b, d, 0.0));
        }
        push_series(&mut ex, Asn(25152), &series);
        let events = ex.events(&cfg(5.0));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].peak_delay, 100.0); // ranked by score
        assert_eq!(events[1].peak_delay, 80.0);
    }

    #[test]
    fn forwarding_loss_kind_detected() {
        let mut ex = EventExtractor::new();
        push_series(
            &mut ex,
            Asn(1200),
            &[(0, 0.0, 0.0), (1, 0.2, -11.0), (2, 0.1, -0.4)],
        );
        let events = ex.events(&cfg(3.0));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::ForwardingLoss);
        assert!(events[0].to_string().contains("packet loss"));
    }

    #[test]
    fn one_bin_gap_is_bridged() {
        let mut ex = EventExtractor::new();
        push_series(
            &mut ex,
            Asn(7),
            &[(0, 10.0, 0.0), (1, 0.1, 0.0), (2, 12.0, 0.0)],
        );
        let events = ex.events(&cfg(3.0));
        assert_eq!(events.len(), 1, "gap not bridged: {events:?}");
        assert_eq!(events[0].end, BinId(2));
    }

    #[test]
    fn gap_knob_controls_bridging() {
        // Two quiet bins split the run under the default gap of 1 but
        // merge under a gap of 2 — the promoted knob is live.
        let mut ex = EventExtractor::new();
        push_series(
            &mut ex,
            Asn(7),
            &[(0, 10.0, 0.0), (1, 0.1, 0.0), (2, 0.1, 0.0), (3, 12.0, 0.0)],
        );
        assert_eq!(ex.events_with(3.0, 1).len(), 2);
        assert_eq!(ex.events_with(3.0, 2).len(), 1);
        let wide = DetectorConfig {
            event_threshold: 3.0,
            event_gap_bins: 2,
            ..Default::default()
        };
        assert_eq!(ex.events(&wide), ex.events_with(3.0, 2));
    }

    #[test]
    fn multiple_ases_ranked_together() {
        let mut ex = EventExtractor::new();
        push_series(&mut ex, Asn(1), &[(0, 5.0, 0.0)]);
        push_series(&mut ex, Asn(2), &[(0, 0.0, -50.0)]);
        let events = ex.events(&cfg(3.0));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].asn, Asn(2));
        assert!(events[0].score() > events[1].score());
    }
}
