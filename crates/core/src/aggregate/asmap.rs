//! IP-to-AS mapping by longest prefix match.
//!
//! "The IP to AS mapping is done using longest prefix match, and alarms
//! with IP addresses from different ASs are assigned to multiple groups"
//! (§6). The mapper is a thin facade over [`pinpoint_model::LpmTable`];
//! in production it would be loaded from a RIB dump, here scenarios build
//! it from the simulator's ground-truth prefix table.

use pinpoint_model::{Asn, LpmTable, Prefix};
use std::net::Ipv4Addr;

/// Longest-prefix-match IP → AS mapper.
#[derive(Debug, Clone, Default)]
pub struct AsMapper {
    table: LpmTable<Asn>,
}

impl AsMapper {
    /// Empty mapper (addresses map to `None`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(prefix, ASN)` pairs.
    pub fn from_prefixes<I: IntoIterator<Item = (Prefix, Asn)>>(prefixes: I) -> Self {
        let mut table = LpmTable::new();
        for (p, a) in prefixes {
            table.insert(p, a);
        }
        AsMapper { table }
    }

    /// Register one prefix.
    pub fn insert(&mut self, prefix: Prefix, asn: Asn) {
        self.table.insert(prefix, asn);
    }

    /// Map an address to its AS.
    pub fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.table.lookup_value(addr).copied()
    }

    /// The distinct ASes of a set of addresses (an alarm touching two ASes
    /// belongs to both groups).
    pub fn groups(&self, addrs: &[Ipv4Addr]) -> Vec<Asn> {
        let mut out: Vec<Asn> = addrs.iter().filter_map(|a| self.asn_of(*a)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All `(prefix, ASN)` pairs in deterministic trie order — the
    /// snapshot path (and a debugging aid). Rebuilding via
    /// [`AsMapper::from_prefixes`] reproduces an equivalent table.
    pub fn prefixes(&self) -> Vec<(Prefix, Asn)> {
        self.table
            .iter()
            .into_iter()
            .map(|(p, a)| (p, *a))
            .collect()
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mapper() -> AsMapper {
        AsMapper::from_prefixes([
            ("16.0.0.0/16".parse().unwrap(), Asn(100)),
            ("16.1.0.0/16".parse().unwrap(), Asn(200)),
            ("16.1.128.0/17".parse().unwrap(), Asn(300)),
        ])
    }

    #[test]
    fn longest_match_wins() {
        let m = mapper();
        assert_eq!(m.asn_of(ip("16.0.3.4")), Some(Asn(100)));
        assert_eq!(m.asn_of(ip("16.1.1.1")), Some(Asn(200)));
        assert_eq!(m.asn_of(ip("16.1.200.1")), Some(Asn(300)));
        assert_eq!(m.asn_of(ip("99.9.9.9")), None);
    }

    #[test]
    fn cross_as_alarm_lands_in_both_groups() {
        let m = mapper();
        let groups = m.groups(&[ip("16.0.0.1"), ip("16.1.0.1")]);
        assert_eq!(groups, vec![Asn(100), Asn(200)]);
        // Same-AS pair collapses to one group.
        let one = m.groups(&[ip("16.0.0.1"), ip("16.0.0.2")]);
        assert_eq!(one, vec![Asn(100)]);
    }

    #[test]
    fn unmapped_addresses_are_skipped() {
        let m = mapper();
        let groups = m.groups(&[ip("99.9.9.9"), ip("16.0.0.1")]);
        assert_eq!(groups, vec![Asn(100)]);
        assert!(m.groups(&[ip("99.9.9.9")]).is_empty());
    }
}
