//! Per-AS severity accumulation for one bin (§6).
//!
//! * Delay: every [`DelayAlarm`] contributes its deviation d(Δ) to the AS
//!   of each endpoint IP of the link (both groups when they differ).
//! * Forwarding: every reported next hop contributes its responsibility rᵢ
//!   to the AS owning the hop's address. Negative rᵢ (devalued hop) drags
//!   the AS down, positive (newly used hop) lifts it — so an in-AS reroute
//!   cancels out while packet loss shows as a negative spike ("if traffic
//!   usually goes through a router i but is suddenly rerouted to router j,
//!   and both i and j are assigned to the same AS, then the negative ri and
//!   positive rj values cancel out").

use super::asmap::AsMapper;
use crate::diffrtt::DelayAlarm;
use crate::forwarding::{ForwardingAlarm, NextHop};
use pinpoint_model::Asn;
use std::collections::BTreeMap;

/// Sum per AS of d(Δ) over delay alarms.
pub fn delay_severity(alarms: &[DelayAlarm], mapper: &AsMapper) -> BTreeMap<Asn, f64> {
    let mut out = BTreeMap::new();
    for alarm in alarms {
        for asn in mapper.groups(&[alarm.link.near, alarm.link.far]) {
            *out.entry(asn).or_insert(0.0) += alarm.deviation;
        }
    }
    out
}

/// Sum per AS of rᵢ over reported next hops of forwarding alarms.
pub fn forwarding_severity(alarms: &[ForwardingAlarm], mapper: &AsMapper) -> BTreeMap<Asn, f64> {
    let mut out = BTreeMap::new();
    for alarm in alarms {
        for (hop, r) in &alarm.responsibilities {
            let NextHop::Ip(addr) = hop else {
                continue; // the unresponsive bucket has no AS
            };
            if let Some(asn) = mapper.asn_of(*addr) {
                *out.entry(asn).or_insert(0.0) += r;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffrtt::detect::Direction;
    use pinpoint_model::{BinId, IpLink};
    use pinpoint_stats::wilson::ConfidenceInterval;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn mapper() -> AsMapper {
        AsMapper::from_prefixes([
            ("16.0.0.0/16".parse().unwrap(), Asn(100)),
            ("16.1.0.0/16".parse().unwrap(), Asn(200)),
        ])
    }

    fn delay_alarm(near: &str, far: &str, d: f64) -> DelayAlarm {
        DelayAlarm {
            link: IpLink::new(ip(near), ip(far)),
            bin: BinId(1),
            observed: ConfidenceInterval::new(9.0, 10.0, 11.0, 10),
            reference: ConfidenceInterval::new(1.0, 2.0, 3.0, 0),
            deviation: d,
            direction: Direction::Increase,
        }
    }

    fn fwd_alarm(resp: Vec<(NextHop, f64)>) -> ForwardingAlarm {
        ForwardingAlarm {
            router: ip("16.0.0.1"),
            dst: ip("198.51.100.1"),
            bin: BinId(1),
            rho: -0.8,
            responsibilities: resp,
        }
    }

    #[test]
    fn delay_severity_sums_and_splits_across_ases() {
        let alarms = vec![
            delay_alarm("16.0.0.1", "16.0.0.2", 5.0), // both in AS100
            delay_alarm("16.0.0.3", "16.1.0.1", 2.0), // crosses 100↔200
        ];
        let sev = delay_severity(&alarms, &mapper());
        assert_eq!(sev[&Asn(100)], 7.0);
        assert_eq!(sev[&Asn(200)], 2.0);
    }

    #[test]
    fn forwarding_severity_signed_by_responsibility() {
        let alarms = vec![fwd_alarm(vec![
            (NextHop::Ip(ip("16.0.0.9")), -0.5), // vanished hop in AS100
            (NextHop::Ip(ip("16.1.0.9")), 0.3),  // new hop in AS200
            (NextHop::Unresponsive, 0.2),        // no AS
        ])];
        let sev = forwarding_severity(&alarms, &mapper());
        assert_eq!(sev[&Asn(100)], -0.5);
        assert_eq!(sev[&Asn(200)], 0.3);
        assert_eq!(sev.len(), 2);
    }

    #[test]
    fn same_as_reroute_cancels() {
        // The paper's cancellation property: i devalued, j promoted, both in
        // AS100 → net ≈ 0.
        let alarms = vec![fwd_alarm(vec![
            (NextHop::Ip(ip("16.0.0.9")), -0.4),
            (NextHop::Ip(ip("16.0.0.10")), 0.4),
        ])];
        let sev = forwarding_severity(&alarms, &mapper());
        assert_eq!(sev[&Asn(100)], 0.0);
    }

    #[test]
    fn empty_alarms_empty_severity() {
        assert!(delay_severity(&[], &mapper()).is_empty());
        assert!(forwarding_severity(&[], &mapper()).is_empty());
    }
}
