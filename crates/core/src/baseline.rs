//! Baseline detectors for ablation comparisons.
//!
//! The paper motivates each design choice against a simpler alternative;
//! these implementations let the benches quantify the difference:
//!
//! * [`MeanDetector`] — the original CLT: arithmetic mean ± z·σ/√n instead
//!   of median + Wilson CI. Fig. 3b shows heavy-tailed outliers destroy its
//!   normality; the ablation bench counts its false alarms.
//! * [`ThresholdDetector`] — a fixed absolute threshold on the median
//!   differential RTT, no learned reference at all.
//! * [`SetDiffDetector`] — forwarding anomalies from raw next-hop set
//!   changes (any new/vanished hop alarms), without correlation or
//!   responsibility weighting.

use crate::config::DetectorConfig;
use crate::forwarding::pattern::{NextHop, Pattern, PatternKey};
use pinpoint_model::{BinId, IpLink};
use pinpoint_stats::descriptive::Summary;
use pinpoint_stats::smoothing::Ewma;
use std::collections::{BTreeSet, HashMap};

/// Mean-based delay alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct MeanAlarm {
    /// The link.
    pub link: IpLink,
    /// The bin.
    pub bin: BinId,
    /// Observed mean.
    pub mean: f64,
    /// Reference mean at detection time.
    pub reference: f64,
}

/// Classical-CLT delay detector: smoothed reference of the arithmetic mean,
/// alarm when the observed mean ± z·σ/√n interval misses the reference.
#[derive(Debug)]
pub struct MeanDetector {
    cfg: DetectorConfig,
    references: HashMap<IpLink, Ewma>,
}

impl MeanDetector {
    /// Create with the shared configuration (z and α are reused).
    pub fn new(cfg: &DetectorConfig) -> Self {
        MeanDetector {
            cfg: cfg.clone(),
            references: HashMap::new(),
        }
    }

    /// Process one link's samples for one bin.
    pub fn check_link(&mut self, link: IpLink, bin: BinId, samples: &[f64]) -> Option<MeanAlarm> {
        if samples.is_empty() {
            return None;
        }
        let s = Summary::from_slice(samples);
        let mean = s.mean();
        let half_width = self.cfg.wilson_z * s.std_dev() / (s.count() as f64).sqrt();
        let entry = self
            .references
            .entry(link)
            .or_insert_with(|| Ewma::with_initial(self.cfg.alpha, mean));
        let reference = entry.value().unwrap_or(mean);
        let alarm = ((mean - reference).abs() > half_width)
            && ((mean - reference).abs() >= self.cfg.min_median_gap_ms);
        entry.update(mean);
        if alarm {
            Some(MeanAlarm {
                link,
                bin,
                mean,
                reference,
            })
        } else {
            None
        }
    }
}

/// Fixed-threshold delay detector: alarm whenever the bin median exceeds
/// `threshold_ms`, no learning.
#[derive(Debug, Clone)]
pub struct ThresholdDetector {
    /// The absolute alarm threshold in milliseconds.
    pub threshold_ms: f64,
}

impl ThresholdDetector {
    /// Create with a threshold.
    pub fn new(threshold_ms: f64) -> Self {
        ThresholdDetector { threshold_ms }
    }

    /// Whether a bin's median trips the threshold.
    pub fn check(&self, median: f64) -> bool {
        median.abs() > self.threshold_ms
    }
}

/// Raw next-hop set-difference forwarding detector.
#[derive(Debug, Default)]
pub struct SetDiffDetector {
    seen: HashMap<PatternKey, BTreeSet<NextHop>>,
}

impl SetDiffDetector {
    /// Empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Alarm when the next-hop set differs at all from the last bin's.
    /// Returns the symmetric difference size (0 = no alarm).
    pub fn check(&mut self, key: PatternKey, observed: &Pattern) -> usize {
        let current: BTreeSet<NextHop> = observed.iter().map(|(h, _)| *h).collect();
        let diff = match self.seen.get(&key) {
            None => 0,
            Some(prev) => prev.symmetric_difference(&current).count(),
        };
        self.seen.insert(key, current);
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_stats::distributions::{Normal, Pareto};
    use pinpoint_stats::rng::SplitMix64;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn link() -> IpLink {
        IpLink::new(ip("10.0.0.1"), ip("10.0.0.2"))
    }

    #[test]
    fn mean_detector_catches_clean_shift() {
        let cfg = DetectorConfig::fast_test();
        let mut d = MeanDetector::new(&cfg);
        let mut rng = SplitMix64::new(1);
        let quiet = Normal::new(5.0, 0.5);
        for b in 0..20 {
            let samples: Vec<f64> = (0..100).map(|_| quiet.sample(&mut rng)).collect();
            assert!(d.check_link(link(), BinId(b), &samples).is_none());
        }
        let shifted = Normal::new(25.0, 0.5);
        let samples: Vec<f64> = (0..100).map(|_| shifted.sample(&mut rng)).collect();
        assert!(d.check_link(link(), BinId(20), &samples).is_some());
    }

    #[test]
    fn mean_detector_false_alarms_on_outliers_where_median_holds() {
        // The ablation claim: inject Pareto outliers into a stable series;
        // the mean detector fires while the paper's detector (exercised in
        // diffrtt tests) does not.
        let cfg = DetectorConfig::fast_test();
        let mut d = MeanDetector::new(&cfg);
        let mut rng = SplitMix64::new(7);
        let body = Normal::new(5.0, 0.3);
        let tail = Pareto::new(200.0, 1.1);
        let mut false_alarms = 0;
        for b in 0..200 {
            let samples: Vec<f64> = (0..60)
                .map(|_| {
                    let mut v = body.sample(&mut rng);
                    if rng.next_bool(0.03) {
                        v += tail.sample(&mut rng);
                    }
                    v
                })
                .collect();
            if d.check_link(link(), BinId(b), &samples).is_some() {
                false_alarms += 1;
            }
        }
        assert!(
            false_alarms > 5,
            "expected the mean detector to misfire, got {false_alarms}"
        );
    }

    #[test]
    fn threshold_detector_is_blind_to_context() {
        let d = ThresholdDetector::new(10.0);
        assert!(!d.check(5.0));
        assert!(d.check(15.0));
        assert!(d.check(-15.0));
        // A link whose *usual* delay is 15 ms permanently alarms — the
        // motivation for learned references.
        assert!(d.check(15.0));
    }

    #[test]
    fn set_diff_detector_alarms_on_any_churn() {
        let mut d = SetDiffDetector::new();
        let key = PatternKey {
            router: ip("10.0.0.1"),
            dst: ip("198.51.100.1"),
        };
        let mut p1 = Pattern::default();
        p1.add(NextHop::Ip(ip("10.0.1.1")), 100.0);
        assert_eq!(d.check(key, &p1), 0); // first sighting
        assert_eq!(d.check(key, &p1), 0); // stable
        let mut p2 = Pattern::default();
        p2.add(NextHop::Ip(ip("10.0.1.1")), 99.0);
        p2.add(NextHop::Ip(ip("10.0.1.2")), 1.0); // one stray packet
        assert_eq!(d.check(key, &p2), 1, "set-diff ignores magnitudes");
    }
}
