//! Deterministic, byte-stable snapshots of resumable detector state.
//!
//! A production deployment of the paper's pipeline (§8 "Internet Health
//! Report") runs for months: the delay references take `warmup_bins` to
//! warm, the magnitude windows hold a week of history, and the event
//! table carries open incidents. A crash that loses this state costs far
//! more than the crash itself. This module serializes the complete
//! resumable state of an [`Analyzer`](crate::pipeline::Analyzer) (or a
//! whole [`StreamRouter`](crate::stream::StreamRouter) fleet) into a
//! byte-stable buffer and restores it into a fresh process.
//!
//! ## The snapshot determinism rule
//!
//! Snapshots obey the same contract reports do, extended one level:
//!
//! 1. **Byte-stable across the execution matrix.** The snapshot of an
//!    analyzer at bin *k* is byte-identical regardless of thread count,
//!    scatter chunk size, pipeline depth, or radix knob. Hash maps
//!    serialize in sorted key order; intern tables serialize in dense-id
//!    (insertion) order, which *is* deterministic by the chunk-order
//!    merge rule; throughput knobs (`threads`, `ingest_chunk_records`,
//!    `pipeline_depth`, `radix_min_keys`) are normalized to 0 ("auto")
//!    inside the serialized config, so machines with different pinned
//!    knobs produce the same bytes.
//! 2. **Resume parity.** Snapshot at bin *k*, restore into a fresh
//!    process (possibly with different throughput knobs), feed bins
//!    *k+1..n*: every report is byte-identical to the uninterrupted run.
//!    `tests/snapshot_parity.rs` proves both properties across the CI
//!    thread × chunk × depth × radix matrix.
//!
//! ## Wire format
//!
//! Little-endian integers, `f64` as IEEE-754 bit patterns, sequences
//! length-prefixed with `u64`, `Ipv4Addr` as its `u32` value. A snapshot
//! starts with a magic + version header and a kind tag (solo analyzer vs
//! fleet). Checkpoint *files* add an outer frame — magic, `u64` payload
//! length, CRC-32 — so a partial write (crash mid-`rename`, torn disk)
//! is detected and skipped rather than restored ([`frame`]/[`unframe`]).

use std::fmt;

/// Snapshot header magic: "PNPT".
const MAGIC: [u8; 4] = *b"PNPT";
/// Snapshot format version. Bump on any wire-format change.
const VERSION: u32 = 1;
/// Checkpoint-file frame magic: "PNCK".
const FRAME_MAGIC: [u8; 4] = *b"PNCK";

/// Snapshot kind tag: a single [`Analyzer`](crate::pipeline::Analyzer).
pub(crate) const KIND_ANALYZER: u8 = 1;
/// Snapshot kind tag: a [`StreamRouter`](crate::stream::StreamRouter).
pub(crate) const KIND_FLEET: u8 = 2;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The magic bytes are not a snapshot's.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    BadVersion(u32),
    /// A structural invariant does not hold (bad tag, checksum
    /// mismatch, impossible length).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Byte-stable snapshot writer: append-only buffer with typed primitives.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer with the snapshot header already emitted.
    pub(crate) fn with_header(kind: u8) -> Self {
        let mut w = Writer::default();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u8(kind);
        w
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact, no
    /// formatting round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append an IPv4 address as its `u32` value.
    pub fn ip(&mut self, v: std::net::Ipv4Addr) {
        self.u32(u32::from(v));
    }

    /// Append a string: `u64` length + UTF-8 bytes.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append a sequence length prefix.
    pub fn seq(&mut self, len: usize) {
        self.usize(len);
    }
}

/// Snapshot reader: a cursor over serialized bytes. Every accessor
/// returns [`SnapshotError::Truncated`] past the end — corrupt input can
/// never panic a restore.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a snapshot, checking magic + version, returning the kind tag.
    pub(crate) fn open(buf: &'a [u8]) -> Result<(u8, Self), SnapshotError> {
        let mut r = Reader { buf, pos: 0 };
        if r.bytes(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let kind = r.u8()?;
        Ok((kind, r))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte")),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a `u64` into `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an IPv4 address.
    pub fn ip(&mut self) -> Result<std::net::Ipv4Addr, SnapshotError> {
        Ok(std::net::Ipv4Addr::from(self.u32()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.seq()?;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("utf-8"))
    }

    /// Read a sequence length prefix, bounds-checked against the bytes
    /// remaining (an element needs at least one byte, so a length larger
    /// than the residue is corrupt — this keeps a flipped length byte
    /// from attempting a giant allocation).
    pub fn seq(&mut self) -> Result<usize, SnapshotError> {
        let len = self.usize()?;
        if len > self.buf.len() - self.pos {
            return Err(SnapshotError::Corrupt("sequence length"));
        }
        Ok(len)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — hand-rolled so
/// checkpoint framing needs no external crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wrap a payload in the checkpoint-file frame: magic, `u64` payload
/// length, CRC-32 of the payload, then the payload. [`unframe`] rejects
/// any partial or bit-flipped write.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a checkpoint-file frame and return its payload. Truncated
/// files, wrong magic, length mismatches, and checksum failures all
/// report a distinct error — a resume scan skips such files and falls
/// back to the previous checkpoint.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let len = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload = &bytes[16..];
    if payload.len() as u64 != len {
        return Err(SnapshotError::Truncated);
    }
    if crc32(payload) != crc {
        return Err(SnapshotError::Corrupt("frame checksum"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::with_header(KIND_ANALYZER);
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.ip(std::net::Ipv4Addr::new(10, 1, 2, 3));
        w.str("amsterdam");
        let bytes = w.into_bytes();
        let (kind, mut r) = Reader::open(&bytes).unwrap();
        assert_eq!(kind, KIND_ANALYZER);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.ip().unwrap(), std::net::Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(r.str().unwrap(), "amsterdam");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::with_header(KIND_FLEET);
        w.u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let r = Reader::open(&bytes[..cut]);
            match r {
                Ok((_, mut r)) => assert!(r.u64().is_err()),
                Err(e) => assert!(matches!(
                    e,
                    SnapshotError::Truncated | SnapshotError::BadMagic
                )),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(
            Reader::open(b"XXXXxxxxx").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut w = Writer::default();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(999);
        w.u8(KIND_ANALYZER);
        assert_eq!(
            Reader::open(&w.into_bytes()).unwrap_err(),
            SnapshotError::BadVersion(999)
        );
    }

    #[test]
    fn oversized_sequence_length_is_corrupt() {
        let mut w = Writer::with_header(KIND_ANALYZER);
        w.usize(1 << 40);
        let bytes = w.into_bytes();
        let (_, mut r) = Reader::open(&bytes).unwrap();
        assert_eq!(
            r.seq().unwrap_err(),
            SnapshotError::Corrupt("sequence length")
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_rejection() {
        let payload = b"checkpoint payload".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);
        // Partial write: every prefix is rejected.
        for cut in 0..framed.len() {
            assert!(unframe(&framed[..cut]).is_err(), "prefix {cut} accepted");
        }
        // A single flipped payload bit fails the checksum.
        let mut flipped = framed.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert_eq!(
            unframe(&flipped).unwrap_err(),
            SnapshotError::Corrupt("frame checksum")
        );
        // Wrong magic.
        let mut wrong = framed;
        wrong[0] = b'X';
        assert_eq!(unframe(&wrong).unwrap_err(), SnapshotError::BadMagic);
    }
}
