//! Step 5: normal-reference maintenance (§4.2.4).
//!
//! The reference tracks where a link's differential RTT *usually* sits:
//! exponentially smoothed median and CI bounds (Eq. 7, small α). Because a
//! small α makes the initial value decisive, the reference warms up on the
//! first `warmup_bins` medians and starts from their median:
//! `m̄₀ = median(m₁, m₂, m₃)`.

use super::characterize::LinkStat;
use crate::config::DetectorConfig;
use crate::snapshot::{Reader, SnapshotError, Writer};
use pinpoint_stats::quantile::median;
use pinpoint_stats::smoothing::Ewma;
use pinpoint_stats::wilson::ConfidenceInterval;

/// The smoothed normal reference of one link.
#[derive(Debug, Clone)]
pub struct LinkReference {
    warmup: Vec<LinkStat>,
    warmup_bins: usize,
    med: Ewma,
    lower: Ewma,
    upper: Ewma,
}

impl LinkReference {
    /// Fresh (un-warmed) reference.
    pub fn new(cfg: &DetectorConfig) -> Self {
        // The warm-up logic below needs at least one bin, so clamp before
        // sizing the buffer — with `warmup_bins = 0` the raw value would
        // reserve nothing while the first update still pushes one stat.
        let warmup_bins = cfg.warmup_bins.max(1);
        LinkReference {
            warmup: Vec::with_capacity(warmup_bins),
            warmup_bins,
            med: Ewma::new(cfg.alpha),
            lower: Ewma::new(cfg.alpha),
            upper: Ewma::new(cfg.alpha),
        }
    }

    /// Whether the warm-up phase is complete (detection allowed).
    pub fn is_ready(&self) -> bool {
        self.med.value().is_some()
    }

    /// The current reference interval, if ready.
    pub fn interval(&self) -> Option<ConfidenceInterval> {
        let m = self.med.value()?;
        let l = self.lower.value()?;
        let u = self.upper.value()?;
        // Smoothing each bound independently can in principle cross them;
        // clamp into a valid interval around the median.
        Some(ConfidenceInterval::new(l.min(m), m, u.max(m), 0))
    }

    /// Serialize the resumable state: the warm-up buffer and the three
    /// smoothed values. `warmup_bins` and α are derived from the config
    /// (itself inside every snapshot), so they are not repeated per link.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        w.seq(self.warmup.len());
        for s in &self.warmup {
            w.f64(s.ci.lower);
            w.f64(s.ci.median);
            w.f64(s.ci.upper);
            w.usize(s.ci.n);
        }
        for e in [&self.med, &self.lower, &self.upper] {
            match e.value() {
                Some(v) => {
                    w.bool(true);
                    w.f64(v);
                }
                None => w.bool(false),
            }
        }
    }

    /// Rebuild a reference from [`LinkReference::snapshot_into`] bytes.
    pub(crate) fn restore_from(
        r: &mut Reader<'_>,
        cfg: &DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        let n = r.seq()?;
        let mut warmup = Vec::with_capacity(n);
        for _ in 0..n {
            let lower = r.f64()?;
            let med = r.f64()?;
            let upper = r.f64()?;
            let count = r.usize()?;
            warmup.push(LinkStat {
                ci: ConfidenceInterval::new(lower, med, upper, count),
            });
        }
        let read_ewma = |r: &mut Reader<'_>| -> Result<Ewma, SnapshotError> {
            Ok(if r.bool()? {
                Ewma::with_initial(cfg.alpha, r.f64()?)
            } else {
                Ewma::new(cfg.alpha)
            })
        };
        let med = read_ewma(r)?;
        let lower = read_ewma(r)?;
        let upper = read_ewma(r)?;
        Ok(LinkReference {
            warmup,
            warmup_bins: cfg.warmup_bins.max(1),
            med,
            lower,
            upper,
        })
    }

    /// Fold one bin's statistics into the reference.
    pub fn update(&mut self, stat: &LinkStat) {
        if self.med.value().is_none() {
            self.warmup.push(*stat);
            if self.warmup.len() >= self.warmup_bins {
                let meds: Vec<f64> = self.warmup.iter().map(|s| s.ci.median).collect();
                let lows: Vec<f64> = self.warmup.iter().map(|s| s.ci.lower).collect();
                let ups: Vec<f64> = self.warmup.iter().map(|s| s.ci.upper).collect();
                self.med.reset_to(median(&meds).unwrap());
                self.lower.reset_to(median(&lows).unwrap());
                self.upper.reset_to(median(&ups).unwrap());
                self.warmup.clear();
            }
            return;
        }
        self.med.update(stat.ci.median);
        self.lower.update(stat.ci.lower);
        self.upper.update(stat.ci.upper);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(lower: f64, med: f64, upper: f64) -> LinkStat {
        LinkStat {
            ci: ConfidenceInterval::new(lower, med, upper, 100),
        }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn warmup_takes_median_of_first_three() {
        let mut r = LinkReference::new(&cfg());
        assert!(!r.is_ready());
        r.update(&stat(4.0, 5.0, 6.0));
        assert!(!r.is_ready());
        r.update(&stat(4.4, 5.4, 6.4));
        assert!(!r.is_ready());
        r.update(&stat(4.2, 5.2, 6.2));
        assert!(r.is_ready());
        let ci = r.interval().unwrap();
        assert!((ci.median - 5.2).abs() < 1e-12);
        assert!((ci.lower - 4.2).abs() < 1e-12);
        assert!((ci.upper - 6.2).abs() < 1e-12);
    }

    #[test]
    fn warmup_resists_one_anomalous_bin() {
        // An anomaly in the warm-up window must not poison m̄₀ — that is
        // exactly why the paper takes the median of the first three bins.
        let mut r = LinkReference::new(&cfg());
        r.update(&stat(4.0, 5.0, 6.0));
        r.update(&stat(200.0, 250.0, 300.0)); // outage during warm-up
        r.update(&stat(4.2, 5.1, 6.1));
        let ci = r.interval().unwrap();
        assert!((ci.median - 5.1).abs() < 1e-9, "median {}", ci.median);
    }

    #[test]
    fn post_warmup_smoothing_is_slow() {
        let mut r = LinkReference::new(&cfg());
        for _ in 0..3 {
            r.update(&stat(4.0, 5.0, 6.0));
        }
        // A single wild bin moves the reference by at most α × gap.
        r.update(&stat(100.0, 150.0, 200.0));
        let ci = r.interval().unwrap();
        assert!((ci.median - (0.01 * 150.0 + 0.99 * 5.0)).abs() < 1e-9);
        assert!(ci.median < 7.0);
    }

    #[test]
    fn bounds_never_cross_median() {
        let mut r = LinkReference::new(&cfg());
        for _ in 0..3 {
            r.update(&stat(4.0, 5.0, 6.0));
        }
        // Feed stats whose bounds would drag lower above the median.
        for _ in 0..500 {
            r.update(&stat(9.0, 9.1, 9.2));
        }
        let ci = r.interval().unwrap();
        assert!(ci.lower <= ci.median && ci.median <= ci.upper);
    }

    #[test]
    fn custom_warmup_length() {
        let mut c = cfg();
        c.warmup_bins = 1;
        let mut r = LinkReference::new(&c);
        r.update(&stat(1.0, 2.0, 3.0));
        assert!(r.is_ready());
    }

    #[test]
    fn zero_warmup_bins_behaves_like_one() {
        // Regression: `warmup_bins = 0` used to size the warm-up buffer at
        // zero while the warm-up logic clamped to one bin — the first push
        // reallocated, and the capacity/logic disagreement hid the clamp.
        let mut c = cfg();
        c.warmup_bins = 0;
        let mut r = LinkReference::new(&c);
        assert!(r.warmup.capacity() >= 1, "capacity must match the clamp");
        assert!(!r.is_ready());
        r.update(&stat(1.0, 2.0, 3.0));
        assert!(r.is_ready(), "one stat must complete a zero-bin warm-up");
        let ci = r.interval().unwrap();
        assert!((ci.median - 2.0).abs() < 1e-12);
    }
}
