//! Delay-change detection via differential RTTs (§4).
//!
//! Per 1-hour bin, the detector runs the paper's five steps:
//!
//! 1. [`compute`] — differential RTT samples per IP link, all RTT
//!    combinations per probe (1–9 per traceroute);
//! 2. [`diversity`] — drop links seen from < 3 probe ASes; rebalance
//!    over-represented ASes until the probe-count entropy exceeds 0.5;
//! 3. [`characterize`] — median + Wilson-score 95 % CI of the surviving
//!    samples;
//! 4. [`detect`] — compare against the link's smoothed normal reference:
//!    non-overlapping CIs and ≥ 1 ms median gap raise a [`DelayAlarm`] with
//!    deviation d(Δ) (Eq. 6);
//! 5. [`reference`] — fold the bin's median/CI into the reference
//!    (exponential smoothing, Eq. 7; warm-up median of the first 3 bins).
//!
//! ## The sharded bin engine
//!
//! [`DelayDetector::process_bin`] is the §4–§6 hot path, so it is built as
//! a parallel, allocation-lean engine:
//!
//! * samples live in a flat [`compute::SampleArena`] whose buffers are
//!   reused across bins (no per-probe maps rebuilt each hour), fed by the
//!   chunked parallel scatter front-end (`crate::ingest`): record chunks
//!   scatter on the worker pool against epoch-persistent link/probe
//!   intern tables (zero insertions in steady state), and per-shard rows
//!   concatenate in chunk order so output never depends on the chunking;
//! * links — and their smoothed references — are sharded by a *stable*
//!   hash of the link, and a scoped thread pool walks whole shards, so
//!   reference mutation needs no locks;
//! * references track the last bin their link was characterized in and are
//!   evicted once unseen for `cfg.reference_expiry_bins` (the same clock
//!   the forwarding side uses), so link churn cannot grow the per-shard
//!   maps without bound;
//! * per-link randomness comes from a `(seed, link, bin)`-derived RNG and
//!   alarms get a final total-order sort, so the output is byte-for-byte
//!   identical for any thread count — including the sequential reference
//!   path [`DelayDetector::process_bin_sequential`], which the parity
//!   tests compare against.

pub mod characterize;
pub mod compute;
pub mod detect;
pub mod diversity;
pub mod reference;

pub use characterize::LinkStat;
pub use compute::{collect_link_samples, LinkSamples, SampleArena};
pub use detect::{DelayAlarm, Direction};
pub use reference::LinkReference;

use crate::config::DetectorConfig;
use crate::engine;
use crate::ingest;
use crate::snapshot::{Reader, SnapshotError, Writer};
use compute::{shard_of, DelayChunk, ShardRows, NUM_SHARDS};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, BinId, FxHashMap, IpLink, ProbeId};
use pinpoint_stats::rng::{derive_seed, SplitMix64};
use std::collections::HashMap;

/// Per-link RNG for the §4.3 rebalancing, derived from (seed, link, bin) —
/// never shared across links, so results do not depend on iteration order.
fn link_rng(cfg_seed: u64, link: &IpLink, bin: BinId) -> SplitMix64 {
    SplitMix64::new(derive_seed(
        cfg_seed
            ^ (u64::from(u32::from(link.near)) << 17)
            ^ u64::from(u32::from(link.far))
            ^ (bin.0 << 40),
        "diversity-rebalance",
    ))
}

/// One link's reference plus the last bin it was characterized in — the
/// eviction clock (same shape as the forwarding side's `ReferenceEntry`).
#[derive(Debug)]
struct ReferenceEntry {
    reference: LinkReference,
    last_seen: BinId,
}

/// One shard's slice of detector state.
#[derive(Debug, Default)]
struct Shard {
    references: FxHashMap<IpLink, ReferenceEntry>,
}

impl Shard {
    /// Drop references whose link has not been characterized for longer
    /// than the configured expiry. Links churn constantly in real
    /// traceroute feeds (paths move, targets retire); without eviction the
    /// per-shard maps grow without bound — and a link that died mid-warm-up
    /// would hold its warm-up buffer forever. Runs once per bin per shard,
    /// on the shard's own worker — deterministic for any thread count.
    fn evict(&mut self, bin: BinId, cfg: &DetectorConfig) {
        self.references
            .retain(|_, e| !engine::reference_expired(bin, e.last_seen, cfg.reference_expiry_bins));
    }
}

/// What one shard produced for one bin.
#[derive(Debug, Default)]
struct ShardOutput {
    alarms: Vec<DelayAlarm>,
    stats: Vec<(IpLink, LinkStat)>,
    new_links: usize,
}

/// Stateful delay-change detector (one instance per analysis stream).
#[derive(Debug)]
pub struct DelayDetector {
    cfg: DetectorConfig,
    shards: Vec<Shard>,
    arena: SampleArena,
    /// Total reference warm-ups started (for Table A reporting). Under
    /// link churn this counts a link again when it reappears after its
    /// reference was evicted — tracking exact unique links forever would
    /// need the unbounded memory eviction exists to avoid.
    pub links_seen: usize,
}

impl DelayDetector {
    /// Create a detector with the given configuration.
    pub fn new(cfg: &DetectorConfig) -> Self {
        DelayDetector {
            cfg: cfg.clone(),
            shards: (0..NUM_SHARDS).map(|_| Shard::default()).collect(),
            arena: SampleArena::new(),
            links_seen: 0,
        }
    }

    /// Worker threads used per bin: the configured count, or all available
    /// cores when `cfg.threads == 0`, capped by the shard count.
    fn effective_threads(&self) -> usize {
        engine::resolve_threads(self.cfg.threads)
    }

    /// Run the five steps over one bin of traceroutes — the parallel,
    /// arena-backed engine: a scatter wave (chunk jobs), the sequential
    /// chunk-ordered intern merge, then the shard wave.
    ///
    /// Also returns the per-link statistics (used by the figure harnesses
    /// to plot median series even when no alarm fires).
    pub fn process_bin(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> (Vec<DelayAlarm>, HashMap<IpLink, LinkStat>) {
        let threads = self.effective_threads();
        let chunk = ingest::resolve_chunk_for(self.cfg.ingest_chunk_records, threads);
        self.compact_epoch(bin);
        self.begin_bin();
        engine::run_jobs(self.scatter_jobs(records, chunk), threads);
        self.merge_scatter(bin);
        let (alarms, stats, new_links) = {
            let mut stage = self.stage(bin, threads);
            engine::run_jobs(stage.jobs(), threads);
            stage.finish()
        };
        self.stamp_bin(bin);
        self.links_seen += new_links;
        (alarms, stats)
    }

    /// Compact the intern epoch on the shared expiry clock. Must run in a
    /// drained gap: no bin's scattered rows in flight (the sweep renumbers
    /// dense ids). The serial path runs it at every bin open; the
    /// pipelined executor fences first (see [`DelayDetector::
    /// needs_compaction`]).
    pub(crate) fn compact_epoch(&mut self, bin: BinId) {
        self.arena.compact(bin, self.cfg.reference_expiry_bins);
    }

    /// The pipelined executor's fence predicate: whether any interned key
    /// is *overdue* — unseen for more than `reference_expiry_bins + 1`
    /// bins, i.e. expired even if the still-unstamped in-flight bin
    /// observed it. The +1 matters: this check runs before the pending
    /// bin's shard wave (and its stamps), so testing the raw expiry would
    /// cry wolf for every key the pending bin is about to refresh —
    /// degenerating to a drain per bin at small expiry values. The
    /// tolerant bound drains only for genuinely dead keys; their eviction
    /// lands at most one bin later than the serial schedule's, which is
    /// report-invisible (dense ids never reach reports).
    pub(crate) fn needs_compaction(&self, bin: BinId) -> bool {
        self.arena
            .needs_compaction(bin, self.cfg.reference_expiry_bins + 1)
    }

    /// Open one bin's scatter session. Must precede any
    /// [`DelayDetector::scatter_jobs`] call for the bin.
    pub(crate) fn begin_bin(&mut self) {
        self.arena.begin_bin();
    }

    /// The serial fence after a bin's shard wave: stamp every observed
    /// link's epoch entry. Must run before any compaction decision for a
    /// later bin.
    pub(crate) fn stamp_bin(&mut self, bin: BinId) {
        self.arena.stamp_bin(bin);
    }

    /// The pre-stage: one boxed scatter job per fixed-size record chunk,
    /// to be executed on the shared engine pool (possibly pooled with
    /// other detectors' — or other streams' — chunk jobs). May be called
    /// repeatedly within a bin: chunks append in call order, which is how
    /// incremental (streaming) ingestion feeds partial bins.
    pub(crate) fn scatter_jobs<'a>(
        &'a mut self,
        records: &'a [TracerouteRecord],
        chunk_records: usize,
    ) -> Vec<engine::Job<'a>> {
        let n = ingest::chunk_count(records.len(), chunk_records);
        let (chunks, view) = self.arena.scatter_parts(n);
        ingest::chunk_jobs(
            chunks,
            records,
            chunk_records,
            view,
            |chunk, records, view| chunk.scatter(records, view),
        )
    }

    /// The sequential merge between the scatter wave and the shard wave:
    /// chunk-ordered intern assignment for the bin's new links/probes.
    pub(crate) fn merge_scatter(&mut self, bin: BinId) {
        self.arena.merge(bin);
    }

    /// Interning-epoch counters (links + probes).
    pub fn ingest_stats(&self) -> ingest::IngestStats {
        self.arena.stats()
    }

    /// Stage one bin for the shared engine: deal the scattered-and-merged
    /// arena shards into `threads` round-robin bundles. The returned
    /// [`DelayStage`] hands out one boxed job per bundle via
    /// [`DelayStage::jobs`] so the caller ([`DelayDetector::process_bin`]
    /// standalone, or `Analyzer::process_bin` pooling both detectors)
    /// decides which pool executes them. Callers must have run the bin's
    /// scatter jobs and [`DelayDetector::merge_scatter`] first.
    pub(crate) fn stage<'a>(&'a mut self, bin: BinId, threads: usize) -> DelayStage<'a> {
        let DelayDetector {
            cfg, shards, arena, ..
        } = self;
        build_stage(arena.parts_mut(), shards, cfg, bin, threads)
    }

    /// The depth-2 overlap point: stage the *pending* bin's shard wave
    /// AND open the next bin's scatter session (opposite chunk lane, no
    /// compaction — the caller fences that) in one split borrow, so both
    /// job sets can run as one two-lane engine wave. Returns the pending
    /// bin's stage plus the next bin's scatter-chunk jobs.
    pub(crate) fn overlap<'a>(
        &'a mut self,
        pending: BinId,
        records: &'a [TracerouteRecord],
        chunk_records: usize,
        threads: usize,
    ) -> (DelayStage<'a>, Vec<engine::Job<'a>>) {
        let DelayDetector {
            cfg, shards, arena, ..
        } = self;
        let n = ingest::chunk_count(records.len(), chunk_records);
        let (parts, chunks, view) = arena.split_lanes(n);
        let scatter = ingest::chunk_jobs(
            chunks,
            records,
            chunk_records,
            view,
            |chunk, records, view| chunk.scatter(records, view),
        );
        (build_stage(parts, shards, cfg, pending, threads), scatter)
    }

    /// The original single-threaded, nested-map, full-sort path — kept as
    /// the reference implementation the engine-parity tests compare the
    /// parallel engine against. Mutates the same sharded state, so a
    /// detector driven exclusively through this method is a valid (slow)
    /// analysis stream.
    pub fn process_bin_sequential(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> (Vec<DelayAlarm>, HashMap<IpLink, LinkStat>) {
        // Step 1: differential RTT samples per link.
        let samples = collect_link_samples(records);
        let mut alarms = Vec::new();
        let mut stats = HashMap::new();

        for (link, obs) in samples {
            // Step 2: probe-diversity filter.
            let mut rng = link_rng(self.cfg.seed, &link, bin);
            let Some(filtered) = diversity::filter(&obs, &self.cfg, &mut rng) else {
                continue;
            };
            // Step 3: robust characterization (full sort).
            let Some(stat) = characterize::characterize_full_sort(&filtered, &self.cfg) else {
                continue;
            };
            // Steps 4 + 5 against the running reference.
            let shard = &mut self.shards[shard_of(&link)];
            let entry = shard.references.entry(link).or_insert_with(|| {
                self.links_seen += 1;
                ReferenceEntry {
                    reference: LinkReference::new(&self.cfg),
                    last_seen: bin,
                }
            });
            if let Some(alarm) = detect::check(link, bin, &stat, &entry.reference, &self.cfg) {
                alarms.push(alarm);
            }
            entry.reference.update(&stat);
            entry.last_seen = bin;
            stats.insert(link, stat);
        }
        for shard in &mut self.shards {
            shard.evict(bin, &self.cfg);
        }
        sort_alarms(&mut alarms);
        (alarms, stats)
    }

    /// Serialize the resumable state: every shard's references (sorted by
    /// link — shard maps iterate in hash order, which is not stable), the
    /// intern-epoch arena, and the warm-up counter. The config is written
    /// once at the analyzer level, not here.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        for shard in &self.shards {
            let mut entries: Vec<(&IpLink, &ReferenceEntry)> = shard.references.iter().collect();
            entries.sort_by_key(|(link, _)| **link);
            w.seq(entries.len());
            for (link, e) in entries {
                w.ip(link.near);
                w.ip(link.far);
                w.u64(e.last_seen.0);
                e.reference.snapshot_into(w);
            }
        }
        self.arena.snapshot_into(w);
        w.usize(self.links_seen);
    }

    /// Rebuild a detector from [`DelayDetector::snapshot_into`] bytes.
    pub(crate) fn restore_from(
        r: &mut Reader<'_>,
        cfg: &DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        let mut shards: Vec<Shard> = (0..NUM_SHARDS).map(|_| Shard::default()).collect();
        for (idx, shard) in shards.iter_mut().enumerate() {
            let n = r.seq()?;
            for _ in 0..n {
                let near = r.ip()?;
                let far = r.ip()?;
                let link = IpLink::new(near, far);
                if shard_of(&link) != idx {
                    return Err(SnapshotError::Corrupt("link in wrong shard"));
                }
                let last_seen = BinId(r.u64()?);
                let reference = LinkReference::restore_from(r, cfg)?;
                shard.references.insert(
                    link,
                    ReferenceEntry {
                        reference,
                        last_seen,
                    },
                );
            }
        }
        let arena = SampleArena::restore_from(r)?;
        let links_seen = r.usize()?;
        Ok(DelayDetector {
            cfg: cfg.clone(),
            shards,
            arena,
            links_seen,
        })
    }

    /// Reference for a link, if it exists yet (and has not been evicted).
    pub fn reference(&self, link: &IpLink) -> Option<&LinkReference> {
        self.shards[shard_of(link)]
            .references
            .get(link)
            .map(|e| &e.reference)
    }

    /// Number of links currently tracked.
    pub fn tracked_links(&self) -> usize {
        self.shards.iter().map(|s| s.references.len()).sum()
    }
}

/// One shard's slice of a staged wave: its per-wave row workspace, its
/// epoch link keys (read-only — safe next to a concurrent scatter wave),
/// and its detector state.
pub(crate) struct DelayShardTask<'a> {
    idx: usize,
    rows: &'a mut ShardRows,
    links: &'a [IpLink],
    shard: &'a mut Shard,
}

/// One worker's bundle: its round-robin share of shard tasks.
type DelayBundle<'a> = Vec<DelayShardTask<'a>>;

/// Deal a scattered-and-merged arena into a [`DelayStage`] of `threads`
/// round-robin bundles — shared by the serial [`DelayDetector::stage`]
/// and the overlapped [`DelayDetector::overlap`].
fn build_stage<'a>(
    parts: compute::SampleArenaParts<'a>,
    shards: &'a mut [Shard],
    cfg: &'a DetectorConfig,
    bin: BinId,
    threads: usize,
) -> DelayStage<'a> {
    let compute::SampleArenaParts {
        rows,
        links,
        chunks,
        probe_ids,
        probe_asns,
    } = parts;
    let bundles = engine::round_robin(
        rows.iter_mut()
            .enumerate()
            .zip(shards.iter_mut())
            .map(|((idx, rows), shard)| DelayShardTask {
                idx,
                rows,
                links: links[idx].keys(),
                shard,
            }),
        threads,
    );
    DelayStage {
        inner: engine::ShardStage::new(bundles),
        cfg,
        bin,
        chunks,
        probe_ids,
        probe_asns,
    }
}

/// A bin staged for the shared engine: an [`engine::ShardStage`] of shard
/// bundles plus the per-bin inputs every job reads. Produce jobs with
/// [`DelayStage::jobs`], execute them on any pool ([`engine::run_jobs`]),
/// then collect with [`DelayStage::finish`].
pub(crate) struct DelayStage<'a> {
    inner: engine::ShardStage<DelayBundle<'a>, ShardOutput>,
    cfg: &'a DetectorConfig,
    bin: BinId,
    chunks: &'a [DelayChunk],
    probe_ids: &'a [ProbeId],
    probe_asns: &'a [Asn],
}

impl<'a> DelayStage<'a> {
    /// One boxed job per shard bundle, each writing into its own output
    /// slot.
    pub(crate) fn jobs<'s>(&'s mut self) -> Vec<engine::Job<'s>> {
        let (cfg, bin, chunks, probe_ids, probe_asns) = (
            self.cfg,
            self.bin,
            self.chunks,
            self.probe_ids,
            self.probe_asns,
        );
        self.inner
            .jobs(move |bundle| run_delay_bundle(bundle, cfg, bin, chunks, probe_ids, probe_asns))
    }

    /// Deterministic merge of the executed jobs' outputs:
    /// `(alarms, stats, newly seen links)`.
    pub(crate) fn finish(self) -> (Vec<DelayAlarm>, HashMap<IpLink, LinkStat>, usize) {
        let mut alarms = Vec::new();
        let mut stats = HashMap::new();
        let mut new_links = 0;
        for out in self.inner.into_outputs() {
            new_links += out.new_links;
            alarms.extend(out.alarms);
            stats.extend(out.stats);
        }
        sort_alarms(&mut alarms);
        (alarms, stats, new_links)
    }
}

/// Per-worker buffers reused across a bundle's shards (and, since the
/// executor reuses jobs per wave, across bins): surviving samples,
/// diversity scratch, the batched passes' decision/stat rows, and the
/// Wilson rank memo.
#[derive(Default)]
struct BundleScratch {
    surviving: Vec<f64>,
    diversity: diversity::Scratch,
    decisions: Vec<diversity::Keep>,
    stats: Vec<Option<LinkStat>>,
    ranks: characterize::RankCache,
}

/// The per-worker shard pipeline: gather each bundled shard's chunk runs
/// in chunk order, group them, then run steps 2–5 over the shard's links
/// as three batched passes ([`characterize_shard`]). Shard state arrives
/// by `&mut` — no locks, no contention — and every per-link decision
/// depends only on `(cfg, link, bin)`, so the caller's in-order merge is
/// independent of the thread count. Nothing here writes the epoch tables
/// (stamping is the caller's post-wave fence), which is what lets the
/// pipelined executor run this concurrently with the next bin's scatter
/// wave.
fn run_delay_bundle(
    bundle: DelayBundle<'_>,
    cfg: &DetectorConfig,
    bin: BinId,
    chunks: &[DelayChunk],
    probe_ids: &[ProbeId],
    probe_asns: &[Asn],
) -> ShardOutput {
    let mut out = ShardOutput::default();
    let mut scratch = BundleScratch::default();
    let radix_min_keys = engine::resolve_radix(cfg.radix_min_keys);
    for DelayShardTask {
        idx,
        rows,
        links,
        shard,
    } in bundle
    {
        rows.gather(idx, chunks);
        rows.finalize(idx, probe_asns, chunks, radix_min_keys);
        characterize_shard(
            rows,
            links,
            shard,
            cfg,
            bin,
            probe_ids,
            probe_asns,
            &mut scratch,
            &mut out,
        );
        shard.evict(bin, cfg);
    }
    out
}

/// Steps 2–5 for one finalized shard, batched into three link-order
/// passes instead of one interleaved per-link loop:
///
/// * **pass A** draws every link's §4.3 diversity verdict;
/// * **pass B** characterizes the survivors, walking the contiguous
///   entry pool in layout order with the Wilson rank bounds memoized per
///   distinct sample count ([`characterize::RankCache`]) — the
///   selection-heavy inner loop runs back to back, with no reference
///   hash-map traffic between links;
/// * **pass C** runs detection and the reference update.
///
/// Bit-identical to the interleaved loop: each link's RNG is derived
/// independently from `(cfg.seed, link, bin)` (pass A consumes no shared
/// stream), characterization depends only on the link's samples and
/// `cfg`, and pass C touches the references in the same entry order the
/// single loop did.
#[allow(clippy::too_many_arguments)]
fn characterize_shard(
    rows: &mut ShardRows,
    links: &[IpLink],
    shard: &mut Shard,
    cfg: &DetectorConfig,
    bin: BinId,
    probe_ids: &[ProbeId],
    probe_asns: &[Asn],
    scratch: &mut BundleScratch,
    out: &mut ShardOutput,
) {
    let n = rows.link_count();
    // Pass A: probe-diversity verdicts (step 2).
    scratch.decisions.clear();
    for j in 0..n {
        let slice = rows.link_in(j, links, probe_ids, probe_asns);
        let mut rng = link_rng(cfg.seed, &slice.link, bin);
        let decision = diversity::decide(&slice, cfg, &mut rng, &mut scratch.diversity);
        scratch.decisions.push(decision);
    }
    // Pass B: robust characterization (step 3) — zero-copy for balanced
    // links (permuting the link's contiguous pool region in place),
    // copying only the survivors of a rebalanced link.
    scratch.stats.clear();
    for j in 0..n {
        let stat = match &scratch.decisions[j] {
            diversity::Keep::Discard => None,
            diversity::Keep::All => {
                let region = rows.entry_pool_range(j);
                characterize::characterize_region_cached(
                    &mut rows.pool_mut()[region],
                    &mut scratch.surviving,
                    cfg,
                    &mut scratch.ranks,
                )
            }
            diversity::Keep::Without(removed) => {
                scratch.surviving.clear();
                let slice = rows.link_in(j, links, probe_ids, probe_asns);
                for (probe, _, samples) in slice.probes() {
                    if !removed.contains(&probe) {
                        scratch.surviving.extend_from_slice(samples);
                    }
                }
                characterize::characterize_in_place_cached(
                    &mut scratch.surviving,
                    cfg,
                    &mut scratch.ranks,
                )
            }
        };
        scratch.stats.push(stat);
    }
    // Pass C: detection + reference update (steps 4 + 5), in entry order.
    for j in 0..n {
        let Some(stat) = scratch.stats[j] else {
            continue;
        };
        let link = rows.link_in(j, links, probe_ids, probe_asns).link;
        let entry = shard.references.entry(link).or_insert_with(|| {
            out.new_links += 1;
            ReferenceEntry {
                reference: LinkReference::new(cfg),
                last_seen: bin,
            }
        });
        if let Some(alarm) = detect::check(link, bin, &stat, &entry.reference, cfg) {
            out.alarms.push(alarm);
        }
        entry.reference.update(&stat);
        entry.last_seen = bin;
        out.stats.push((link, stat));
    }
}

/// Strongest first; ties broken totally so output order is deterministic
/// regardless of hash-map iteration or shard interleaving.
fn sort_alarms(alarms: &mut [DelayAlarm]) {
    alarms.sort_by(|a, b| {
        b.deviation
            .abs()
            .partial_cmp(&a.deviation.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.link.cmp(&b.link))
    });
}
