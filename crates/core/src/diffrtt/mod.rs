//! Delay-change detection via differential RTTs (§4).
//!
//! Per 1-hour bin, the detector runs the paper's five steps:
//!
//! 1. [`compute`] — differential RTT samples per IP link, all RTT
//!    combinations per probe (1–9 per traceroute);
//! 2. [`diversity`] — drop links seen from < 3 probe ASes; rebalance
//!    over-represented ASes until the probe-count entropy exceeds 0.5;
//! 3. [`characterize`] — median + Wilson-score 95 % CI of the surviving
//!    samples;
//! 4. [`detect`] — compare against the link's smoothed normal reference:
//!    non-overlapping CIs and ≥ 1 ms median gap raise a [`DelayAlarm`] with
//!    deviation d(Δ) (Eq. 6);
//! 5. [`reference`] — fold the bin's median/CI into the reference
//!    (exponential smoothing, Eq. 7; warm-up median of the first 3 bins).

pub mod characterize;
pub mod compute;
pub mod detect;
pub mod diversity;
pub mod reference;

pub use characterize::LinkStat;
pub use compute::{collect_link_samples, LinkSamples};
pub use detect::{DelayAlarm, Direction};
pub use reference::LinkReference;

use crate::config::DetectorConfig;
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{BinId, IpLink};
use pinpoint_stats::rng::{derive_seed, SplitMix64};
use std::collections::HashMap;

/// Stateful delay-change detector (one instance per analysis stream).
#[derive(Debug)]
pub struct DelayDetector {
    cfg: DetectorConfig,
    references: HashMap<IpLink, LinkReference>,
    /// Total links characterized at least once (for Table A reporting).
    pub links_seen: usize,
}

impl DelayDetector {
    /// Create a detector with the given configuration.
    pub fn new(cfg: &DetectorConfig) -> Self {
        DelayDetector {
            cfg: cfg.clone(),
            references: HashMap::new(),
            links_seen: 0,
        }
    }

    /// Run the five steps over one bin of traceroutes.
    ///
    /// Also returns the per-link statistics (used by the figure harnesses
    /// to plot median series even when no alarm fires).
    pub fn process_bin(
        &mut self,
        bin: BinId,
        records: &[TracerouteRecord],
    ) -> (Vec<DelayAlarm>, HashMap<IpLink, LinkStat>) {
        // Step 1: differential RTT samples per link.
        let samples = collect_link_samples(records);
        let mut alarms = Vec::new();
        let mut stats = HashMap::new();

        for (link, obs) in samples {
            // Step 2: probe-diversity filter. The rebalancing RNG is
            // derived per (seed, link, bin) — never shared across links —
            // so results do not depend on map iteration order.
            let mut link_rng = SplitMix64::new(derive_seed(
                self.cfg.seed
                    ^ (u64::from(u32::from(link.near)) << 17)
                    ^ u64::from(u32::from(link.far))
                    ^ (bin.0 << 40),
                "diversity-rebalance",
            ));
            let Some(filtered) = diversity::filter(&obs, &self.cfg, &mut link_rng) else {
                continue;
            };
            // Step 3: robust characterization.
            let Some(stat) = characterize::characterize(&filtered, &self.cfg) else {
                continue;
            };
            // Steps 4 + 5 against the running reference.
            let reference = self.references.entry(link).or_insert_with(|| {
                self.links_seen += 1;
                LinkReference::new(&self.cfg)
            });
            if let Some(alarm) = detect::check(link, bin, &stat, reference, &self.cfg) {
                alarms.push(alarm);
            }
            reference.update(&stat);
            stats.insert(link, stat);
        }
        // Strongest first; ties broken totally so output order is
        // deterministic regardless of hash-map iteration.
        alarms.sort_by(|a, b| {
            b.deviation
                .abs()
                .partial_cmp(&a.deviation.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.link.cmp(&b.link))
        });
        (alarms, stats)
    }

    /// Reference for a link, if it exists yet.
    pub fn reference(&self, link: &IpLink) -> Option<&LinkReference> {
        self.references.get(link)
    }

    /// Number of links currently tracked.
    pub fn tracked_links(&self) -> usize {
        self.references.len()
    }
}
