//! Step 3: robust characterization (§4.2.2).
//!
//! The bin's differential RTTs are summarized by their median and the
//! Wilson-score 95 % confidence interval on the median — the median-CLT
//! variant that stays normally distributed where the arithmetic mean is
//! destroyed by outliers (Fig. 3).

use crate::config::DetectorConfig;
use pinpoint_stats::wilson::{
    median_ci_select, median_ci_select_ranks, median_ci_sorted, wilson_rank_bounds,
    ConfidenceInterval,
};

/// Robust summary of one link in one bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStat {
    /// Median and Wilson CI of the differential RTTs.
    pub ci: ConfidenceInterval,
}

impl LinkStat {
    /// Median differential RTT.
    pub fn median(&self) -> f64 {
        self.ci.median
    }
}

/// Memo of the Wilson CI rank bounds per distinct sample count.
///
/// [`wilson_rank_bounds`] depends only on `(n, z)`, and a bin's links
/// cluster around a handful of sample counts (probes × replies), so the
/// engine's batched shard pass computes each count's ranks once and
/// replays them from this table — the transcendental work (sqrt inside
/// the Wilson score) drops out of the per-link loop. `z` is a config
/// constant in practice; the cache resets if it ever changes.
#[derive(Debug, Default)]
pub struct RankCache {
    z: f64,
    by_n: Vec<Option<(u32, u32)>>,
}

impl RankCache {
    /// `(li, ui)` for `n` samples at critical value `z` — identical to
    /// `wilson_rank_bounds(n, z)`, computed once per distinct `n`.
    fn ranks(&mut self, n: usize, z: f64) -> (usize, usize) {
        if self.z != z {
            self.z = z;
            self.by_n.clear();
        }
        if n >= self.by_n.len() {
            self.by_n.resize(n + 1, None);
        }
        let (li, ui) = *self.by_n[n].get_or_insert_with(|| {
            let (li, ui) = wilson_rank_bounds(n, z);
            (li as u32, ui as u32)
        });
        (li as usize, ui as usize)
    }
}

/// Shared tail of the cached paths: filter already done, `buf` holds the
/// finite samples. Bit-identical to `median_ci_select(buf, cfg.wilson_z)`.
fn finish_cached(buf: &mut [f64], cfg: &DetectorConfig, cache: &mut RankCache) -> Option<LinkStat> {
    if buf.is_empty() {
        return None;
    }
    let (li, ui) = cache.ranks(buf.len(), cfg.wilson_z);
    let ci = median_ci_select_ranks(buf, li, ui)?;
    Some(LinkStat { ci })
}

/// [`characterize_into`] with the Wilson ranks memoized in `cache`.
pub fn characterize_into_cached(
    samples: &[f64],
    scratch: &mut Vec<f64>,
    cfg: &DetectorConfig,
    cache: &mut RankCache,
) -> Option<LinkStat> {
    scratch.clear();
    scratch.extend(samples.iter().copied().filter(|x| x.is_finite()));
    finish_cached(scratch, cfg, cache)
}

/// [`characterize_in_place`] with the Wilson ranks memoized in `cache`.
pub fn characterize_in_place_cached(
    buf: &mut Vec<f64>,
    cfg: &DetectorConfig,
    cache: &mut RankCache,
) -> Option<LinkStat> {
    buf.retain(|x| x.is_finite());
    finish_cached(buf, cfg, cache)
}

/// [`characterize_region`] with the Wilson ranks memoized in `cache`:
/// the engine's hot path for balanced links. Non-finite samples still
/// fall back to the copying path (dropping them in place would disturb
/// the pool layout).
pub fn characterize_region_cached(
    region: &mut [f64],
    scratch: &mut Vec<f64>,
    cfg: &DetectorConfig,
    cache: &mut RankCache,
) -> Option<LinkStat> {
    if region.iter().any(|x| !x.is_finite()) {
        return characterize_into_cached(region, scratch, cfg, cache);
    }
    finish_cached(region, cfg, cache)
}

/// Characterize filtered samples; `None` when empty or non-finite.
pub fn characterize(samples: &[f64], cfg: &DetectorConfig) -> Option<LinkStat> {
    let mut scratch = Vec::new();
    characterize_into(samples, &mut scratch, cfg)
}

/// Engine variant of [`characterize`]: the finite samples are copied into
/// `scratch` (cleared first) and characterized via order-statistic
/// selection — expected O(n), no full sort, no allocation once `scratch`
/// has grown to bin size. Bit-identical to [`characterize`] and
/// [`characterize_full_sort`].
pub fn characterize_into(
    samples: &[f64],
    scratch: &mut Vec<f64>,
    cfg: &DetectorConfig,
) -> Option<LinkStat> {
    scratch.clear();
    scratch.extend(samples.iter().copied().filter(|x| x.is_finite()));
    if scratch.is_empty() {
        return None;
    }
    let ci = median_ci_select(scratch, cfg.wilson_z)?;
    Some(LinkStat { ci })
}

/// Zero-copy engine variant: drops non-finite values from `buf` in place,
/// then characterizes by permuting `buf` itself. The hot path hands in the
/// diversity filter's surviving-samples buffer, so a link is characterized
/// with no copies at all. Bit-identical to [`characterize_full_sort`].
pub fn characterize_in_place(buf: &mut Vec<f64>, cfg: &DetectorConfig) -> Option<LinkStat> {
    buf.retain(|x| x.is_finite());
    if buf.is_empty() {
        return None;
    }
    let ci = median_ci_select(buf, cfg.wilson_z)?;
    Some(LinkStat { ci })
}

/// Zero-copy arena variant: characterize a link by quickselect-permuting
/// its *contiguous shard-pool region* in place. After `finalize` a link's
/// samples sit back to back in the shard pool (span order), so a balanced
/// link — one the diversity filter keeps whole — never needs its samples
/// copied into a scratch buffer at all. Non-finite samples are the rare
/// exception (they must be dropped before selection, and dropping would
/// disturb the pool layout), so that case falls back to the copying path
/// through `scratch`. Bit-identical to [`characterize_in_place`] on a
/// copy of the region: the region holds the same sample sequence the copy
/// would, and `median_ci_select` returns exact order statistics either
/// way.
pub fn characterize_region(
    region: &mut [f64],
    scratch: &mut Vec<f64>,
    cfg: &DetectorConfig,
) -> Option<LinkStat> {
    if region.iter().any(|x| !x.is_finite()) {
        return characterize_into(region, scratch, cfg);
    }
    if region.is_empty() {
        return None;
    }
    let ci = median_ci_select(region, cfg.wilson_z)?;
    Some(LinkStat { ci })
}

/// The original full-sort implementation, retained as the reference the
/// engine-parity tests (and the sequential baseline bench) compare against.
pub fn characterize_full_sort(samples: &[f64], cfg: &DetectorConfig) -> Option<LinkStat> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ci = median_ci_sorted(&sorted, cfg.wilson_z)?;
    Some(LinkStat { ci })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_stats::distributions::{LogNormal, Normal};
    use pinpoint_stats::rng::SplitMix64;

    #[test]
    fn characterization_brackets_median() {
        let cfg = DetectorConfig::default();
        let samples: Vec<f64> = (0..101).map(|i| f64::from(i) * 0.1).collect();
        let stat = characterize(&samples, &cfg).unwrap();
        assert!((stat.median() - 5.0).abs() < 1e-9);
        assert!(stat.ci.lower < 5.0 && 5.0 < stat.ci.upper);
        assert_eq!(stat.ci.n, 101);
    }

    #[test]
    fn empty_or_nan_yields_none() {
        let cfg = DetectorConfig::default();
        assert!(characterize(&[], &cfg).is_none());
        assert!(characterize(&[f64::NAN, f64::INFINITY], &cfg).is_none());
    }

    #[test]
    fn select_path_matches_full_sort() {
        let cfg = DetectorConfig::default();
        let mut rng = SplitMix64::new(99);
        let mut scratch = Vec::new();
        for n in [1usize, 2, 3, 10, 101, 500] {
            let samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 50.0 - 10.0).collect();
            assert_eq!(
                characterize_into(&samples, &mut scratch, &cfg),
                characterize_full_sort(&samples, &cfg),
                "n={n}"
            );
        }
        // NaN/∞ filtering matches too.
        let weird = [1.0, f64::NAN, 3.0, f64::INFINITY, 2.0, -1.0];
        assert_eq!(
            characterize_into(&weird, &mut scratch, &cfg),
            characterize_full_sort(&weird, &cfg)
        );
    }

    #[test]
    fn region_path_matches_copy_paths() {
        let cfg = DetectorConfig::default();
        let mut rng = SplitMix64::new(41);
        let mut scratch = Vec::new();
        for n in [1usize, 2, 5, 64, 257] {
            let samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 40.0 - 15.0).collect();
            let mut region = samples.clone();
            assert_eq!(
                characterize_region(&mut region, &mut scratch, &cfg),
                characterize_full_sort(&samples, &cfg),
                "n={n}"
            );
            // The in-place path only permutes: same multiset afterwards.
            let mut got = region;
            let mut want = samples;
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, want, "n={n}");
        }
        // Non-finite samples fall back to the copying path and agree.
        let weird = [2.0, f64::NAN, 1.0, f64::INFINITY, 0.5];
        let mut region = weird.to_vec();
        assert_eq!(
            characterize_region(&mut region, &mut scratch, &cfg),
            characterize_full_sort(&weird, &cfg)
        );
        assert!(characterize_region(&mut [], &mut scratch, &cfg).is_none());
    }

    #[test]
    fn cached_paths_match_uncached_and_full_sort() {
        // One shared cache across links of many sizes — including repeat
        // sizes (the memo-hit case) and non-finite injections (the
        // region fallback case) — must stay bit-identical to the direct
        // and full-sort paths.
        let cfg = DetectorConfig::default();
        let mut rng = SplitMix64::new(4242);
        let mut cache = RankCache::default();
        let mut scratch = Vec::new();
        for n in [1usize, 2, 3, 7, 24, 24, 100, 7, 313, 100] {
            let mut samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 60.0 - 20.0).collect();
            // Every third round poisons a sample to force the fallback.
            if n > 2 && n % 3 == 1 {
                let k = (rng.next_raw() as usize) % n;
                samples[k] = if n % 2 == 0 { f64::NAN } else { f64::INFINITY };
            }
            let want = characterize_full_sort(&samples, &cfg);
            let mut region = samples.clone();
            assert_eq!(
                characterize_region_cached(&mut region, &mut scratch, &cfg, &mut cache),
                want,
                "region n={n}"
            );
            assert_eq!(
                characterize_into_cached(&samples, &mut scratch, &cfg, &mut cache),
                want,
                "into n={n}"
            );
            let mut buf = samples.clone();
            assert_eq!(
                characterize_in_place_cached(&mut buf, &cfg, &mut cache),
                want,
                "in_place n={n}"
            );
        }
        // All-non-finite and empty inputs yield None through the cache too.
        assert!(characterize_into_cached(&[f64::NAN; 4], &mut scratch, &cfg, &mut cache).is_none());
        assert!(characterize_region_cached(&mut [], &mut scratch, &cfg, &mut cache).is_none());
    }

    #[test]
    fn rank_cache_survives_z_change() {
        let mut a = DetectorConfig::default();
        let mut cache = RankCache::default();
        let mut scratch = Vec::new();
        let samples: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.3).collect();
        for z in [1.96, 0.0, 3.0, 1.96] {
            a.wilson_z = z;
            assert_eq!(
                characterize_into_cached(&samples, &mut scratch, &a, &mut cache),
                characterize_full_sort(&samples, &a),
                "z={z}"
            );
        }
    }

    #[test]
    fn figure2_style_stability() {
        // Reproduces the Fig. 2 phenomenon in miniature: noisy samples whose
        // raw σ is ~3× the mean, yet per-bin medians stay within a fraction
        // of a millisecond of each other.
        let cfg = DetectorConfig::default();
        let mut rng = SplitMix64::new(2015);
        let body = Normal::new(5.3, 0.3);
        let tail = LogNormal::from_median(8.0, 1.2);
        let mut medians = Vec::new();
        for _bin in 0..14 * 24 {
            let samples: Vec<f64> = (0..200)
                .map(|_| {
                    let mut v = body.sample(&mut rng);
                    if rng.next_bool(0.05) {
                        v += tail.sample(&mut rng); // sparse large outliers
                    }
                    v
                })
                .collect();
            medians.push(characterize(&samples, &cfg).unwrap().median());
        }
        let lo = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo < 0.5,
            "median differential RTT unstable: spread {}",
            hi - lo
        );
    }
}
