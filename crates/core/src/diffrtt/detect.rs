//! Step 4: anomalous delay detection (§4.2.3, Eq. 6).
//!
//! A bin is anomalous for a link when its Wilson CI does not overlap the
//! reference CI (Schenker & Gentleman significance rule) *and* the medians
//! differ by at least 1 ms. The deviation metric normalizes the CI gap by
//! the reference's own uncertainty:
//!
//! ```text
//!          ⎧ (Δ(l) − Δ̄(u)) / (Δ̄(u) − Δ̄(m))   if Δ̄(u) < Δ(l)
//! d(Δ) =  ⎨ (Δ̄(l) − Δ(u)) / (Δ̄(m) − Δ̄(l))   if Δ̄(l) > Δ(u)
//!          ⎩ 0                                  otherwise
//! ```

use super::characterize::LinkStat;
use super::reference::LinkReference;
use crate::config::DetectorConfig;
use pinpoint_model::{BinId, IpLink};
use pinpoint_stats::wilson::ConfidenceInterval;
use std::fmt;

/// Direction of a delay change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Differential RTT rose above the reference.
    Increase,
    /// Differential RTT fell below the reference.
    Decrease,
}

/// A reported delay-change anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayAlarm {
    /// The link (ordered IP pair).
    pub link: IpLink,
    /// The bin the anomaly was observed in.
    pub bin: BinId,
    /// Observed median + CI.
    pub observed: ConfidenceInterval,
    /// Reference median + CI at detection time.
    pub reference: ConfidenceInterval,
    /// Deviation d(Δ) ≥ 0 (Eq. 6).
    pub deviation: f64,
    /// Which side the change is on.
    pub direction: Direction,
}

impl DelayAlarm {
    /// Absolute gap between observed and reference medians (the edge labels
    /// of Fig. 12).
    pub fn median_shift_ms(&self) -> f64 {
        (self.observed.median - self.reference.median).abs()
    }
}

impl fmt::Display for DelayAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{}: median {:.2} ms (ref {:.2} ms), d(Δ)={:.1} {}",
            self.link,
            self.bin,
            self.observed.median,
            self.reference.median,
            self.deviation,
            match self.direction {
                Direction::Increase => "↑",
                Direction::Decrease => "↓",
            }
        )
    }
}

/// Eq. 6, given observed and reference intervals.
///
/// Degenerate references (zero-width arms) fall back to a 0.1 ms scale so
/// the deviation stays finite — narrower references mean *more* certainty,
/// not less.
pub fn deviation(observed: &ConfidenceInterval, reference: &ConfidenceInterval) -> f64 {
    const MIN_ARM_MS: f64 = 0.1;
    if reference.upper < observed.lower {
        let arm = (reference.upper - reference.median).max(MIN_ARM_MS);
        (observed.lower - reference.upper) / arm
    } else if reference.lower > observed.upper {
        let arm = (reference.median - reference.lower).max(MIN_ARM_MS);
        (reference.lower - observed.upper) / arm
    } else {
        0.0
    }
}

/// Check one link's bin statistics against its reference.
pub fn check(
    link: IpLink,
    bin: BinId,
    stat: &LinkStat,
    reference: &LinkReference,
    cfg: &DetectorConfig,
) -> Option<DelayAlarm> {
    let ref_ci = reference.interval()?;
    if stat.ci.overlaps(&ref_ci) {
        return None;
    }
    // Rule of thumb: gaps below 1 ms are statistically meaningful but not
    // operationally relevant (3 % of reported links in the paper).
    if (stat.ci.median - ref_ci.median).abs() < cfg.min_median_gap_ms {
        return None;
    }
    let d = deviation(&stat.ci, &ref_ci);
    debug_assert!(d > 0.0, "non-overlapping CIs must produce d > 0");
    Some(DelayAlarm {
        link,
        bin,
        observed: stat.ci,
        reference: ref_ci,
        deviation: d,
        direction: if stat.ci.median > ref_ci.median {
            Direction::Increase
        } else {
            Direction::Decrease
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn link() -> IpLink {
        IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"))
    }

    fn ci(l: f64, m: f64, u: f64) -> ConfidenceInterval {
        ConfidenceInterval::new(l, m, u, 50)
    }

    fn warmed_reference(l: f64, m: f64, u: f64) -> LinkReference {
        let mut r = LinkReference::new(&DetectorConfig::default());
        for _ in 0..3 {
            r.update(&LinkStat { ci: ci(l, m, u) });
        }
        r
    }

    #[test]
    fn overlap_means_no_alarm() {
        let cfg = DetectorConfig::default();
        let reference = warmed_reference(4.0, 5.0, 6.0);
        let stat = LinkStat {
            ci: ci(5.5, 6.5, 7.5),
        };
        assert!(check(link(), BinId(5), &stat, &reference, &cfg).is_none());
    }

    #[test]
    fn disjoint_intervals_raise_alarm_with_positive_deviation() {
        let cfg = DetectorConfig::default();
        let reference = warmed_reference(4.0, 5.0, 6.0);
        let stat = LinkStat {
            ci: ci(20.0, 25.0, 30.0),
        };
        let alarm = check(link(), BinId(5), &stat, &reference, &cfg).unwrap();
        assert!(alarm.deviation > 0.0);
        assert_eq!(alarm.direction, Direction::Increase);
        // d = (20 − 6) / (6 − 5) = 14.
        assert!((alarm.deviation - 14.0).abs() < 1e-9);
        assert!((alarm.median_shift_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn decrease_detected_symmetrically() {
        let cfg = DetectorConfig::default();
        let reference = warmed_reference(10.0, 11.0, 12.0);
        let stat = LinkStat {
            ci: ci(1.0, 2.0, 3.0),
        };
        let alarm = check(link(), BinId(1), &stat, &reference, &cfg).unwrap();
        assert_eq!(alarm.direction, Direction::Decrease);
        // d = (10 − 3) / (11 − 10) = 7.
        assert!((alarm.deviation - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sub_millisecond_shift_suppressed() {
        let cfg = DetectorConfig::default();
        let reference = warmed_reference(5.00, 5.01, 5.02);
        // Disjoint but tiny: |5.8 − 5.01| < 1 ms.
        let stat = LinkStat {
            ci: ci(5.75, 5.80, 5.85),
        };
        assert!(check(link(), BinId(2), &stat, &reference, &cfg).is_none());
    }

    #[test]
    fn unwarmed_reference_never_alarms() {
        let cfg = DetectorConfig::default();
        let mut reference = LinkReference::new(&cfg);
        reference.update(&LinkStat {
            ci: ci(4.0, 5.0, 6.0),
        });
        let stat = LinkStat {
            ci: ci(100.0, 101.0, 102.0),
        };
        assert!(check(link(), BinId(0), &stat, &reference, &cfg).is_none());
    }

    #[test]
    fn deviation_zero_on_touching_intervals() {
        assert_eq!(deviation(&ci(6.0, 7.0, 8.0), &ci(4.0, 5.0, 6.0)), 0.0);
        assert_eq!(deviation(&ci(2.0, 3.0, 4.0), &ci(4.0, 5.0, 6.0)), 0.0);
    }

    #[test]
    fn degenerate_reference_arm_stays_finite() {
        // Reference with zero-width CI (hyper-stable link).
        let d = deviation(&ci(10.0, 11.0, 12.0), &ci(5.0, 5.0, 5.0));
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn display_is_informative() {
        let alarm = DelayAlarm {
            link: link(),
            bin: BinId(3),
            observed: ci(20.0, 25.0, 30.0),
            reference: ci(4.0, 5.0, 6.0),
            deviation: 14.0,
            direction: Direction::Increase,
        };
        let s = alarm.to_string();
        assert!(s.contains("25.00 ms"));
        assert!(s.contains("d(Δ)=14.0"));
    }
}
