//! Step 1: differential RTT computation (§4.2.1).
//!
//! For adjacent responsive routers X, Y in a traceroute from probe P, every
//! combination `RTT(P,Y) − RTT(P,X)` is a differential RTT sample — one to
//! nine samples per traceroute, keyed by the ordered IP pair (X, Y). Samples
//! stay attributed to their probe (and the probe's AS) because the
//! diversity filter of §4.3 operates on probes, not raw samples.
//!
//! Two representations are provided:
//!
//! * [`LinkSamples`] / [`collect_link_samples`] — the readable nested-map
//!   reference layout, one `HashMap` per link keyed by probe. This is the
//!   *reference path* the engine-parity tests compare against.
//! * [`SampleArena`] — the engine's flat layout: one contiguous sample pool
//!   plus per-link/per-probe index spans, with every buffer reused across
//!   bins. Building it is a flat append + one cache-friendly sort instead
//!   of millions of per-probe map insertions, and a bin's worth of samples
//!   ends up in memory the per-link pipeline can walk without chasing
//!   pointers.

use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, FxHashMap, IpLink, ProbeId};
use std::collections::HashMap;

/// All differential RTT samples for one link in one bin, per probe.
///
/// Construct via [`LinkSamples::insert`] or [`LinkSamples::from_per_probe`]
/// so the distinct-AS count stays consistent with the probe map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkSamples {
    /// probe → (probe AS, samples).
    per_probe: HashMap<ProbeId, (Asn, Vec<f64>)>,
    /// Distinct probe ASes, kept sorted — maintained incrementally so the
    /// diversity filter's `as_count` query is O(1) instead of re-sorting a
    /// fresh `Vec<Asn>` on every call.
    ases: Vec<Asn>,
}

impl LinkSamples {
    /// Build from a ready-made probe map (test helper / conversions).
    pub fn from_per_probe(per_probe: HashMap<ProbeId, (Asn, Vec<f64>)>) -> Self {
        let mut ases: Vec<Asn> = per_probe.values().map(|(a, _)| *a).collect();
        ases.sort_unstable();
        ases.dedup();
        LinkSamples { per_probe, ases }
    }

    /// Append one sample for `probe` (attributed to `asn`).
    ///
    /// A probe's AS is fixed by its first insertion: should later samples
    /// arrive under a different ASN (malformed feed), they stay attributed
    /// to the first-seen AS, and the distinct-AS count follows the stored
    /// attribution — the same rule the arena's probe interning applies.
    pub fn insert(&mut self, probe: ProbeId, asn: Asn, sample: f64) {
        let entry = self
            .per_probe
            .entry(probe)
            .or_insert_with(|| (asn, Vec::new()));
        entry.1.push(sample);
        let stored = entry.0;
        if let Err(pos) = self.ases.binary_search(&stored) {
            self.ases.insert(pos, stored);
        }
    }

    /// Bulk variant of [`LinkSamples::insert`]: one probe-map lookup and
    /// one AS-list update for a whole batch of samples, so the reference
    /// collection path pays per-(record, link) map costs — as the original
    /// implementation did — rather than per-sample.
    pub fn insert_many(&mut self, probe: ProbeId, asn: Asn, samples: &[f64]) {
        if samples.is_empty() {
            return;
        }
        let entry = self
            .per_probe
            .entry(probe)
            .or_insert_with(|| (asn, Vec::new()));
        entry.1.extend_from_slice(samples);
        let stored = entry.0;
        if let Err(pos) = self.ases.binary_search(&stored) {
            self.ases.insert(pos, stored);
        }
    }

    /// The probe → (AS, samples) map.
    pub fn per_probe(&self) -> &HashMap<ProbeId, (Asn, Vec<f64>)> {
        &self.per_probe
    }

    /// Total sample count across probes.
    pub fn sample_count(&self) -> usize {
        self.per_probe.values().map(|(_, v)| v.len()).sum()
    }

    /// Number of contributing probes.
    pub fn probe_count(&self) -> usize {
        self.per_probe.len()
    }

    /// Number of distinct probe ASes (O(1): tracked incrementally).
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Flatten all samples (order: unspecified).
    pub fn all_samples(&self) -> Vec<f64> {
        self.per_probe
            .values()
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }
}

/// Extract per-link differential RTT samples from a bin of traceroutes
/// (reference path; the engine uses [`SampleArena::build`]).
///
/// A probe's AS is pinned to the first `probe_asn` it reports in the bin
/// (across all links, in record order) — the identical rule the arena's
/// probe interning uses, so a malformed feed that flips a probe's ASN
/// mid-bin cannot break engine parity.
pub fn collect_link_samples(records: &[TracerouteRecord]) -> HashMap<IpLink, LinkSamples> {
    let mut out: HashMap<IpLink, LinkSamples> = HashMap::new();
    let mut probe_asns: HashMap<ProbeId, Asn> = HashMap::new();
    let mut near_rtts: Vec<f64> = Vec::new();
    let mut diffs: Vec<f64> = Vec::new();
    for rec in records {
        let asn = *probe_asns.entry(rec.probe_id).or_insert(rec.probe_asn);
        rec.for_each_link(|link, near_idx, far_idx| {
            let near_hop = &rec.hops[near_idx];
            let far_hop = &rec.hops[far_idx];
            near_rtts.clear();
            near_rtts.extend(near_hop.rtts_from(link.near));
            if near_rtts.is_empty() {
                return;
            }
            diffs.clear();
            for fy in far_hop.rtts_from(link.far) {
                for &fx in near_rtts.iter() {
                    diffs.push(fy - fx);
                }
            }
            if diffs.is_empty() {
                return;
            }
            out.entry(link)
                .or_default()
                .insert_many(rec.probe_id, asn, &diffs);
        });
    }
    out
}

pub(crate) use crate::engine::NUM_SHARDS;

/// Stable shard assignment: one SplitMix64 round over the packed address
/// pair (see [`crate::engine`] for the determinism contract).
pub(crate) fn shard_of(link: &IpLink) -> usize {
    let key = (u64::from(u32::from(link.near)) << 32) | u64::from(u32::from(link.far));
    crate::engine::shard_of_u64(key)
}

/// One probe's contiguous run of samples for one link.
#[derive(Debug, Clone, Copy)]
struct ProbeSpan {
    /// Index into the arena's probe tables.
    slot: u32,
    start: u32,
    len: u32,
}

#[derive(Debug, Clone, Copy)]
struct LinkEntry {
    link: IpLink,
    spans_start: u32,
    spans_len: u32,
    as_count: u32,
}

/// One link's view into the arena.
#[derive(Debug, Clone, Copy)]
pub struct LinkSlice<'a> {
    /// The link (ordered IP pair).
    pub link: IpLink,
    /// Distinct probe ASes contributing to this link.
    pub as_count: usize,
    spans: &'a [ProbeSpan],
    pool: &'a [f64],
    probe_ids: &'a [ProbeId],
    probe_asns: &'a [Asn],
}

impl<'a> LinkSlice<'a> {
    /// Number of contributing probes.
    pub fn probe_count(&self) -> usize {
        self.spans.len()
    }

    /// Total samples for this link.
    pub fn sample_count(&self) -> usize {
        self.spans.iter().map(|s| s.len as usize).sum()
    }

    /// Iterate `(probe, asn, samples)` — deterministic order (probes in
    /// first-encounter interning order).
    pub fn probes(&self) -> impl Iterator<Item = (ProbeId, Asn, &'a [f64])> + '_ {
        self.spans.iter().map(move |s| {
            (
                self.probe_ids[s.slot as usize],
                self.probe_asns[s.slot as usize],
                &self.pool[s.start as usize..(s.start + s.len) as usize],
            )
        })
    }
}

/// One shard's rows and grouped layout. `rows` is written by the scatter
/// pass; `finalize` (run by the shard's worker thread) sorts and groups it
/// into `pool`/`spans`/`entries`.
#[derive(Debug, Default)]
pub(crate) struct ArenaShard {
    /// `(link_local << 32 | probe_slot, value)` — 16 bytes, sorted by key.
    rows: Vec<(u64, f64)>,
    /// Local link id → link, in first-encounter order.
    links: Vec<IpLink>,
    pool: Vec<f64>,
    spans: Vec<ProbeSpan>,
    entries: Vec<LinkEntry>,
    as_scratch: Vec<Asn>,
}

impl ArenaShard {
    fn clear(&mut self) {
        self.rows.clear();
        self.links.clear();
        self.pool.clear();
        self.spans.clear();
        self.entries.clear();
    }

    /// Sort this shard's rows and lay out the grouped pool/span/entry
    /// indexes. Safe to run concurrently across shards.
    pub(crate) fn finalize(&mut self, probe_asns: &[Asn]) {
        self.pool.clear();
        self.spans.clear();
        self.entries.clear();
        // One u64-keyed sort over a small, cache-resident shard.
        self.rows.sort_unstable_by_key(|r| r.0);
        let mut i = 0;
        while i < self.rows.len() {
            let link_local = (self.rows[i].0 >> 32) as u32;
            let spans_start = self.spans.len() as u32;
            self.as_scratch.clear();
            while i < self.rows.len() && (self.rows[i].0 >> 32) as u32 == link_local {
                let key = self.rows[i].0;
                let slot = key as u32;
                let start = self.pool.len() as u32;
                while i < self.rows.len() && self.rows[i].0 == key {
                    self.pool.push(self.rows[i].1);
                    i += 1;
                }
                self.spans.push(ProbeSpan {
                    slot,
                    start,
                    len: self.pool.len() as u32 - start,
                });
                self.as_scratch.push(probe_asns[slot as usize]);
            }
            self.as_scratch.sort_unstable();
            self.as_scratch.dedup();
            self.entries.push(LinkEntry {
                link: self.links[link_local as usize],
                spans_start,
                spans_len: self.spans.len() as u32 - spans_start,
                as_count: self.as_scratch.len() as u32,
            });
        }
    }

    /// Links in this shard (after `finalize`).
    pub(crate) fn link_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn link_in<'a>(
        &'a self,
        j: usize,
        probe_ids: &'a [ProbeId],
        probe_asns: &'a [Asn],
    ) -> LinkSlice<'a> {
        let e = self.entries[j];
        LinkSlice {
            link: e.link,
            as_count: e.as_count as usize,
            spans: &self.spans[e.spans_start as usize..(e.spans_start + e.spans_len) as usize],
            pool: &self.pool,
            probe_ids,
            probe_asns,
        }
    }
}

/// The engine's flat, sharded, bin-reusable sample store.
///
/// [`SampleArena::scatter`] stages every differential RTT as a 16-byte
/// `(link, probe, value)` row directly in the owning link's shard (links
/// and probes are interned into dense ids on first encounter);
/// [`ArenaShard::finalize`] — run per shard, in parallel — sorts each
/// shard's rows by one u64 key and lays the values out contiguously with
/// per-probe and per-link index spans. Every buffer is retained across
/// bins, so a steady stream of equally-sized bins settles into zero
/// steady-state allocation; and because rows never leave their shard,
/// the whole grouping step parallelizes without synchronization.
#[derive(Debug)]
pub struct SampleArena {
    pub(crate) shards: Vec<ArenaShard>,
    link_index: FxHashMap<IpLink, (u32, u32)>,
    probe_index: FxHashMap<ProbeId, u32>,
    pub(crate) probe_ids: Vec<ProbeId>,
    pub(crate) probe_asns: Vec<Asn>,
    near_rtts: Vec<f64>,
}

impl Default for SampleArena {
    fn default() -> Self {
        SampleArena {
            shards: (0..NUM_SHARDS).map(|_| ArenaShard::default()).collect(),
            link_index: FxHashMap::default(),
            probe_index: FxHashMap::default(),
            probe_ids: Vec::new(),
            probe_asns: Vec::new(),
            near_rtts: Vec::new(),
        }
    }
}

/// Split borrow of an arena: mutable shards alongside the shared probe
/// tables, so stage construction can hand shards to workers while the
/// probe id/ASN slices stay readable from every job.
pub(crate) struct SampleArenaParts<'a> {
    pub(crate) shards: &'a mut [ArenaShard],
    pub(crate) probe_ids: &'a [ProbeId],
    pub(crate) probe_asns: &'a [Asn],
}

impl SampleArena {
    /// Fresh arena (buffers grow on first use).
    pub fn new() -> Self {
        SampleArena::default()
    }

    /// Disjoint views for the engine stage (after [`SampleArena::scatter`]).
    pub(crate) fn parts_mut(&mut self) -> SampleArenaParts<'_> {
        SampleArenaParts {
            shards: &mut self.shards,
            probe_ids: &self.probe_ids,
            probe_asns: &self.probe_asns,
        }
    }

    /// Stage one bin of traceroutes into per-shard rows, reusing all
    /// buffers. Call [`ArenaShard::finalize`] (or [`SampleArena::build`])
    /// to group them.
    pub(crate) fn scatter(&mut self, records: &[TracerouteRecord]) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.link_index.clear();
        self.probe_index.clear();
        self.probe_ids.clear();
        self.probe_asns.clear();

        for rec in records {
            let shards = &mut self.shards;
            let link_index = &mut self.link_index;
            let probe_index = &mut self.probe_index;
            let probe_ids = &mut self.probe_ids;
            let probe_asns = &mut self.probe_asns;
            let near_rtts = &mut self.near_rtts;
            let slot = *probe_index.entry(rec.probe_id).or_insert_with(|| {
                probe_ids.push(rec.probe_id);
                probe_asns.push(rec.probe_asn);
                probe_ids.len() as u32 - 1
            });
            rec.for_each_link(|link, near_idx, far_idx| {
                let near_hop = &rec.hops[near_idx];
                let far_hop = &rec.hops[far_idx];
                near_rtts.clear();
                near_rtts.extend(near_hop.rtts_from(link.near));
                if near_rtts.is_empty() {
                    return;
                }
                let mut key: Option<(usize, u64)> = None;
                for fy in far_hop.rtts_from(link.far) {
                    let (shard_idx, row_key) = *key.get_or_insert_with(|| {
                        let (shard_idx, local) = *link_index.entry(link).or_insert_with(|| {
                            let s = shard_of(&link) as u32;
                            let local = shards[s as usize].links.len() as u32;
                            shards[s as usize].links.push(link);
                            (s, local)
                        });
                        (
                            shard_idx as usize,
                            (u64::from(local) << 32) | u64::from(slot),
                        )
                    });
                    let rows = &mut shards[shard_idx].rows;
                    for &fx in near_rtts.iter() {
                        rows.push((row_key, fy - fx));
                    }
                }
            });
        }
    }

    /// Scatter + finalize every shard inline (the single-threaded
    /// convenience entry; the engine finalizes shards on its workers).
    pub fn build(&mut self, records: &[TracerouteRecord]) {
        self.scatter(records);
        let probe_asns = std::mem::take(&mut self.probe_asns);
        for shard in &mut self.shards {
            shard.finalize(&probe_asns);
        }
        self.probe_asns = probe_asns;
    }

    /// Number of links with at least one sample in the current bin
    /// (after finalize).
    pub fn link_count(&self) -> usize {
        self.shards.iter().map(|s| s.link_count()).sum()
    }

    /// Total differential RTT samples in the current bin (after finalize).
    pub fn total_samples(&self) -> usize {
        self.shards.iter().map(|s| s.pool.len()).sum()
    }

    /// View of the `i`-th link, counting across shards (arbitrary but
    /// deterministic order; after finalize).
    pub fn link(&self, i: usize) -> LinkSlice<'_> {
        let mut i = i;
        for shard in &self.shards {
            if i < shard.link_count() {
                return shard.link_in(i, &self.probe_ids, &self.probe_asns);
            }
            i -= shard.link_count();
        }
        panic!("link index {i} out of bounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{MeasurementId, SimTime};
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn record(probe: u32, asn: u32, hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(probe),
            probe_asn: Asn(asn),
            dst: ip("198.51.100.1"),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, addr: &str, rtts: &[f64]) -> Hop {
        Hop::new(ttl, rtts.iter().map(|&r| Reply::new(ip(addr), r)).collect())
    }

    #[test]
    fn all_combinations_are_produced() {
        // 3 RTTs at X and 2 at Y → 6 samples.
        let rec = record(
            1,
            64500,
            vec![
                hop(1, "10.0.0.1", &[1.0, 1.1, 1.2]),
                hop(2, "10.0.1.1", &[5.0, 5.5]),
            ],
        );
        let out = collect_link_samples(&[rec]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let samples = &out[&link];
        assert_eq!(samples.sample_count(), 6);
        let all = samples.all_samples();
        assert!(all.iter().any(|&d| (d - (5.0 - 1.0)).abs() < 1e-9));
        assert!(all.iter().any(|&d| (d - (5.5 - 1.2)).abs() < 1e-9));
    }

    #[test]
    fn negative_differentials_are_kept() {
        // Y answering faster than X (asymmetric return paths) is real data,
        // not an error (§4.1: "we observe negative differential RTTs").
        let rec = record(
            1,
            64500,
            vec![hop(1, "10.0.0.1", &[9.0]), hop(2, "10.0.1.1", &[4.0])],
        );
        let out = collect_link_samples(&[rec]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        assert_eq!(out[&link].all_samples(), vec![-5.0]);
    }

    #[test]
    fn samples_group_by_probe_and_as() {
        let recs = vec![
            record(
                1,
                100,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[2.0])],
            ),
            record(
                2,
                100,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[3.0])],
            ),
            record(
                3,
                200,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[4.0])],
            ),
        ];
        let out = collect_link_samples(&recs);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let s = &out[&link];
        assert_eq!(s.probe_count(), 3);
        assert_eq!(s.as_count(), 2);
        assert_eq!(s.per_probe()[&ProbeId(3)].0, Asn(200));
    }

    #[test]
    fn conflicting_probe_asn_attributed_to_first_seen_in_both_paths() {
        // A malformed feed reports probe 1 under AS 100, then AS 200 — on
        // the same link and on a second link it only visits under AS 200.
        // Both representations must pin the probe to its first-seen AS
        // (AS 100) everywhere, or engine parity would break on the
        // diversity filter's AS count.
        let recs = vec![
            record(
                1,
                100,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[2.0])],
            ),
            record(
                1,
                200,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[3.0])],
            ),
            record(
                1,
                200,
                vec![hop(1, "10.0.9.1", &[1.0]), hop(2, "10.0.9.2", &[3.0])],
            ),
            record(
                2,
                300,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[4.0])],
            ),
        ];
        let reference = collect_link_samples(&recs);
        let mut arena = SampleArena::new();
        arena.build(&recs);
        for i in 0..arena.link_count() {
            let slice = arena.link(i);
            let expect = &reference[&slice.link];
            assert_eq!(slice.as_count, expect.as_count(), "link {}", slice.link);
            for (probe, asn, _) in slice.probes() {
                assert_eq!(asn, expect.per_probe()[&probe].0, "probe {probe:?}");
            }
        }
        // Probe 1 is AS 100 everywhere, including the link it never
        // visited under AS 100.
        let second = IpLink::new(ip("10.0.9.1"), ip("10.0.9.2"));
        assert_eq!(reference[&second].per_probe()[&ProbeId(1)].0, Asn(100));
        // And LinkSamples' incremental AS list matches a rebuild.
        let first = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let rebuilt = LinkSamples::from_per_probe(reference[&first].per_probe().clone());
        assert_eq!(reference[&first].as_count(), rebuilt.as_count());
        assert_eq!(reference[&first].as_count(), 2); // AS 100 + AS 300
    }

    #[test]
    fn as_count_tracks_insertions_incrementally() {
        let mut s = LinkSamples::default();
        assert_eq!(s.as_count(), 0);
        s.insert(ProbeId(1), Asn(100), 1.0);
        s.insert(ProbeId(2), Asn(100), 2.0);
        assert_eq!(s.as_count(), 1);
        s.insert(ProbeId(3), Asn(300), 3.0);
        s.insert(ProbeId(4), Asn(200), 4.0);
        assert_eq!(s.as_count(), 3);
        // Agrees with a from-scratch reconstruction.
        let rebuilt = LinkSamples::from_per_probe(s.per_probe().clone());
        assert_eq!(rebuilt.as_count(), 3);
    }

    #[test]
    fn unresponsive_hop_breaks_the_chain() {
        let rec = record(
            1,
            64500,
            vec![
                hop(1, "10.0.0.1", &[1.0]),
                Hop::new(2, vec![Reply::TIMEOUT; 3]),
                hop(3, "10.0.2.1", &[9.0]),
            ],
        );
        let out = collect_link_samples(&[rec]);
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_traceroutes_accumulate() {
        let mk = |rtt: f64| {
            record(
                1,
                64500,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[rtt])],
            )
        };
        let out = collect_link_samples(&[mk(2.0), mk(3.0)]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        assert_eq!(out[&link].sample_count(), 2);
        assert_eq!(out[&link].probe_count(), 1);
    }

    #[test]
    fn arena_matches_reference_collection() {
        // Interleaved records across two links and three probes: the arena
        // must regroup them identically to the nested-map path.
        let recs = vec![
            record(
                2,
                200,
                vec![hop(1, "10.0.0.1", &[1.0, 1.2]), hop(2, "10.0.1.1", &[5.0])],
            ),
            record(
                1,
                100,
                vec![hop(1, "10.0.0.1", &[1.1]), hop(2, "10.0.1.1", &[4.0, 4.5])],
            ),
            record(
                3,
                300,
                vec![hop(1, "10.0.9.1", &[2.0]), hop(2, "10.0.9.2", &[3.0])],
            ),
            record(
                2,
                200,
                vec![hop(1, "10.0.0.1", &[0.9]), hop(2, "10.0.1.1", &[6.0])],
            ),
        ];
        let reference = collect_link_samples(&recs);
        let mut arena = SampleArena::new();
        arena.build(&recs);

        assert_eq!(arena.link_count(), reference.len());
        assert_eq!(
            arena.total_samples(),
            reference.values().map(|s| s.sample_count()).sum::<usize>()
        );
        for i in 0..arena.link_count() {
            let slice = arena.link(i);
            let expect = &reference[&slice.link];
            assert_eq!(slice.probe_count(), expect.probe_count());
            assert_eq!(slice.as_count, expect.as_count());
            assert_eq!(slice.sample_count(), expect.sample_count());
            for (probe, asn, samples) in slice.probes() {
                let (easn, esamples) = &expect.per_probe()[&probe];
                assert_eq!(asn, *easn);
                let mut got: Vec<f64> = samples.to_vec();
                let mut want = esamples.clone();
                got.sort_by(|a, b| a.partial_cmp(b).unwrap());
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn arena_is_reusable_across_bins() {
        let mk = |rtt: f64| {
            record(
                1,
                64500,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[rtt])],
            )
        };
        let mut arena = SampleArena::new();
        arena.build(&[mk(2.0), mk(3.0)]);
        assert_eq!(arena.link_count(), 1);
        assert_eq!(arena.total_samples(), 2);
        // Rebuild with a different (smaller) bin: no stale state.
        arena.build(&[mk(7.0)]);
        assert_eq!(arena.link_count(), 1);
        assert_eq!(arena.total_samples(), 1);
        let slice = arena.link(0);
        assert_eq!(slice.probes().next().unwrap().2, &[6.0]);
        // And an empty bin empties the arena.
        arena.build(&[]);
        assert_eq!(arena.link_count(), 0);
        assert_eq!(arena.total_samples(), 0);
    }
}
