//! Step 1: differential RTT computation (§4.2.1).
//!
//! For adjacent responsive routers X, Y in a traceroute from probe P, every
//! combination `RTT(P,Y) − RTT(P,X)` is a differential RTT sample — one to
//! nine samples per traceroute, keyed by the ordered IP pair (X, Y). Samples
//! stay attributed to their probe (and the probe's AS) because the
//! diversity filter of §4.3 operates on probes, not raw samples.

use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, IpLink, ProbeId};
use std::collections::HashMap;

/// All differential RTT samples for one link in one bin, per probe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkSamples {
    /// probe → (probe AS, samples).
    pub per_probe: HashMap<ProbeId, (Asn, Vec<f64>)>,
}

impl LinkSamples {
    /// Total sample count across probes.
    pub fn sample_count(&self) -> usize {
        self.per_probe.values().map(|(_, v)| v.len()).sum()
    }

    /// Number of contributing probes.
    pub fn probe_count(&self) -> usize {
        self.per_probe.len()
    }

    /// Number of distinct probe ASes.
    pub fn as_count(&self) -> usize {
        let mut ases: Vec<Asn> = self.per_probe.values().map(|(a, _)| *a).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len()
    }

    /// Flatten all samples (order: unspecified).
    pub fn all_samples(&self) -> Vec<f64> {
        self.per_probe
            .values()
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }
}

/// Extract per-link differential RTT samples from a bin of traceroutes.
pub fn collect_link_samples(
    records: &[TracerouteRecord],
) -> HashMap<IpLink, LinkSamples> {
    let mut out: HashMap<IpLink, LinkSamples> = HashMap::new();
    for rec in records {
        for (link, near_idx, far_idx) in rec.links() {
            let near_hop = &rec.hops[near_idx];
            let far_hop = &rec.hops[far_idx];
            let near_rtts: Vec<f64> = near_hop.rtts_from(link.near).collect();
            let far_rtts: Vec<f64> = far_hop.rtts_from(link.far).collect();
            if near_rtts.is_empty() || far_rtts.is_empty() {
                continue;
            }
            let entry = out
                .entry(link)
                .or_default()
                .per_probe
                .entry(rec.probe_id)
                .or_insert_with(|| (rec.probe_asn, Vec::new()));
            for &fy in &far_rtts {
                for &fx in &near_rtts {
                    entry.1.push(fy - fx);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{MeasurementId, SimTime};
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn record(probe: u32, asn: u32, hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(probe),
            probe_asn: Asn(asn),
            dst: ip("198.51.100.1"),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, addr: &str, rtts: &[f64]) -> Hop {
        Hop::new(
            ttl,
            rtts.iter().map(|&r| Reply::new(ip(addr), r)).collect(),
        )
    }

    #[test]
    fn all_combinations_are_produced() {
        // 3 RTTs at X and 2 at Y → 6 samples.
        let rec = record(
            1,
            64500,
            vec![
                hop(1, "10.0.0.1", &[1.0, 1.1, 1.2]),
                hop(2, "10.0.1.1", &[5.0, 5.5]),
            ],
        );
        let out = collect_link_samples(&[rec]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let samples = &out[&link];
        assert_eq!(samples.sample_count(), 6);
        let all = samples.all_samples();
        assert!(all.iter().any(|&d| (d - (5.0 - 1.0)).abs() < 1e-9));
        assert!(all.iter().any(|&d| (d - (5.5 - 1.2)).abs() < 1e-9));
    }

    #[test]
    fn negative_differentials_are_kept() {
        // Y answering faster than X (asymmetric return paths) is real data,
        // not an error (§4.1: "we observe negative differential RTTs").
        let rec = record(
            1,
            64500,
            vec![hop(1, "10.0.0.1", &[9.0]), hop(2, "10.0.1.1", &[4.0])],
        );
        let out = collect_link_samples(&[rec]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        assert_eq!(out[&link].all_samples(), vec![-5.0]);
    }

    #[test]
    fn samples_group_by_probe_and_as() {
        let recs = vec![
            record(1, 100, vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[2.0])]),
            record(2, 100, vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[3.0])]),
            record(3, 200, vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[4.0])]),
        ];
        let out = collect_link_samples(&recs);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let s = &out[&link];
        assert_eq!(s.probe_count(), 3);
        assert_eq!(s.as_count(), 2);
        assert_eq!(s.per_probe[&ProbeId(3)].0, Asn(200));
    }

    #[test]
    fn unresponsive_hop_breaks_the_chain() {
        let rec = record(
            1,
            64500,
            vec![
                hop(1, "10.0.0.1", &[1.0]),
                Hop::new(2, vec![Reply::TIMEOUT; 3]),
                hop(3, "10.0.2.1", &[9.0]),
            ],
        );
        let out = collect_link_samples(&[rec]);
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_traceroutes_accumulate() {
        let mk = |rtt: f64| {
            record(
                1,
                64500,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[rtt])],
            )
        };
        let out = collect_link_samples(&[mk(2.0), mk(3.0)]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        assert_eq!(out[&link].sample_count(), 2);
        assert_eq!(out[&link].probe_count(), 1);
    }
}
