//! Step 1: differential RTT computation (§4.2.1).
//!
//! For adjacent responsive routers X, Y in a traceroute from probe P, every
//! combination `RTT(P,Y) − RTT(P,X)` is a differential RTT sample — one to
//! nine samples per traceroute, keyed by the ordered IP pair (X, Y). Samples
//! stay attributed to their probe (and the probe's AS) because the
//! diversity filter of §4.3 operates on probes, not raw samples.
//!
//! Two representations are provided:
//!
//! * [`LinkSamples`] / [`collect_link_samples`] — the readable nested-map
//!   reference layout, one `HashMap` per link keyed by probe. This is the
//!   *reference path* the engine-parity tests compare against.
//! * [`SampleArena`] — the engine's flat layout: one contiguous sample pool
//!   plus per-link/per-probe index spans, with every buffer reused across
//!   bins. A bin is ingested through the chunked, parallel scatter
//!   front-end (`crate::ingest`): engine workers scatter record chunks into
//!   per-(chunk, shard) *run* buffers — one `(key, start, len)` run per
//!   (record, link) over a per-shard value pool, since an observation's
//!   1–9 differential RTTs share one key — against epoch-persistent
//!   link/probe intern tables. Per-shard runs concatenate in chunk order
//!   and one cache-friendly sort over the (small) run index groups them —
//!   no per-probe maps, no re-interning of known keys, an order of
//!   magnitude fewer sorted elements than row-by-row staging, and
//!   byte-identical output for any chunking.

use crate::ingest::{ChunkPool, Interner, PENDING};
use crate::snapshot::{Reader, SnapshotError, Writer};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, BinId, FxHashMap, IpLink, ProbeId};
use std::collections::HashMap;

/// All differential RTT samples for one link in one bin, per probe.
///
/// Construct via [`LinkSamples::insert`] or [`LinkSamples::from_per_probe`]
/// so the distinct-AS count stays consistent with the probe map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkSamples {
    /// probe → (probe AS, samples).
    per_probe: HashMap<ProbeId, (Asn, Vec<f64>)>,
    /// Distinct probe ASes, kept sorted — maintained incrementally so the
    /// diversity filter's `as_count` query is O(1) instead of re-sorting a
    /// fresh `Vec<Asn>` on every call.
    ases: Vec<Asn>,
}

impl LinkSamples {
    /// Build from a ready-made probe map (test helper / conversions).
    pub fn from_per_probe(per_probe: HashMap<ProbeId, (Asn, Vec<f64>)>) -> Self {
        let mut ases: Vec<Asn> = per_probe.values().map(|(a, _)| *a).collect();
        ases.sort_unstable();
        ases.dedup();
        LinkSamples { per_probe, ases }
    }

    /// Append one sample for `probe` (attributed to `asn`).
    ///
    /// A probe's AS is fixed by its first insertion: should later samples
    /// arrive under a different ASN (malformed feed), they stay attributed
    /// to the first-seen AS, and the distinct-AS count follows the stored
    /// attribution — the same rule the arena's probe interning applies.
    pub fn insert(&mut self, probe: ProbeId, asn: Asn, sample: f64) {
        let entry = self
            .per_probe
            .entry(probe)
            .or_insert_with(|| (asn, Vec::new()));
        entry.1.push(sample);
        let stored = entry.0;
        if let Err(pos) = self.ases.binary_search(&stored) {
            self.ases.insert(pos, stored);
        }
    }

    /// Bulk variant of [`LinkSamples::insert`]: one probe-map lookup and
    /// one AS-list update for a whole batch of samples, so the reference
    /// collection path pays per-(record, link) map costs — as the original
    /// implementation did — rather than per-sample.
    pub fn insert_many(&mut self, probe: ProbeId, asn: Asn, samples: &[f64]) {
        if samples.is_empty() {
            return;
        }
        let entry = self
            .per_probe
            .entry(probe)
            .or_insert_with(|| (asn, Vec::new()));
        entry.1.extend_from_slice(samples);
        let stored = entry.0;
        if let Err(pos) = self.ases.binary_search(&stored) {
            self.ases.insert(pos, stored);
        }
    }

    /// The probe → (AS, samples) map.
    pub fn per_probe(&self) -> &HashMap<ProbeId, (Asn, Vec<f64>)> {
        &self.per_probe
    }

    /// Total sample count across probes.
    pub fn sample_count(&self) -> usize {
        self.per_probe.values().map(|(_, v)| v.len()).sum()
    }

    /// Number of contributing probes.
    pub fn probe_count(&self) -> usize {
        self.per_probe.len()
    }

    /// Number of distinct probe ASes (O(1): tracked incrementally).
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Flatten all samples (order: unspecified).
    pub fn all_samples(&self) -> Vec<f64> {
        self.per_probe
            .values()
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }
}

/// Extract per-link differential RTT samples from a bin of traceroutes
/// (reference path; the engine uses [`SampleArena::build`]).
///
/// A probe's AS is pinned to the first `probe_asn` it reports in the bin
/// (across all links, in record order) — the identical rule the arena's
/// per-bin ASN re-pinning uses, so a malformed feed that flips a probe's
/// ASN mid-bin cannot break engine parity.
pub fn collect_link_samples(records: &[TracerouteRecord]) -> HashMap<IpLink, LinkSamples> {
    let mut out: HashMap<IpLink, LinkSamples> = HashMap::new();
    let mut probe_asns: HashMap<ProbeId, Asn> = HashMap::new();
    let mut near_rtts: Vec<f64> = Vec::new();
    let mut diffs: Vec<f64> = Vec::new();
    for rec in records {
        let asn = *probe_asns.entry(rec.probe_id).or_insert(rec.probe_asn);
        rec.for_each_link(|link, near_idx, far_idx| {
            let near_hop = &rec.hops[near_idx];
            let far_hop = &rec.hops[far_idx];
            near_rtts.clear();
            near_rtts.extend(near_hop.rtts_from(link.near));
            if near_rtts.is_empty() {
                return;
            }
            diffs.clear();
            for fy in far_hop.rtts_from(link.far) {
                for &fx in near_rtts.iter() {
                    diffs.push(fy - fx);
                }
            }
            if diffs.is_empty() {
                return;
            }
            out.entry(link)
                .or_default()
                .insert_many(rec.probe_id, asn, &diffs);
        });
    }
    out
}

pub(crate) use crate::engine::NUM_SHARDS;

/// Stable shard assignment: one SplitMix64 round over the packed address
/// pair (see [`crate::engine`] for the determinism contract).
pub(crate) fn shard_of(link: &IpLink) -> usize {
    let key = (u64::from(u32::from(link.near)) << 32) | u64::from(u32::from(link.far));
    crate::engine::shard_of_u64(key)
}

/// One probe's contiguous run of samples for one link.
#[derive(Debug, Clone, Copy)]
struct ProbeSpan {
    /// Index into the arena's probe tables.
    slot: u32,
    start: u32,
    len: u32,
}

#[derive(Debug, Clone, Copy)]
struct LinkEntry {
    /// Shard-local intern id — resolved to the [`IpLink`] against the
    /// shard's epoch table at view time ([`ShardRows::link_in`]) and used
    /// by the post-wave stamp fence ([`SampleArena::stamp_bin`]).
    local: u32,
    spans_start: u32,
    spans_len: u32,
    as_count: u32,
}

/// One link's view into the arena.
#[derive(Debug, Clone, Copy)]
pub struct LinkSlice<'a> {
    /// The link (ordered IP pair).
    pub link: IpLink,
    /// Distinct probe ASes contributing to this link.
    pub as_count: usize,
    spans: &'a [ProbeSpan],
    pool: &'a [f64],
    probe_ids: &'a [ProbeId],
    probe_asns: &'a [Asn],
}

impl<'a> LinkSlice<'a> {
    /// Number of contributing probes.
    pub fn probe_count(&self) -> usize {
        self.spans.len()
    }

    /// Total samples for this link.
    pub fn sample_count(&self) -> usize {
        self.spans.iter().map(|s| s.len as usize).sum()
    }

    /// Iterate `(probe, asn, samples)` — deterministic order (probes in
    /// intern-epoch slot order).
    pub fn probes(&self) -> impl Iterator<Item = (ProbeId, Asn, &'a [f64])> + '_ {
        self.spans.iter().map(move |s| {
            (
                self.probe_ids[s.slot as usize],
                self.probe_asns[s.slot as usize],
                &self.pool[s.start as usize..(s.start + s.len) as usize],
            )
        })
    }
}

/// One scatter chunk's private output: per-shard row buffers plus the
/// chunk-local queues of keys not yet in the persistent intern tables.
/// Written by exactly one scatter job (no sharing, no locks), then read by
/// the sequential merge and the per-shard gather. All buffers are reused
/// across bins.
#[derive(Debug, Default)]
pub(crate) struct DelayChunk {
    /// Per-shard run index: `(link_local << 32 | probe_slot, start, len)`
    /// with `start` addressing this chunk's per-shard `vals` pool, in
    /// record order within the chunk. One (record, link) observation is
    /// ONE run (its 1–9 differential RTTs are consecutive in `vals`), and
    /// adjacent same-key runs merge at push — so the sort that groups a
    /// shard handles ~an order of magnitude fewer elements than it would
    /// row-by-row. Ids may carry [`PENDING`].
    runs: Vec<Vec<(u64, u32, u32)>>,
    /// Per-shard sample values, in record order (runs index into this).
    vals: Vec<Vec<f64>>,
    /// Links first seen by this chunk, in encounter order; pending id `i`
    /// is `new_links[i]`.
    new_links: Vec<IpLink>,
    /// Chunk-local dedup for `new_links`.
    new_link_ids: FxHashMap<IpLink, u32>,
    /// Filled by the merge: pending link id → final shard-local id.
    link_patch: Vec<u32>,
    /// Probes first seen by this chunk, in encounter order.
    new_probes: Vec<ProbeId>,
    /// Chunk-local probe dedup: probe → encoded slot (table slot, or
    /// `PENDING | new_probes index`).
    probe_seen: FxHashMap<ProbeId, u32>,
    /// Every probe this chunk touched — `(encoded slot, first-seen ASN)`
    /// in encounter order; drives per-bin ASN pinning and stamps.
    touched_probes: Vec<(u32, Asn)>,
    /// Filled by the merge: pending probe id → final table slot.
    probe_patch: Vec<u32>,
    /// Scratch for near-side RTTs.
    near_rtts: Vec<f64>,
}

/// The read-only arena state a scatter job shares with every other job:
/// the per-shard link tables and the probe table. Lookups are lock-free;
/// known keys resolve without any insertion. Holding only the epoch
/// tables (never the per-wave row workspace) is what lets the cross-bin
/// pipelined executor run a scatter wave *concurrently* with the previous
/// bin's shard wave: the shard jobs own the row workspace mutably while
/// every scatter job shares these tables immutably.
#[derive(Clone, Copy)]
pub(crate) struct DelayScatterView<'a> {
    pub(crate) links: &'a [Interner<IpLink>],
    pub(crate) probes: &'a Interner<ProbeId>,
}

impl DelayChunk {
    fn clear(&mut self) {
        if self.runs.len() < NUM_SHARDS {
            self.runs.resize_with(NUM_SHARDS, Vec::new);
            self.vals.resize_with(NUM_SHARDS, Vec::new);
        }
        for runs in &mut self.runs {
            runs.clear();
        }
        for vals in &mut self.vals {
            vals.clear();
        }
        self.new_links.clear();
        self.new_link_ids.clear();
        self.new_probes.clear();
        self.probe_seen.clear();
        self.touched_probes.clear();
        // `link_patch` / `probe_patch` are NOT cleared here: the merge
        // owns their lifecycle — it clears and refills both before any
        // `gather` reads them, so wiping them per wave is wasted work.
    }

    /// Scatter one record chunk into this chunk's per-shard row buffers,
    /// resolving keys against the shared persistent tables (`view`) and
    /// queueing unknown ones chunk-locally. Pure per-chunk work: the
    /// output depends only on `(records, table state at bin start)`, never
    /// on the thread that ran it or on any other chunk.
    pub(crate) fn scatter(&mut self, records: &[TracerouteRecord], view: DelayScatterView<'_>) {
        for rec in records {
            let probe_enc = match self.probe_seen.get(&rec.probe_id) {
                Some(&enc) => enc,
                None => {
                    let enc = match view.probes.get(&rec.probe_id) {
                        Some(slot) => slot,
                        None => {
                            self.new_probes.push(rec.probe_id);
                            PENDING | (self.new_probes.len() as u32 - 1)
                        }
                    };
                    self.probe_seen.insert(rec.probe_id, enc);
                    self.touched_probes.push((enc, rec.probe_asn));
                    enc
                }
            };
            let runs = &mut self.runs;
            let vals = &mut self.vals;
            let new_links = &mut self.new_links;
            let new_link_ids = &mut self.new_link_ids;
            let near_rtts = &mut self.near_rtts;
            rec.for_each_link(|link, near_idx, far_idx| {
                let near_hop = &rec.hops[near_idx];
                let far_hop = &rec.hops[far_idx];
                near_rtts.clear();
                near_rtts.extend(near_hop.rtts_from(link.near));
                if near_rtts.is_empty() {
                    return;
                }
                // (shard, row key, run start) — resolved once per
                // (record, link), on the first responsive far reply.
                let mut key: Option<(usize, u64, u32)> = None;
                for fy in far_hop.rtts_from(link.far) {
                    if key.is_none() {
                        let s = shard_of(&link);
                        let local = match view.links[s].get(&link) {
                            Some(local) => local,
                            None => match new_link_ids.get(&link) {
                                Some(&pending) => pending,
                                None => {
                                    new_links.push(link);
                                    let pending = PENDING | (new_links.len() as u32 - 1);
                                    new_link_ids.insert(link, pending);
                                    pending
                                }
                            },
                        };
                        let row_key = (u64::from(local) << 32) | u64::from(probe_enc);
                        key = Some((s, row_key, vals[s].len() as u32));
                    }
                    let (s, _, _) = key.expect("just set");
                    let vals = &mut vals[s];
                    for &fx in near_rtts.iter() {
                        vals.push(fy - fx);
                    }
                }
                // One run per observation; a same-key run ending exactly
                // where this one starts (same probe re-tracing the link)
                // extends in place instead.
                if let Some((s, row_key, start)) = key {
                    let len = vals[s].len() as u32 - start;
                    debug_assert!(len > 0, "a resolved key implies pushed samples");
                    match runs[s].last_mut() {
                        Some(run) if run.0 == row_key => run.2 += len,
                        _ => runs[s].push((row_key, start, len)),
                    }
                }
            });
        }
    }
}

/// One shard's per-wave row workspace: the bin's rows and their grouped
/// layout. `gather` concatenates the bin's chunk buffers in chunk order
/// (patching pending ids); `finalize` (run by the shard's worker thread)
/// sorts and groups into `pool`/`spans`/`entries`.
///
/// Deliberately holds NO epoch state — the shard's link intern table
/// lives in [`SampleArena::links`] — so a shard wave can own this
/// workspace mutably while the next bin's scatter jobs read the epoch
/// tables. The workspace is consumed within one wave (its content is
/// dead once the wave's outputs are merged and the observed entries are
/// stamped), which is why a depth-2 pipeline needs only double-buffered
/// *chunk* storage, not double-buffered shards.
#[derive(Debug, Clone, Copy)]
struct SampleRun {
    /// `link_local << 32 | probe_slot` (patched — never [`PENDING`]).
    key: u64,
    /// Which chunk's `vals` pool the run's samples live in.
    chunk: u32,
    /// Offset and length of the run in that pool.
    start: u32,
    len: u32,
}

#[derive(Debug, Default)]
pub(crate) struct ShardRows {
    /// The bin's gathered runs, sorted by `(key, chunk, start)` at
    /// finalize — equal keys keep gather (= record) order, so the pool
    /// layout is exactly what a row-by-row sort would produce while the
    /// sort itself handles ~an order of magnitude fewer elements (one
    /// run per (record, link), not one row per sample).
    runs: Vec<SampleRun>,
    pool: Vec<f64>,
    spans: Vec<ProbeSpan>,
    entries: Vec<LinkEntry>,
    as_scratch: Vec<Asn>,
    /// Radix ping-pong buffer, recycled across bins so steady-state
    /// finalize passes allocate nothing.
    sort_scratch: Vec<SampleRun>,
}

impl ShardRows {
    /// Concatenate this shard's runs from every chunk **in chunk order**
    /// (= record order, whatever the chunk size), patching pending ids to
    /// their merged table slots. Safe to run concurrently across shards:
    /// each shard reads only its own `chunk.runs[idx]` buffers.
    pub(crate) fn gather(&mut self, idx: usize, chunks: &[DelayChunk]) {
        self.runs.clear();
        for (c, chunk) in chunks.iter().enumerate() {
            let source = &chunk.runs[idx];
            // Steady-state fast path: a chunk that discovered no new keys
            // wrote no pending ids anywhere — its runs are final.
            if chunk.new_links.is_empty() && chunk.new_probes.is_empty() {
                self.runs
                    .extend(source.iter().map(|&(key, start, len)| SampleRun {
                        key,
                        chunk: c as u32,
                        start,
                        len,
                    }));
                continue;
            }
            for &(key, start, len) in source {
                let mut link = (key >> 32) as u32;
                if link & PENDING != 0 {
                    link = chunk.link_patch[(link ^ PENDING) as usize];
                }
                let mut slot = key as u32;
                if slot & PENDING != 0 {
                    slot = chunk.probe_patch[(slot ^ PENDING) as usize];
                }
                self.runs.push(SampleRun {
                    key: (u64::from(link) << 32) | u64::from(slot),
                    chunk: c as u32,
                    start,
                    len,
                });
            }
        }
    }

    /// Sort this shard's runs and lay out the grouped pool/span/entry
    /// indexes, copying each run's samples out of its chunk's value pool.
    /// Safe to run concurrently across shards — and, in the pipelined
    /// executor, concurrently with the next bin's scatter wave: it never
    /// touches the epoch tables (observed links are stamped by the
    /// caller's serial fence, [`SampleArena::stamp_bin`], from the entry
    /// list this lays out).
    pub(crate) fn finalize(
        &mut self,
        idx: usize,
        probe_asns: &[Asn],
        chunks: &[DelayChunk],
        radix_min_keys: usize,
    ) {
        self.pool.clear();
        self.spans.clear();
        self.entries.clear();
        // One sort over a small, cache-resident run index. `gather`
        // appends runs in (chunk, start) order, so the stable radix sort
        // by key alone reproduces the comparison sort's explicit
        // (chunk, start) tiebreak — same pool layout, O(n · live_digits)
        // instead of O(n log n). Below `radix_min_keys` runs, the
        // histogram pre-pass costs more than it saves.
        if self.runs.len() >= radix_min_keys {
            pinpoint_stats::sort_by_u64_key(&mut self.runs, &mut self.sort_scratch, |r| r.key);
        } else {
            self.runs
                .sort_unstable_by_key(|r| (r.key, r.chunk, r.start));
        }
        let mut i = 0;
        while i < self.runs.len() {
            let link_local = (self.runs[i].key >> 32) as u32;
            let spans_start = self.spans.len() as u32;
            self.as_scratch.clear();
            while i < self.runs.len() && (self.runs[i].key >> 32) as u32 == link_local {
                let key = self.runs[i].key;
                let slot = key as u32;
                let start = self.pool.len() as u32;
                while i < self.runs.len() && self.runs[i].key == key {
                    let run = self.runs[i];
                    let vals = &chunks[run.chunk as usize].vals[idx];
                    self.pool.extend_from_slice(
                        &vals[run.start as usize..(run.start + run.len) as usize],
                    );
                    i += 1;
                }
                self.spans.push(ProbeSpan {
                    slot,
                    start,
                    len: self.pool.len() as u32 - start,
                });
                self.as_scratch.push(probe_asns[slot as usize]);
            }
            self.as_scratch.sort_unstable();
            self.as_scratch.dedup();
            self.entries.push(LinkEntry {
                local: link_local,
                spans_start,
                spans_len: self.spans.len() as u32 - spans_start,
                as_count: self.as_scratch.len() as u32,
            });
        }
    }

    /// Links in this shard's current bin (after `finalize`).
    pub(crate) fn link_count(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn link_in<'a>(
        &'a self,
        j: usize,
        links: &'a [IpLink],
        probe_ids: &'a [ProbeId],
        probe_asns: &'a [Asn],
    ) -> LinkSlice<'a> {
        let e = self.entries[j];
        LinkSlice {
            link: links[e.local as usize],
            as_count: e.as_count as usize,
            spans: &self.spans[e.spans_start as usize..(e.spans_start + e.spans_len) as usize],
            pool: &self.pool,
            probe_ids,
            probe_asns,
        }
    }

    /// The contiguous pool region holding link `j`'s samples, in the same
    /// span order [`LinkSlice::probes`] iterates — `finalize` lays every
    /// link's spans out back to back, which is what makes the zero-copy
    /// characterization of balanced links possible: the caller may
    /// permute `pool_mut()[entry_pool_range(j)]` in place instead of
    /// copying the samples out.
    pub(crate) fn entry_pool_range(&self, j: usize) -> std::ops::Range<usize> {
        let e = self.entries[j];
        debug_assert!(e.spans_len > 0, "a bin entry has at least one span");
        let first = self.spans[e.spans_start as usize];
        let last = self.spans[(e.spans_start + e.spans_len - 1) as usize];
        first.start as usize..(last.start + last.len) as usize
    }

    /// The sample pool, mutably (quickselect permutation target).
    pub(crate) fn pool_mut(&mut self) -> &mut [f64] {
        &mut self.pool
    }
}

/// The engine's flat, sharded, bin-reusable sample store, fed by the
/// chunked parallel ingestion front-end (`crate::ingest`).
///
/// Per bin: scatter jobs stage each (record, link) observation as one
/// run — its differential RTTs pushed onto a per-(chunk, shard) value
/// pool, indexed by a 16-byte `(key, start, len)` run entry — resolving
/// links and probes through *epoch-persistent* intern tables
/// (steady-state bins perform zero insertions); a short sequential merge
/// assigns dense ids to the bin's new keys in chunk order (= record
/// order); then [`ShardRows::gather`] + [`ShardRows::finalize`] — run
/// per shard, in parallel — concatenate each shard's runs in chunk order
/// and group them with one composite-keyed sort over the run index
/// (equal keys keep gather order, so the grouped pool is exactly the
/// row-by-row layout at a fraction of the sort cost). Every buffer and
/// every table is retained across bins, and a compaction sweep on the
/// shared `reference_expiry_bins` clock evicts keys that stopped
/// appearing, so neither allocation nor key churn grows with the epoch.
///
/// For the cross-bin pipelined executor the arena splits cleanly in two:
/// epoch state (intern tables, probe ASNs) shared read-only by scatter
/// jobs, and per-wave state (chunk lanes, shard row workspaces) owned by
/// exactly one wave — `split_lanes` hands one engine wave the pending
/// bin's shard parts AND the next bin's scatter parts at once.
#[derive(Debug)]
pub struct SampleArena {
    /// Epoch-persistent per-shard link → shard-local id tables. Kept
    /// apart from the per-wave [`ShardRows`] so the pipelined executor
    /// can share them read-only with a scatter wave while a shard wave
    /// owns the row workspace.
    links: Vec<Interner<IpLink>>,
    /// Per-shard per-wave row workspace (consumed within one shard wave).
    rows: Vec<ShardRows>,
    /// Epoch-persistent probe → slot table.
    probes: Interner<ProbeId>,
    /// Probe slot → ASN, re-pinned each bin to the first ASN the probe
    /// reported that bin (record order) — the reference path's rule.
    probe_asns: Vec<Asn>,
    /// Probe slot → scatter session in which `probe_asns` was last pinned.
    probe_pins: Vec<u64>,
    /// Monotonic scatter-session counter (bumped per bin open).
    session: u64,
    /// Double-buffered scatter-chunk lanes: the depth-2 pipeline scatters
    /// bin *n+1* into one lane while bin *n*'s shard wave still reads the
    /// other. The serial path stays in a single lane. Each lane's chunk
    /// buffers (run indexes, value pools, dedup maps) are retained and
    /// recycled across its bins — a steady stream allocates nothing here.
    lanes: [ChunkPool<DelayChunk>; 2],
    /// Lane of the open scatter session.
    lane: usize,
    insertions_at_bin_start: u64,
}

impl Default for SampleArena {
    fn default() -> Self {
        SampleArena {
            links: (0..NUM_SHARDS).map(|_| Interner::default()).collect(),
            rows: (0..NUM_SHARDS).map(|_| ShardRows::default()).collect(),
            probes: Interner::default(),
            probe_asns: Vec::new(),
            probe_pins: Vec::new(),
            session: 0,
            lanes: [ChunkPool::default(), ChunkPool::default()],
            lane: 0,
            insertions_at_bin_start: 0,
        }
    }
}

/// Split borrow of an arena for the shard wave: mutable per-shard row
/// workspaces alongside the bin's chunk outputs and the shared (read-only)
/// intern tables, so stage construction can hand shards to workers while
/// chunk rows, link keys, and probe id/ASN slices stay readable from every
/// job — and, under the pipelined executor, from the next bin's scatter
/// jobs at the same time.
pub(crate) struct SampleArenaParts<'a> {
    pub(crate) rows: &'a mut [ShardRows],
    pub(crate) links: &'a [Interner<IpLink>],
    pub(crate) chunks: &'a [DelayChunk],
    pub(crate) probe_ids: &'a [ProbeId],
    pub(crate) probe_asns: &'a [Asn],
}

impl SampleArena {
    /// Fresh arena (buffers grow on first use).
    pub fn new() -> Self {
        SampleArena::default()
    }

    fn total_insertions(&self) -> u64 {
        self.probes.insertions() + self.links.iter().map(Interner::insertions).sum::<u64>()
    }

    /// Interning-epoch counters for this arena (links + probes).
    pub(crate) fn stats(&self) -> crate::ingest::IngestStats {
        crate::ingest::IngestStats {
            interned: self.probes.len() + self.links.iter().map(Interner::len).sum::<usize>(),
            bin_insertions: self.total_insertions() - self.insertions_at_bin_start,
            insertions: self.total_insertions(),
            evictions: self.probes.evictions()
                + self.links.iter().map(Interner::evictions).sum::<u64>(),
        }
    }

    /// Serialize the epoch-persistent state: the per-shard link tables and
    /// the probe table (keys in dense-id order — restore reproduces the
    /// identical id assignment), the probe ASN pins, and the session
    /// counters. Per-wave state (shard rows, chunk lanes) is scratch the
    /// next bin rebuilds, so it is not written.
    pub(crate) fn snapshot_into(&self, w: &mut Writer) {
        for table in &self.links {
            let (keys, seen, insertions, evictions) = table.snapshot_parts();
            w.seq(keys.len());
            for (link, bin) in keys.iter().zip(seen) {
                w.ip(link.near);
                w.ip(link.far);
                w.u64(bin.0);
            }
            w.u64(insertions);
            w.u64(evictions);
        }
        let (keys, seen, insertions, evictions) = self.probes.snapshot_parts();
        w.seq(keys.len());
        for (probe, bin) in keys.iter().zip(seen) {
            w.u32(probe.0);
            w.u64(bin.0);
        }
        w.u64(insertions);
        w.u64(evictions);
        debug_assert_eq!(self.probe_asns.len(), keys.len());
        debug_assert_eq!(self.probe_pins.len(), keys.len());
        for (asn, pin) in self.probe_asns.iter().zip(&self.probe_pins) {
            w.u32(asn.0);
            w.u64(*pin);
        }
        w.u64(self.session);
        w.u64(self.insertions_at_bin_start);
    }

    /// Rebuild an arena from [`SampleArena::snapshot_into`] bytes, with
    /// fresh (empty) per-wave scratch.
    pub(crate) fn restore_from(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut arena = SampleArena::default();
        for table in &mut arena.links {
            let n = r.seq()?;
            let mut keys = Vec::with_capacity(n);
            let mut seen = Vec::with_capacity(n);
            for _ in 0..n {
                let near = r.ip()?;
                let far = r.ip()?;
                keys.push(IpLink::new(near, far));
                seen.push(BinId(r.u64()?));
            }
            *table = Interner::from_parts(keys, seen, r.u64()?, r.u64()?);
        }
        let n = r.seq()?;
        let mut keys = Vec::with_capacity(n);
        let mut seen = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push(ProbeId(r.u32()?));
            seen.push(BinId(r.u64()?));
        }
        arena.probes = Interner::from_parts(keys, seen, r.u64()?, r.u64()?);
        arena.probe_asns = Vec::with_capacity(n);
        arena.probe_pins = Vec::with_capacity(n);
        for _ in 0..n {
            arena.probe_asns.push(Asn(r.u32()?));
            arena.probe_pins.push(r.u64()?);
        }
        arena.session = r.u64()?;
        arena.insertions_at_bin_start = r.u64()?;
        Ok(arena)
    }

    /// Start a new scatter session in the current lane: the next bin's
    /// chunks overwrite the lane from the beginning and the bin-insertion
    /// counter resets. The serial path — and the pipelined prologue/drain
    /// refills — open bins here; an overlapped open goes through
    /// [`Self::split_lanes`] instead.
    pub(crate) fn begin_bin(&mut self) {
        self.session += 1;
        self.lanes[self.lane].begin_bin();
        self.insertions_at_bin_start = self.total_insertions();
    }

    /// Whether any link or probe would be evicted by a [`Self::compact`]
    /// sweep at `now`. The pipelined executor checks this before
    /// overlapping a new bin: a sweep renumbers dense ids, so it may only
    /// run in a drained gap where no bin's rows are in flight.
    pub(crate) fn needs_compaction(&self, now: BinId, expiry_bins: usize) -> bool {
        self.probes.any_expired(now, expiry_bins)
            || self.links.iter().any(|t| t.any_expired(now, expiry_bins))
    }

    /// Evict links and probes unseen for more than `expiry_bins` bins and
    /// renumber the survivors. Dense ids never reach reports, so a sweep
    /// is byte-for-byte invisible downstream. Must run in the gap between
    /// epochs: after every in-flight bin's shard wave (and its
    /// [`Self::stamp_bin`]) and before the next bin's chunks scatter —
    /// renumbering under in-flight rows would corrupt their packed ids.
    pub(crate) fn compact(&mut self, now: BinId, expiry_bins: usize) {
        for table in &mut self.links {
            table.compact(now, expiry_bins);
        }
        if let Some(kept) = self.probes.compact(now, expiry_bins) {
            for (new, &old) in kept.iter().enumerate() {
                self.probe_asns[new] = self.probe_asns[old as usize];
                self.probe_pins[new] = self.probe_pins[old as usize];
            }
            self.probe_asns.truncate(kept.len());
            self.probe_pins.truncate(kept.len());
        }
    }

    /// Reserve `n` cleared chunk buffers for the current session and
    /// return them alongside the shared scatter view. The buffers extend
    /// the session's chunk sequence (incremental feeding appends).
    pub(crate) fn scatter_parts(&mut self, n: usize) -> (&mut [DelayChunk], DelayScatterView<'_>) {
        let SampleArena {
            lanes,
            lane,
            links,
            probes,
            ..
        } = self;
        (
            lanes[*lane].reserve(n, DelayChunk::clear),
            DelayScatterView { links, probes },
        )
    }

    /// Open the next bin's scatter session in the *opposite* lane and
    /// split the arena into both waves' disjoint parts: the pending bin's
    /// shard-wave parts (its chunk lane, the row workspaces) and the new
    /// session's reserved chunk buffers + scatter view. This is the
    /// depth-2 overlap point — the returned borrows let one engine wave
    /// run the pending bin's shard jobs concurrently with the new bin's
    /// scatter jobs, because the shard side owns `rows` mutably while
    /// both sides share the epoch tables immutably and each side touches
    /// only its own chunk lane.
    pub(crate) fn split_lanes(
        &mut self,
        n: usize,
    ) -> (
        SampleArenaParts<'_>,
        &mut [DelayChunk],
        DelayScatterView<'_>,
    ) {
        self.lane ^= 1;
        self.session += 1;
        self.insertions_at_bin_start = self.total_insertions();
        let SampleArena {
            links,
            rows,
            probes,
            probe_asns,
            lanes,
            lane,
            ..
        } = self;
        let links: &[Interner<IpLink>] = links;
        let [lane0, lane1] = lanes;
        let (pending, next) = if *lane == 0 {
            (lane1, lane0)
        } else {
            (lane0, lane1)
        };
        next.begin_bin();
        let chunks = next.reserve(n, DelayChunk::clear);
        (
            SampleArenaParts {
                rows,
                links,
                chunks: pending.active(),
                probe_ids: probes.keys(),
                probe_asns,
            },
            chunks,
            DelayScatterView { links, probes },
        )
    }

    /// The sequential chunk-ordered merge between the scatter wave and the
    /// shard wave: assign dense ids to keys first seen this bin (chunk
    /// order = record order, so the assignment is identical for every
    /// chunk size and thread count), re-pin each touched probe's ASN to
    /// its first record of the bin, and stamp probe last-seen clocks.
    pub(crate) fn merge(&mut self, bin: BinId) {
        let SampleArena {
            lanes,
            lane,
            links,
            probes,
            probe_asns,
            probe_pins,
            session,
            ..
        } = self;
        let chunks = lanes[*lane].active_mut();
        for chunk in chunks.iter_mut() {
            chunk.link_patch.clear();
            for &link in &chunk.new_links {
                let s = shard_of(&link);
                let local = match links[s].get(&link) {
                    Some(local) => local,
                    None => links[s].insert(link, bin),
                };
                chunk.link_patch.push(local);
            }
            chunk.probe_patch.clear();
            for &(enc, asn) in &chunk.touched_probes {
                let slot = if enc & PENDING != 0 {
                    debug_assert_eq!((enc ^ PENDING) as usize, chunk.probe_patch.len());
                    let probe = chunk.new_probes[(enc ^ PENDING) as usize];
                    let slot = match probes.get(&probe) {
                        Some(slot) => slot,
                        None => {
                            let slot = probes.insert(probe, bin);
                            probe_asns.push(asn);
                            probe_pins.push(0);
                            slot
                        }
                    };
                    chunk.probe_patch.push(slot);
                    slot
                } else {
                    enc
                };
                if probe_pins[slot as usize] != *session {
                    probe_pins[slot as usize] = *session;
                    probe_asns[slot as usize] = asn;
                }
                probes.stamp(slot, bin);
            }
        }
    }

    /// Stamp every link observed by the just-finished shard wave with
    /// `bin` — the serial fence closing a bin's epoch bookkeeping. Split
    /// out of `finalize` so shard jobs never write the epoch tables (the
    /// pipelined executor shares those tables with a concurrent scatter
    /// wave); must run after the wave and before any compaction decision
    /// for a later bin.
    pub(crate) fn stamp_bin(&mut self, bin: BinId) {
        for (table, shard) in self.links.iter_mut().zip(&self.rows) {
            for e in &shard.entries {
                table.stamp(e.local, bin);
            }
        }
    }

    /// Disjoint views for the engine's shard wave (after [`Self::merge`]),
    /// reading the current lane — the serial path, and the pipelined
    /// drain, where the pending bin is the one most recently scattered.
    pub(crate) fn parts_mut(&mut self) -> SampleArenaParts<'_> {
        let SampleArena {
            links,
            rows,
            lanes,
            lane,
            probes,
            probe_asns,
            ..
        } = self;
        SampleArenaParts {
            rows,
            links,
            chunks: lanes[*lane].active(),
            probe_ids: probes.keys(),
            probe_asns,
        }
    }

    /// Scatter + merge + gather + finalize inline, as a single chunk (the
    /// single-threaded convenience entry; the engine runs chunks and
    /// shards on its workers). No compaction — callers with an expiry
    /// policy drive [`Self::compact`] themselves.
    pub fn build(&mut self, records: &[TracerouteRecord]) {
        let bin = BinId(0);
        self.begin_bin();
        {
            let (chunks, view) = self.scatter_parts(1);
            chunks[0].scatter(records, view);
        }
        self.merge(bin);
        let parts = self.parts_mut();
        for (i, shard) in parts.rows.iter_mut().enumerate() {
            shard.gather(i, parts.chunks);
            shard.finalize(
                i,
                parts.probe_asns,
                parts.chunks,
                pinpoint_stats::RADIX_MIN_KEYS,
            );
        }
        self.stamp_bin(bin);
    }

    /// Number of links with at least one sample in the current bin
    /// (after finalize).
    pub fn link_count(&self) -> usize {
        self.rows.iter().map(ShardRows::link_count).sum()
    }

    /// Total differential RTT samples in the current bin (after finalize).
    pub fn total_samples(&self) -> usize {
        self.rows.iter().map(|s| s.pool.len()).sum()
    }

    /// View of the `i`-th link of the current bin, counting across shards
    /// (arbitrary but deterministic order; after finalize).
    pub fn link(&self, i: usize) -> LinkSlice<'_> {
        let mut i = i;
        for (s, shard) in self.rows.iter().enumerate() {
            if i < shard.link_count() {
                return shard.link_in(
                    i,
                    self.links[s].keys(),
                    self.probes.keys(),
                    &self.probe_asns,
                );
            }
            i -= shard.link_count();
        }
        panic!("link index {i} out of bounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinpoint_model::records::{Hop, Reply};
    use pinpoint_model::{MeasurementId, SimTime};
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn record(probe: u32, asn: u32, hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(probe),
            probe_asn: Asn(asn),
            dst: ip("198.51.100.1"),
            timestamp: SimTime(0),
            paris_id: 0,
            hops,
            destination_reached: true,
        }
    }

    fn hop(ttl: u8, addr: &str, rtts: &[f64]) -> Hop {
        Hop::new(ttl, rtts.iter().map(|&r| Reply::new(ip(addr), r)).collect())
    }

    #[test]
    fn all_combinations_are_produced() {
        // 3 RTTs at X and 2 at Y → 6 samples.
        let rec = record(
            1,
            64500,
            vec![
                hop(1, "10.0.0.1", &[1.0, 1.1, 1.2]),
                hop(2, "10.0.1.1", &[5.0, 5.5]),
            ],
        );
        let out = collect_link_samples(&[rec]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let samples = &out[&link];
        assert_eq!(samples.sample_count(), 6);
        let all = samples.all_samples();
        assert!(all.iter().any(|&d| (d - (5.0 - 1.0)).abs() < 1e-9));
        assert!(all.iter().any(|&d| (d - (5.5 - 1.2)).abs() < 1e-9));
    }

    #[test]
    fn negative_differentials_are_kept() {
        // Y answering faster than X (asymmetric return paths) is real data,
        // not an error (§4.1: "we observe negative differential RTTs").
        let rec = record(
            1,
            64500,
            vec![hop(1, "10.0.0.1", &[9.0]), hop(2, "10.0.1.1", &[4.0])],
        );
        let out = collect_link_samples(&[rec]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        assert_eq!(out[&link].all_samples(), vec![-5.0]);
    }

    #[test]
    fn samples_group_by_probe_and_as() {
        let recs = vec![
            record(
                1,
                100,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[2.0])],
            ),
            record(
                2,
                100,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[3.0])],
            ),
            record(
                3,
                200,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[4.0])],
            ),
        ];
        let out = collect_link_samples(&recs);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let s = &out[&link];
        assert_eq!(s.probe_count(), 3);
        assert_eq!(s.as_count(), 2);
        assert_eq!(s.per_probe()[&ProbeId(3)].0, Asn(200));
    }

    #[test]
    fn conflicting_probe_asn_attributed_to_first_seen_in_both_paths() {
        // A malformed feed reports probe 1 under AS 100, then AS 200 — on
        // the same link and on a second link it only visits under AS 200.
        // Both representations must pin the probe to its first-seen AS
        // (AS 100) everywhere, or engine parity would break on the
        // diversity filter's AS count.
        let recs = vec![
            record(
                1,
                100,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[2.0])],
            ),
            record(
                1,
                200,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[3.0])],
            ),
            record(
                1,
                200,
                vec![hop(1, "10.0.9.1", &[1.0]), hop(2, "10.0.9.2", &[3.0])],
            ),
            record(
                2,
                300,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[4.0])],
            ),
        ];
        let reference = collect_link_samples(&recs);
        let mut arena = SampleArena::new();
        arena.build(&recs);
        for i in 0..arena.link_count() {
            let slice = arena.link(i);
            let expect = &reference[&slice.link];
            assert_eq!(slice.as_count, expect.as_count(), "link {}", slice.link);
            for (probe, asn, _) in slice.probes() {
                assert_eq!(asn, expect.per_probe()[&probe].0, "probe {probe:?}");
            }
        }
        // Probe 1 is AS 100 everywhere, including the link it never
        // visited under AS 100.
        let second = IpLink::new(ip("10.0.9.1"), ip("10.0.9.2"));
        assert_eq!(reference[&second].per_probe()[&ProbeId(1)].0, Asn(100));
        // And LinkSamples' incremental AS list matches a rebuild.
        let first = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        let rebuilt = LinkSamples::from_per_probe(reference[&first].per_probe().clone());
        assert_eq!(reference[&first].as_count(), rebuilt.as_count());
        assert_eq!(reference[&first].as_count(), 2); // AS 100 + AS 300
    }

    #[test]
    fn probe_asn_repins_per_bin_like_the_reference_path() {
        // Bin 1: probe 1 reports AS 100. Bin 2: the same probe reports
        // AS 900 from its first record. The reference path pins per bin,
        // so the persistent probe table must re-pin — not freeze the
        // epoch-first ASN.
        let mk = |asn: u32| {
            record(
                1,
                asn,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[2.0])],
            )
        };
        let mut arena = SampleArena::new();
        arena.build(&[mk(100)]);
        assert_eq!(arena.link(0).probes().next().unwrap().1, Asn(100));
        arena.build(&[mk(900)]);
        assert_eq!(arena.link(0).probes().next().unwrap().1, Asn(900));
    }

    #[test]
    fn as_count_tracks_insertions_incrementally() {
        let mut s = LinkSamples::default();
        assert_eq!(s.as_count(), 0);
        s.insert(ProbeId(1), Asn(100), 1.0);
        s.insert(ProbeId(2), Asn(100), 2.0);
        assert_eq!(s.as_count(), 1);
        s.insert(ProbeId(3), Asn(300), 3.0);
        s.insert(ProbeId(4), Asn(200), 4.0);
        assert_eq!(s.as_count(), 3);
        // Agrees with a from-scratch reconstruction.
        let rebuilt = LinkSamples::from_per_probe(s.per_probe().clone());
        assert_eq!(rebuilt.as_count(), 3);
    }

    #[test]
    fn unresponsive_hop_breaks_the_chain() {
        let rec = record(
            1,
            64500,
            vec![
                hop(1, "10.0.0.1", &[1.0]),
                Hop::new(2, vec![Reply::TIMEOUT; 3]),
                hop(3, "10.0.2.1", &[9.0]),
            ],
        );
        let out = collect_link_samples(&[rec]);
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_traceroutes_accumulate() {
        let mk = |rtt: f64| {
            record(
                1,
                64500,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[rtt])],
            )
        };
        let out = collect_link_samples(&[mk(2.0), mk(3.0)]);
        let link = IpLink::new(ip("10.0.0.1"), ip("10.0.1.1"));
        assert_eq!(out[&link].sample_count(), 2);
        assert_eq!(out[&link].probe_count(), 1);
    }

    #[test]
    fn arena_matches_reference_collection() {
        // Interleaved records across two links and three probes: the arena
        // must regroup them identically to the nested-map path.
        let recs = vec![
            record(
                2,
                200,
                vec![hop(1, "10.0.0.1", &[1.0, 1.2]), hop(2, "10.0.1.1", &[5.0])],
            ),
            record(
                1,
                100,
                vec![hop(1, "10.0.0.1", &[1.1]), hop(2, "10.0.1.1", &[4.0, 4.5])],
            ),
            record(
                3,
                300,
                vec![hop(1, "10.0.9.1", &[2.0]), hop(2, "10.0.9.2", &[3.0])],
            ),
            record(
                2,
                200,
                vec![hop(1, "10.0.0.1", &[0.9]), hop(2, "10.0.1.1", &[6.0])],
            ),
        ];
        let reference = collect_link_samples(&recs);
        let mut arena = SampleArena::new();
        arena.build(&recs);

        assert_eq!(arena.link_count(), reference.len());
        assert_eq!(
            arena.total_samples(),
            reference.values().map(|s| s.sample_count()).sum::<usize>()
        );
        for i in 0..arena.link_count() {
            let slice = arena.link(i);
            let expect = &reference[&slice.link];
            assert_eq!(slice.probe_count(), expect.probe_count());
            assert_eq!(slice.as_count, expect.as_count());
            assert_eq!(slice.sample_count(), expect.sample_count());
            for (probe, asn, samples) in slice.probes() {
                let (easn, esamples) = &expect.per_probe()[&probe];
                assert_eq!(asn, *easn);
                let mut got: Vec<f64> = samples.to_vec();
                let mut want = esamples.clone();
                got.sort_by(|a, b| a.partial_cmp(b).unwrap());
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn arena_is_reusable_across_bins() {
        let mk = |rtt: f64| {
            record(
                1,
                64500,
                vec![hop(1, "10.0.0.1", &[1.0]), hop(2, "10.0.1.1", &[rtt])],
            )
        };
        let mut arena = SampleArena::new();
        arena.build(&[mk(2.0), mk(3.0)]);
        assert_eq!(arena.link_count(), 1);
        assert_eq!(arena.total_samples(), 2);
        // Rebuild with a different (smaller) bin: no stale state.
        arena.build(&[mk(7.0)]);
        assert_eq!(arena.link_count(), 1);
        assert_eq!(arena.total_samples(), 1);
        let slice = arena.link(0);
        assert_eq!(slice.probes().next().unwrap().2, &[6.0]);
        // And an empty bin empties the arena.
        arena.build(&[]);
        assert_eq!(arena.link_count(), 0);
        assert_eq!(arena.total_samples(), 0);
        // The intern epoch persisted: rebuilding the first bin's shape
        // performs zero new insertions.
        let before = arena.stats();
        arena.build(&[mk(2.0), mk(3.0)]);
        let after = arena.stats();
        assert_eq!(after.bin_insertions, 0, "steady-state bin re-interned");
        assert_eq!(after.insertions, before.insertions);
    }
}
