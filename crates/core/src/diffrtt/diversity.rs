//! Step 2: probe-diversity filtering (§4.3).
//!
//! Differential RTTs only isolate the monitored link's delay when the
//! contributing probes have *diverse return paths*. Two criteria:
//!
//! 1. links monitored by probes from fewer than `min_as_diversity` (3)
//!    distinct ASes are discarded outright;
//! 2. if the probe-per-AS counts are unbalanced — normalized entropy
//!    H(A) ≤ 0.5 — probes are randomly removed from the most-represented AS
//!    until H(A) exceeds the threshold ("the link is not discarded.
//!    Instead, a probe from the most represented AS is randomly selected
//!    and discarded").

use super::compute::LinkSamples;
use crate::config::DetectorConfig;
use pinpoint_model::{Asn, ProbeId};
use pinpoint_stats::entropy::normalized_entropy;
use pinpoint_stats::rng::SplitMix64;
use std::collections::HashMap;

/// Apply both criteria; returns the surviving flattened samples, or `None`
/// if the link must be discarded.
pub fn filter(
    obs: &LinkSamples,
    cfg: &DetectorConfig,
    rng: &mut SplitMix64,
) -> Option<Vec<f64>> {
    if obs.as_count() < cfg.min_as_diversity {
        return None;
    }

    // Probe lists per AS, deterministically ordered.
    let mut by_as: HashMap<Asn, Vec<ProbeId>> = HashMap::new();
    for (&probe, (asn, _)) in &obs.per_probe {
        by_as.entry(*asn).or_default().push(probe);
    }
    for probes in by_as.values_mut() {
        probes.sort_unstable();
    }
    let mut ases: Vec<Asn> = by_as.keys().copied().collect();
    ases.sort_unstable();

    let mut removed: Vec<ProbeId> = Vec::new();
    loop {
        let counts: Vec<u32> = ases
            .iter()
            .map(|a| by_as[a].len() as u32)
            .collect();
        let h = normalized_entropy(&counts)?;
        if h > cfg.entropy_threshold {
            break;
        }
        // Drop a random probe from the most-represented AS (deterministic
        // tie-break on ASN order).
        let (max_as, _) = ases
            .iter()
            .map(|a| (*a, by_as[a].len()))
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))?;
        let probes = by_as.get_mut(&max_as)?;
        if probes.len() <= 1 {
            // Cannot rebalance further; entropy can no longer change.
            break;
        }
        let idx = rng.next_below(probes.len() as u64) as usize;
        removed.push(probes.swap_remove(idx));
    }

    let surviving: Vec<f64> = obs
        .per_probe
        .iter()
        .filter(|(probe, _)| !removed.contains(probe))
        .flat_map(|(_, (_, samples))| samples.iter().copied())
        .collect();
    if surviving.is_empty() {
        None
    } else {
        Some(surviving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(spec: &[(u32, u32, usize)]) -> LinkSamples {
        // (probe id, asn, n samples)
        let mut per_probe = HashMap::new();
        for &(p, a, n) in spec {
            per_probe.insert(
                ProbeId(p),
                (Asn(a), (0..n).map(|i| i as f64).collect::<Vec<_>>()),
            );
        }
        LinkSamples { per_probe }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn fewer_than_three_ases_discarded() {
        let mut rng = SplitMix64::new(1);
        let two = obs(&[(1, 100, 3), (2, 100, 3), (3, 200, 3)]);
        assert!(filter(&two, &cfg(), &mut rng).is_none());
        let three = obs(&[(1, 100, 3), (2, 200, 3), (3, 300, 3)]);
        assert!(filter(&three, &cfg(), &mut rng).is_some());
    }

    #[test]
    fn balanced_probes_keep_all_samples() {
        let mut rng = SplitMix64::new(1);
        let o = obs(&[(1, 100, 4), (2, 200, 4), (3, 300, 4)]);
        let kept = filter(&o, &cfg(), &mut rng).unwrap();
        assert_eq!(kept.len(), 12);
    }

    #[test]
    fn paper_example_rebalances_dominant_as() {
        // §4.3's example: 100 probes in 5 ASes, 90 in one AS. The dominant
        // AS must lose probes until entropy exceeds 0.5.
        let mut spec: Vec<(u32, u32, usize)> = Vec::new();
        for p in 0..90 {
            spec.push((p, 100, 1));
        }
        for (i, asn) in [200, 300, 400, 500].iter().enumerate() {
            // A couple probes each in the other ASes.
            spec.push((100 + 2 * i as u32, *asn, 1));
            spec.push((101 + 2 * i as u32, *asn, 1));
        }
        let o = obs(&spec);
        let mut rng = SplitMix64::new(5);
        let kept = filter(&o, &cfg(), &mut rng).unwrap();
        // The dominant AS had 90 of 98 probes; a balanced outcome keeps far
        // fewer samples.
        assert!(kept.len() < 50, "kept {}", kept.len());
        assert!(kept.len() >= 8, "kept too few: {}", kept.len());
    }

    #[test]
    fn rebalancing_is_deterministic_per_seed() {
        let spec: Vec<(u32, u32, usize)> = (0..40)
            .map(|p| (p, if p < 30 { 100 } else { 200 + p % 3 * 100 }, 2))
            .collect();
        let o = obs(&spec);
        let a = filter(&o, &cfg(), &mut SplitMix64::new(9)).unwrap();
        let b = filter(&o, &cfg(), &mut SplitMix64::new(9)).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn single_probe_per_as_cannot_rebalance_but_passes() {
        // 3 ASes, one probe each: entropy is 1.0 > 0.5 → pass untouched.
        let o = obs(&[(1, 100, 2), (2, 200, 2), (3, 300, 2)]);
        let mut rng = SplitMix64::new(3);
        assert_eq!(filter(&o, &cfg(), &mut rng).unwrap().len(), 6);
    }

    #[test]
    fn stuck_rebalancing_terminates() {
        // Pathological: every AS has exactly one probe except one with two;
        // if entropy still can't clear the bar the loop must exit rather
        // than spin.
        let mut c = cfg();
        c.entropy_threshold = 1.1; // unattainable
        let o = obs(&[(1, 100, 2), (2, 200, 2), (3, 300, 2), (4, 300, 2)]);
        let mut rng = SplitMix64::new(3);
        // Must terminate (result content is secondary).
        let _ = filter(&o, &c, &mut rng);
    }
}
