//! Step 2: probe-diversity filtering (§4.3).
//!
//! Differential RTTs only isolate the monitored link's delay when the
//! contributing probes have *diverse return paths*. Two criteria:
//!
//! 1. links monitored by probes from fewer than `min_as_diversity` (3)
//!    distinct ASes are discarded outright;
//! 2. if the probe-per-AS counts are unbalanced — normalized entropy
//!    H(A) ≤ 0.5 — probes are randomly removed from the most-represented AS
//!    until H(A) exceeds the threshold ("the link is not discarded.
//!    Instead, a probe from the most represented AS is randomly selected
//!    and discarded").
//!
//! Both the nested-map reference path ([`filter`]) and the arena engine
//! path ([`filter_slice`]) funnel into one rebalancing core, so the two
//! representations make byte-identical keep/drop decisions (and consume
//! the per-link RNG identically).

use super::compute::{LinkSamples, LinkSlice};
use crate::config::DetectorConfig;
use pinpoint_model::{Asn, ProbeId};
use pinpoint_stats::entropy::normalized_entropy;
use pinpoint_stats::rng::SplitMix64;
use std::collections::HashMap;

/// The shared §4.3 rebalancing core: given each probe and its AS, decide
/// which probes to discard. Probe order does not matter — the per-AS lists
/// are sorted before any random choice is made.
fn rebalance_removals(
    probes: impl Iterator<Item = (ProbeId, Asn)>,
    cfg: &DetectorConfig,
    rng: &mut SplitMix64,
) -> Vec<ProbeId> {
    // Probe lists per AS, deterministically ordered.
    let mut by_as: HashMap<Asn, Vec<ProbeId>> = HashMap::new();
    for (probe, asn) in probes {
        by_as.entry(asn).or_default().push(probe);
    }
    for probes in by_as.values_mut() {
        probes.sort_unstable();
    }
    let mut ases: Vec<Asn> = by_as.keys().copied().collect();
    ases.sort_unstable();

    let mut removed: Vec<ProbeId> = Vec::new();
    let mut counts: Vec<u32> = Vec::with_capacity(ases.len());
    loop {
        counts.clear();
        counts.extend(ases.iter().map(|a| by_as[a].len() as u32));
        let Some(h) = normalized_entropy(&counts) else {
            break;
        };
        if h > cfg.entropy_threshold {
            break;
        }
        // Drop a random probe from the most-represented AS (deterministic
        // tie-break on ASN order).
        let Some((max_as, _)) = ases
            .iter()
            .map(|a| (*a, by_as[a].len()))
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
        else {
            break;
        };
        let Some(probes) = by_as.get_mut(&max_as) else {
            break;
        };
        if probes.len() <= 1 {
            // Cannot rebalance further; entropy can no longer change.
            break;
        }
        let idx = rng.next_below(probes.len() as u64) as usize;
        removed.push(probes.swap_remove(idx));
    }
    removed
}

/// Apply both criteria; returns the surviving flattened samples, or `None`
/// if the link must be discarded.
pub fn filter(obs: &LinkSamples, cfg: &DetectorConfig, rng: &mut SplitMix64) -> Option<Vec<f64>> {
    if obs.as_count() < cfg.min_as_diversity {
        return None;
    }
    let removed = rebalance_removals(obs.per_probe().iter().map(|(&p, (a, _))| (p, *a)), cfg, rng);
    let surviving: Vec<f64> = obs
        .per_probe()
        .iter()
        .filter(|(probe, _)| !removed.contains(probe))
        .flat_map(|(_, (_, samples))| samples.iter().copied())
        .collect();
    if surviving.is_empty() {
        None
    } else {
        Some(surviving)
    }
}

/// Reusable buffers for the balanced-link fast path of [`decide`].
#[derive(Debug, Default)]
pub struct Scratch {
    by_as: Vec<(Asn, u32)>,
    counts: Vec<u32>,
}

/// The §4.3 verdict for one link, *without* materializing the surviving
/// samples — so the balanced case (the overwhelming majority) can be
/// characterized zero-copy, directly on the link's contiguous region of
/// the shard pool, instead of copying every sample into a scratch buffer
/// first.
#[derive(Debug, PartialEq, Eq)]
pub enum Keep {
    /// Below the AS-diversity floor: discard the link.
    Discard,
    /// Already balanced: every probe's samples survive. No RNG is drawn.
    All,
    /// Rebalanced: drop the listed probes' samples, keep the rest.
    Without(Vec<ProbeId>),
}

/// Arena-path twin of [`filter`]: decide a link's fate using the same
/// rebalancing core and RNG stream, so the kept multiset is exactly what
/// [`filter`] keeps.
///
/// Most links are already balanced, so the common case is handled without
/// touching the rebalancing core: probe-per-AS counts are accumulated in
/// `scratch` (sorted by ASN — the same summation order the core uses, so
/// the entropy value is bit-identical), and if H(A) already clears the
/// threshold no per-probe lists are ever built and the RNG is never drawn
/// from — exactly like a rebalancing loop that exits on its first check.
pub fn decide(
    slice: &LinkSlice<'_>,
    cfg: &DetectorConfig,
    rng: &mut SplitMix64,
    scratch: &mut Scratch,
) -> Keep {
    if slice.as_count < cfg.min_as_diversity {
        return Keep::Discard;
    }
    // Fast path: probe counts per AS, kept sorted by ASN.
    scratch.by_as.clear();
    for (_, asn, _) in slice.probes() {
        match scratch.by_as.binary_search_by_key(&asn, |&(a, _)| a) {
            Ok(i) => scratch.by_as[i].1 += 1,
            Err(i) => scratch.by_as.insert(i, (asn, 1)),
        }
    }
    scratch.counts.clear();
    scratch.counts.extend(scratch.by_as.iter().map(|&(_, c)| c));
    let balanced = match normalized_entropy(&scratch.counts) {
        Some(h) => h > cfg.entropy_threshold,
        None => true, // unreachable post-as_count check; treat as no-op
    };
    if balanced {
        return Keep::All;
    }
    // Unbalanced link: defer to the shared core. Its first loop iteration
    // recomputes the entropy just checked — accepted redundancy, so the
    // slow path stays byte-identical to [`filter`] by construction.
    Keep::Without(rebalance_removals(
        slice.probes().map(|(p, a, _)| (p, a)),
        cfg,
        rng,
    ))
}

/// Sample-materializing wrapper around [`decide`]: appends the surviving
/// samples to `out` (cleared first) and returns whether the link
/// survives. The engine's hot path uses [`decide`] directly (zero-copy
/// for balanced links); this wrapper serves the equivalence tests.
pub fn filter_slice(
    slice: &LinkSlice<'_>,
    cfg: &DetectorConfig,
    rng: &mut SplitMix64,
    out: &mut Vec<f64>,
    scratch: &mut Scratch,
) -> bool {
    out.clear();
    match decide(slice, cfg, rng, scratch) {
        Keep::Discard => return false,
        Keep::All => {
            for (_, _, samples) in slice.probes() {
                out.extend_from_slice(samples);
            }
        }
        Keep::Without(removed) => {
            for (probe, _, samples) in slice.probes() {
                if !removed.contains(&probe) {
                    out.extend_from_slice(samples);
                }
            }
        }
    }
    !out.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffrtt::compute::SampleArena;
    use pinpoint_model::records::{Hop, Reply, TracerouteRecord};
    use pinpoint_model::{MeasurementId, SimTime};

    fn obs(spec: &[(u32, u32, usize)]) -> LinkSamples {
        // (probe id, asn, n samples)
        let mut per_probe = HashMap::new();
        for &(p, a, n) in spec {
            per_probe.insert(
                ProbeId(p),
                (Asn(a), (0..n).map(|i| i as f64).collect::<Vec<_>>()),
            );
        }
        LinkSamples::from_per_probe(per_probe)
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn fewer_than_three_ases_discarded() {
        let mut rng = SplitMix64::new(1);
        let two = obs(&[(1, 100, 3), (2, 100, 3), (3, 200, 3)]);
        assert!(filter(&two, &cfg(), &mut rng).is_none());
        let three = obs(&[(1, 100, 3), (2, 200, 3), (3, 300, 3)]);
        assert!(filter(&three, &cfg(), &mut rng).is_some());
    }

    #[test]
    fn balanced_probes_keep_all_samples() {
        let mut rng = SplitMix64::new(1);
        let o = obs(&[(1, 100, 4), (2, 200, 4), (3, 300, 4)]);
        let kept = filter(&o, &cfg(), &mut rng).unwrap();
        assert_eq!(kept.len(), 12);
    }

    #[test]
    fn paper_example_rebalances_dominant_as() {
        // §4.3's example: 100 probes in 5 ASes, 90 in one AS. The dominant
        // AS must lose probes until entropy exceeds 0.5.
        let mut spec: Vec<(u32, u32, usize)> = Vec::new();
        for p in 0..90 {
            spec.push((p, 100, 1));
        }
        for (i, asn) in [200, 300, 400, 500].iter().enumerate() {
            // A couple probes each in the other ASes.
            spec.push((100 + 2 * i as u32, *asn, 1));
            spec.push((101 + 2 * i as u32, *asn, 1));
        }
        let o = obs(&spec);
        let mut rng = SplitMix64::new(5);
        let kept = filter(&o, &cfg(), &mut rng).unwrap();
        // The dominant AS had 90 of 98 probes; a balanced outcome keeps far
        // fewer samples.
        assert!(kept.len() < 50, "kept {}", kept.len());
        assert!(kept.len() >= 8, "kept too few: {}", kept.len());
    }

    #[test]
    fn rebalancing_is_deterministic_per_seed() {
        let spec: Vec<(u32, u32, usize)> = (0..40)
            .map(|p| (p, if p < 30 { 100 } else { 200 + p % 3 * 100 }, 2))
            .collect();
        let o = obs(&spec);
        let a = filter(&o, &cfg(), &mut SplitMix64::new(9)).unwrap();
        let b = filter(&o, &cfg(), &mut SplitMix64::new(9)).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn single_probe_per_as_cannot_rebalance_but_passes() {
        // 3 ASes, one probe each: entropy is 1.0 > 0.5 → pass untouched.
        let o = obs(&[(1, 100, 2), (2, 200, 2), (3, 300, 2)]);
        let mut rng = SplitMix64::new(3);
        assert_eq!(filter(&o, &cfg(), &mut rng).unwrap().len(), 6);
    }

    #[test]
    fn stuck_rebalancing_terminates() {
        // Pathological: every AS has exactly one probe except one with two;
        // if entropy still can't clear the bar the loop must exit rather
        // than spin.
        let mut c = cfg();
        c.entropy_threshold = 1.1; // unattainable
        let o = obs(&[(1, 100, 2), (2, 200, 2), (3, 300, 2), (4, 300, 2)]);
        let mut rng = SplitMix64::new(3);
        // Must terminate (result content is secondary).
        let _ = filter(&o, &c, &mut rng);
    }

    #[test]
    fn slice_and_map_paths_agree() {
        // Build the same unbalanced bin through records, run both filter
        // paths with the same seed, and compare the kept sample multisets.
        let ip = |s: &str| s.parse::<std::net::Ipv4Addr>().unwrap();
        let mut records = Vec::new();
        for p in 0..12u32 {
            let asn = if p < 8 { 100 } else { 200 + (p % 2) * 100 };
            records.push(TracerouteRecord {
                msm_id: MeasurementId(1),
                probe_id: ProbeId(p),
                probe_asn: Asn(asn),
                dst: ip("198.51.100.1"),
                timestamp: SimTime(0),
                paris_id: 0,
                hops: vec![
                    Hop::new(1, vec![Reply::new(ip("10.0.0.1"), 1.0 + f64::from(p))]),
                    Hop::new(2, vec![Reply::new(ip("10.0.1.1"), 3.0 + f64::from(p))]),
                ],
                destination_reached: true,
            });
        }
        let reference = super::super::compute::collect_link_samples(&records);
        let (link, obs) = reference.iter().next().unwrap();
        let mut arena = SampleArena::new();
        arena.build(&records);
        let slice = (0..arena.link_count())
            .map(|i| arena.link(i))
            .find(|s| s.link == *link)
            .unwrap();

        let mut kept_map = filter(obs, &cfg(), &mut SplitMix64::new(77)).unwrap();
        let mut kept_slice = Vec::new();
        assert!(filter_slice(
            &slice,
            &cfg(),
            &mut SplitMix64::new(77),
            &mut kept_slice,
            &mut Scratch::default(),
        ));
        kept_map.sort_by(|a, b| a.partial_cmp(b).unwrap());
        kept_slice.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(kept_map, kept_slice);
    }
}
