//! The unified bin-analysis session API.
//!
//! Four entry paths grew onto the pipeline over time — batch
//! ([`Analyzer::process_bin`]), incremental ([`Analyzer::begin_bin`] /
//! [`Analyzer::ingest`] / [`Analyzer::finish_bin`]), cross-bin pipelined
//! ([`Analyzer::pipelined`]), and the fleet twins on
//! [`StreamRouter`] — each with its own calling convention and its own
//! report cadence. Every consumer (scenario runners, benches, the live
//! service) had to pick one and hard-code its shape.
//!
//! This module folds them behind two small traits:
//!
//! * [`AnalysisSession`] — one open-ended run over consecutive bins.
//!   `begin_bin` / `ingest` / `finish_bin` feed a bin in slices as they
//!   arrive; [`AnalysisSession::push_bin`] feeds a whole bin at once
//!   (zero-copy — no staging buffer is touched); [`AnalysisSession::flush`]
//!   drains whatever the executor still holds. Reports come back from
//!   `finish_bin` / `push_bin` / `flush` **strictly in bin order**, but
//!   possibly delayed: at pipeline depth 2 each push returns the
//!   *previous* bin's report and `flush` returns the last one, exactly
//!   like the raw [`PipelinedDriver`]. Depth-1 sessions return every
//!   report immediately and `flush` returns `None`. Consumers that
//!   handle the `Option` uniformly are automatically correct at every
//!   depth — that is the point of the trait.
//! * [`BinSource`] — anything that yields `(BinId, feed)` pairs in
//!   increasing bin order. Every `Iterator<Item = (BinId, F)>` is a
//!   `BinSource` for free, so `platform.stream(..)`, a `Vec` of
//!   pre-collected bins, or a channel-draining adapter all plug in
//!   unchanged.
//!
//! [`drive`] connects the two: it exhausts a source through a session
//! and hands every report to an observer, which is the whole run loop of
//! `scenarios::run_pipelined` and of the live service's executor thread.
//!
//! The concrete sessions are [`AnalyzerSession`] (solo pipeline, created
//! by [`Analyzer::session`]) and [`FleetSession`] (stream fleet, created
//! by [`StreamRouter::session`]). Both resolve `depth` with the usual
//! knob convention (`0` → `DetectorConfig::pipeline_depth` → engine
//! default 2; `1` = strictly serial) and both inherit the determinism
//! contract: for a fixed record sequence the emitted reports are
//! byte-identical across every depth, thread count, and chunk size.

use crate::pipeline::{Analyzer, BinReport, PipelinedDriver};
use crate::stream::{FleetPipelinedDriver, FleetReport, StreamRouter};
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::BinId;
use std::borrow::Borrow;

/// A supplier of consecutive bins: yields `(bin, feed)` pairs in strictly
/// increasing bin order, `None` when the feed is exhausted.
///
/// Every `Iterator<Item = (BinId, F)>` is a `BinSource` via the blanket
/// impl, so platform streams, vectors of pre-collected bins, and ad-hoc
/// adapters need no wrapper type.
pub trait BinSource {
    /// What one bin's records look like (e.g. `Vec<TracerouteRecord>` for
    /// a solo analyzer, `Vec<Vec<TracerouteRecord>>` for a fleet).
    type Feed;

    /// The next bin, or `None` when the feed is exhausted.
    fn next_bin(&mut self) -> Option<(BinId, Self::Feed)>;
}

impl<I, F> BinSource for I
where
    I: Iterator<Item = (BinId, F)>,
{
    type Feed = F;

    fn next_bin(&mut self) -> Option<(BinId, F)> {
        self.next()
    }
}

/// One open-ended analysis run over consecutive bins — the single
/// interface behind the batch, incremental, pipelined, and fleet entry
/// paths (see the [module docs](self)).
pub trait AnalysisSession {
    /// One bin's worth of input, borrowed (`[TracerouteRecord]` for a
    /// solo analyzer, `[Vec<TracerouteRecord>]` — one slot per stream —
    /// for a fleet).
    type Input: ?Sized;
    /// What a finished bin produces.
    type Report;

    /// Open the next bin for incremental ingestion.
    ///
    /// # Panics
    /// When a bin is already open, or `bin` does not increase.
    fn begin_bin(&mut self, bin: BinId);

    /// Feed one slice of the open bin's records, in arrival order.
    ///
    /// # Panics
    /// Without an open bin.
    fn ingest(&mut self, input: &Self::Input);

    /// Close the open bin. Returns the next in-order report — the closed
    /// bin's at depth 1, the *previous* bin's at depth 2 (`None` until
    /// the pipeline has filled).
    ///
    /// # Panics
    /// Without an open bin.
    fn finish_bin(&mut self) -> Option<Self::Report>;

    /// Feed one whole bin at once. Equivalent to `begin_bin` + `ingest` +
    /// `finish_bin` but zero-copy: the input slice goes straight to the
    /// executor without touching the session's staging buffer.
    ///
    /// # Panics
    /// When a bin is open, or `bin` does not increase.
    fn push_bin(&mut self, bin: BinId, input: &Self::Input) -> Option<Self::Report> {
        self.begin_bin(bin);
        self.ingest(input);
        self.finish_bin()
    }

    /// Drain the executor: the in-flight bin's report at depth 2, `None`
    /// at depth 1 (every report was already returned). Idempotent.
    ///
    /// # Panics
    /// When a bin is still open.
    fn flush(&mut self) -> Option<Self::Report>;

    /// The resolved pipeline depth (1 or 2): how many bins may be in
    /// flight, and therefore how far reports trail pushes.
    fn depth(&self) -> usize;

    /// The event channel's cumulative view: every event the run has
    /// extracted so far (open and closed), ranked by merged severity.
    /// Per-bin deltas ride on the reports
    /// ([`BinReport::events`](crate::pipeline::BinReport::events) /
    /// [`FleetReport::events`](crate::stream::FleetReport::events));
    /// this reads the same state between bins, e.g. for a final
    /// listing. Reflects only *reported* bins — with pipelined lanes, a
    /// pushed-but-unreported bin is not yet visible.
    fn events(&self) -> Vec<crate::aggregate::FleetEvent>;

    /// Drain the executor and serialize the run's complete resumable
    /// state: returns the flushed in-flight report (if the pipeline held
    /// one — hand it to the observer like any other) and the snapshot
    /// bytes ([`Analyzer::snapshot`] / [`StreamRouter::snapshot`]
    /// layout). Draining inserts one pipeline bubble at depth 2, exactly
    /// like the epoch fence, and is invisible in report bytes — so a
    /// checkpoint cadence never voids the determinism contract. The
    /// session keeps running afterwards; the pipeline refills on the
    /// next push.
    ///
    /// # Panics
    /// When a bin is still open (`finish_bin` first).
    fn checkpoint(&mut self) -> (Option<Self::Report>, Vec<u8>);
}

/// Exhaust a [`BinSource`] through an [`AnalysisSession`], handing every
/// report to `observer` strictly in bin order (including the flushed
/// tail). This is the canonical run loop — `scenarios::run_pipelined`
/// and the service's executor thread are both this shape.
pub fn drive<S, B>(session: &mut S, mut source: B, mut observer: impl FnMut(S::Report))
where
    S: AnalysisSession + ?Sized,
    B: BinSource,
    B::Feed: Borrow<S::Input>,
{
    while let Some((bin, feed)) = source.next_bin() {
        if let Some(report) = session.push_bin(bin, feed.borrow()) {
            observer(report);
        }
    }
    if let Some(report) = session.flush() {
        observer(report);
    }
}

/// Which executor a solo session runs on.
enum Lanes<'a> {
    /// Depth 1: the strictly serial schedule, delegating to the
    /// analyzer's native batch / incremental paths.
    Serial(&'a mut Analyzer),
    /// Depth 2: the cross-bin pipelined executor.
    Pipelined(PipelinedDriver<'a>),
}

/// A solo-analyzer [`AnalysisSession`] (create with
/// [`Analyzer::session`]). At depth 1 it delegates straight to the
/// analyzer's batch and incremental paths; at depth 2 it drives the
/// cross-bin [`PipelinedDriver`], staging incrementally-ingested slices
/// in a reused buffer until `finish_bin` (while [`AnalyzerSession::push_bin`]
/// bypasses the buffer entirely). Reports are byte-identical across
/// depths.
pub struct AnalyzerSession<'a> {
    lanes: Lanes<'a>,
    /// The incrementally-open bin, if any (pipelined lane only — the
    /// serial lane reuses the analyzer's own open-bin bookkeeping).
    open: Option<BinId>,
    /// Staging buffer for incrementally-ingested slices at depth 2
    /// (reused across bins; empty in steady push_bin use).
    buffer: Vec<TracerouteRecord>,
}

impl<'a> AnalyzerSession<'a> {
    pub(crate) fn new(analyzer: &'a mut Analyzer, depth: usize) -> Self {
        let depth = crate::engine::resolve_schedule(
            if depth == 0 {
                analyzer.config().pipeline_depth
            } else {
                depth
            },
            analyzer.config().threads,
        );
        let lanes = if depth == 1 {
            Lanes::Serial(analyzer)
        } else {
            Lanes::Pipelined(analyzer.pipelined(depth))
        };
        AnalyzerSession {
            lanes,
            open: None,
            buffer: Vec::new(),
        }
    }

    /// The underlying analyzer — intern-epoch and sanitizer counters
    /// ([`Analyzer::ingest_stats`] / [`Analyzer::sanitize_stats`]) keep
    /// working mid-session, which is how the live service's `/stats`
    /// endpoint reads them.
    pub fn analyzer(&self) -> &Analyzer {
        match &self.lanes {
            Lanes::Serial(a) => a,
            Lanes::Pipelined(d) => d.analyzer(),
        }
    }
}

impl AnalysisSession for AnalyzerSession<'_> {
    type Input = [TracerouteRecord];
    type Report = BinReport;

    fn begin_bin(&mut self, bin: BinId) {
        match &mut self.lanes {
            Lanes::Serial(a) => a.begin_bin(bin),
            Lanes::Pipelined(_) => {
                assert!(
                    self.open.is_none(),
                    "begin_bin called while a bin is already open (finish_bin first)"
                );
                self.open = Some(bin);
                self.buffer.clear();
            }
        }
    }

    fn ingest(&mut self, input: &[TracerouteRecord]) {
        match &mut self.lanes {
            Lanes::Serial(a) => a.ingest(input),
            Lanes::Pipelined(_) => {
                assert!(self.open.is_some(), "ingest called without begin_bin");
                self.buffer.extend_from_slice(input);
            }
        }
    }

    fn finish_bin(&mut self) -> Option<BinReport> {
        match &mut self.lanes {
            Lanes::Serial(a) => Some(a.finish_bin()),
            Lanes::Pipelined(d) => {
                let bin = self
                    .open
                    .take()
                    .expect("finish_bin called without begin_bin");
                let report = d.push_bin(bin, &self.buffer);
                self.buffer.clear();
                report
            }
        }
    }

    fn push_bin(&mut self, bin: BinId, input: &[TracerouteRecord]) -> Option<BinReport> {
        assert!(
            self.open.is_none(),
            "push_bin called while a bin is open (finish_bin first)"
        );
        match &mut self.lanes {
            Lanes::Serial(a) => Some(a.process_bin(bin, input)),
            Lanes::Pipelined(d) => d.push_bin(bin, input),
        }
    }

    fn flush(&mut self) -> Option<BinReport> {
        assert!(
            self.open.is_none(),
            "flush called while a bin is open (finish_bin first)"
        );
        match &mut self.lanes {
            Lanes::Serial(_) => None,
            Lanes::Pipelined(d) => d.finish(),
        }
    }

    fn depth(&self) -> usize {
        match &self.lanes {
            Lanes::Serial(_) => 1,
            Lanes::Pipelined(d) => d.depth(),
        }
    }

    fn events(&self) -> Vec<crate::aggregate::FleetEvent> {
        self.analyzer().events()
    }

    fn checkpoint(&mut self) -> (Option<BinReport>, Vec<u8>) {
        let report = self.flush();
        (report, self.analyzer().snapshot())
    }
}

/// Which executor a fleet session runs on.
enum FleetLanes<'a> {
    Serial(&'a mut StreamRouter),
    Pipelined(FleetPipelinedDriver<'a>),
}

/// A fleet [`AnalysisSession`] over a [`StreamRouter`] (create with
/// [`StreamRouter::session`]). Input is one feed per stream
/// (`[Vec<TracerouteRecord>]`, index = [`crate::stream::StreamId`]);
/// reports are merged [`FleetReport`]s. The router has no native
/// incremental path, so both depths stage incrementally-ingested slices
/// in reused per-stream buffers — [`FleetSession::push_bin`] bypasses
/// them.
pub struct FleetSession<'a> {
    lanes: FleetLanes<'a>,
    open: Option<BinId>,
    /// Per-stream staging buffers for incremental ingestion (reused
    /// across bins; empty in steady push_bin use).
    buffers: Vec<Vec<TracerouteRecord>>,
}

impl<'a> FleetSession<'a> {
    pub(crate) fn new(router: &'a mut StreamRouter, depth: usize) -> Self {
        let depth = crate::engine::resolve_schedule(
            if depth == 0 {
                router.default_pipeline_depth()
            } else {
                depth
            },
            router.configured_threads(),
        );
        let streams = router.len();
        let lanes = if depth == 1 {
            FleetLanes::Serial(router)
        } else {
            FleetLanes::Pipelined(router.pipelined(depth))
        };
        FleetSession {
            lanes,
            open: None,
            buffers: vec![Vec::new(); streams],
        }
    }

    /// The underlying router — fleet-summed [`StreamRouter::ingest_stats`]
    /// / [`StreamRouter::sanitize_stats`] keep working mid-session.
    pub fn router(&self) -> &StreamRouter {
        match &self.lanes {
            FleetLanes::Serial(r) => r,
            FleetLanes::Pipelined(d) => d.router(),
        }
    }
}

impl AnalysisSession for FleetSession<'_> {
    type Input = [Vec<TracerouteRecord>];
    type Report = FleetReport;

    fn begin_bin(&mut self, bin: BinId) {
        assert!(
            self.open.is_none(),
            "begin_bin called while a bin is already open (finish_bin first)"
        );
        self.open = Some(bin);
        for buffer in &mut self.buffers {
            buffer.clear();
        }
    }

    fn ingest(&mut self, input: &[Vec<TracerouteRecord>]) {
        assert!(self.open.is_some(), "ingest called without begin_bin");
        assert_eq!(
            input.len(),
            self.buffers.len(),
            "one feed per stream (streams: {}, feeds: {})",
            self.buffers.len(),
            input.len()
        );
        for (buffer, feed) in self.buffers.iter_mut().zip(input) {
            buffer.extend_from_slice(feed);
        }
    }

    fn finish_bin(&mut self) -> Option<FleetReport> {
        let bin = self
            .open
            .take()
            .expect("finish_bin called without begin_bin");
        let report = match &mut self.lanes {
            FleetLanes::Serial(r) => Some(r.process_bin(bin, &self.buffers)),
            FleetLanes::Pipelined(d) => d.push_bin(bin, &self.buffers),
        };
        for buffer in &mut self.buffers {
            buffer.clear();
        }
        report
    }

    fn push_bin(&mut self, bin: BinId, input: &[Vec<TracerouteRecord>]) -> Option<FleetReport> {
        assert!(
            self.open.is_none(),
            "push_bin called while a bin is open (finish_bin first)"
        );
        match &mut self.lanes {
            FleetLanes::Serial(r) => Some(r.process_bin(bin, input)),
            FleetLanes::Pipelined(d) => d.push_bin(bin, input),
        }
    }

    fn flush(&mut self) -> Option<FleetReport> {
        assert!(
            self.open.is_none(),
            "flush called while a bin is open (finish_bin first)"
        );
        match &mut self.lanes {
            FleetLanes::Serial(_) => None,
            FleetLanes::Pipelined(d) => d.finish(),
        }
    }

    fn depth(&self) -> usize {
        match &self.lanes {
            FleetLanes::Serial(_) => 1,
            FleetLanes::Pipelined(d) => d.depth(),
        }
    }

    fn events(&self) -> Vec<crate::aggregate::FleetEvent> {
        self.router().events()
    }

    fn checkpoint(&mut self) -> (Option<FleetReport>, Vec<u8>) {
        let report = self.flush();
        (report, self.router().snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AsMapper;
    use crate::config::DetectorConfig;

    fn analyzer() -> Analyzer {
        Analyzer::new(DetectorConfig::fast_test(), AsMapper::new())
    }

    /// An analyzer whose herd has two workers — required by every test
    /// that exercises depth-2 cadence, because a one-worker herd
    /// collapses the overlapped schedule to serial
    /// (`engine::resolve_schedule`), regardless of the host's core count.
    fn pipelined_analyzer() -> Analyzer {
        let mut cfg = DetectorConfig::fast_test();
        cfg.threads = 2;
        Analyzer::new(cfg, AsMapper::new())
    }

    #[test]
    fn depth_resolution_matches_driver_convention() {
        let mut a = pipelined_analyzer();
        assert_eq!(a.session(1).depth(), 1);
        let mut a = pipelined_analyzer();
        assert_eq!(a.session(2).depth(), 2);
        let mut a = pipelined_analyzer();
        assert_eq!(a.session(7).depth(), 2, "deeper than 2 clamps");
        let mut a = pipelined_analyzer();
        assert_eq!(a.session(0).depth(), 2, "0 falls through to the default");
    }

    #[test]
    fn one_worker_session_collapses_to_serial() {
        let mut cfg = DetectorConfig::fast_test();
        cfg.threads = 1;
        let mut a = Analyzer::new(cfg, AsMapper::new());
        let mut session = a.session(2);
        assert_eq!(session.depth(), 1, "one worker has nothing to overlap");
        // Serial cadence: every push reports its own bin immediately.
        let report = session
            .push_bin(BinId(0), &[])
            .expect("serial schedule reports immediately");
        assert_eq!(report.bin, BinId(0));
        assert!(session.flush().is_none());
    }

    #[test]
    fn serial_session_reports_every_bin_immediately() {
        let mut a = analyzer();
        let mut session = a.session(1);
        for bin in 0..3u64 {
            let report = session
                .push_bin(BinId(bin), &[])
                .expect("depth 1 is immediate");
            assert_eq!(report.bin, BinId(bin));
        }
        assert!(session.flush().is_none());
    }

    #[test]
    fn pipelined_session_trails_one_bin_and_flushes_the_tail() {
        let mut a = pipelined_analyzer();
        let mut session = a.session(2);
        assert!(session.push_bin(BinId(0), &[]).is_none());
        assert_eq!(session.push_bin(BinId(1), &[]).unwrap().bin, BinId(0));
        assert_eq!(session.flush().unwrap().bin, BinId(1));
        assert!(session.flush().is_none(), "flush is idempotent");
    }

    #[test]
    fn incremental_slices_and_drive_agree_on_report_order() {
        let mut a = pipelined_analyzer();
        let mut session = a.session(2);
        session.begin_bin(BinId(0));
        session.ingest(&[]);
        session.ingest(&[]);
        assert!(session.finish_bin().is_none());
        assert_eq!(session.push_bin(BinId(1), &[]).unwrap().bin, BinId(0));
    }

    #[test]
    fn drive_exhausts_a_source_in_order() {
        let mut a = pipelined_analyzer();
        let bins: Vec<(BinId, Vec<TracerouteRecord>)> =
            (0..4u64).map(|b| (BinId(b), Vec::new())).collect();
        let mut seen = Vec::new();
        let mut session = a.session(2);
        drive(&mut session, bins.into_iter(), |r| seen.push(r.bin));
        assert_eq!(seen, vec![BinId(0), BinId(1), BinId(2), BinId(3)]);
    }

    #[test]
    fn fleet_session_round_trips() {
        let mut router = StreamRouter::new();
        router.add_stream("a", pipelined_analyzer());
        router.add_stream("b", pipelined_analyzer());
        router.set_threads(2);
        let mut session = router.session(2);
        let feeds = vec![Vec::new(), Vec::new()];
        assert!(session.push_bin(BinId(0), &feeds).is_none());
        assert_eq!(session.push_bin(BinId(1), &feeds).unwrap().bin, BinId(0));
        assert_eq!(session.flush().unwrap().bin, BinId(1));
    }

    #[test]
    #[should_panic(expected = "flush called while a bin is open")]
    fn flush_with_open_bin_panics() {
        let mut a = pipelined_analyzer();
        let mut session = a.session(2);
        session.begin_bin(BinId(0));
        session.flush();
    }
}
